#!/usr/bin/env python3
"""CI guard against benchmark regressions.

Compares a freshly measured benchmark JSON against the committed baseline and
fails (exit 1) on regressions beyond the threshold (default 30%). The file
kind is auto-detected from its keys:

* ``BENCH_dispatch.json`` (``backends``): fails when any backend's
  ``queries_per_sec`` dropped by more than the threshold.
* ``BENCH_matching.json`` (``pressures``): fails when any solver's mean
  solve time at any pressure level grew by more than the threshold, or a
  metro-tier ``speedup_decomposed_sparse_vs_dense`` fell by more than the
  threshold (city-tier speedups are informational only).
* ``BENCH_disruptions.json`` (``runs``): fails when any (policy, profile)
  run's ``xdt_hours_per_day`` grew by more than the threshold (policy
  quality, not wall-clock, so it is hardware-independent).
* ``BENCH_service.json`` (``service``): fails when any policy's sustained
  ingest ``orders_per_sec`` dropped, or its per-``advance_to`` ``mean_ms``
  or ``p90_ms`` latency grew, by more than the threshold.
* ``BENCH_router.json`` (``router``): fails when any shard count's sustained
  ingest ``orders_per_sec`` dropped, or its lockstep ``advance_to``
  ``mean_ms`` or ``p90_ms`` latency grew, by more than the threshold — the
  shard-scaling curve must not flatten.
* ``BENCH_recovery.json`` (``recovery``): fails when durable (WAL-on)
  ingest ``wal_orders_per_sec`` dropped, the ``wal_overhead_ratio`` vs the
  bare service grew, checkpoint ``save_best_ms``/``restore_best_ms`` grew,
  or the replay ``records_per_sec`` catch-up rate dropped, by more than the
  threshold — crash-safety must not silently get more expensive. The
  guarded numbers are best-of estimates (fastest chunk/snapshot/pass): the
  sub-millisecond fsync-bound means are too runner-noise-sensitive to gate
  on, the floor is not. Additionally, the **group-commit gate** asserts the
  best amortising flush policy in the ``flush_policies`` sweep keeps its
  ``wal_overhead_ratio`` at or below an absolute 25x. Like the telemetry
  gate this compares two passes of the same run (plain vs durable, same
  machine, minutes apart), so it enforces even when the committed baseline
  is not comparable.
* ``BENCH_telemetry.json`` (``telemetry``): fails when the recorder-on
  dispatch loop is more than 5% slower than the recorder-off loop of the
  *same run* (``overhead_pct``) — the observability contract. This check
  is self-contained in the new file (on vs off were interleaved on the
  same machine minutes apart), so it enforces regardless of baseline
  comparability; it is skipped only when ``recorder_preinstalled`` is
  true (the run was made under ``--telemetry-out``, so the "off" passes
  were live too).

Timing-based comparisons (dispatch, matching) are skipped — informational
only, exit 0 — when the two runs are not comparable: different
``available_parallelism`` or a different ``quick`` flag. The deterministic
disruptions metrics only require matching ``quick`` and ``seed``.

With ``--lint-report LINT_JSON`` the script additionally summarises a
``foodmatch-lint`` report: waiver count (per rule) and diagnostic count,
failing when the report carries unwaived diagnostics. In this mode the two
benchmark positionals may be omitted to check the lint report alone.

Usage:
    check_bench_regression.py NEW_JSON BASELINE_JSON [--threshold 0.30]
    check_bench_regression.py --lint-report lint-report.json
"""

import argparse
import json
import sys


def load(path):
    with open(path, encoding="utf-8") as handle:
        return json.load(handle)


def check_comparable(new, baseline, keys):
    """Returns True when the runs are comparable on every key in ``keys``."""
    comparable = True
    reasons = {
        "available_parallelism": "different core counts",
        "quick": "different workloads",
        "seed": "different scenario days",
    }
    for key in keys:
        if new.get(key) != baseline.get(key):
            print(
                f"SKIP bench regression check: {key} differs "
                f"({baseline.get(key)} -> {new.get(key)}, {reasons[key]})"
            )
            comparable = False
    if not comparable:
        print(
            "::warning::bench regression guard is NOT enforcing — the committed "
            "baseline was measured under different conditions. Refresh it from "
            "this runner's CI artifact (download, rename, commit) to arm the "
            "guard."
        )
        print("informational comparison (not comparable, not enforced):")
    return comparable


def check_dispatch(new, baseline, threshold):
    """Queries/sec guard for BENCH_dispatch.json. Returns failure labels."""
    baseline_backends = {b["kind"]: b for b in baseline.get("backends", [])}
    failures = []
    for backend in new.get("backends", []):
        kind = backend["kind"]
        old = baseline_backends.get(kind)
        if old is None:
            print(f"note: backend {kind} has no committed baseline, skipping")
            continue
        old_qps = float(old["queries_per_sec"])
        new_qps = float(backend["queries_per_sec"])
        if old_qps <= 0:
            continue
        drop = (old_qps - new_qps) / old_qps
        status = "REGRESSION" if drop > threshold else "ok"
        print(
            f"{kind:<24} baseline {old_qps:>12.0f} q/s  now {new_qps:>12.0f} q/s  "
            f"({-drop:+.1%}) {status}"
        )
        if drop > threshold:
            failures.append(f"{kind} queries/sec")
    return failures


def check_matching(new, baseline, threshold):
    """Solver solve-time and speedup guard for BENCH_matching.json."""
    baseline_pressures = {p["label"]: p for p in baseline.get("pressures", [])}
    failures = []
    for pressure in new.get("pressures", []):
        label = pressure["label"]
        old_pressure = baseline_pressures.get(label)
        if old_pressure is None:
            print(f"note: pressure {label} has no committed baseline, skipping")
            continue
        old_solvers = {s["name"]: s for s in old_pressure.get("solvers", [])}
        for solver in pressure.get("solvers", []):
            name = solver["name"]
            old = old_solvers.get(name)
            if old is None or float(old["mean_us"]) <= 0:
                continue
            old_us, new_us = float(old["mean_us"]), float(solver["mean_us"])
            growth = (new_us - old_us) / old_us
            status = "REGRESSION" if growth > threshold else "ok"
            print(
                f"{label:<14} {name:<22} baseline {old_us:>10.0f} us  "
                f"now {new_us:>10.0f} us  ({growth:+.1%}) {status}"
            )
            if growth > threshold:
                failures.append(f"{label}/{name} solve time")
        # The speedup is only a promise on the metro tiers (the city tiers
        # are the regime where dense KM deliberately wins and the ratio is
        # noise-dominated).
        old_speedup = float(old_pressure.get("speedup_decomposed_sparse_vs_dense", 0))
        new_speedup = float(pressure.get("speedup_decomposed_sparse_vs_dense", 0))
        if label.startswith("metro") and old_speedup > 0:
            drop = (old_speedup - new_speedup) / old_speedup
            status = "REGRESSION" if drop > threshold else "ok"
            print(
                f"{label:<14} {'speedup vs dense':<22} baseline {old_speedup:>9.2f}x  "
                f"now {new_speedup:>10.2f}x  ({-drop:+.1%}) {status}"
            )
            if drop > threshold:
                failures.append(f"{label} decomposed-sparse speedup")
    return failures


def check_service(new, baseline, threshold):
    """Ingest-throughput and advance-latency guard for BENCH_service.json."""
    baseline_runs = {r["policy"]: r for r in baseline.get("service", [])}
    failures = []
    for run in new.get("service", []):
        policy = run["policy"]
        old = baseline_runs.get(policy)
        if old is None:
            print(f"note: policy {policy} has no committed baseline, skipping")
            continue
        old_qps = float(old["ingest"]["orders_per_sec"])
        new_qps = float(run["ingest"]["orders_per_sec"])
        if old_qps > 0:
            drop = (old_qps - new_qps) / old_qps
            status = "REGRESSION" if drop > threshold else "ok"
            print(
                f"{policy:<10} {'ingest orders/sec':<18} baseline {old_qps:>12.0f}  "
                f"now {new_qps:>12.0f}  ({-drop:+.1%}) {status}"
            )
            if drop > threshold:
                failures.append(f"{policy} ingest throughput")
        for field in ("mean_ms", "p90_ms"):
            old_ms = float(old["advance"][field])
            new_ms = float(run["advance"][field])
            if old_ms <= 0:
                continue
            growth = (new_ms - old_ms) / old_ms
            status = "REGRESSION" if growth > threshold else "ok"
            print(
                f"{policy:<10} {'advance ' + field:<18} baseline {old_ms:>11.2f}ms  "
                f"now {new_ms:>11.2f}ms  ({growth:+.1%}) {status}"
            )
            if growth > threshold:
                failures.append(f"{policy} advance {field}")
    return failures


def check_router(new, baseline, threshold):
    """Shard-scaling guard for BENCH_router.json (per shard count)."""
    baseline_runs = {r["zones"]: r for r in baseline.get("router", [])}
    failures = []
    for run in new.get("router", []):
        zones = run["zones"]
        old = baseline_runs.get(zones)
        if old is None:
            print(f"note: shard count {zones} has no committed baseline, skipping")
            continue
        label = f"{zones} shard(s)"
        old_qps = float(old["ingest"]["orders_per_sec"])
        new_qps = float(run["ingest"]["orders_per_sec"])
        if old_qps > 0:
            drop = (old_qps - new_qps) / old_qps
            status = "REGRESSION" if drop > threshold else "ok"
            print(
                f"{label:<10} {'ingest orders/sec':<18} baseline {old_qps:>12.0f}  "
                f"now {new_qps:>12.0f}  ({-drop:+.1%}) {status}"
            )
            if drop > threshold:
                failures.append(f"{label} ingest throughput")
        for field in ("mean_ms", "p90_ms"):
            old_ms = float(old["advance"][field])
            new_ms = float(run["advance"][field])
            if old_ms <= 0:
                continue
            growth = (new_ms - old_ms) / old_ms
            status = "REGRESSION" if growth > threshold else "ok"
            print(
                f"{label:<10} {'advance ' + field:<18} baseline {old_ms:>11.2f}ms  "
                f"now {new_ms:>11.2f}ms  ({growth:+.1%}) {status}"
            )
            if growth > threshold:
                failures.append(f"{label} advance {field}")
    return failures


def check_recovery(new, baseline, threshold):
    """Durability-cost guard for BENCH_recovery.json (per policy)."""
    baseline_runs = {r["policy"]: r for r in baseline.get("recovery", [])}
    failures = []
    for run in new.get("recovery", []):
        policy = run["policy"]
        old = baseline_runs.get(policy)
        if old is None:
            print(f"note: policy {policy} has no committed baseline, skipping")
            continue

        def lower_is_regression(label, new_value, old_value, unit=""):
            if old_value <= 0:
                return
            drop = (old_value - new_value) / old_value
            status = "REGRESSION" if drop > threshold else "ok"
            print(
                f"{policy:<10} {label:<22} baseline {old_value:>12.1f}{unit}  "
                f"now {new_value:>12.1f}{unit}  ({-drop:+.1%}) {status}"
            )
            if drop > threshold:
                failures.append(f"{policy} {label}")

        def higher_is_regression(label, new_value, old_value, unit=""):
            if old_value <= 0:
                return
            growth = (new_value - old_value) / old_value
            status = "REGRESSION" if growth > threshold else "ok"
            print(
                f"{policy:<10} {label:<22} baseline {old_value:>12.2f}{unit}  "
                f"now {new_value:>12.2f}{unit}  ({growth:+.1%}) {status}"
            )
            if growth > threshold:
                failures.append(f"{policy} {label}")

        lower_is_regression(
            "WAL ingest orders/sec",
            float(run["ingest"]["wal_orders_per_sec"]),
            float(old["ingest"]["wal_orders_per_sec"]),
        )
        higher_is_regression(
            "checkpoint bytes",
            float(run["checkpoint"]["bytes"]),
            float(old["checkpoint"]["bytes"]),
            "B",
        )
        higher_is_regression(
            "WAL overhead ratio",
            float(run["ingest"]["wal_overhead_ratio"]),
            float(old["ingest"]["wal_overhead_ratio"]),
            "x",
        )
        higher_is_regression(
            "checkpoint save best",
            float(run["checkpoint"]["save_best_ms"]),
            float(old["checkpoint"]["save_best_ms"]),
            "ms",
        )
        higher_is_regression(
            "checkpoint restore best",
            float(run["checkpoint"]["restore_best_ms"]),
            float(old["checkpoint"]["restore_best_ms"]),
            "ms",
        )
        lower_is_regression(
            "replay records/sec",
            float(run["replay"]["records_per_sec"]),
            float(old["replay"]["records_per_sec"]),
        )
    return failures


def check_recovery_group_commit(new):
    """Absolute group-commit gate for BENCH_recovery.json (self-contained).

    The flush-policy sweep measures bare vs durable ingest within the same
    run — same machine, minutes apart — so, like the telemetry gate, it
    needs no committed baseline and enforces even when the baseline is not
    comparable. The best amortising policy (anything but ``every-record``)
    must keep the durability tax at or below the limit; ``every-record``
    deliberately pays one fsync per order and is exempt.
    """
    overhead_limit = 25.0
    failures = []
    for run in new.get("recovery", []):
        policy = run["policy"]
        rows = [
            row
            for row in run.get("ingest", {}).get("flush_policies", [])
            if row.get("policy") != "every-record"
        ]
        if not rows:
            print(f"note: {policy} has no group-commit flush-policy sweep, skipping")
            continue
        best = min(rows, key=lambda row: float(row["wal_overhead_ratio"]))
        ratio = float(best["wal_overhead_ratio"])
        status = "REGRESSION" if ratio > overhead_limit else "ok"
        print(
            f"{policy:<10} {'group-commit overhead':<22} best {best['policy']} "
            f"{ratio:.2f}x (limit {overhead_limit:.0f}x) {status}"
        )
        if ratio > overhead_limit:
            failures.append(
                f"{policy} group-commit overhead {ratio:.2f}x "
                f"(absolute limit {overhead_limit:.0f}x)"
            )
    return failures


def check_telemetry(new):
    """Recorder-overhead guard for BENCH_telemetry.json (self-contained).

    The experiment interleaves recorder-off and recorder-on passes of the
    same dispatch loop, so ``overhead_pct`` is a same-machine, same-minute
    comparison: no baseline or comparability gate is needed (or used).
    """
    overhead_limit_pct = 5.0
    failures = []
    for run in new.get("telemetry", []):
        label = f"{run['shards']} shard(s)"
        if run.get("recorder_preinstalled"):
            print(
                f"SKIP {label}: recorder was pre-installed (--telemetry-out), "
                "the recorder-off passes were live — overhead gate not applicable"
            )
            continue
        off_qps = float(run["off"]["orders_per_sec"])
        on_qps = float(run["on"]["orders_per_sec"])
        overhead = float(run["overhead_pct"])
        status = "REGRESSION" if overhead > overhead_limit_pct else "ok"
        print(
            f"{label:<10} recorder off {off_qps:>10.0f} ord/s  on {on_qps:>10.0f} ord/s  "
            f"overhead {overhead:+.2f}% (limit {overhead_limit_pct:.0f}%) {status}"
        )
        if overhead > overhead_limit_pct:
            failures.append(f"{label} recorder overhead {overhead:.2f}%")
    return failures


def check_disruptions(new, baseline, threshold):
    """Policy-quality guard for BENCH_disruptions.json (XDT per run)."""
    def key(run):
        return (run["policy"], run["profile"])

    baseline_runs = {key(r): r for r in baseline.get("runs", [])}
    failures = []
    for run in new.get("runs", []):
        old = baseline_runs.get(key(run))
        if old is None:
            print(f"note: run {key(run)} has no committed baseline, skipping")
            continue
        old_xdt, new_xdt = float(old["xdt_hours_per_day"]), float(run["xdt_hours_per_day"])
        if old_xdt <= 0:
            continue
        growth = (new_xdt - old_xdt) / old_xdt
        status = "REGRESSION" if growth > threshold else "ok"
        print(
            f"{run['policy']:<10} {run['profile']:<15} baseline XDT {old_xdt:>8.3f} h/d  "
            f"now {new_xdt:>8.3f} h/d  ({growth:+.1%}) {status}"
        )
        if growth > threshold:
            failures.append(f"{run['policy']}/{run['profile']} XDT")
    return failures


def check_lint_report(path):
    """Summarises a foodmatch-lint JSON report. Returns failure labels."""
    report = load(path)
    waivers = report.get("waivers", [])
    per_rule = {}
    for waiver in waivers:
        per_rule[waiver["rule"]] = per_rule.get(waiver["rule"], 0) + 1
    breakdown = ", ".join(f"{rule}: {n}" for rule, n in sorted(per_rule.items()))
    print(
        f"lint: {report.get('files_scanned', '?')} files scanned, "
        f"{report.get('waiver_count', len(waivers))} waiver(s)"
        + (f" ({breakdown})" if breakdown else "")
    )
    for waiver in waivers:
        print(
            f"  waived [{waiver['rule']}] {waiver['path']}:{waiver['line']} "
            f"— {waiver['reason']}"
        )
    count = int(report.get("diagnostic_count", 0))
    if count > 0:
        for diag in report.get("diagnostics", []):
            print(f"  UNWAIVED [{diag['rule']}] {diag['path']}:{diag['line']}")
        return [f"{count} unwaived lint diagnostic(s)"]
    return []


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("new", nargs="?", help="freshly generated benchmark JSON")
    parser.add_argument("baseline", nargs="?", help="committed baseline benchmark JSON")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.30,
        help="maximum tolerated fractional regression (default 0.30)",
    )
    parser.add_argument(
        "--lint-report",
        help="foodmatch-lint JSON report to summarise (waiver count) and gate on",
    )
    args = parser.parse_args()

    lint_failures = []
    if args.lint_report:
        lint_failures = check_lint_report(args.lint_report)
    if args.new is None or args.baseline is None:
        if not args.lint_report:
            parser.error("NEW_JSON and BASELINE_JSON are required without --lint-report")
        if lint_failures:
            print("FAIL: " + ", ".join(lint_failures))
            return 1
        print("lint report check passed")
        return 0

    new = load(args.new)
    baseline = load(args.baseline)

    # Self-contained gates (no baseline needed) collected separately: they
    # enforce even when the baseline comparison is informational-only.
    enforced = []
    if "backends" in new:
        comparable = check_comparable(new, baseline, ["available_parallelism", "quick"])
        failures = check_dispatch(new, baseline, args.threshold)
    elif "pressures" in new:
        comparable = check_comparable(new, baseline, ["available_parallelism", "quick"])
        failures = check_matching(new, baseline, args.threshold)
    elif "service" in new:
        comparable = check_comparable(new, baseline, ["available_parallelism", "quick"])
        failures = check_service(new, baseline, args.threshold)
    elif "router" in new:
        comparable = check_comparable(new, baseline, ["available_parallelism", "quick"])
        failures = check_router(new, baseline, args.threshold)
    elif "recovery" in new:
        comparable = check_comparable(new, baseline, ["available_parallelism", "quick"])
        failures = check_recovery(new, baseline, args.threshold)
        enforced = check_recovery_group_commit(new)
    elif "telemetry" in new:
        # Self-contained on-vs-off comparison: always enforced.
        comparable = True
        failures = check_telemetry(new)
    elif "runs" in new:
        comparable = check_comparable(new, baseline, ["quick", "seed"])
        failures = check_disruptions(new, baseline, args.threshold)
    else:
        print(f"unrecognised benchmark layout in {args.new}")
        return 1

    if not comparable:
        # Baseline-relative numbers above were informational only; the
        # self-contained gates still decide the exit code.
        failures = enforced
    else:
        failures = failures + enforced
    failures = failures + lint_failures
    if failures:
        print("FAIL: regressed beyond tolerance on: " + ", ".join(failures))
        return 1
    print("bench regression check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
