#!/usr/bin/env python3
"""CI guard against dispatch-oracle throughput regressions.

Compares a freshly measured ``BENCH_dispatch.json`` against the committed
baseline and fails (exit 1) when any backend's ``queries_per_sec`` dropped by
more than the threshold (default 30%). The comparison is skipped (exit 0)
when the two runs are not comparable: different ``available_parallelism``
(thread-scaling numbers only mean something on like-for-like runners) or a
different ``quick`` flag (different workloads).

Usage:
    check_bench_regression.py NEW_JSON BASELINE_JSON [--threshold 0.30]
"""

import argparse
import json
import sys


def load(path):
    with open(path, encoding="utf-8") as handle:
        return json.load(handle)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("new", help="freshly generated BENCH_dispatch.json")
    parser.add_argument("baseline", help="committed baseline BENCH_dispatch.json")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.30,
        help="maximum tolerated fractional queries/sec drop (default 0.30)",
    )
    args = parser.parse_args()

    new = load(args.new)
    baseline = load(args.baseline)

    comparable = True
    for key, reason in [
        ("available_parallelism", "different core counts"),
        ("quick", "different workloads"),
    ]:
        if new.get(key) != baseline.get(key):
            print(
                f"SKIP bench regression check: {key} differs "
                f"({baseline.get(key)} -> {new.get(key)}, {reason})"
            )
            comparable = False
    if not comparable:
        print(
            "::warning::bench regression guard is NOT enforcing — the committed "
            "BENCH_dispatch.json was measured on different hardware. Refresh it "
            "from this runner's BENCH_dispatch artifact (download, rename to "
            "BENCH_dispatch.json, commit) to arm the guard."
        )
        print("informational comparison (not comparable, not enforced):")

    baseline_backends = {b["kind"]: b for b in baseline.get("backends", [])}
    failures = []
    for backend in new.get("backends", []):
        kind = backend["kind"]
        old = baseline_backends.get(kind)
        if old is None:
            print(f"note: backend {kind} has no committed baseline, skipping")
            continue
        old_qps = float(old["queries_per_sec"])
        new_qps = float(backend["queries_per_sec"])
        if old_qps <= 0:
            continue
        drop = (old_qps - new_qps) / old_qps
        status = "REGRESSION" if drop > args.threshold else "ok"
        print(
            f"{kind:<24} baseline {old_qps:>12.0f} q/s  now {new_qps:>12.0f} q/s  "
            f"({-drop:+.1%}) {status}"
        )
        if drop > args.threshold:
            failures.append(kind)

    if not comparable:
        return 0
    if failures:
        print(
            f"FAIL: queries/sec dropped by more than {args.threshold:.0%} on: "
            + ", ".join(failures)
        )
        return 1
    print("bench regression check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
