//! Dinner rush: simulate the 18:30–21:30 evening peak of the City B preset
//! and compare FOODMATCH against the Greedy baseline on the paper's metrics.
//!
//! ```text
//! cargo run --release -p foodmatch-examples --bin dinner_rush
//! ```

use foodmatch_core::{DispatchPolicy, FoodMatchPolicy, GreedyPolicy};
use foodmatch_roadnet::TimePoint;
use foodmatch_workload::{CityId, Scenario, ScenarioOptions};

fn main() {
    let options = ScenarioOptions {
        seed: 2,
        start: TimePoint::from_hms(18, 30, 0),
        end: TimePoint::from_hms(21, 30, 0),
        vehicle_fraction: 1.0,
    };
    let scenario = Scenario::generate(CityId::B, options);
    println!(
        "City B dinner rush: {} orders, {} vehicles, {} restaurants",
        scenario.orders.len(),
        scenario.vehicle_starts.len(),
        scenario.city.restaurants.len()
    );
    let simulation = scenario.into_simulation();

    let mut policies: Vec<Box<dyn DispatchPolicy>> =
        vec![Box::new(FoodMatchPolicy::new()), Box::new(GreedyPolicy::new())];
    println!(
        "\n{:<12} {:>12} {:>10} {:>12} {:>12} {:>14}",
        "Policy", "XDT (h/day)", "O/Km", "WT (h/day)", "Rejected %", "Mean win (ms)"
    );
    for policy in policies.iter_mut() {
        let report = simulation.run(policy.as_mut());
        println!(
            "{:<12} {:>12.1} {:>10.2} {:>12.1} {:>11.1}% {:>14.1}",
            report.policy,
            report.xdt_hours_per_day(),
            report.orders_per_km(),
            report.waiting_hours_per_day(),
            report.rejection_rate_pct(),
            report.mean_window_compute_secs() * 1000.0,
        );
    }
    println!("\nLower XDT/WT and higher O/Km are better; the FOODMATCH row should win.");
}
