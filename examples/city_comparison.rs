//! City comparison: run the same lunch-peak workload through all four
//! dispatch policies on two differently sized city presets, printing the
//! paper's three quality metrics side by side.
//!
//! ```text
//! cargo run --release -p foodmatch-examples --bin city_comparison
//! ```

use foodmatch_core::PolicyKind;
use foodmatch_roadnet::TimePoint;
use foodmatch_workload::{CityId, Scenario, ScenarioOptions};

fn main() {
    let options = ScenarioOptions {
        seed: 9,
        start: TimePoint::from_hms(12, 0, 0),
        end: TimePoint::from_hms(14, 0, 0),
        vehicle_fraction: 1.0,
    };

    for city in [CityId::A, CityId::GrubHub] {
        let scenario = Scenario::generate(city, options);
        let row = scenario.table2_row();
        println!(
            "\n=== {} — {} orders, {} vehicles, {} restaurants, {} road nodes ===",
            city.name(),
            row.orders,
            row.vehicles,
            row.restaurants,
            row.nodes
        );
        let simulation = scenario.into_simulation();
        println!(
            "{:<12} {:>12} {:>10} {:>12} {:>12}",
            "Policy", "XDT (h/day)", "O/Km", "WT (h/day)", "Rejected %"
        );
        for kind in PolicyKind::ALL {
            let mut policy = kind.build();
            let report = simulation.run(policy.as_mut());
            println!(
                "{:<12} {:>12.1} {:>10.2} {:>12.1} {:>11.1}%",
                report.policy,
                report.xdt_hours_per_day(),
                report.orders_per_km(),
                report.waiting_hours_per_day(),
                report.rejection_rate_pct(),
            );
        }
    }
    println!("\nThe gap between FoodMatch and the baselines grows with city size and");
    println!("order volume — compare against the figures in EXPERIMENTS.md.");
}
