//! Quickstart: build a tiny synthetic city, place a handful of orders, and
//! dispatch them with FOODMATCH.
//!
//! ```text
//! cargo run --release -p foodmatch-examples --bin quickstart
//! ```

use foodmatch_core::{
    DispatchConfig, DispatchPolicy, FoodMatchPolicy, Order, OrderId, VehicleId, VehicleSnapshot,
    WindowSnapshot,
};
use foodmatch_roadnet::generators::GridCityBuilder;
use foodmatch_roadnet::{Duration, ShortestPathEngine, TimePoint};

fn main() {
    // 1. A 10×10 Manhattan-style grid with the default congestion profile.
    let grid = GridCityBuilder::new(10, 10);
    let network = grid.build();
    println!("Road network: {} nodes, {} edges", network.node_count(), network.edge_count());
    let engine = ShortestPathEngine::cached(network);

    // 2. One accumulation window's worth of orders (12:30, lunch rush).
    let t = TimePoint::from_hms(12, 30, 0);
    let orders = vec![
        Order::new(
            OrderId(1),
            grid.node_at(2, 2),
            grid.node_at(7, 3),
            t,
            2,
            Duration::from_mins(9.0),
        ),
        Order::new(
            OrderId(2),
            grid.node_at(2, 2),
            grid.node_at(8, 4),
            t,
            1,
            Duration::from_mins(11.0),
        ),
        Order::new(
            OrderId(3),
            grid.node_at(5, 8),
            grid.node_at(1, 8),
            t,
            3,
            Duration::from_mins(7.0),
        ),
        Order::new(
            OrderId(4),
            grid.node_at(6, 1),
            grid.node_at(9, 9),
            t,
            1,
            Duration::from_mins(12.0),
        ),
    ];
    let vehicles = vec![
        VehicleSnapshot::idle(VehicleId(0), grid.node_at(0, 0)),
        VehicleSnapshot::idle(VehicleId(1), grid.node_at(9, 9)),
        VehicleSnapshot::idle(VehicleId(2), grid.node_at(4, 5)),
    ];
    let window = WindowSnapshot::new(t, orders, vehicles);

    // 3. Run the FOODMATCH pipeline: batching → sparsified FoodGraph →
    //    Kuhn–Munkres matching.
    let config = DispatchConfig::default();
    let mut policy = FoodMatchPolicy::new();
    let outcome = policy.assign(&window, &engine, &config);

    println!("\nAssignments (policy = {}):", policy.name());
    for assignment in &outcome.assignments {
        let orders: Vec<String> = assignment.orders.iter().map(|o| o.to_string()).collect();
        println!("  {} <- [{}]", assignment.vehicle, orders.join(", "));
    }
    if outcome.unassigned.is_empty() {
        println!("  (no orders left unassigned)");
    } else {
        println!("  unassigned: {:?}", outcome.unassigned);
    }
    let stats = policy.last_stats();
    println!(
        "\nPipeline stats: {} batches, {} marginal-cost evaluations, {} batches matched",
        stats.batches, stats.foodgraph_evaluations, stats.matched_batches
    );
}
