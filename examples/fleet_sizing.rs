//! Fleet sizing: how many vehicles does a city actually need?
//!
//! Reproduces the question behind Fig. 7(b–e) on the City A preset: the
//! lunch peak is simulated with 20%–100% of the fleet on duty, showing the
//! knee beyond which adding vehicles no longer improves delivery times.
//!
//! ```text
//! cargo run --release -p foodmatch-examples --bin fleet_sizing
//! ```

use foodmatch_core::FoodMatchPolicy;
use foodmatch_workload::{CityId, Scenario, ScenarioOptions};

fn main() {
    println!("Fleet sizing on the City A lunch peak (FOODMATCH policy)\n");
    println!(
        "{:>10} {:>10} {:>12} {:>10} {:>12} {:>12}",
        "Vehicles%", "Vehicles", "XDT (h/day)", "O/Km", "WT (h/day)", "Rejected %"
    );
    for percent in [20, 40, 60, 80, 100] {
        let options = ScenarioOptions::lunch_peak(5).with_vehicle_fraction(percent as f64 / 100.0);
        let scenario = Scenario::generate(CityId::A, options);
        let fleet = scenario.vehicle_starts.len();
        let report = scenario.into_simulation().run(&mut FoodMatchPolicy::new());
        println!(
            "{:>9}% {:>10} {:>12.1} {:>10.2} {:>12.1} {:>11.1}%",
            percent,
            fleet,
            report.xdt_hours_per_day(),
            report.orders_per_km(),
            report.waiting_hours_per_day(),
            report.rejection_rate_pct(),
        );
    }
    println!("\nExpect XDT and rejections to flatten well before 100% — the paper's");
    println!("observation that the fleet can shrink substantially without hurting");
    println!("customer experience (Fig. 7).");
}
