//! Live dispatch: drive the online `DispatchService` from a closed-loop
//! Poisson demand source — no pre-materialized order list anywhere — with
//! the full crash-safety loop around it.
//!
//! The shape below is a production deployment: each tick, poll the demand
//! stream, submit what arrived through the write-ahead log (group-committed
//! — one fsync per accumulation window under `FlushPolicy::Window`), maybe
//! ingest a disruption, advance one accumulation window and react to the
//! typed output events. Every few windows the dispatch thread captures a
//! cheap checkpoint and hands it to a `BackgroundCheckpointer` to persist
//! off-thread; each sealed checkpoint then anchors a WAL compaction that
//! drops the log prefix the checkpoint already covers. Forty minutes in the
//! process "loses power": the in-memory dispatch state is dropped — along
//! with any unflushed record group — and the service is rebuilt from the
//! newest checkpoint plus a WAL replay, then resumes the same demand
//! stream to the end of the day.
//!
//! ```text
//! cargo run --release -p integration-tests --example live_dispatch
//! ```

use foodmatch_core::FoodMatchPolicy;
use foodmatch_events::{DisruptionCause, DisruptionEvent, EventKind, TrafficDisruption};
use foodmatch_roadnet::{Duration, TimePoint};
use foodmatch_sim::{
    load_checkpoint, replay_wal, BackgroundCheckpointer, DispatchOutput, DispatchService,
    DurableDispatch, FlushPolicy, ServiceCheckpoint, WriteAheadLog,
};
use foodmatch_workload::{CityId, OrderSource, PoissonOrderSource, Scenario, ScenarioOptions};

type DurableService = DurableDispatch<DispatchService<FoodMatchPolicy>>;

fn main() {
    // Observability: install the global recorder before any component is
    // built, so every layer (engine, service, WAL, checkpoints) acquires
    // live handles; each window below prints a dashboard line from it.
    let recorder = foodmatch_telemetry::Recorder::new();
    foodmatch_telemetry::install(recorder.clone());

    // A generated city provides the network, the restaurant directory and
    // the fleet — but NOT the demand: orders will be drawn live.
    let options = ScenarioOptions {
        seed: 1,
        start: TimePoint::from_hms(12, 0, 0),
        end: TimePoint::from_hms(13, 0, 0),
        vehicle_fraction: 1.0,
    };
    let scenario = Scenario::generate(CityId::GrubHub, options);
    let mut demand = PoissonOrderSource::new(&scenario, 2024);
    let sim = scenario.into_simulation();
    println!(
        "city: {} nodes, {} vehicles, live Poisson demand 12:00-13:00",
        sim.engine.network().node_count(),
        sim.vehicle_starts.len()
    );

    // Durability: every submit/ingest/advance is framed and checksummed
    // into the WAL before the service applies it, group-committed with one
    // fsync per accumulation window; the periodic background checkpoint
    // bounds how much of the log a recovery has to replay, and each sealed
    // checkpoint lets the WAL drop the prefix it covers.
    let dir = std::env::temp_dir().join(format!("fm-live-dispatch-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    let wal_path = dir.join("dispatch.wal");
    let ckpt_path = dir.join("dispatch.ckpt");
    let log = WriteAheadLog::create_with(&wal_path, FlushPolicy::Window).expect("create WAL");
    let mut durable = DurableDispatch::new(sim.service(FoodMatchPolicy::new()), log);
    let checkpointer = BackgroundCheckpointer::service(&ckpt_path).expect("spawn checkpointer");

    // Half an hour in it starts raining; ten minutes later the power goes.
    let rain_at = sim.start + Duration::from_mins(30.0);
    let crash_at = sim.start + Duration::from_mins(40.0);

    pump(&mut durable, &mut demand, Some(rain_at), &checkpointer);
    let _ = durable
        .ingest_event(DisruptionEvent::new(
            rain_at,
            EventKind::Traffic(TrafficDisruption::city_wide(
                DisruptionCause::Rain,
                1.5,
                sim.end + Duration::from_hours(1.0),
            )),
        ))
        .expect("log rain");
    println!("{rain_at:?}  rain surge ingested (all roads 1.5x slower)");
    pump(&mut durable, &mut demand, Some(crash_at), &checkpointer);

    // A burst of demand lands in the instant before the cut: framed into
    // the WAL's in-memory group, but the window flush that would make it
    // durable never comes.
    let last_burst = demand
        .poll(crash_at)
        .into_iter()
        .map(|order| durable.submit_order(order).expect("buffer order"))
        .count();
    println!("{crash_at:?}  {last_burst} orders buffered, not yet flushed");

    // Simulated power cut: the in-memory dispatch state is gone, and so is
    // the unflushed record group — only the acked WAL prefix and the last
    // sealed checkpoint survive on disk. (Dropping the checkpointer joins
    // its worker; a real cut could also lose an in-flight seal, in which
    // case the atomic rename leaves the previous checkpoint intact.)
    let appended = durable.appended_seq();
    let (service, mut log) = durable.into_parts();
    let lost_group = log.discard_unflushed();
    let acked = log.acked_seq();
    drop(log);
    drop(service);
    drop(checkpointer);
    println!();
    println!(
        "-- power cut near {crash_at:?}: state lost at wal seq {appended}, \
         {lost_group} buffered records gone with it (durable prefix: {acked}) --"
    );

    // Recovery: reopen the log (a torn final record would be truncated
    // here), restore the newest checkpoint, replay the compaction-aware
    // log suffix the checkpoint has not seen. The rain overlay, carried
    // orders and vehicle routes all come back bit-identical; the lost
    // group's demand is re-driven by the feed below.
    let (log, read) = WriteAheadLog::open_with(&wal_path, FlushPolicy::Window).expect("reopen WAL");
    let checkpoint: ServiceCheckpoint = load_checkpoint(&ckpt_path).expect("load checkpoint");
    let suffix = read
        .suffix_from(checkpoint.wal_seq)
        .expect("the sealed checkpoint anchors every compaction");
    let mut service =
        DispatchService::restore(sim.engine.clone(), FoodMatchPolicy::new(), &checkpoint);
    let replayed = replay_wal(&mut service, suffix).expect("replay the WAL suffix");
    println!(
        "-- recovered: checkpoint at seq {} + {} replayed records \
         ({} outputs regenerated), clock back at {:?} --",
        checkpoint.wal_seq,
        suffix.len(),
        replayed.len(),
        service.now(),
    );
    println!();

    // The demand feed never died — resume it against the rebuilt service
    // and drain the day.
    let mut durable = DurableDispatch::new(service, log);
    let checkpointer = BackgroundCheckpointer::service(&ckpt_path).expect("spawn checkpointer");
    pump(&mut durable, &mut demand, None, &checkpointer);
    checkpointer.drain().expect("final checkpoint seals");

    let report = durable.target().report();
    println!();
    println!(
        "day done: {} offered, {} delivered, {} rejected | XDT {:.2} h, {:.2} orders/km",
        report.total_orders,
        report.delivered.len(),
        report.rejected.len(),
        report.total_xdt_hours(),
        report.orders_per_km()
    );
    println!("final {}", dashboard_line());
    println!(
        "trace: {} spans buffered ({} evicted) — export with `repro … --telemetry-out`",
        recorder.trace.len(),
        recorder.trace.dropped()
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// One dashboard line from the global recorder: sustained ingest rate,
/// advance_to p99, WAL fsync p99, mean group-commit batch size, current
/// acked-lag (records buffered, not yet durable) and the memo hit rate.
fn dashboard_line() -> String {
    let Some(recorder) = foodmatch_telemetry::recorder() else {
        return "telemetry: recorder not installed".to_string();
    };
    let snap = recorder.telemetry.snapshot();
    let ms = |ns: u64| ns as f64 / 1e6;
    let (submits, submit_ns) =
        snap.histogram("service.submit_ns").map_or((0, 0), |h| (h.count, h.sum));
    let ingest_rate = if submit_ns > 0 { submits as f64 / (submit_ns as f64 / 1e9) } else { 0.0 };
    let advance_p99 = snap.histogram("service.advance_ns").and_then(|h| h.quantile(99.0));
    let fsync_p99 = snap.histogram("wal.fsync_ns").and_then(|h| h.quantile(99.0));
    let flush_mean = snap
        .histogram("wal.flush_records")
        .filter(|h| h.count > 0)
        .map_or(0.0, |h| h.sum as f64 / h.count as f64);
    let acked_lag =
        snap.gauges.iter().find(|(name, _)| name == "wal.unflushed").map_or(0, |&(_, value)| value);
    let hits = snap.counter_sum("engine.memo.hits");
    let misses = snap.counter_sum("engine.memo.misses");
    let lookups = hits + misses;
    format!(
        "telemetry: ingest {ingest_rate:.0} ord/s | advance p99 {:.2} ms | \
         fsync p99 {:.2} ms | flush batch {flush_mean:.1} | acked lag {acked_lag} | \
         memo hit {:.1}%",
        advance_p99.map_or(0.0, ms),
        fsync_p99.map_or(0.0, ms),
        if lookups > 0 { hits as f64 / lookups as f64 * 100.0 } else { 0.0 },
    )
}

/// Drives the durable service one accumulation window at a time until
/// `stop` (or completion), submitting live demand through the WAL. Every
/// five windows the dispatch thread captures a checkpoint (the only stall
/// it pays) and hands it to the background worker; whatever the worker has
/// sealed since then anchors a WAL compaction.
fn pump(
    durable: &mut DurableService,
    demand: &mut PoissonOrderSource,
    stop: Option<TimePoint>,
    checkpointer: &BackgroundCheckpointer<ServiceCheckpoint>,
) {
    let mut windows = 0usize;
    while !durable.target().is_finished() {
        let tick = durable.target().now() + durable.target().config().accumulation_window;
        if let Some(stop) = stop {
            if tick >= stop {
                return;
            }
        }

        for order in demand.poll(tick) {
            let _ = durable.submit_order(order).expect("log order");
        }

        for output in durable.advance_to(tick).expect("log advance") {
            match output {
                DispatchOutput::Assigned { order, vehicle, .. } => {
                    println!("{tick:?}  assigned  {order:?} -> {vehicle:?}");
                }
                DispatchOutput::Delivered { order, xdt, .. } => {
                    println!("{tick:?}  delivered {order:?} (XDT {:.1} min)", xdt.as_mins_f64());
                }
                DispatchOutput::Rejected { order, .. } => {
                    println!("{tick:?}  rejected  {order:?}");
                }
                DispatchOutput::WindowClosed { stats } => {
                    let snap = durable.target().snapshot();
                    println!(
                        "{tick:?}  window: {} orders x {} vehicles, {} assigned | \
                         pending {}, in flight {}{}",
                        stats.orders,
                        stats.vehicles,
                        stats.assigned,
                        snap.pending,
                        snap.in_flight,
                        if stats.disrupted { " [disrupted]" } else { "" }
                    );
                    println!("{tick:?}  {}", dashboard_line());
                }
                _ => {}
            }
        }

        windows += 1;
        if windows % 5 == 0 {
            let checkpoint = durable.checkpoint().expect("capture checkpoint");
            let seq = checkpoint.wal_seq;
            checkpointer.save(seq, checkpoint);
            println!("{tick:?}  checkpoint captured at wal seq {seq}, persisting in background");
            // Compact the log below whatever the worker has sealed by now
            // (possibly a previous capture — never past a durable seal).
            let sealed = checkpointer.sealed_seq();
            if sealed > 0 {
                durable.compact_log(sealed).expect("compact WAL below the sealed checkpoint");
                println!("{tick:?}  wal compacted below sealed seq {sealed}");
            }
        }
    }
}
