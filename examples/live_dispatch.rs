//! Live dispatch: drive the online `DispatchService` from a closed-loop
//! Poisson demand source — no pre-materialized order list anywhere.
//!
//! The loop below is the shape of a production deployment: each tick, poll
//! the demand stream, submit what arrived, maybe ingest a disruption, then
//! advance the service one accumulation window and react to the typed
//! output events. Metrics are available at any point via `snapshot()` /
//! `report()`.
//!
//! ```text
//! cargo run --release -p integration-tests --example live_dispatch
//! ```

use foodmatch_core::FoodMatchPolicy;
use foodmatch_events::{DisruptionCause, DisruptionEvent, EventKind, TrafficDisruption};
use foodmatch_roadnet::Duration;
use foodmatch_sim::DispatchOutput;
use foodmatch_workload::{CityId, OrderSource, PoissonOrderSource, Scenario, ScenarioOptions};

fn main() {
    // A generated city provides the network, the restaurant directory and
    // the fleet — but NOT the demand: orders will be drawn live.
    let options = ScenarioOptions {
        seed: 1,
        start: foodmatch_roadnet::TimePoint::from_hms(12, 0, 0),
        end: foodmatch_roadnet::TimePoint::from_hms(13, 0, 0),
        vehicle_fraction: 1.0,
    };
    let scenario = Scenario::generate(CityId::GrubHub, options);
    let mut demand = PoissonOrderSource::new(&scenario, 2024);
    let sim = scenario.into_simulation();
    println!(
        "city: {} nodes, {} vehicles, live Poisson demand 12:00-13:00",
        sim.engine.network().node_count(),
        sim.vehicle_starts.len()
    );

    let mut service = sim.service(FoodMatchPolicy::new());

    // Half an hour in, it starts raining: ingest the disruption live, the
    // same way orders arrive.
    let rain_at = sim.start + Duration::from_mins(30.0);
    let mut rain_ingested = false;

    while !service.is_finished() {
        let tick = service.now() + service.config().accumulation_window;

        for order in demand.poll(tick) {
            let _ = service.submit_order(order);
        }
        if !rain_ingested && tick >= rain_at {
            let _ = service.ingest_event(DisruptionEvent::new(
                rain_at,
                EventKind::Traffic(TrafficDisruption::city_wide(
                    DisruptionCause::Rain,
                    1.5,
                    sim.end + Duration::from_hours(1.0),
                )),
            ));
            rain_ingested = true;
            println!("{tick:?}  rain surge ingested (all roads 1.5x slower)");
        }

        for output in service.advance_to(tick) {
            match output {
                DispatchOutput::Assigned { order, vehicle, .. } => {
                    println!("{tick:?}  assigned  {order:?} -> {vehicle:?}");
                }
                DispatchOutput::Delivered { order, xdt, .. } => {
                    println!("{tick:?}  delivered {order:?} (XDT {:.1} min)", xdt.as_mins_f64());
                }
                DispatchOutput::Rejected { order, .. } => {
                    println!("{tick:?}  rejected  {order:?}");
                }
                DispatchOutput::WindowClosed { stats } => {
                    let snap = service.snapshot();
                    println!(
                        "{tick:?}  window: {} orders x {} vehicles, {} assigned | \
                         pending {}, in flight {}{}",
                        stats.orders,
                        stats.vehicles,
                        stats.assigned,
                        snap.pending,
                        snap.in_flight,
                        if stats.disrupted { " [disrupted]" } else { "" }
                    );
                }
                _ => {}
            }
        }
    }

    let report = service.report();
    println!();
    println!(
        "day done: {} offered, {} delivered, {} rejected | XDT {:.2} h, {:.2} orders/km",
        report.total_orders,
        report.delivered.len(),
        report.rejected.len(),
        report.total_xdt_hours(),
        report.orders_per_km()
    );
}
