//! Offline stand-in for [`serde`](https://crates.io/crates/serde).
//!
//! The build environment has no crates.io access, so this crate lets the
//! widespread `#[derive(Serialize, Deserialize)]` annotations across the
//! workspace compile without pulling in real serialization machinery. The
//! derive macros (re-exported from the sibling `serde_derive` stub) expand to
//! nothing, and the traits below are empty markers — nothing in the
//! workspace currently serializes, it only *derives*.
//!
//! When network access is available, point the workspace `serde` dependency
//! back at crates.io (features = ["derive"]) and delete `vendor/serde*`; no
//! call sites need to change.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
