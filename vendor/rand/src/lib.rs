//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this repository has no access to crates.io, so
//! this vendored crate implements exactly the subset of the rand 0.9 API the
//! workspace uses: [`SeedableRng::seed_from_u64`], [`rngs::StdRng`] (a
//! xoshiro256++ generator seeded via SplitMix64), [`Rng::random`],
//! [`Rng::random_range`], [`Rng::random_bool`] and
//! [`seq::IndexedRandom::choose`]. Swap this crate for the real `rand` by
//! pointing the workspace dependency back at crates.io; no call sites need to
//! change.
//!
//! The generator is deterministic: a fixed seed always yields the same
//! stream, which is what the reproduction harness relies on. The streams do
//! NOT match the real `rand::rngs::StdRng` (which is ChaCha12-based), so
//! seeds are only comparable within one build of this workspace.

use std::ops::{Range, RangeInclusive};

pub mod rngs;
pub mod seq;

/// A source of random 32/64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A random number generator seedable from a `u64` for reproducibility.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution.
    fn random<T: StandardDistribution>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from `range`, e.g. `rng.random_range(0..10)` or
    /// `rng.random_range(0.0..1.0)`.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        sample_unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable by [`Rng::random`].
pub trait StandardDistribution: Sized {
    /// Draws one value from the generator.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardDistribution for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardDistribution for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardDistribution for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardDistribution for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        sample_unit_f64(rng.next_u64())
    }
}

impl StandardDistribution for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u32() >> 8) as f32) * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges samplable by [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Maps 64 random bits to a uniform `f64` in `[0, 1)` with 53-bit precision.
fn sample_unit_f64(bits: u64) -> f64 {
    ((bits >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = sample_unit_f64(rng.next_u64());
        let value = self.start + (self.end - self.start) * unit;
        // Guard against rounding up to the excluded endpoint.
        if value >= self.end {
            self.start.max(self.end - (self.end - self.start) * f64::EPSILON)
        } else {
            value
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        let unit = sample_unit_f64(rng.next_u64());
        (start + (end - start) * unit).clamp(start, end)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = sample_unit_f64(rng.next_u64()) as f32;
        let value = self.start + (self.end - self.start) * unit;
        if value >= self.end {
            self.start
        } else {
            value
        }
    }
}

/// Samples uniformly from `[0, span)` without modulo bias (Lemire's method
/// with a rejection loop).
fn sample_below(rng: &mut (impl RngCore + ?Sized), span: u64) -> u64 {
    debug_assert!(span > 0);
    loop {
        let wide = (rng.next_u64() as u128) * (span as u128);
        let low = wide as u64;
        if low >= span || low >= span.wrapping_neg() % span {
            return (wide >> 64) as u64;
        }
    }
}

macro_rules! impl_int_ranges {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(sample_below(rng, span) as $ty)
            }
        }

        impl SampleRange<$ty> for RangeInclusive<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $ty;
                }
                start.wrapping_add(sample_below(rng, span as u64) as $ty)
            }
        }
    )*};
}

impl_int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn float_range_is_half_open_and_uniform_ish() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = rng.random_range(2.0..5.0);
            assert!((2.0..5.0).contains(&x), "{x} out of range");
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 3.5).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn int_range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut seen = [false; 6];
        for _ in 0..1_000 {
            seen[rng.random_range(0usize..6)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..100 {
            let x = rng.random_range(-3i32..=3);
            assert!((-3..=3).contains(&x));
        }
    }

    #[test]
    fn choose_picks_members() {
        use crate::seq::IndexedRandom;
        let mut rng = StdRng::seed_from_u64(5);
        let items = [10, 20, 30];
        for _ in 0..50 {
            assert!(items.contains(items.choose(&mut rng).unwrap()));
        }
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(6);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((hits as f64 / 10_000.0 - 0.25).abs() < 0.02);
    }
}
