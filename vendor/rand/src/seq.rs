//! Sequence-related sampling helpers.

use crate::{Rng, RngCore, SampleRange};

/// Random selection from index-addressable collections (slices).
pub trait IndexedRandom {
    /// The element type.
    type Output: ?Sized;

    /// Returns one uniformly chosen element, or `None` if the collection is
    /// empty.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Output>;
}

impl<T> IndexedRandom for [T] {
    type Output = T;

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[(0..self.len()).sample_single(rng)])
        }
    }
}

/// In-place random shuffling (Fisher–Yates).
pub trait SliceRandom {
    /// Shuffles the collection uniformly at random.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            self.swap(i, (0..=i).sample_single(rng));
        }
    }
}
