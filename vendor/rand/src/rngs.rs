//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// A deterministic xoshiro256++ generator, seeded via SplitMix64.
///
/// Stands in for `rand::rngs::StdRng`. The statistical quality is more than
/// sufficient for synthetic-workload generation; it is *not* a
/// cryptographically secure generator.
#[derive(Clone, Debug)]
pub struct StdRng {
    state: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(state: u64) -> Self {
        // SplitMix64 expansion, as recommended by the xoshiro authors.
        let mut sm = state;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        StdRng { state: [next(), next(), next(), next()] }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s = [s0, s1, s2, s3];
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        self.state = s;
        result
    }
}
