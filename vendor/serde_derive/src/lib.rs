//! Inert derive macros backing the offline `serde` stub.
//!
//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` expand to nothing: the
//! workspace only *annotates* types today, it never serializes them, so no
//! impls are required. See `vendor/serde/src/lib.rs` for how to restore the
//! real crate.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
