//! Offline stand-in for [Criterion](https://crates.io/crates/criterion).
//!
//! Implements the API surface `crates/bench/benches/microbench.rs` uses —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId::from_parameter`],
//! [`Bencher::iter`] and the [`criterion_group!`]/[`criterion_main!`]
//! macros — as a straightforward wall-clock runner: each benchmark is warmed
//! up, then timed over enough iterations to fill a small measurement budget,
//! and the mean/min per-iteration times are printed. There is no statistical
//! analysis, outlier detection or HTML report; restore the real crate for
//! those.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    /// Target wall-clock budget spent measuring each benchmark.
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { measurement_time: Duration::from_millis(400) }
    }
}

impl Criterion {
    /// Mirrors the real builder method; CLI arguments are ignored by this
    /// stub.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let measurement_time = self.measurement_time;
        BenchmarkGroup { _criterion: self, name: name.into(), measurement_time }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(self.measurement_time, name, f);
        self
    }
}

/// A named benchmark identifier, e.g. a group parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Builds an id from a parameter value, matching the real API.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }

    /// Builds an id from a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId(format!("{}/{parameter}", function.into()))
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    // Held to keep the group's exclusive borrow of the driver, like the real
    // API (prevents interleaving groups).
    _criterion: &'a mut Criterion,
    name: String,
    /// Group-local measurement budget, seeded from the parent driver.
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; this stub sizes runs by wall-clock
    /// budget, not sample count.
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Sets the measurement budget for benchmarks in this group only, as in
    /// the real API.
    pub fn measurement_time(&mut self, duration: Duration) -> &mut Self {
        self.measurement_time = duration;
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let label = format!("{}/{id}", self.name);
        run_one(self.measurement_time, &label, f);
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.0);
        run_one(self.measurement_time, &label, |b| f(b, input));
        self
    }

    /// Ends the group (printing is already done per-benchmark).
    pub fn finish(self) {}
}

/// Passed to benchmark closures; collects timing via [`Bencher::iter`].
#[derive(Debug, Default)]
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over this sample's iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(budget: Duration, label: &str, mut f: F) {
    // One calibration pass: a single iteration, which also serves as warm-up.
    let mut calibrate = Bencher { iterations: 1, elapsed: Duration::ZERO };
    f(&mut calibrate);
    let per_iter = calibrate.elapsed.max(Duration::from_nanos(1));
    let per_sample = (budget.as_secs_f64() / 8.0 / per_iter.as_secs_f64()).clamp(1.0, 1e7) as u64;

    let mut best = f64::INFINITY;
    let mut total_time = 0.0;
    let mut total_iters = 0u64;
    // The round cap keeps this terminating even for a closure that never
    // calls `Bencher::iter` (elapsed stays zero, so time never accumulates).
    let mut rounds = 0u32;
    while total_time < budget.as_secs_f64() && rounds < 10_000 {
        let mut bencher = Bencher { iterations: per_sample, elapsed: Duration::ZERO };
        f(&mut bencher);
        let sample = bencher.elapsed.as_secs_f64();
        best = best.min(sample / per_sample as f64);
        total_time += sample;
        total_iters += per_sample;
        rounds += 1;
    }
    let mean = total_time / total_iters as f64;
    println!(
        "{label:<44} mean {:>12}  min {:>12}  ({total_iters} iters)",
        fmt_secs(mean),
        fmt_secs(best)
    );
}

fn fmt_secs(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Re-export point so `use criterion::black_box` keeps working.
pub use std::hint::black_box;

/// Declares a set of benchmark functions as a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group in turn.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_benchmarks_and_groups() {
        let mut c = Criterion { measurement_time: Duration::from_millis(5) };
        let mut calls = 0u64;
        c.bench_function("noop", |b| b.iter(|| calls += 1));
        assert!(calls > 0);

        let mut group = c.benchmark_group("group");
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::from_parameter(3), &3u64, |b, &n| b.iter(|| n * 2));
        group.finish();
    }
}
