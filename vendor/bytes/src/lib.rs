//! Offline stand-in for [`bytes`](https://crates.io/crates/bytes).
//!
//! Implements the subset used by the road-network snapshot codec
//! (`foodmatch-roadnet::io`): [`Buf`] over `&[u8]` with big-endian `get_*`
//! accessors, [`BufMut`] with big-endian `put_*` writers, and the
//! [`Bytes`]/[`BytesMut`] pair backed by a plain `Vec<u8>` (no shared
//! refcounted storage — `freeze` simply transfers ownership). Swap back to
//! the real crate by repointing the workspace dependency; the byte format is
//! identical.

use std::ops::{Deref, DerefMut};

/// Read access to a buffer of bytes, consuming from the front.
pub trait Buf {
    /// Bytes remaining to be read.
    fn remaining(&self) -> usize;

    /// Consumes and returns the next byte.
    fn get_u8(&mut self) -> u8;

    /// Consumes and returns a big-endian `u16`.
    fn get_u16(&mut self) -> u16;

    /// Consumes and returns a big-endian `u32`.
    fn get_u32(&mut self) -> u32;

    /// Consumes and returns a big-endian `u64`.
    fn get_u64(&mut self) -> u64;

    /// Consumes and returns a big-endian IEEE-754 `f64`.
    fn get_f64(&mut self) -> f64 {
        f64::from_bits(self.get_u64())
    }
}

/// Takes the first `N` bytes off the front of the slice.
///
/// # Panics
/// Panics if fewer than `N` bytes remain, matching the real crate's
/// contract (callers check `remaining()` first).
fn take<const N: usize>(data: &mut &[u8]) -> [u8; N] {
    let (head, tail) = data.split_at(N);
    *data = tail;
    head.try_into().expect("split_at returned N bytes")
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn get_u8(&mut self) -> u8 {
        take::<1>(self)[0]
    }

    fn get_u16(&mut self) -> u16 {
        u16::from_be_bytes(take::<2>(self))
    }

    fn get_u32(&mut self) -> u32 {
        u32::from_be_bytes(take::<4>(self))
    }

    fn get_u64(&mut self) -> u64 {
        u64::from_be_bytes(take::<8>(self))
    }
}

/// Write access to a growable byte buffer.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, value: u8) {
        self.put_slice(&[value]);
    }

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, value: u16) {
        self.put_slice(&value.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, value: u32) {
        self.put_slice(&value.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, value: u64) {
        self.put_slice(&value.to_be_bytes());
    }

    /// Appends a big-endian IEEE-754 `f64`.
    fn put_f64(&mut self, value: f64) {
        self.put_u64(value.to_bits());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// An immutable owned byte buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Bytes(Vec<u8>);

impl Bytes {
    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.clone()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(value: Vec<u8>) -> Self {
        Bytes(value)
    }
}

/// A mutable, growable byte buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// Creates an empty buffer with at least `capacity` bytes reserved.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut(Vec::with_capacity(capacity))
    }

    /// Converts the buffer into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes(self.0)
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_u8(7);
        buf.put_u16(0xBEEF);
        buf.put_u32(0xDEAD_BEEF);
        buf.put_u64(0x0123_4567_89AB_CDEF);
        buf.put_f64(-12.75);
        let frozen = buf.freeze();
        let mut data: &[u8] = &frozen;
        assert_eq!(data.remaining(), 1 + 2 + 4 + 8 + 8);
        assert_eq!(data.get_u8(), 7);
        assert_eq!(data.get_u16(), 0xBEEF);
        assert_eq!(data.get_u32(), 0xDEAD_BEEF);
        assert_eq!(data.get_u64(), 0x0123_4567_89AB_CDEF);
        assert_eq!(data.get_f64(), -12.75);
        assert_eq!(data.remaining(), 0);
    }

    #[test]
    fn big_endian_layout_matches_real_bytes_crate() {
        let mut buf = BytesMut::with_capacity(4);
        buf.put_u32(0x0102_0304);
        assert_eq!(&buf[..], &[1, 2, 3, 4]);
    }
}
