//! Offline stand-in for [`parking_lot`](https://crates.io/crates/parking_lot).
//!
//! Wraps `std::sync` locks behind parking_lot's non-poisoning API
//! (`lock()`/`read()`/`write()` return guards directly). A poisoned std lock
//! is recovered rather than propagated, matching parking_lot's semantics of
//! never poisoning. Performance is whatever `std::sync` provides — fine for
//! this workspace; swap the workspace dependency back to crates.io for the
//! real futex-based implementation.

use std::sync::PoisonError;

/// A mutual-exclusion lock with a non-poisoning `lock()`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock with non-poisoning `read()`/`write()`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// RAII guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;

/// RAII guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_guards_exclusive_access() {
        let m = Mutex::new(0usize);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..1_000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 4_000);
    }

    #[test]
    fn rwlock_allows_concurrent_reads() {
        let l = RwLock::new(5);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 10);
        drop((a, b));
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
