//! Point-in-time snapshots and their export formats.
//!
//! A [`TelemetrySnapshot`] is a consistent-enough copy of every registered
//! metric (each cell is read atomically; the set is read under the
//! registry lock). It exports as:
//!
//! * hand-rolled JSON ([`TelemetrySnapshot::to_json`]) — the
//!   `--telemetry-out` artifact, diffable across commits;
//! * Prometheus text exposition ([`TelemetrySnapshot::to_prometheus`]) —
//!   cumulative `_bucket{le=...}` series plus `_sum`/`_count`.
//!
//! [`HistogramSnapshot`] carries the analysis methods: nearest-rank
//! quantiles (with explicit bucket bounds for error bracketing) and an
//! associative, order-independent [`HistogramSnapshot::merge`] for
//! cross-shard aggregation.

use crate::metrics::{bucket_bounds, BUCKETS};

/// Immutable copy of one histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// `(bucket_index, count)` for every non-empty bucket, ascending.
    pub buckets: Vec<(usize, u64)>,
    /// Total samples.
    pub count: u64,
    /// Sum of all samples (wrapping beyond `u64`).
    pub sum: u64,
    /// Smallest sample, `u64::MAX` when empty.
    pub min: u64,
    /// Largest sample, 0 when empty.
    pub max: u64,
}

impl HistogramSnapshot {
    /// An empty distribution — the identity for [`merge`](Self::merge).
    pub fn empty() -> Self {
        HistogramSnapshot { buckets: Vec::new(), count: 0, sum: 0, min: u64::MAX, max: 0 }
    }

    /// Mean sample value, `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Nearest-rank quantile estimate (`q` in `[0, 100]`): the upper bound
    /// of the bucket holding the rank-`ceil(q/100·n)` sample, matching the
    /// bench harness percentile convention. `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        self.quantile_bounds(q).map(|(_, upper)| upper.min(self.max))
    }

    /// Inclusive `[lower, upper]` value range of the bucket holding the
    /// nearest-rank quantile; the exact sorted-sample percentile is
    /// guaranteed to lie inside it. `None` when empty.
    pub fn quantile_bounds(&self, q: f64) -> Option<(u64, u64)> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let rank = rank.min(self.count);
        let mut seen = 0u64;
        for &(index, count) in &self.buckets {
            seen += count;
            if seen >= rank {
                return Some(bucket_bounds(index));
            }
        }
        // Unreachable when bucket counts sum to `count`; degrade to max.
        Some((self.max, self.max))
    }

    /// Combines two distributions. Associative and order-independent:
    /// merging per-shard snapshots in any grouping yields the same result.
    pub fn merge(&self, other: &HistogramSnapshot) -> HistogramSnapshot {
        let mut dense = [0u64; BUCKETS];
        for &(index, count) in self.buckets.iter().chain(&other.buckets) {
            dense[index] += count;
        }
        let buckets =
            dense.iter().enumerate().filter(|(_, &c)| c > 0).map(|(i, &c)| (i, c)).collect();
        HistogramSnapshot {
            buckets,
            count: self.count + other.count,
            sum: self.sum.wrapping_add(other.sum),
            min: self.min.min(other.min),
            max: self.max.max(other.max),
        }
    }
}

/// Point-in-time copy of every metric in a [`crate::Telemetry`] registry,
/// name-sorted.
#[derive(Debug, Clone, Default)]
pub struct TelemetrySnapshot {
    pub counters: Vec<(String, u64)>,
    pub gauges: Vec<(String, i64)>,
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl TelemetrySnapshot {
    /// Value of one counter, `None` when never registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Sum of every counter whose name starts with `prefix` — e.g.
    /// `counter_sum("engine.memo.hits")` totals the per-shard series.
    pub fn counter_sum(&self, prefix: &str) -> u64 {
        self.counters.iter().filter(|(n, _)| n.starts_with(prefix)).map(|&(_, v)| v).sum()
    }

    /// One histogram by exact name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|(n, _)| n == name).map(|(_, h)| h)
    }

    /// Merge of every histogram whose name starts with `prefix`.
    pub fn histogram_sum(&self, prefix: &str) -> HistogramSnapshot {
        self.histograms
            .iter()
            .filter(|(n, _)| n.starts_with(prefix))
            .fold(HistogramSnapshot::empty(), |acc, (_, h)| acc.merge(h))
    }

    /// Hand-rolled JSON (the vendored serde is an offline stub). Stable,
    /// name-sorted layout; histogram buckets are `[lower, upper, count]`
    /// triples so the file is self-describing.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str(&format!("    \"{name}\": {value}"));
        }
        out.push_str("\n  },\n  \"gauges\": {");
        for (i, (name, value)) in self.gauges.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str(&format!("    \"{name}\": {value}"));
        }
        out.push_str("\n  },\n  \"histograms\": {");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str(&format!(
                "    \"{name}\": {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \
                 \"p50\": {}, \"p90\": {}, \"p99\": {}, \"buckets\": [",
                h.count,
                h.sum,
                if h.count == 0 { 0 } else { h.min },
                h.max,
                h.quantile(50.0).unwrap_or(0),
                h.quantile(90.0).unwrap_or(0),
                h.quantile(99.0).unwrap_or(0),
            ));
            for (j, &(index, count)) in h.buckets.iter().enumerate() {
                let (lower, upper) = bucket_bounds(index);
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("[{lower}, {upper}, {count}]"));
            }
            out.push_str("]}");
        }
        out.push_str("\n  }\n}\n");
        out
    }

    /// Prometheus text exposition. Metric names are sanitised
    /// (`.`/`-` → `_`); histograms emit cumulative `_bucket{le=...}`
    /// series over non-empty buckets plus `+Inf`, `_sum` and `_count`.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            let name = sanitize(name);
            out.push_str(&format!("# TYPE {name} counter\n{name} {value}\n"));
        }
        for (name, value) in &self.gauges {
            let name = sanitize(name);
            out.push_str(&format!("# TYPE {name} gauge\n{name} {value}\n"));
        }
        for (name, h) in &self.histograms {
            let name = sanitize(name);
            out.push_str(&format!("# TYPE {name} histogram\n"));
            let mut cumulative = 0u64;
            for &(index, count) in &h.buckets {
                cumulative += count;
                let (_, upper) = bucket_bounds(index);
                out.push_str(&format!("{name}_bucket{{le=\"{upper}\"}} {cumulative}\n"));
            }
            out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", h.count));
            out.push_str(&format!("{name}_sum {}\n", h.sum));
            out.push_str(&format!("{name}_count {}\n", h.count));
        }
        out
    }
}

/// Maps a dotted metric name onto the Prometheus grammar.
fn sanitize(name: &str) -> String {
    name.chars().map(|c| if c.is_ascii_alphanumeric() || c == ':' { c } else { '_' }).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::bucket_index;

    fn snapshot_of(samples: &[u64]) -> HistogramSnapshot {
        let mut dense = [0u64; BUCKETS];
        for &s in samples {
            dense[bucket_index(s)] += 1;
        }
        HistogramSnapshot {
            buckets: dense
                .iter()
                .enumerate()
                .filter(|(_, &c)| c > 0)
                .map(|(i, &c)| (i, c))
                .collect(),
            count: samples.len() as u64,
            sum: samples.iter().sum(),
            min: samples.iter().copied().min().unwrap_or(u64::MAX),
            max: samples.iter().copied().max().unwrap_or(0),
        }
    }

    #[test]
    fn quantile_bounds_bracket_exact_percentiles() {
        let samples: Vec<u64> = (1..=1000).map(|i| i * 37).collect();
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let snap = snapshot_of(&samples);
        for q in [0.0, 10.0, 50.0, 90.0, 99.0, 100.0] {
            let rank = ((q / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize;
            let exact = sorted[rank.min(sorted.len()) - 1];
            let (lower, upper) = snap.quantile_bounds(q).unwrap();
            assert!(
                lower <= exact && exact <= upper,
                "q{q}: exact {exact} outside [{lower}, {upper}]"
            );
        }
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        let a = snapshot_of(&[1, 5, 9000]);
        let b = snapshot_of(&[2, 2, 700]);
        let c = snapshot_of(&[1_000_000]);
        assert_eq!(a.merge(&b), b.merge(&a));
        assert_eq!(a.merge(&b).merge(&c), a.merge(&b.merge(&c)));
        assert_eq!(a.merge(&HistogramSnapshot::empty()), a);
    }

    #[test]
    fn prometheus_exposition_is_cumulative() {
        let snap = TelemetrySnapshot {
            counters: vec![("engine.queries".into(), 7)],
            gauges: vec![("service.pending".into(), -2)],
            histograms: vec![("wal.fsync_ns".into(), snapshot_of(&[3, 3, 90]))],
        };
        let text = snap.to_prometheus();
        assert!(text.contains("engine_queries 7"));
        assert!(text.contains("service_pending -2"));
        assert!(text.contains("wal_fsync_ns_bucket{le=\"3\"} 2"));
        assert!(text.contains("wal_fsync_ns_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("wal_fsync_ns_count 3"));
    }

    #[test]
    fn json_is_balanced() {
        let snap = TelemetrySnapshot {
            counters: vec![("a".into(), 1)],
            gauges: vec![],
            histograms: vec![("h".into(), snapshot_of(&[1, 2, 3]))],
        };
        let json = snap.to_json();
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.contains("\"p99\""));
    }
}
