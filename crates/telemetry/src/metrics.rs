//! Metric cells and the handles that feed them.
//!
//! Three instrument kinds, all lock-free on the record path:
//!
//! * [`Counter`] — a monotonically increasing `u64`.
//! * [`Gauge`] — a signed value that can move both ways.
//! * [`Histogram`] — a log-bucketed fixed-bin distribution of `u64`
//!   samples (typically nanoseconds), cheap enough for per-call latency
//!   tracking and mergeable across shards.
//!
//! Every handle is an `Option<Arc<cell>>`: a handle acquired while no
//! recorder is installed (or built with `noop()`) carries `None` and every
//! operation on it is a branch on a local option — no atomics, no clock
//! reads. This is what keeps disabled overhead near zero: components cache
//! handles at construction time and the hot path never consults any global
//! state.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Number of low-order value bits resolved exactly within each octave.
/// Eight sub-buckets per octave bound the relative bucket width at 12.5%.
const SUB_BITS: u32 = 3;
/// Sub-buckets per octave (`2^SUB_BITS`).
const SUBS: u64 = 1 << SUB_BITS;
/// Values below this are binned exactly (one value per bucket).
const EXACT: u64 = SUBS * 2;
/// Total fixed bin count covering the full `u64` range:
/// 16 exact bins + 60 octaves × 8 sub-buckets.
pub const BUCKETS: usize = (EXACT + (63 - SUB_BITS as u64) * SUBS) as usize;

/// Maps a sample to its bucket index. Exact below [`EXACT`]; above, the
/// top `SUB_BITS + 1` significant bits select the bin.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    if value < EXACT {
        value as usize
    } else {
        let msb = 63 - value.leading_zeros();
        let shift = msb - SUB_BITS;
        let sub = (value >> shift) & (SUBS - 1);
        (EXACT + (msb as u64 - SUB_BITS as u64 - 1) * SUBS + sub) as usize
    }
}

/// Inclusive `[lower, upper]` value range covered by bucket `index`.
pub fn bucket_bounds(index: usize) -> (u64, u64) {
    let index = index as u64;
    if index < EXACT {
        (index, index)
    } else {
        let oct = (index - EXACT) / SUBS;
        let sub = (index - EXACT) % SUBS;
        let shift = (oct + 1) as u32;
        let lower = (SUBS + sub) << shift;
        (lower, lower + ((1u64 << shift) - 1))
    }
}

/// Shared counter cell.
#[derive(Debug, Default)]
pub(crate) struct CounterCell(pub(crate) AtomicU64);

/// Shared gauge cell.
#[derive(Debug, Default)]
pub(crate) struct GaugeCell(pub(crate) AtomicI64);

/// Shared histogram cell: fixed log-linear bins plus running aggregates.
#[derive(Debug)]
pub(crate) struct HistogramCell {
    pub(crate) buckets: Box<[AtomicU64]>,
    pub(crate) count: AtomicU64,
    pub(crate) sum: AtomicU64,
    pub(crate) min: AtomicU64,
    pub(crate) max: AtomicU64,
}

impl Default for HistogramCell {
    fn default() -> Self {
        let buckets = (0..BUCKETS).map(|_| AtomicU64::new(0)).collect();
        HistogramCell {
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

impl HistogramCell {
    pub(crate) fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }
}

/// Monotonic counter handle; `noop()` handles drop every update.
#[derive(Debug, Clone, Default)]
pub struct Counter(pub(crate) Option<Arc<CounterCell>>);

impl Counter {
    /// A handle that ignores every update.
    pub const fn noop() -> Self {
        Counter(None)
    }

    /// True when updates reach a live registry.
    pub fn is_live(&self) -> bool {
        self.0.is_some()
    }

    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.0 {
            cell.0.fetch_add(n, Ordering::Relaxed);
        }
    }
}

/// Signed gauge handle; `noop()` handles drop every update.
#[derive(Debug, Clone, Default)]
pub struct Gauge(pub(crate) Option<Arc<GaugeCell>>);

impl Gauge {
    /// A handle that ignores every update.
    pub const fn noop() -> Self {
        Gauge(None)
    }

    /// True when updates reach a live registry.
    pub fn is_live(&self) -> bool {
        self.0.is_some()
    }

    #[inline]
    pub fn set(&self, value: i64) {
        if let Some(cell) = &self.0 {
            cell.0.store(value, Ordering::Relaxed);
        }
    }

    #[inline]
    pub fn add(&self, delta: i64) {
        if let Some(cell) = &self.0 {
            cell.0.fetch_add(delta, Ordering::Relaxed);
        }
    }
}

/// Histogram handle; `noop()` handles drop every sample and hand out
/// timers that never read the clock.
#[derive(Debug, Clone, Default)]
pub struct Histogram(pub(crate) Option<Arc<HistogramCell>>);

impl Histogram {
    /// A handle that ignores every sample.
    pub const fn noop() -> Self {
        Histogram(None)
    }

    /// True when samples reach a live registry.
    pub fn is_live(&self) -> bool {
        self.0.is_some()
    }

    #[inline]
    pub fn record(&self, value: u64) {
        if let Some(cell) = &self.0 {
            cell.record(value);
        }
    }

    /// Starts a scoped timer that records elapsed nanoseconds on drop.
    /// On a noop handle the clock is never read.
    #[inline]
    pub fn timer(&self) -> HistogramTimer {
        HistogramTimer(self.0.as_ref().map(|cell| (Arc::clone(cell), Instant::now())))
    }
}

/// Guard returned by [`Histogram::timer`]; records on drop.
#[derive(Debug)]
#[must_use = "the timer records when dropped; binding it to _ ends it immediately"]
pub struct HistogramTimer(Option<(Arc<HistogramCell>, Instant)>);

impl Drop for HistogramTimer {
    fn drop(&mut self) {
        if let Some((cell, started)) = self.0.take() {
            let nanos = started.elapsed().as_nanos();
            cell.record(u64::try_from(nanos).unwrap_or(u64::MAX));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_exact_below_threshold() {
        for v in 0..EXACT {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_bounds(v as usize), (v, v));
        }
    }

    #[test]
    fn bounds_contain_their_values_and_tile_the_range() {
        // Every bucket's bounds round-trip through bucket_index, and
        // consecutive buckets tile u64 with no gap or overlap.
        let mut expected_lower = 0u64;
        for index in 0..BUCKETS {
            let (lower, upper) = bucket_bounds(index);
            assert_eq!(lower, expected_lower, "gap before bucket {index}");
            assert!(lower <= upper);
            assert_eq!(bucket_index(lower), index);
            assert_eq!(bucket_index(upper), index);
            expected_lower = upper.wrapping_add(1);
        }
        assert_eq!(expected_lower, 0, "last bucket must end at u64::MAX");
    }

    #[test]
    fn relative_bucket_width_is_bounded() {
        for index in EXACT as usize..BUCKETS {
            let (lower, upper) = bucket_bounds(index);
            let width = upper - lower + 1;
            assert!(
                width as f64 / lower as f64 <= 0.125 + 1e-9,
                "bucket {index} [{lower}, {upper}] wider than 12.5%"
            );
        }
    }

    #[test]
    fn noop_handles_ignore_everything() {
        let counter = Counter::noop();
        counter.inc();
        counter.add(100);
        assert!(!counter.is_live());
        let gauge = Gauge::noop();
        gauge.set(-5);
        gauge.add(3);
        assert!(!gauge.is_live());
        let histogram = Histogram::noop();
        histogram.record(42);
        drop(histogram.timer());
        assert!(!histogram.is_live());
    }
}
