//! Ring-buffered span trace, serialisable to Chrome trace-event JSON.
//!
//! Spans are scoped guards: creating one stamps a start time, dropping it
//! pushes a completed event (`ph: "X"`) into a bounded ring buffer. When
//! the buffer is full the oldest spans are evicted — a long run keeps its
//! most recent window of activity, which is what a profiling session
//! wants. The buffer serialises to the Chrome trace-event format that
//! `chrome://tracing` and [Perfetto](https://ui.perfetto.dev) load
//! directly.

use std::borrow::Cow;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Default ring capacity: enough for every window-level span of a full
/// metro day with room for per-append WAL spans.
const DEFAULT_CAPACITY: usize = 65_536;

/// One completed span.
#[derive(Debug, Clone)]
pub struct SpanEvent {
    /// Category (`engine`, `solver`, `shard`, `service`, `wal`,
    /// `checkpoint`); Chrome's `cat` field, filterable in Perfetto.
    pub cat: &'static str,
    /// Span name; static for hot paths, owned when built via `span_dyn`.
    pub name: Cow<'static, str>,
    /// Start, microseconds since the trace epoch.
    pub start_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
    /// Stable per-thread id (1-based, in order of first span).
    pub tid: u64,
}

#[derive(Debug)]
struct TraceInner {
    epoch: Instant,
    events: Mutex<VecDeque<SpanEvent>>,
    capacity: usize,
    dropped: AtomicU64,
}

/// Shared, clonable handle to one span ring buffer.
#[derive(Debug, Clone)]
pub struct SpanTrace {
    inner: Arc<TraceInner>,
}

impl Default for SpanTrace {
    fn default() -> Self {
        SpanTrace::with_capacity(DEFAULT_CAPACITY)
    }
}

/// Hands out small stable thread ids for trace rows.
fn thread_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static TID: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    TID.with(|tid| *tid)
}

impl SpanTrace {
    /// A trace that keeps at most `capacity` completed spans.
    pub fn with_capacity(capacity: usize) -> Self {
        SpanTrace {
            inner: Arc::new(TraceInner {
                epoch: Instant::now(),
                events: Mutex::new(VecDeque::with_capacity(capacity.min(4096))),
                capacity: capacity.max(1),
                dropped: AtomicU64::new(0),
            }),
        }
    }

    /// Opens a span with a static name; the guard records on drop.
    pub fn span(&self, cat: &'static str, name: &'static str) -> SpanGuard {
        self.open(cat, Cow::Borrowed(name))
    }

    /// Opens a span with a computed name.
    pub fn span_dyn(&self, cat: &'static str, name: String) -> SpanGuard {
        self.open(cat, Cow::Owned(name))
    }

    fn open(&self, cat: &'static str, name: Cow<'static, str>) -> SpanGuard {
        SpanGuard(Some(OpenSpan { trace: self.clone(), cat, name, started: Instant::now() }))
    }

    fn push(&self, event: SpanEvent) {
        let mut events = self.inner.events.lock().expect("span ring poisoned");
        if events.len() == self.inner.capacity {
            events.pop_front();
            self.inner.dropped.fetch_add(1, Ordering::Relaxed);
        }
        events.push_back(event);
    }

    /// Number of spans currently buffered.
    pub fn len(&self) -> usize {
        self.inner.events.lock().expect("span ring poisoned").len()
    }

    /// True when no span has been recorded (or all were evicted).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Spans evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.inner.dropped.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of the buffered spans, oldest first.
    pub fn events(&self) -> Vec<SpanEvent> {
        self.inner.events.lock().expect("span ring poisoned").iter().cloned().collect()
    }

    /// Serialises the buffer as Chrome trace-event JSON (`ph: "X"`
    /// complete events), loadable in `chrome://tracing` or Perfetto.
    pub fn chrome_trace_json(&self) -> String {
        let events = self.events();
        let mut out = String::with_capacity(64 + events.len() * 96);
        out.push_str("{\"traceEvents\":[");
        for (i, event) in events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                 \"pid\":1,\"tid\":{}}}",
                escape(&event.name),
                escape(event.cat),
                event.start_us,
                event.dur_us,
                event.tid
            ));
        }
        out.push_str("],\"displayTimeUnit\":\"ms\"}\n");
        out
    }
}

/// Minimal JSON string escape; span names are plain identifiers but a
/// malformed byte must never corrupt the trace file.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[derive(Debug)]
struct OpenSpan {
    trace: SpanTrace,
    cat: &'static str,
    name: Cow<'static, str>,
    started: Instant,
}

/// Scoped span guard; pushes a completed event on drop. The inactive
/// variant (from [`crate::span`] with no recorder installed) never reads
/// the clock.
#[derive(Debug)]
#[must_use = "the span closes when dropped; binding it to _ closes it immediately"]
pub struct SpanGuard(Option<OpenSpan>);

impl SpanGuard {
    /// A guard that records nothing.
    pub const fn inactive() -> Self {
        SpanGuard(None)
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(open) = self.0.take() {
            let start_us = open
                .started
                .saturating_duration_since(open.trace.inner.epoch)
                .as_micros()
                .min(u64::MAX as u128) as u64;
            let dur_us = open.started.elapsed().as_micros().min(u64::MAX as u128) as u64;
            let event =
                SpanEvent { cat: open.cat, name: open.name, start_us, dur_us, tid: thread_id() };
            open.trace.push(event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_record_on_drop_and_evict_oldest() {
        let trace = SpanTrace::with_capacity(2);
        drop(trace.span("test", "a"));
        drop(trace.span("test", "b"));
        drop(trace.span_dyn("test", "c".to_string()));
        assert_eq!(trace.len(), 2);
        assert_eq!(trace.dropped(), 1);
        let names: Vec<_> = trace.events().iter().map(|e| e.name.to_string()).collect();
        assert_eq!(names, ["b", "c"]);
    }

    #[test]
    fn chrome_trace_json_is_balanced_and_escaped() {
        let trace = SpanTrace::default();
        drop(trace.span_dyn("cat\"x", "na\\me\n".to_string()));
        let json = trace.chrome_trace_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(json.contains("\\\"x"));
        assert!(json.contains("na\\\\me\\u000a"));
        assert!(json.contains("\"ph\":\"X\""));
    }

    #[test]
    fn inactive_guard_records_nothing() {
        let trace = SpanTrace::default();
        drop(SpanGuard::inactive());
        assert!(trace.is_empty());
    }
}
