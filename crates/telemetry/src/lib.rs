//! # foodmatch-telemetry
//!
//! Zero-dependency observability substrate for the foodmatch stack:
//! named counters, gauges, and log-bucketed fixed-bin histograms in a
//! [`Telemetry`] registry, plus a ring-buffered span trace
//! ([`SpanTrace`]) that exports Chrome trace-event JSON. A [`Recorder`]
//! bundles one of each and can be installed globally; instrumented
//! components acquire handles at construction time and the handles are
//! inert (`None` inside) when no recorder is installed, so the disabled
//! cost is a branch on a local option — no atomics, no clock reads, no
//! allocation.
//!
//! Telemetry is **strictly observational**: recording a metric or span
//! never changes dispatch behaviour. The golden equivalence suites run
//! bit-identical with a live recorder installed
//! (`tests/telemetry_neutrality.rs` pins this).
//!
//! ## Usage
//!
//! ```
//! use foodmatch_telemetry as telemetry;
//!
//! let recorder = telemetry::Recorder::new();
//! telemetry::install(recorder.clone());
//!
//! // Components acquire handles once, then record wait-free.
//! let queries = telemetry::counter("engine.queries");
//! let latency = telemetry::histogram("service.advance_ns");
//! queries.inc();
//! latency.record(12_345);
//! {
//!     let _span = telemetry::span("service", "window");
//!     // ... timed work ...
//! }
//!
//! let snapshot = recorder.telemetry.snapshot();
//! assert_eq!(snapshot.counter("engine.queries"), Some(1));
//! println!("{}", snapshot.to_prometheus());
//! std::fs::write("/tmp/trace.json", recorder.trace.chrome_trace_json()).unwrap();
//! telemetry::uninstall();
//! ```
//!
//! ## Exports
//!
//! * [`TelemetrySnapshot::to_json`] — diffable JSON snapshot
//!   (`repro … --telemetry-out FILE`).
//! * [`TelemetrySnapshot::to_prometheus`] — Prometheus text exposition.
//! * [`SpanTrace::chrome_trace_json`] — Chrome trace-event JSON,
//!   loadable in `chrome://tracing` or Perfetto.

mod export;
mod metrics;
mod trace;

pub use export::{HistogramSnapshot, TelemetrySnapshot};
pub use metrics::{bucket_bounds, bucket_index, Counter, Gauge, Histogram, HistogramTimer};
pub use trace::{SpanEvent, SpanGuard, SpanTrace};

use metrics::{CounterCell, GaugeCell, HistogramCell};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

/// Registry of named metrics. Cloning shares the registry; handles stay
/// valid (and visible in snapshots) for the registry's lifetime.
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    inner: Arc<Registry>,
}

#[derive(Debug, Default)]
struct Registry {
    counters: Mutex<BTreeMap<String, Arc<CounterCell>>>,
    gauges: Mutex<BTreeMap<String, Arc<GaugeCell>>>,
    histograms: Mutex<BTreeMap<String, Arc<HistogramCell>>>,
}

impl Telemetry {
    pub fn new() -> Self {
        Telemetry::default()
    }

    /// Live counter handle, registering `name` on first use.
    pub fn counter(&self, name: &str) -> Counter {
        let mut counters = self.inner.counters.lock().expect("registry poisoned");
        Counter(Some(Arc::clone(counters.entry(name.to_string()).or_default())))
    }

    /// Live gauge handle, registering `name` on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut gauges = self.inner.gauges.lock().expect("registry poisoned");
        Gauge(Some(Arc::clone(gauges.entry(name.to_string()).or_default())))
    }

    /// Live histogram handle, registering `name` on first use.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut histograms = self.inner.histograms.lock().expect("registry poisoned");
        Histogram(Some(Arc::clone(histograms.entry(name.to_string()).or_default())))
    }

    /// Point-in-time copy of every registered metric, name-sorted.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let counters = self
            .inner
            .counters
            .lock()
            .expect("registry poisoned")
            .iter()
            .map(|(name, cell)| (name.clone(), cell.0.load(Ordering::Relaxed)))
            .collect();
        let gauges = self
            .inner
            .gauges
            .lock()
            .expect("registry poisoned")
            .iter()
            .map(|(name, cell)| (name.clone(), cell.0.load(Ordering::Relaxed)))
            .collect();
        let histograms = self
            .inner
            .histograms
            .lock()
            .expect("registry poisoned")
            .iter()
            .map(|(name, cell)| {
                let buckets = cell
                    .buckets
                    .iter()
                    .enumerate()
                    .filter_map(|(i, b)| {
                        let count = b.load(Ordering::Relaxed);
                        (count > 0).then_some((i, count))
                    })
                    .collect();
                let snap = HistogramSnapshot {
                    buckets,
                    count: cell.count.load(Ordering::Relaxed),
                    sum: cell.sum.load(Ordering::Relaxed),
                    min: cell.min.load(Ordering::Relaxed),
                    max: cell.max.load(Ordering::Relaxed),
                };
                (name.clone(), snap)
            })
            .collect();
        TelemetrySnapshot { counters, gauges, histograms }
    }
}

/// One metric registry plus one span trace — the unit that installs
/// globally. Cloning shares both.
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    pub telemetry: Telemetry,
    pub trace: SpanTrace,
}

impl Recorder {
    pub fn new() -> Self {
        Recorder::default()
    }
}

/// Fast gate consulted by [`span`]/[`span_dyn`] and handle acquisition.
static ACTIVE: AtomicBool = AtomicBool::new(false);
static GLOBAL: Mutex<Option<Recorder>> = Mutex::new(None);

/// Installs `recorder` as the process-global sink; replaces any previous
/// one. Components constructed afterwards acquire live handles.
pub fn install(recorder: Recorder) {
    let mut global = GLOBAL.lock().expect("global recorder poisoned");
    *global = Some(recorder);
    ACTIVE.store(true, Ordering::SeqCst);
}

/// Removes and returns the global recorder; handles already acquired keep
/// recording into it, newly acquired ones are inert.
pub fn uninstall() -> Option<Recorder> {
    let mut global = GLOBAL.lock().expect("global recorder poisoned");
    ACTIVE.store(false, Ordering::SeqCst);
    global.take()
}

/// True while a recorder is installed.
#[inline]
pub fn active() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

/// Clone of the installed recorder, if any.
pub fn recorder() -> Option<Recorder> {
    GLOBAL.lock().expect("global recorder poisoned").clone()
}

/// Counter handle from the installed recorder; inert when none is.
pub fn counter(name: &str) -> Counter {
    match recorder() {
        Some(r) => r.telemetry.counter(name),
        None => Counter::noop(),
    }
}

/// Gauge handle from the installed recorder; inert when none is.
pub fn gauge(name: &str) -> Gauge {
    match recorder() {
        Some(r) => r.telemetry.gauge(name),
        None => Gauge::noop(),
    }
}

/// Histogram handle from the installed recorder; inert when none is.
pub fn histogram(name: &str) -> Histogram {
    match recorder() {
        Some(r) => r.telemetry.histogram(name),
        None => Histogram::noop(),
    }
}

/// Opens a span on the installed recorder's trace. With no recorder the
/// guard is inert and the clock is never read.
#[inline]
pub fn span(cat: &'static str, name: &'static str) -> SpanGuard {
    if !active() {
        return SpanGuard::inactive();
    }
    match recorder() {
        Some(r) => r.trace.span(cat, name),
        None => SpanGuard::inactive(),
    }
}

/// Opens a span with a lazily computed name; the closure (and its
/// formatting cost) only runs when a recorder is installed.
#[inline]
pub fn span_dyn(cat: &'static str, name: impl FnOnce() -> String) -> SpanGuard {
    if !active() {
        return SpanGuard::inactive();
    }
    match recorder() {
        Some(r) => r.trace.span_dyn(cat, name()),
        None => SpanGuard::inactive(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The global recorder is process-wide state; this single test owns
    // every install/uninstall interaction so parallel test threads never
    // race it (module fns are otherwise exercised through the registry).
    #[test]
    fn global_install_cycle() {
        assert!(!active());
        assert!(!counter("x").is_live());
        assert!(!histogram("x").is_live());

        let recorder = Recorder::new();
        install(recorder.clone());
        assert!(active());
        let c = counter("cycle.count");
        c.add(3);
        {
            let _s = span("test", "cycle");
            let _d = span_dyn("test", || "dyn".to_string());
        }
        let removed = uninstall().expect("a recorder was installed");
        assert!(!active());
        assert!(uninstall().is_none());

        let snap = removed.telemetry.snapshot();
        assert_eq!(snap.counter("cycle.count"), Some(3));
        assert_eq!(snap.counter_sum("cycle."), 3);
        assert_eq!(recorder.trace.len(), 2);

        // Handles acquired while installed keep feeding the registry.
        c.inc();
        assert_eq!(removed.telemetry.snapshot().counter("cycle.count"), Some(4));
    }

    #[test]
    fn registry_snapshot_reads_all_instruments() {
        let telemetry = Telemetry::new();
        telemetry.counter("a.one").add(5);
        telemetry.counter("a.two").add(7);
        telemetry.gauge("g").set(-9);
        let h = telemetry.histogram("h");
        for v in [1u64, 1, 2, 40, 4000] {
            h.record(v);
        }
        let snap = telemetry.snapshot();
        assert_eq!(snap.counter_sum("a."), 12);
        assert_eq!(snap.gauges, vec![("g".to_string(), -9)]);
        let hist = snap.histogram("h").expect("registered");
        assert_eq!(hist.count, 5);
        assert_eq!(hist.min, 1);
        assert_eq!(hist.max, 4000);
        assert_eq!(hist.sum, 4044);
        let (lower, upper) = hist.quantile_bounds(50.0).expect("non-empty");
        assert!(lower <= 2 && 2 <= upper);
    }

    #[test]
    fn histogram_timer_records_a_sample() {
        let telemetry = Telemetry::new();
        let h = telemetry.histogram("t");
        {
            let _timer = h.timer();
            std::hint::black_box(());
        }
        assert_eq!(telemetry.snapshot().histogram("t").expect("registered").count, 1);
    }
}
