//! Delivery vehicles as seen by the dispatcher.
//!
//! The dispatcher never manipulates the simulator's full vehicle state; at
//! the close of every accumulation window it receives a [`VehicleSnapshot`]
//! per available vehicle: where the vehicle is (snapped to the nearest road
//! node, as in the paper), where it is currently heading (used by the angular
//! distance of §IV-D1), and which orders it is already committed to.
//!
//! Which previously assigned orders appear as *committed* versus being put
//! back into the unassigned pool is the reshuffling decision of §IV-D2 and is
//! made by the caller (the simulator): picked-up orders are always committed;
//! not-yet-picked-up orders are committed only when reshuffling is disabled.

use crate::config::DispatchConfig;
use crate::order::Order;
use foodmatch_roadnet::NodeId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a delivery vehicle.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct VehicleId(pub u32);

impl VehicleId {
    /// The id as a raw integer.
    pub fn value(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for VehicleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for VehicleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// An order a vehicle is already responsible for, with its pickup state.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CommittedOrder {
    /// The order itself.
    pub order: Order,
    /// Whether the food is already on board (picked up from the restaurant).
    pub picked_up: bool,
}

/// The dispatcher's view of one available vehicle at window-close time.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct VehicleSnapshot {
    /// Identifier of the vehicle.
    pub id: VehicleId,
    /// `loc(v, t)`: current position snapped to the nearest road node.
    pub location: NodeId,
    /// The next node the vehicle is driving towards, if it is en route;
    /// `None` when idle. Feeds the angular distance of Eq. 8.
    pub heading: Option<NodeId>,
    /// Orders the vehicle is committed to and that the dispatcher must plan
    /// around but may not reassign.
    pub committed: Vec<CommittedOrder>,
    /// Orders currently assigned to this vehicle that the window has put back
    /// up for reshuffling (§IV-D2). They are *not* constraints — the policy
    /// may move them elsewhere — but they let cost ties be broken in favour
    /// of the incumbent vehicle so that reshuffling does not oscillate.
    pub tentative: Vec<crate::order::OrderId>,
}

impl VehicleSnapshot {
    /// Creates an idle vehicle snapshot with no committed orders.
    pub fn idle(id: VehicleId, location: NodeId) -> Self {
        VehicleSnapshot {
            id,
            location,
            heading: None,
            committed: Vec::new(),
            tentative: Vec::new(),
        }
    }

    /// Number of committed orders.
    pub fn committed_orders(&self) -> usize {
        self.committed.len()
    }

    /// Total number of items across committed orders.
    pub fn committed_items(&self) -> u32 {
        self.committed.iter().map(|c| c.order.items).sum()
    }

    /// Whether this vehicle can additionally take the given set of orders
    /// without violating the `MAXO` / `MAXI` constraints of Definition 4.
    pub fn can_take(&self, extra: &[Order], config: &DispatchConfig) -> bool {
        if self.committed.len() + extra.len() > config.max_orders_per_vehicle {
            return false;
        }
        let extra_items: u32 = extra.iter().map(|o| o.items).sum();
        self.committed_items() + extra_items <= config.max_items_per_vehicle
    }

    /// Whether the vehicle has any spare order capacity at all.
    pub fn has_capacity(&self, config: &DispatchConfig) -> bool {
        self.committed.len() < config.max_orders_per_vehicle
            && self.committed_items() < config.max_items_per_vehicle
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::order::OrderId;
    use foodmatch_roadnet::{Duration, TimePoint};

    fn order(id: u64, items: u32) -> Order {
        Order::new(
            OrderId(id),
            NodeId(0),
            NodeId(1),
            TimePoint::from_hms(12, 0, 0),
            items,
            Duration::from_mins(8.0),
        )
    }

    #[test]
    fn idle_vehicle_has_no_load() {
        let v = VehicleSnapshot::idle(VehicleId(1), NodeId(5));
        assert_eq!(v.committed_orders(), 0);
        assert_eq!(v.committed_items(), 0);
        assert!(v.has_capacity(&DispatchConfig::default()));
    }

    #[test]
    fn capacity_respects_max_orders() {
        let config = DispatchConfig::default();
        let mut v = VehicleSnapshot::idle(VehicleId(1), NodeId(5));
        v.committed = vec![
            CommittedOrder { order: order(1, 1), picked_up: true },
            CommittedOrder { order: order(2, 1), picked_up: false },
        ];
        assert!(v.can_take(&[order(3, 1)], &config));
        assert!(!v.can_take(&[order(3, 1), order(4, 1)], &config));
    }

    #[test]
    fn capacity_respects_max_items() {
        let config = DispatchConfig::default();
        let mut v = VehicleSnapshot::idle(VehicleId(1), NodeId(5));
        v.committed = vec![CommittedOrder { order: order(1, 8), picked_up: false }];
        assert!(v.can_take(&[order(2, 2)], &config));
        assert!(!v.can_take(&[order(2, 3)], &config));
        assert!(v.has_capacity(&config));
        v.committed.push(CommittedOrder { order: order(3, 2), picked_up: false });
        assert!(!v.has_capacity(&config));
    }

    #[test]
    fn vehicle_id_formats_like_the_paper() {
        assert_eq!(format!("{}", VehicleId(2)), "v2");
    }
}
