//! The vanilla Kuhn–Munkres policy of §IV-A.
//!
//! Orders are *not* batched: the FoodGraph has one row per order and one
//! column per vehicle, every edge weight is computed (no best-first
//! sparsification), and the minimum-weight matching of the complete bipartite
//! graph decides the window's assignment. Pairs whose matched edge carries
//! the rejection penalty Ω are treated as unassigned — matching an order to a
//! vehicle it cannot feasibly serve would be worse than letting it wait for
//! the next window.
//!
//! The matching itself routes through the configured
//! [`AssignmentSolver`](foodmatch_matching::AssignmentSolver): infeasible
//! pairs stay implicit Ω entries of a [`SparseCostMatrix`], so sparse solvers
//! skip them entirely while the dense solver reproduces the classic
//! full-matrix Kuhn–Munkres run.

use crate::config::DispatchConfig;
use crate::cost::marginal_cost;
use crate::policies::{outcome_from_assignments, DispatchPolicy};
use crate::window::{AssignmentOutcome, VehicleAssignment, WindowSnapshot};
use foodmatch_matching::SparseCostMatrix;
use foodmatch_roadnet::ShortestPathEngine;

/// The vanilla Kuhn–Munkres assignment policy (§IV-A).
#[derive(Debug, Default, Clone)]
pub struct KuhnMunkresPolicy {
    _private: (),
}

impl KuhnMunkresPolicy {
    /// Creates the policy.
    pub fn new() -> Self {
        KuhnMunkresPolicy { _private: () }
    }
}

impl DispatchPolicy for KuhnMunkresPolicy {
    fn name(&self) -> &'static str {
        "KM"
    }

    fn assign(
        &mut self,
        window: &WindowSnapshot,
        engine: &ShortestPathEngine,
        config: &DispatchConfig,
    ) -> AssignmentOutcome {
        if window.orders.is_empty() || window.vehicles.is_empty() {
            return AssignmentOutcome::all_unassigned(window);
        }

        let omega = config.rejection_penalty_secs;
        let mut costs = SparseCostMatrix::new(window.orders.len(), window.vehicles.len(), omega);
        for (row, order) in window.orders.iter().enumerate() {
            for (col, vehicle) in window.vehicles.iter().enumerate() {
                let weight = marginal_cost(vehicle, &[*order], engine, window.time, config)
                    .edge_weight(config);
                if weight < omega {
                    costs.set(row, col, weight);
                }
            }
        }
        let matching = config.build_solver().solve(&costs);

        let assignments: Vec<VehicleAssignment> = matching
            .pairs()
            .filter(|&(row, col)| costs.get(row, col) < omega)
            .map(|(row, col)| VehicleAssignment {
                vehicle: window.vehicles[col].id,
                orders: vec![window.orders[row].id],
            })
            .collect();
        outcome_from_assignments(window, assignments)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::order::{Order, OrderId};
    use crate::policies::GreedyPolicy;
    use crate::vehicle::{VehicleId, VehicleSnapshot};
    use foodmatch_roadnet::generators::GridCityBuilder;
    use foodmatch_roadnet::{CongestionProfile, Duration, NodeId, TimePoint};

    fn setup() -> (ShortestPathEngine, GridCityBuilder) {
        let b =
            GridCityBuilder::new(8, 8).congestion(CongestionProfile::free_flow()).major_every(0);
        (ShortestPathEngine::cached(b.build()), b)
    }

    fn order(id: u64, r: NodeId, c: NodeId, t: TimePoint) -> Order {
        Order::new(OrderId(id), r, c, t, 1, Duration::from_mins(6.0))
    }

    /// Sums the marginal costs of an outcome's assignments against the
    /// original (unloaded) vehicles — the global objective KM minimises.
    fn outcome_cost(
        outcome: &AssignmentOutcome,
        window: &WindowSnapshot,
        engine: &ShortestPathEngine,
        config: &DispatchConfig,
    ) -> f64 {
        outcome
            .assignments
            .iter()
            .map(|a| {
                let vehicle = window.vehicle(a.vehicle).unwrap();
                let orders: Vec<Order> =
                    a.orders.iter().map(|id| *window.order(*id).unwrap()).collect();
                marginal_cost(vehicle, &orders, engine, window.time, config)
                    .cost_secs()
                    .unwrap_or(config.rejection_penalty_secs)
            })
            .sum()
    }

    #[test]
    fn km_matches_one_order_per_vehicle() {
        let (engine, b) = setup();
        let t = TimePoint::from_hms(12, 0, 0);
        let window = WindowSnapshot::new(
            t,
            vec![
                order(1, b.node_at(1, 1), b.node_at(5, 1), t),
                order(2, b.node_at(1, 6), b.node_at(5, 6), t),
                order(3, b.node_at(4, 4), b.node_at(7, 7), t),
            ],
            vec![
                VehicleSnapshot::idle(VehicleId(0), b.node_at(0, 0)),
                VehicleSnapshot::idle(VehicleId(1), b.node_at(0, 7)),
            ],
        );
        let outcome = KuhnMunkresPolicy::new().assign(&window, &engine, &DispatchConfig::default());
        outcome.validate(&window).unwrap();
        // Perfect matching on min(|orders|, |vehicles|) = 2 pairs, each of
        // exactly one order (no batching in vanilla KM).
        assert_eq!(outcome.assigned_order_count(), 2);
        assert!(outcome.assignments.iter().all(|a| a.orders.len() == 1));
        assert_eq!(outcome.unassigned.len(), 1);
    }

    #[test]
    fn km_never_costs_more_than_greedy_on_single_order_windows() {
        // With one order per vehicle and no batching effects the KM matching
        // optimises exactly the sum of pairwise marginal costs, so it can
        // never be worse than Greedy's sequential choices (paper Example 5/6).
        let (engine, b) = setup();
        let t = TimePoint::from_hms(12, 0, 0);
        let config = DispatchConfig::default();
        let window = WindowSnapshot::new(
            t,
            vec![
                order(1, b.node_at(0, 2), b.node_at(0, 6), t),
                order(2, b.node_at(2, 0), b.node_at(6, 0), t),
            ],
            vec![
                VehicleSnapshot::idle(VehicleId(0), b.node_at(0, 0)),
                VehicleSnapshot::idle(VehicleId(1), b.node_at(1, 1)),
            ],
        );
        let km = KuhnMunkresPolicy::new().assign(&window, &engine, &config);
        let greedy = GreedyPolicy::new().assign(&window, &engine, &config);
        km.validate(&window).unwrap();
        greedy.validate(&window).unwrap();
        let km_cost = outcome_cost(&km, &window, &engine, &config);
        let greedy_cost = outcome_cost(&greedy, &window, &engine, &config);
        assert!(
            km_cost <= greedy_cost + 1e-6,
            "KM pairwise cost {km_cost} should not exceed Greedy {greedy_cost}"
        );
    }

    #[test]
    fn km_leaves_infeasible_orders_unassigned() {
        let (engine, b) = setup();
        let t = TimePoint::from_hms(12, 0, 0);
        // A vehicle already at full order capacity cannot take anything.
        let mut full = VehicleSnapshot::idle(VehicleId(0), b.node_at(0, 0));
        full.committed = (0..3)
            .map(|i| crate::vehicle::CommittedOrder {
                order: order(100 + i, b.node_at(0, 1), b.node_at(0, 2), t),
                picked_up: true,
            })
            .collect();
        let window =
            WindowSnapshot::new(t, vec![order(1, b.node_at(1, 1), b.node_at(2, 2), t)], vec![full]);
        let outcome = KuhnMunkresPolicy::new().assign(&window, &engine, &DispatchConfig::default());
        outcome.validate(&window).unwrap();
        assert_eq!(outcome.assigned_order_count(), 0);
        assert_eq!(outcome.unassigned, vec![OrderId(1)]);
    }

    #[test]
    fn empty_window_is_a_noop() {
        let (engine, _) = setup();
        let window = WindowSnapshot::new(TimePoint::from_hms(12, 0, 0), vec![], vec![]);
        let outcome = KuhnMunkresPolicy::new().assign(&window, &engine, &DispatchConfig::default());
        assert!(outcome.assignments.is_empty());
        assert!(outcome.unassigned.is_empty());
    }
}
