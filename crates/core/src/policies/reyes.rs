//! A Reyes-et-al.-style baseline (§I-A and §V-C of the paper).
//!
//! Reyes et al. solve the meal-delivery routing problem with two simplifying
//! assumptions the paper criticises:
//!
//! 1. distances between locations are *Haversine* (straight-line) distances
//!    divided by an assumed speed, ignoring the road network entirely;
//! 2. orders may be batched only when they originate from the *same
//!    restaurant*.
//!
//! This policy reproduces those decisions on top of the same matching
//! machinery: orders are grouped per restaurant into batches of at most
//! `MAXO` orders / `MAXI` items, the batch–vehicle cost is estimated from
//! straight-line geometry, and a minimum-weight matching decides the
//! assignment. Because the *estimates* ignore the actual network, the routes
//! the vehicles then drive (always on the network) are systematically worse
//! than what the estimate promised — which is exactly the behaviour the
//! paper's Fig. 6(b) attributes to this baseline.

use crate::config::DispatchConfig;
use crate::order::Order;
use crate::policies::{outcome_from_assignments, DispatchPolicy};
use crate::window::{AssignmentOutcome, VehicleAssignment, WindowSnapshot};
use foodmatch_matching::SparseCostMatrix;
use foodmatch_roadnet::{haversine_meters, ShortestPathEngine};
use std::collections::BTreeMap;

/// Assumed straight-line travel speed (m/s) used by the baseline's cost
/// estimates: roughly 30 km/h, a typical courier assumption.
const ASSUMED_SPEED_MPS: f64 = 8.3;

/// The Reyes-style baseline policy.
#[derive(Debug, Default, Clone)]
pub struct ReyesPolicy {
    _private: (),
}

impl ReyesPolicy {
    /// Creates the policy.
    pub fn new() -> Self {
        ReyesPolicy { _private: () }
    }
}

impl DispatchPolicy for ReyesPolicy {
    fn name(&self) -> &'static str {
        "Reyes"
    }

    fn assign(
        &mut self,
        window: &WindowSnapshot,
        engine: &ShortestPathEngine,
        config: &DispatchConfig,
    ) -> AssignmentOutcome {
        if window.orders.is_empty() || window.vehicles.is_empty() {
            return AssignmentOutcome::all_unassigned(window);
        }
        let network = engine.network();

        // Same-restaurant batching only: group orders per restaurant node and
        // cut each group into capacity-feasible chunks.
        let mut by_restaurant: BTreeMap<foodmatch_roadnet::NodeId, Vec<&Order>> = BTreeMap::new();
        for order in &window.orders {
            by_restaurant.entry(order.restaurant).or_default().push(order);
        }
        let mut batches: Vec<Vec<&Order>> = Vec::new();
        for (_, group) in by_restaurant {
            let mut current: Vec<&Order> = Vec::new();
            let mut items = 0u32;
            for order in group {
                let overflows = current.len() + 1 > config.max_orders_per_vehicle
                    || items + order.items > config.max_items_per_vehicle;
                if overflows && !current.is_empty() {
                    batches.push(std::mem::take(&mut current));
                    items = 0;
                }
                items += order.items;
                current.push(order);
            }
            if !current.is_empty() {
                batches.push(current);
            }
        }

        // Straight-line cost estimate of serving a batch with a vehicle;
        // infeasible pairs stay implicit Ω entries so the configured solver
        // sees the same sparse structure the FoodGraph produces.
        let omega = config.rejection_penalty_secs;
        let mut costs = SparseCostMatrix::new(batches.len(), window.vehicles.len(), omega);
        for (row, batch) in batches.iter().enumerate() {
            for (col, vehicle) in window.vehicles.iter().enumerate() {
                let extra: Vec<Order> = batch.iter().map(|&&o| o).collect();
                if !vehicle.can_take(&extra, config) {
                    continue;
                }
                let vehicle_pos = network.position(vehicle.location);
                let restaurant_pos = network.position(batch[0].restaurant);
                let first_mile = haversine_meters(vehicle_pos, restaurant_pos) / ASSUMED_SPEED_MPS;
                if first_mile > config.max_first_mile.as_secs_f64() {
                    continue;
                }
                // Last mile estimate: serve customers in the order given,
                // straight-line leg by leg.
                let mut last_mile = 0.0;
                let mut cursor = restaurant_pos;
                for order in batch.iter() {
                    let customer_pos = network.position(order.customer);
                    last_mile += haversine_meters(cursor, customer_pos) / ASSUMED_SPEED_MPS;
                    cursor = customer_pos;
                }
                let prep = batch.iter().map(|o| o.prep_time.as_secs_f64()).fold(0.0, f64::max);
                let estimate = (first_mile.max(prep) + last_mile).min(omega);
                if estimate < omega {
                    costs.set(row, col, estimate);
                }
            }
        }

        let matching = config.build_solver().solve(&costs);
        let assignments: Vec<VehicleAssignment> = matching
            .pairs()
            .filter(|&(row, col)| costs.get(row, col) < omega)
            .map(|(row, col)| VehicleAssignment {
                vehicle: window.vehicles[col].id,
                orders: batches[row].iter().map(|o| o.id).collect(),
            })
            .collect();
        outcome_from_assignments(window, assignments)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::order::OrderId;
    use crate::vehicle::{VehicleId, VehicleSnapshot};
    use foodmatch_roadnet::generators::GridCityBuilder;
    use foodmatch_roadnet::{CongestionProfile, Duration, NodeId, TimePoint};

    fn setup() -> (ShortestPathEngine, GridCityBuilder) {
        let b =
            GridCityBuilder::new(8, 8).congestion(CongestionProfile::free_flow()).major_every(0);
        (ShortestPathEngine::cached(b.build()), b)
    }

    fn order(id: u64, r: NodeId, c: NodeId, t: TimePoint) -> Order {
        Order::new(OrderId(id), r, c, t, 1, Duration::from_mins(6.0))
    }

    #[test]
    fn same_restaurant_orders_are_batched_together() {
        let (engine, b) = setup();
        let t = TimePoint::from_hms(12, 0, 0);
        let window = WindowSnapshot::new(
            t,
            vec![
                order(1, b.node_at(2, 2), b.node_at(5, 5), t),
                order(2, b.node_at(2, 2), b.node_at(5, 6), t),
            ],
            vec![VehicleSnapshot::idle(VehicleId(0), b.node_at(0, 0))],
        );
        let outcome = ReyesPolicy::new().assign(&window, &engine, &DispatchConfig::default());
        outcome.validate(&window).unwrap();
        assert_eq!(outcome.assignments.len(), 1);
        assert_eq!(outcome.assignments[0].orders.len(), 2);
    }

    #[test]
    fn different_restaurants_are_never_batched() {
        let (engine, b) = setup();
        let t = TimePoint::from_hms(12, 0, 0);
        // Two orders from adjacent but distinct restaurants: FoodMatch would
        // happily batch them, Reyes must not.
        let window = WindowSnapshot::new(
            t,
            vec![
                order(1, b.node_at(2, 2), b.node_at(5, 5), t),
                order(2, b.node_at(2, 3), b.node_at(5, 6), t),
            ],
            vec![
                VehicleSnapshot::idle(VehicleId(0), b.node_at(0, 0)),
                VehicleSnapshot::idle(VehicleId(1), b.node_at(7, 7)),
            ],
        );
        let outcome = ReyesPolicy::new().assign(&window, &engine, &DispatchConfig::default());
        outcome.validate(&window).unwrap();
        assert!(outcome.assignments.iter().all(|a| a.orders.len() == 1));
        assert_eq!(outcome.assigned_order_count(), 2);
    }

    #[test]
    fn same_restaurant_chunks_respect_maxo() {
        let (engine, b) = setup();
        let t = TimePoint::from_hms(12, 0, 0);
        let orders: Vec<Order> =
            (0..7).map(|i| order(i, b.node_at(3, 3), b.node_at(6, (i % 4) as usize), t)).collect();
        let window = WindowSnapshot::new(
            t,
            orders,
            (0..4).map(|i| VehicleSnapshot::idle(VehicleId(i), b.node_at(i as usize, 0))).collect(),
        );
        let config = DispatchConfig::default();
        let outcome = ReyesPolicy::new().assign(&window, &engine, &config);
        outcome.validate(&window).unwrap();
        for assignment in &outcome.assignments {
            assert!(assignment.orders.len() <= config.max_orders_per_vehicle);
        }
        // 7 orders need ceil(7/3) = 3 batches; with 4 vehicles all must be served.
        assert_eq!(outcome.assigned_order_count(), 7);
    }

    #[test]
    fn capacity_violations_get_omega_and_stay_unassigned() {
        let (engine, b) = setup();
        let t = TimePoint::from_hms(12, 0, 0);
        let mut full = VehicleSnapshot::idle(VehicleId(0), b.node_at(0, 0));
        full.committed = (0..3)
            .map(|i| crate::vehicle::CommittedOrder {
                order: order(50 + i, b.node_at(0, 1), b.node_at(0, 2), t),
                picked_up: true,
            })
            .collect();
        let window =
            WindowSnapshot::new(t, vec![order(1, b.node_at(4, 4), b.node_at(5, 5), t)], vec![full]);
        let outcome = ReyesPolicy::new().assign(&window, &engine, &DispatchConfig::default());
        assert_eq!(outcome.assigned_order_count(), 0);
    }
}
