//! Assignment policies: the Greedy baseline (§III), vanilla Kuhn–Munkres
//! (§IV-A), the full FOODMATCH pipeline (§IV), and a Reyes-style baseline
//! (§V-C).
//!
//! A policy is a stateless-ish object that answers one accumulation window
//! at a time: given a [`WindowSnapshot`] it returns an [`AssignmentOutcome`].
//! The driving loop (the simulator) owns everything else — vehicle movement,
//! pickup/drop-off bookkeeping, rejection of stale orders, and the decision
//! of which orders are eligible for reshuffling, which it makes by asking
//! [`DispatchPolicy::uses_reshuffling`].

mod foodmatch;
mod greedy;
mod km;
mod reyes;

pub use foodmatch::FoodMatchPolicy;
pub use greedy::GreedyPolicy;
pub use km::KuhnMunkresPolicy;
pub use reyes::ReyesPolicy;

use crate::config::DispatchConfig;
use crate::window::{AssignmentOutcome, VehicleAssignment, WindowSnapshot};
use foodmatch_roadnet::ShortestPathEngine;
use std::collections::HashSet;

/// A dispatch policy: maps one accumulation window to an assignment.
pub trait DispatchPolicy: Send {
    /// Short human-readable name used in reports ("FoodMatch", "Greedy", …).
    fn name(&self) -> &'static str;

    /// Whether the driving loop should put assigned-but-not-picked-up orders
    /// back into the unassigned pool for this policy (§IV-D2 reshuffling).
    fn uses_reshuffling(&self, _config: &DispatchConfig) -> bool {
        false
    }

    /// Computes the assignment for one window.
    fn assign(
        &mut self,
        window: &WindowSnapshot,
        engine: &ShortestPathEngine,
        config: &DispatchConfig,
    ) -> AssignmentOutcome;
}

/// A mutable borrow of a policy is itself a policy, so a driver that owns a
/// `&mut dyn DispatchPolicy` (like `Simulation::run`) can hand the borrow to
/// a policy-owning service without boxing or cloning.
impl<P: DispatchPolicy + ?Sized> DispatchPolicy for &mut P {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn uses_reshuffling(&self, config: &DispatchConfig) -> bool {
        (**self).uses_reshuffling(config)
    }

    fn assign(
        &mut self,
        window: &WindowSnapshot,
        engine: &ShortestPathEngine,
        config: &DispatchConfig,
    ) -> AssignmentOutcome {
        (**self).assign(window, engine, config)
    }
}

/// Boxed policies forward transparently, so long-lived services can own a
/// `Box<dyn DispatchPolicy>` chosen at run time.
impl<P: DispatchPolicy + ?Sized> DispatchPolicy for Box<P> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn uses_reshuffling(&self, config: &DispatchConfig) -> bool {
        (**self).uses_reshuffling(config)
    }

    fn assign(
        &mut self,
        window: &WindowSnapshot,
        engine: &ShortestPathEngine,
        config: &DispatchConfig,
    ) -> AssignmentOutcome {
        (**self).assign(window, engine, config)
    }
}

/// The policies benchmarked in the paper, as a convenient factory enum.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum PolicyKind {
    /// The Greedy baseline of §III.
    Greedy,
    /// Vanilla Kuhn–Munkres matching without batching/BFS/angular/reshuffle.
    KuhnMunkres,
    /// The full FOODMATCH pipeline (optimisations controlled by the config).
    FoodMatch,
    /// The Reyes et al. style baseline (Haversine costs, same-restaurant
    /// batching only).
    Reyes,
}

impl PolicyKind {
    /// All benchmarked policies.
    pub const ALL: [PolicyKind; 4] =
        [PolicyKind::Greedy, PolicyKind::KuhnMunkres, PolicyKind::FoodMatch, PolicyKind::Reyes];

    /// Instantiates the policy.
    pub fn build(self) -> Box<dyn DispatchPolicy> {
        match self {
            PolicyKind::Greedy => Box::new(GreedyPolicy::new()),
            PolicyKind::KuhnMunkres => Box::new(KuhnMunkresPolicy::new()),
            PolicyKind::FoodMatch => Box::new(FoodMatchPolicy::new()),
            PolicyKind::Reyes => Box::new(ReyesPolicy::new()),
        }
    }

    /// The display name of the policy.
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::Greedy => "Greedy",
            PolicyKind::KuhnMunkres => "KM",
            PolicyKind::FoodMatch => "FoodMatch",
            PolicyKind::Reyes => "Reyes",
        }
    }
}

/// Assembles an [`AssignmentOutcome`] from per-vehicle batches, filling the
/// `unassigned` list with every window order that no batch covers.
///
/// Batches are ordered by vehicle id: several policies accumulate them in
/// hash maps, and leaving hash order in the outcome would make the typed
/// output stream of a dispatch service differ between otherwise identical
/// runs (the golden equivalence tests compare streams bit for bit).
pub(crate) fn outcome_from_assignments(
    window: &WindowSnapshot,
    mut assignments: Vec<VehicleAssignment>,
) -> AssignmentOutcome {
    assignments.sort_by_key(|a| a.vehicle);
    let assigned: HashSet<_> = assignments.iter().flat_map(|a| a.orders.iter().copied()).collect();
    let unassigned =
        window.orders.iter().map(|o| o.id).filter(|id| !assigned.contains(id)).collect();
    let outcome = AssignmentOutcome { assignments, unassigned };
    debug_assert!(outcome.validate(window).is_ok(), "policy produced an inconsistent outcome");
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::order::{Order, OrderId};
    use crate::vehicle::{VehicleId, VehicleSnapshot};
    use foodmatch_roadnet::{Duration, NodeId, TimePoint};

    fn window() -> WindowSnapshot {
        let t = TimePoint::from_hms(12, 0, 0);
        WindowSnapshot::new(
            t,
            vec![
                Order::new(OrderId(1), NodeId(0), NodeId(1), t, 1, Duration::ZERO),
                Order::new(OrderId(2), NodeId(1), NodeId(2), t, 1, Duration::ZERO),
            ],
            vec![VehicleSnapshot::idle(VehicleId(0), NodeId(0))],
        )
    }

    #[test]
    fn policy_kind_builds_matching_names() {
        for kind in PolicyKind::ALL {
            let policy = kind.build();
            assert_eq!(policy.name(), kind.name());
        }
    }

    #[test]
    fn outcome_from_assignments_fills_unassigned() {
        let w = window();
        let outcome = outcome_from_assignments(
            &w,
            vec![VehicleAssignment { vehicle: VehicleId(0), orders: vec![OrderId(1)] }],
        );
        assert_eq!(outcome.assigned_order_count(), 1);
        assert_eq!(outcome.unassigned, vec![OrderId(2)]);
        outcome.validate(&w).unwrap();
    }

    #[test]
    fn only_foodmatch_reshuffles_by_default() {
        let config = DispatchConfig::default();
        assert!(PolicyKind::FoodMatch.build().uses_reshuffling(&config));
        assert!(!PolicyKind::Greedy.build().uses_reshuffling(&config));
        assert!(!PolicyKind::KuhnMunkres.build().uses_reshuffling(&config));
        assert!(!PolicyKind::Reyes.build().uses_reshuffling(&config));
        let no_reshuffle = DispatchConfig { use_reshuffle: false, ..config };
        assert!(!PolicyKind::FoodMatch.build().uses_reshuffling(&no_reshuffle));
    }
}
