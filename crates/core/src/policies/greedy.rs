//! The Greedy baseline of §III.
//!
//! Orders accumulated over a window are assigned one at a time: at every step
//! the unassigned order / vehicle pair with the smallest marginal cost
//! (Definition 9) is committed, the chosen vehicle's tentative load is
//! updated, and its costs against the remaining orders are recomputed. The
//! loop ends when no feasible pair remains.
//!
//! This is exactly the locally-optimal strategy the paper uses as its main
//! baseline: it can batch orders implicitly (a vehicle may win several
//! orders in one window) but each decision ignores its effect on later ones.

use crate::config::DispatchConfig;
use crate::cost::marginal_cost;
use crate::order::Order;
use crate::policies::{outcome_from_assignments, DispatchPolicy};
use crate::vehicle::{CommittedOrder, VehicleSnapshot};
use crate::window::{AssignmentOutcome, VehicleAssignment, WindowSnapshot};
use foodmatch_roadnet::ShortestPathEngine;
use std::collections::BTreeMap;

/// The Greedy assignment policy (§III).
#[derive(Debug, Default, Clone)]
pub struct GreedyPolicy {
    _private: (),
}

impl GreedyPolicy {
    /// Creates the policy.
    pub fn new() -> Self {
        GreedyPolicy { _private: () }
    }
}

impl DispatchPolicy for GreedyPolicy {
    fn name(&self) -> &'static str {
        "Greedy"
    }

    fn assign(
        &mut self,
        window: &WindowSnapshot,
        engine: &ShortestPathEngine,
        config: &DispatchConfig,
    ) -> AssignmentOutcome {
        if window.orders.is_empty() || window.vehicles.is_empty() {
            return AssignmentOutcome::all_unassigned(window);
        }

        let orders: Vec<Order> = window.orders.clone();
        // Working copies of the vehicles accumulate tentative assignments so
        // that later marginal costs see the earlier decisions.
        let mut working: Vec<VehicleSnapshot> = window.vehicles.clone();
        let mut assigned_orders: Vec<bool> = vec![false; orders.len()];
        // costs[o][v] = Some(mCost) when feasible.
        let mut costs: Vec<Vec<Option<f64>>> = orders
            .iter()
            .map(|order| {
                working
                    .iter()
                    .map(|vehicle| {
                        marginal_cost(vehicle, &[*order], engine, window.time, config).cost_secs()
                    })
                    .collect()
            })
            .collect();

        // BTreeMap so the assignment emission order is the vehicle index
        // order, independent of hasher state (the output stream is golden-
        // pinned; see `nondeterministic-iteration` in foodmatch-lint).
        let mut per_vehicle: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        loop {
            // Find the feasible (order, vehicle) pair with minimum marginal cost.
            let mut best: Option<(f64, usize, usize)> = None;
            for (oi, row) in costs.iter().enumerate() {
                if assigned_orders[oi] {
                    continue;
                }
                for (vi, cell) in row.iter().enumerate() {
                    if let Some(cost) = cell {
                        if best.is_none_or(|(b, _, _)| *cost < b) {
                            best = Some((*cost, oi, vi));
                        }
                    }
                }
            }
            let Some((_, oi, vi)) = best else { break };

            assigned_orders[oi] = true;
            per_vehicle.entry(vi).or_default().push(oi);
            working[vi].committed.push(CommittedOrder { order: orders[oi], picked_up: false });

            // The chosen vehicle's marginal costs against the remaining
            // orders change; everything else is untouched.
            for (orow, order) in orders.iter().enumerate() {
                if !assigned_orders[orow] {
                    costs[orow][vi] =
                        marginal_cost(&working[vi], &[*order], engine, window.time, config)
                            .cost_secs();
                }
            }
        }

        let assignments: Vec<VehicleAssignment> = per_vehicle
            .into_iter()
            .map(|(vi, order_indices)| VehicleAssignment {
                vehicle: window.vehicles[vi].id,
                orders: order_indices.into_iter().map(|oi| orders[oi].id).collect(),
            })
            .collect();
        outcome_from_assignments(window, assignments)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::order::OrderId;
    use crate::vehicle::VehicleId;
    use foodmatch_roadnet::generators::GridCityBuilder;
    use foodmatch_roadnet::{CongestionProfile, Duration, NodeId, TimePoint};

    fn setup() -> (ShortestPathEngine, GridCityBuilder) {
        let b =
            GridCityBuilder::new(8, 8).congestion(CongestionProfile::free_flow()).major_every(0);
        (ShortestPathEngine::cached(b.build()), b)
    }

    fn order(id: u64, r: NodeId, c: NodeId, t: TimePoint) -> Order {
        Order::new(OrderId(id), r, c, t, 1, Duration::from_mins(6.0))
    }

    #[test]
    fn assigns_each_order_to_the_nearby_vehicle_when_supply_is_ample() {
        let (engine, b) = setup();
        let t = TimePoint::from_hms(12, 0, 0);
        let window = WindowSnapshot::new(
            t,
            vec![
                order(1, b.node_at(0, 1), b.node_at(0, 5), t),
                order(2, b.node_at(7, 1), b.node_at(7, 5), t),
            ],
            vec![
                VehicleSnapshot::idle(VehicleId(0), b.node_at(0, 0)),
                VehicleSnapshot::idle(VehicleId(1), b.node_at(7, 0)),
            ],
        );
        let outcome = GreedyPolicy::new().assign(&window, &engine, &DispatchConfig::default());
        outcome.validate(&window).unwrap();
        assert_eq!(outcome.assigned_order_count(), 2);
        // The northern vehicle should take the northern order and vice versa.
        for assignment in &outcome.assignments {
            match assignment.vehicle {
                VehicleId(0) => assert_eq!(assignment.orders, vec![OrderId(1)]),
                VehicleId(1) => assert_eq!(assignment.orders, vec![OrderId(2)]),
                other => panic!("unexpected vehicle {other}"),
            }
        }
    }

    #[test]
    fn one_vehicle_accumulates_orders_up_to_capacity() {
        let (engine, b) = setup();
        let t = TimePoint::from_hms(12, 0, 0);
        let orders: Vec<Order> =
            (0..5).map(|i| order(i, b.node_at(1, 1), b.node_at(2, 2), t)).collect();
        let window = WindowSnapshot::new(
            t,
            orders,
            vec![VehicleSnapshot::idle(VehicleId(0), b.node_at(0, 0))],
        );
        let outcome = GreedyPolicy::new().assign(&window, &engine, &DispatchConfig::default());
        outcome.validate(&window).unwrap();
        // MAXO = 3 caps the single vehicle's load; the other two stay unassigned.
        assert_eq!(outcome.assigned_order_count(), 3);
        assert_eq!(outcome.unassigned.len(), 2);
    }

    #[test]
    fn empty_window_assigns_nothing() {
        let (engine, b) = setup();
        let t = TimePoint::from_hms(12, 0, 0);
        let window = WindowSnapshot::new(
            t,
            vec![],
            vec![VehicleSnapshot::idle(VehicleId(0), b.node_at(0, 0))],
        );
        let outcome = GreedyPolicy::new().assign(&window, &engine, &DispatchConfig::default());
        assert!(outcome.assignments.is_empty());
        assert!(outcome.unassigned.is_empty());
    }

    #[test]
    fn greedy_is_locally_optimal_for_its_first_pick() {
        // The first committed pair must be the globally cheapest single
        // (order, vehicle) marginal cost — the defining property of Greedy.
        let (engine, b) = setup();
        let t = TimePoint::from_hms(12, 0, 0);
        let config = DispatchConfig::default();
        let o_near = order(1, b.node_at(0, 1), b.node_at(0, 4), t);
        let o_far = order(2, b.node_at(5, 5), b.node_at(5, 7), t);
        let window = WindowSnapshot::new(
            t,
            vec![o_far, o_near],
            vec![VehicleSnapshot::idle(VehicleId(0), b.node_at(0, 0))],
        );
        let outcome = GreedyPolicy::new().assign(&window, &engine, &config);
        outcome.validate(&window).unwrap();
        let winner = &outcome.assignments[0];
        // The near order has the smaller first mile, so it must be in the
        // vehicle's batch (the far one may join afterwards if feasible).
        assert!(winner.orders.contains(&OrderId(1)));
    }
}
