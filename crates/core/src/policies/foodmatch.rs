//! The full FOODMATCH pipeline (§IV-E, Fig. 5 of the paper).
//!
//! One window is processed in four stages:
//!
//! 1. **Batching** — the unassigned orders are clustered into batches by
//!    Algorithm 1 (skipped when `use_batching` is off, in which case every
//!    order is its own batch).
//! 2. **FoodGraph construction** — a sparse bipartite graph between batches
//!    and vehicles is built with the best-first search of Algorithm 2,
//!    using the angular-distance-aware edge weight of Eq. 8 when enabled.
//! 3. **Matching** — the configured [`AssignmentSolver`]
//!    (`DispatchConfig::solver`, by default component-sharded sparse
//!    Kuhn–Munkres solved in parallel) computes the minimum-weight matching
//!    directly on the sparse FoodGraph; matched pairs whose edge carries Ω
//!    are discarded. The Ω entries are never materialised.
//! 4. **Reshuffling** (§IV-D2) happens outside the policy: when
//!    [`DispatchPolicy::uses_reshuffling`] returns true the driving loop puts
//!    assigned-but-not-picked-up orders back into the window snapshot, so
//!    this policy simply treats them as ordinary unassigned orders.
//!
//! Every optimisation is individually toggleable through
//! [`DispatchConfig`], which is what the ablation experiment (Fig. 7(a))
//! sweeps.

use crate::batching::{batch_orders, BatchingOutcome};
use crate::config::DispatchConfig;
use crate::foodgraph::build_food_graph;
use crate::policies::{outcome_from_assignments, DispatchPolicy};
use crate::window::{AssignmentOutcome, VehicleAssignment, WindowSnapshot};
use foodmatch_roadnet::ShortestPathEngine;

/// Statistics of the last processed window, useful for instrumentation and
/// the scalability experiments.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct FoodMatchStats {
    /// Number of batches produced by the clustering stage.
    pub batches: usize,
    /// Number of merges the clustering performed.
    pub merges: usize,
    /// Number of marginal-cost evaluations spent building the FoodGraph.
    pub foodgraph_evaluations: usize,
    /// Number of batches successfully matched to a vehicle.
    pub matched_batches: usize,
}

/// The FOODMATCH assignment policy.
#[derive(Debug, Default, Clone)]
pub struct FoodMatchPolicy {
    stats: FoodMatchStats,
}

impl FoodMatchPolicy {
    /// Creates the policy.
    pub fn new() -> Self {
        FoodMatchPolicy { stats: FoodMatchStats::default() }
    }

    /// Statistics of the most recently processed window.
    pub fn last_stats(&self) -> FoodMatchStats {
        self.stats
    }
}

impl DispatchPolicy for FoodMatchPolicy {
    fn name(&self) -> &'static str {
        "FoodMatch"
    }

    fn uses_reshuffling(&self, config: &DispatchConfig) -> bool {
        config.use_reshuffle
    }

    fn assign(
        &mut self,
        window: &WindowSnapshot,
        engine: &ShortestPathEngine,
        config: &DispatchConfig,
    ) -> AssignmentOutcome {
        self.stats = FoodMatchStats::default();
        if window.orders.is_empty() || window.vehicles.is_empty() {
            return AssignmentOutcome::all_unassigned(window);
        }

        // Stage 1: batching (Algorithm 1).
        let BatchingOutcome { batches, .. } =
            batch_orders(&window.orders, engine, window.time, config);
        self.stats.batches = batches.len();
        if batches.is_empty() {
            return AssignmentOutcome::all_unassigned(window);
        }

        // Stage 2: sparsified FoodGraph (Algorithm 2, Eq. 8).
        let graph = build_food_graph(&batches, &window.vehicles, engine, window.time, config);
        self.stats.foodgraph_evaluations = graph.evaluations;

        // Stage 3: minimum-weight matching through the configured solver,
        // directly on the sparse FoodGraph.
        let matching = config.build_solver().solve(&graph.costs);
        let omega = config.rejection_penalty_secs;

        let assignments: Vec<VehicleAssignment> = matching
            .pairs()
            .filter(|&(row, col)| graph.costs.get(row, col) < omega)
            .map(|(row, col)| VehicleAssignment {
                vehicle: graph.vehicle_ids[col],
                orders: batches[row].order_ids(),
            })
            .collect();
        self.stats.matched_batches = assignments.len();
        outcome_from_assignments(window, assignments)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::order::{Order, OrderId};
    use crate::policies::{GreedyPolicy, KuhnMunkresPolicy};
    use crate::vehicle::{VehicleId, VehicleSnapshot};
    use foodmatch_roadnet::generators::GridCityBuilder;
    use foodmatch_roadnet::{CongestionProfile, Duration, NodeId, TimePoint};

    fn setup() -> (ShortestPathEngine, GridCityBuilder) {
        let b =
            GridCityBuilder::new(8, 8).congestion(CongestionProfile::free_flow()).major_every(0);
        (ShortestPathEngine::cached(b.build()), b)
    }

    fn order(id: u64, r: NodeId, c: NodeId, t: TimePoint) -> Order {
        Order::new(OrderId(id), r, c, t, 1, Duration::from_mins(6.0))
    }

    #[test]
    fn batches_let_one_vehicle_serve_colocated_orders() {
        let (engine, b) = setup();
        let t = TimePoint::from_hms(13, 0, 0);
        // Three orders from the same restaurant, one vehicle nearby, another
        // far away: batching should allow a single vehicle to take all three
        // (vanilla KM could serve at most one per vehicle).
        let window = WindowSnapshot::new(
            t,
            vec![
                order(1, b.node_at(1, 1), b.node_at(4, 1), t),
                order(2, b.node_at(1, 1), b.node_at(4, 2), t),
                order(3, b.node_at(1, 1), b.node_at(4, 3), t),
            ],
            vec![
                VehicleSnapshot::idle(VehicleId(0), b.node_at(0, 0)),
                VehicleSnapshot::idle(VehicleId(1), b.node_at(7, 7)),
            ],
        );
        let mut policy = FoodMatchPolicy::new();
        let outcome = policy.assign(&window, &engine, &DispatchConfig::default());
        outcome.validate(&window).unwrap();
        assert_eq!(outcome.assigned_order_count(), 3);
        let biggest = outcome.assignments.iter().map(|a| a.orders.len()).max().unwrap();
        assert_eq!(biggest, 3, "expected the three same-restaurant orders in one batch");
        assert!(policy.last_stats().batches <= 2);

        // Vanilla KM on the same window can assign at most one order per
        // vehicle — the motivating limitation of §IV-A.
        let km = KuhnMunkresPolicy::new().assign(&window, &engine, &DispatchConfig::default());
        assert!(km.assigned_order_count() <= 2);
    }

    #[test]
    fn disabling_batching_reduces_to_singleton_batches() {
        let (engine, b) = setup();
        let t = TimePoint::from_hms(13, 0, 0);
        let config = DispatchConfig { use_batching: false, ..Default::default() };
        let window = WindowSnapshot::new(
            t,
            vec![
                order(1, b.node_at(1, 1), b.node_at(4, 1), t),
                order(2, b.node_at(1, 1), b.node_at(4, 2), t),
            ],
            vec![
                VehicleSnapshot::idle(VehicleId(0), b.node_at(0, 0)),
                VehicleSnapshot::idle(VehicleId(1), b.node_at(2, 2)),
            ],
        );
        let mut policy = FoodMatchPolicy::new();
        let outcome = policy.assign(&window, &engine, &config);
        outcome.validate(&window).unwrap();
        assert_eq!(policy.last_stats().batches, 2);
        assert!(outcome.assignments.iter().all(|a| a.orders.len() == 1));
    }

    #[test]
    fn foodmatch_cost_is_no_worse_than_greedy_on_a_tight_window() {
        let (engine, b) = setup();
        let t = TimePoint::from_hms(13, 0, 0);
        let config = DispatchConfig::default();
        // More orders than vehicles — the regime where global matching plus
        // batching pays off.
        let window = WindowSnapshot::new(
            t,
            vec![
                order(1, b.node_at(1, 1), b.node_at(5, 1), t),
                order(2, b.node_at(1, 2), b.node_at(5, 2), t),
                order(3, b.node_at(6, 6), b.node_at(2, 6), t),
                order(4, b.node_at(6, 5), b.node_at(2, 5), t),
            ],
            vec![
                VehicleSnapshot::idle(VehicleId(0), b.node_at(0, 0)),
                VehicleSnapshot::idle(VehicleId(1), b.node_at(7, 7)),
            ],
        );
        let fm = FoodMatchPolicy::new().assign(&window, &engine, &config);
        let greedy = GreedyPolicy::new().assign(&window, &engine, &config);
        fm.validate(&window).unwrap();
        greedy.validate(&window).unwrap();
        // FoodMatch must serve at least as many orders as Greedy here.
        assert!(fm.assigned_order_count() >= greedy.assigned_order_count());
    }

    #[test]
    fn every_assignment_respects_capacity() {
        let (engine, b) = setup();
        let t = TimePoint::from_hms(13, 0, 0);
        let config = DispatchConfig::default();
        let orders: Vec<Order> = (0..8)
            .map(|i| {
                order(i, b.node_at(1 + (i % 2) as usize, 1), b.node_at(5, (i % 4) as usize), t)
            })
            .collect();
        let window = WindowSnapshot::new(
            t,
            orders,
            vec![
                VehicleSnapshot::idle(VehicleId(0), b.node_at(0, 0)),
                VehicleSnapshot::idle(VehicleId(1), b.node_at(3, 3)),
            ],
        );
        let outcome = FoodMatchPolicy::new().assign(&window, &engine, &config);
        outcome.validate(&window).unwrap();
        for assignment in &outcome.assignments {
            assert!(assignment.orders.len() <= config.max_orders_per_vehicle);
        }
    }

    #[test]
    fn reshuffling_flag_follows_config() {
        let policy = FoodMatchPolicy::new();
        assert!(policy.uses_reshuffling(&DispatchConfig::default()));
        assert!(!policy
            .uses_reshuffling(&DispatchConfig { use_reshuffle: false, ..Default::default() }));
    }

    #[test]
    fn empty_window_is_a_noop() {
        let (engine, _) = setup();
        let window = WindowSnapshot::new(TimePoint::from_hms(12, 0, 0), vec![], vec![]);
        let outcome = FoodMatchPolicy::new().assign(&window, &engine, &DispatchConfig::default());
        assert!(outcome.assignments.is_empty());
        assert!(outcome.unassigned.is_empty());
    }

    #[test]
    fn every_solver_kind_serves_the_same_number_of_orders() {
        use foodmatch_matching::SolverKind;
        let (engine, b) = setup();
        let t = TimePoint::from_hms(13, 0, 0);
        let orders: Vec<Order> = (0..6)
            .map(|i| order(i, b.node_at((i % 3) as usize * 2, 1), b.node_at(5, i as usize), t))
            .collect();
        let window = WindowSnapshot::new(
            t,
            orders,
            vec![
                VehicleSnapshot::idle(VehicleId(0), b.node_at(0, 0)),
                VehicleSnapshot::idle(VehicleId(1), b.node_at(7, 7)),
                VehicleSnapshot::idle(VehicleId(2), b.node_at(3, 3)),
            ],
        );
        let reference = FoodMatchPolicy::new().assign(
            &window,
            &engine,
            &DispatchConfig { solver: SolverKind::DenseKm, ..Default::default() },
        );
        for kind in SolverKind::ALL {
            let config = DispatchConfig { solver: kind, ..Default::default() };
            let outcome = FoodMatchPolicy::new().assign(&window, &engine, &config);
            outcome.validate(&window).unwrap();
            assert_eq!(
                outcome.assigned_order_count(),
                reference.assigned_order_count(),
                "solver {kind} serves a different number of orders"
            );
        }
    }
}
