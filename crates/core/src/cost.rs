//! The cost model: shortest/expected/extra delivery time (Definitions 5–7)
//! and marginal costs (Definition 9, generalised to batches in Eq. 7).
//!
//! All costs are expressed in seconds of *extra delivery time* (XDT): the
//! time an order takes beyond its unavoidable minimum `SDT = o^p +
//! SP(o^r, o^c, o^t)`. Minimising total XDT is the paper's objective
//! (Problem 1); rejected orders are charged the penalty Ω instead.

use crate::config::DispatchConfig;
use crate::order::Order;
use crate::route::{plan_optimal_route, EvaluatedRoute, PlannedOrder};
use crate::vehicle::VehicleSnapshot;
use foodmatch_roadnet::{Duration, ShortestPathEngine, TimePoint};

/// Shortest delivery time of an order (Definition 6): preparation time plus
/// the quickest path from restaurant to customer, evaluated at `t`.
///
/// Returns `None` if the customer is unreachable from the restaurant.
pub fn shortest_delivery_time(
    order: &Order,
    engine: &ShortestPathEngine,
    t: TimePoint,
) -> Option<Duration> {
    let sp = engine.travel_time(order.restaurant, order.customer, t)?;
    Some(order.prep_time + sp)
}

/// The quickest route plan (and its XDT cost) for a vehicle serving its
/// committed orders plus `extra`, starting from its snapped location at `t`.
///
/// Returns `None` when some stop is unreachable. Capacity constraints are
/// *not* checked here — see [`marginal_cost`].
pub fn vehicle_plan(
    vehicle: &VehicleSnapshot,
    extra: &[Order],
    engine: &ShortestPathEngine,
    t: TimePoint,
) -> Option<EvaluatedRoute> {
    let mut planned: Vec<PlannedOrder> = vehicle
        .committed
        .iter()
        .map(|c| PlannedOrder { order: c.order, picked_up: c.picked_up })
        .collect();
    planned.extend(extra.iter().copied().map(PlannedOrder::pending));
    plan_optimal_route(vehicle.location, t, &planned, engine)
}

/// `Cost(v, O_v)` (Eq. 4): the total XDT of the vehicle's committed orders
/// under its quickest route plan, in seconds. Zero when the vehicle is idle.
pub fn vehicle_cost(
    vehicle: &VehicleSnapshot,
    engine: &ShortestPathEngine,
    t: TimePoint,
) -> Option<f64> {
    vehicle_plan(vehicle, &[], engine, t).map(|r| r.cost_secs)
}

/// Outcome of a marginal-cost evaluation for assigning a batch of orders to a
/// vehicle.
#[derive(Clone, Debug)]
pub enum MarginalCost {
    /// The assignment is feasible; `cost_secs` is `mCost` (Definition 9 /
    /// Eq. 7) and `route` is the vehicle's new quickest route plan.
    Feasible {
        /// The marginal cost in seconds of extra delivery time.
        cost_secs: f64,
        /// The quickest route plan serving committed plus new orders.
        route: EvaluatedRoute,
    },
    /// The assignment violates a constraint (capacity, reachability, or the
    /// first-mile bound) and must be priced at Ω.
    Infeasible,
}

impl MarginalCost {
    /// The FoodGraph edge weight for this outcome: `min(mCost, Ω)` when
    /// feasible, `Ω` otherwise (the `w(o, v)` of §IV-A).
    pub fn edge_weight(&self, config: &DispatchConfig) -> f64 {
        match self {
            MarginalCost::Feasible { cost_secs, .. } => {
                cost_secs.min(config.rejection_penalty_secs)
            }
            MarginalCost::Infeasible => config.rejection_penalty_secs,
        }
    }

    /// True if the assignment is feasible.
    pub fn is_feasible(&self) -> bool {
        matches!(self, MarginalCost::Feasible { .. })
    }

    /// The marginal cost if feasible.
    pub fn cost_secs(&self) -> Option<f64> {
        match self {
            MarginalCost::Feasible { cost_secs, .. } => Some(*cost_secs),
            MarginalCost::Infeasible => None,
        }
    }
}

/// Marginal cost of assigning the batch `extra` to `vehicle` (Definition 9
/// for a single order, Eq. 7 for a batch):
/// `mCost = Cost(v, O_v ∪ extra) − Cost(v, O_v)`.
///
/// The assignment is declared [`MarginalCost::Infeasible`] when it would
/// violate the `MAXO`/`MAXI` capacity of Definition 4, when any stop is
/// unreachable, or when the first mile to the batch's first pickup exceeds
/// the configured 45-minute bound (`max_first_mile`).
pub fn marginal_cost(
    vehicle: &VehicleSnapshot,
    extra: &[Order],
    engine: &ShortestPathEngine,
    t: TimePoint,
    config: &DispatchConfig,
) -> MarginalCost {
    if extra.is_empty() {
        return MarginalCost::Infeasible;
    }
    if !vehicle.can_take(extra, config) {
        return MarginalCost::Infeasible;
    }
    // The 45-minute delivery guarantee bounds the vehicle-to-restaurant
    // distance (§V-B): price pairs beyond it at Ω without planning.
    let nearest_new_pickup =
        extra.iter().filter_map(|o| engine.travel_time(vehicle.location, o.restaurant, t)).min();
    match nearest_new_pickup {
        Some(first_mile) if first_mile <= config.max_first_mile => {}
        _ => return MarginalCost::Infeasible,
    }

    let Some(base) = vehicle_cost(vehicle, engine, t) else {
        return MarginalCost::Infeasible;
    };
    let Some(with_extra) = vehicle_plan(vehicle, extra, engine, t) else {
        return MarginalCost::Infeasible;
    };
    MarginalCost::Feasible { cost_secs: with_extra.cost_secs - base, route: with_extra }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::order::OrderId;
    use crate::vehicle::{CommittedOrder, VehicleId};
    use foodmatch_roadnet::generators::GridCityBuilder;
    use foodmatch_roadnet::{CongestionProfile, NodeId, RoadClass};

    fn setup() -> (ShortestPathEngine, GridCityBuilder) {
        let b =
            GridCityBuilder::new(6, 6).congestion(CongestionProfile::free_flow()).major_every(0);
        (ShortestPathEngine::cached(b.build()), b)
    }

    fn edge_secs() -> f64 {
        250.0 / RoadClass::Local.free_flow_speed_mps()
    }

    fn order(id: u64, r: NodeId, c: NodeId, prep_mins: f64) -> Order {
        Order::new(
            OrderId(id),
            r,
            c,
            TimePoint::from_hms(12, 0, 0),
            1,
            Duration::from_mins(prep_mins),
        )
    }

    #[test]
    fn sdt_is_prep_plus_shortest_path() {
        let (engine, b) = setup();
        let o = order(1, b.node_at(0, 0), b.node_at(0, 3), 10.0);
        let sdt = shortest_delivery_time(&o, &engine, o.placed_at).unwrap();
        assert!((sdt.as_secs_f64() - (600.0 + 3.0 * edge_secs())).abs() < 1e-6);
    }

    #[test]
    fn idle_vehicle_has_zero_cost() {
        let (engine, b) = setup();
        let v = VehicleSnapshot::idle(VehicleId(1), b.node_at(3, 3));
        assert_eq!(vehicle_cost(&v, &engine, TimePoint::from_hms(12, 0, 0)), Some(0.0));
    }

    #[test]
    fn marginal_cost_of_first_order_matches_its_xdt() {
        let (engine, b) = setup();
        let t = TimePoint::from_hms(12, 0, 0);
        let v = VehicleSnapshot::idle(VehicleId(1), b.node_at(0, 0));
        // Restaurant two edges away, prep (6 s) shorter than the drive ⇒
        // XDT = first mile − prep.
        let o = order(1, b.node_at(0, 2), b.node_at(3, 2), 0.1);
        let mc = marginal_cost(&v, &[o], &engine, t, &DispatchConfig::default());
        let cost = mc.cost_secs().expect("feasible");
        assert!((cost - (2.0 * edge_secs() - 6.0)).abs() < 1e-6, "got {cost}");
    }

    #[test]
    fn marginal_cost_accounts_for_existing_load() {
        let (engine, b) = setup();
        let t = TimePoint::from_hms(12, 0, 0);
        let config = DispatchConfig::default();
        let existing = order(1, b.node_at(0, 1), b.node_at(0, 5), 0.1);
        let mut loaded = VehicleSnapshot::idle(VehicleId(1), b.node_at(0, 0));
        loaded.committed = vec![CommittedOrder { order: existing, picked_up: false }];
        let idle = VehicleSnapshot::idle(VehicleId(2), b.node_at(0, 0));

        // A second order in the opposite corner: adding it to the loaded
        // vehicle must cost at least as much as giving it to the idle twin.
        let new_order = order(2, b.node_at(5, 1), b.node_at(5, 5), 0.1);
        let loaded_mc = marginal_cost(&loaded, &[new_order], &engine, t, &config)
            .cost_secs()
            .expect("feasible");
        let idle_mc =
            marginal_cost(&idle, &[new_order], &engine, t, &config).cost_secs().expect("feasible");
        assert!(loaded_mc >= idle_mc - 1e-6, "loaded {loaded_mc} < idle {idle_mc}");
    }

    #[test]
    fn capacity_violations_are_infeasible() {
        let (engine, b) = setup();
        let t = TimePoint::from_hms(12, 0, 0);
        let config = DispatchConfig::default();
        let mut v = VehicleSnapshot::idle(VehicleId(1), b.node_at(0, 0));
        v.committed = (0..3)
            .map(|i| CommittedOrder {
                order: order(i, b.node_at(0, 1), b.node_at(0, 2), 1.0),
                picked_up: false,
            })
            .collect();
        let extra = order(10, b.node_at(1, 1), b.node_at(2, 2), 1.0);
        let mc = marginal_cost(&v, &[extra], &engine, t, &config);
        assert!(!mc.is_feasible());
        assert_eq!(mc.edge_weight(&config), config.rejection_penalty_secs);
    }

    #[test]
    fn item_capacity_violations_are_infeasible() {
        let (engine, b) = setup();
        let t = TimePoint::from_hms(12, 0, 0);
        let config = DispatchConfig::default();
        let mut v = VehicleSnapshot::idle(VehicleId(1), b.node_at(0, 0));
        v.committed = vec![CommittedOrder {
            order: Order::new(OrderId(1), b.node_at(0, 1), b.node_at(0, 2), t, 9, Duration::ZERO),
            picked_up: true,
        }];
        let extra = Order::new(OrderId(2), b.node_at(1, 1), b.node_at(2, 2), t, 2, Duration::ZERO);
        assert!(!marginal_cost(&v, &[extra], &engine, t, &config).is_feasible());
    }

    #[test]
    fn distant_first_mile_is_priced_at_omega() {
        let (engine, b) = setup();
        let t = TimePoint::from_hms(12, 0, 0);
        // Shrink the permitted first mile below the actual distance.
        let config = DispatchConfig {
            max_first_mile: Duration::from_secs_f64(edge_secs() * 1.5),
            ..Default::default()
        };
        let v = VehicleSnapshot::idle(VehicleId(1), b.node_at(0, 0));
        let o = order(1, b.node_at(5, 5), b.node_at(5, 4), 1.0);
        let mc = marginal_cost(&v, &[o], &engine, t, &config);
        assert!(!mc.is_feasible());
    }

    #[test]
    fn empty_batch_is_infeasible() {
        let (engine, b) = setup();
        let v = VehicleSnapshot::idle(VehicleId(1), b.node_at(0, 0));
        let mc = marginal_cost(
            &v,
            &[],
            &engine,
            TimePoint::from_hms(12, 0, 0),
            &DispatchConfig::default(),
        );
        assert!(!mc.is_feasible());
    }

    #[test]
    fn edge_weight_caps_at_omega() {
        let config = DispatchConfig { rejection_penalty_secs: 100.0, ..Default::default() };
        let feasible = MarginalCost::Feasible {
            cost_secs: 250.0,
            route: EvaluatedRoute {
                plan: crate::route::RoutePlan::empty(),
                cost_secs: 250.0,
                driving_time: Duration::ZERO,
                waiting_time: Duration::ZERO,
                deliveries: Vec::new(),
                start_node: NodeId(0),
                finish_at: TimePoint::MIDNIGHT,
            },
        };
        assert_eq!(feasible.edge_weight(&config), 100.0);
    }
}
