//! # foodmatch-core
//!
//! The primary contribution of *"Batching and Matching for Food Delivery in
//! Dynamic Road Networks"* (ICDE 2021): the FOODMATCH order-dispatch
//! pipeline, its baselines, and the cost model they share.
//!
//! The crate is organised exactly along the paper's sections:
//!
//! | Module | Paper section | Content |
//! |---|---|---|
//! | [`order`], [`vehicle`] | §II Defs. 2, 4 | orders, vehicles, capacity constraints |
//! | [`route`] | §II Def. 3 | route plans and the exhaustive quickest-route planner |
//! | [`cost`] | §II Defs. 5–7, §III Def. 9 | SDT / EDT / XDT and marginal costs |
//! | [`window`] | §III | accumulation-window snapshots and assignment outcomes |
//! | [`batching`] | §IV-B, Alg. 1 | the order graph and iterative clustering |
//! | [`foodgraph`] | §IV-A/C/D, Alg. 2, Eq. 8 | the (sparsified) bipartite FoodGraph with angular distance |
//! | [`policies`] | §III, §IV, §V | Greedy, vanilla KM, FOODMATCH, and the Reyes-style baseline |
//! | [`config`] | §V-B | operational constraints and algorithm parameters |
//! | [`codec`] | — | deterministic binary encoding for checkpoints and the WAL |
//!
//! ## Quick example
//!
//! ```
//! use foodmatch_core::{
//!     config::DispatchConfig,
//!     order::{Order, OrderId},
//!     policies::{DispatchPolicy, FoodMatchPolicy},
//!     vehicle::{VehicleId, VehicleSnapshot},
//!     window::WindowSnapshot,
//! };
//! use foodmatch_roadnet::{generators::GridCityBuilder, Duration, ShortestPathEngine, TimePoint};
//!
//! // A small synthetic city and a shared shortest-path engine.
//! let grid = GridCityBuilder::new(6, 6);
//! let engine = ShortestPathEngine::cached(grid.build());
//!
//! // One accumulation window: two orders, two idle vehicles.
//! let t = TimePoint::from_hms(12, 30, 0);
//! let window = WindowSnapshot::new(
//!     t,
//!     vec![
//!         Order::new(OrderId(1), grid.node_at(1, 1), grid.node_at(4, 4), t, 2, Duration::from_mins(9.0)),
//!         Order::new(OrderId(2), grid.node_at(1, 1), grid.node_at(4, 5), t, 1, Duration::from_mins(7.0)),
//!     ],
//!     vec![
//!         VehicleSnapshot::idle(VehicleId(0), grid.node_at(0, 0)),
//!         VehicleSnapshot::idle(VehicleId(1), grid.node_at(5, 5)),
//!     ],
//! );
//!
//! let mut policy = FoodMatchPolicy::new();
//! let outcome = policy.assign(&window, &engine, &DispatchConfig::default());
//! assert_eq!(outcome.assigned_order_count(), 2);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod batching;
pub mod codec;
pub mod config;
pub mod cost;
pub mod foodgraph;
pub mod order;
pub mod parallel;
pub mod policies;
pub mod route;
pub mod vehicle;
pub mod window;

pub use batching::{batch_orders, singleton_batches, Batch, BatchingOutcome};
pub use codec::{crc32, ByteReader, Codec, DecodeError};
pub use config::{ConfigError, DispatchConfig, DispatchConfigBuilder};
pub use cost::{marginal_cost, shortest_delivery_time, MarginalCost};
pub use foodgraph::{build_food_graph, FoodGraph};
pub use foodmatch_matching::{AssignmentSolver, SolverKind};
pub use order::{Order, OrderId};
pub use parallel::parallel_map;
pub use policies::{
    DispatchPolicy, FoodMatchPolicy, GreedyPolicy, KuhnMunkresPolicy, PolicyKind, ReyesPolicy,
};
pub use route::{plan_optimal_route, EvaluatedRoute, PlannedOrder, RoutePlan, Stop, StopAction};
pub use vehicle::{CommittedOrder, VehicleId, VehicleSnapshot};
pub use window::{AssignmentOutcome, VehicleAssignment, WindowSnapshot};
