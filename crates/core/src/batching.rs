//! Order batching by iterative clustering of the order graph (§IV-B,
//! Algorithm 1).
//!
//! Orders that can be served by one vehicle without long detours are grouped
//! into *batches*; the batches (not individual orders) then form the order
//! side of the FoodGraph. The order graph has one node per batch and an edge
//! between two batches whose merge respects `MAXO`/`MAXI`; the edge weight is
//! the *increase* in total extra delivery time caused by serving both batches
//! with one simulated vehicle (Eq. 5), where each simulated vehicle starts at
//! the first pick-up of its own optimal route plan. Clustering repeatedly
//! merges the cheapest edge until the average batch cost exceeds the quality
//! threshold `η` or no merge is feasible. Theorem 2 guarantees the average
//! cost never decreases, so termination is monotone.

use crate::config::DispatchConfig;
use crate::order::{Order, OrderId};
use crate::parallel::parallel_map;
use crate::route::{plan_optimal_route_free_start, EvaluatedRoute, PlannedOrder};
use foodmatch_roadnet::{NodeId, ShortestPathEngine, TimePoint};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A batch of orders to be assigned to a single vehicle, together with the
/// quickest route plan of its simulated vehicle.
#[derive(Clone, Debug)]
pub struct Batch {
    /// The orders grouped into this batch.
    pub orders: Vec<Order>,
    /// The quickest free-start route plan serving the batch; its cost is the
    /// batch quality `Cost(v_i, π_i)` used by the stopping rule.
    pub route: EvaluatedRoute,
}

impl Batch {
    /// Number of orders in the batch.
    pub fn len(&self) -> usize {
        self.orders.len()
    }

    /// True if the batch has no orders (never produced by the algorithm).
    pub fn is_empty(&self) -> bool {
        self.orders.is_empty()
    }

    /// Total number of items across the batch.
    pub fn total_items(&self) -> u32 {
        self.orders.iter().map(|o| o.items).sum()
    }

    /// The batch's cost `Cost(v_i, π_i)` in seconds.
    pub fn cost_secs(&self) -> f64 {
        self.route.cost_secs
    }

    /// The node where the batch's route plan starts — `π[1]^r`, the first
    /// pick-up, which anchors the batch in the sparsified FoodGraph.
    pub fn first_pickup(&self) -> NodeId {
        self.route.first_pickup_node().unwrap_or_else(|| self.orders[0].restaurant)
    }

    /// Ids of the orders in the batch.
    pub fn order_ids(&self) -> Vec<OrderId> {
        self.orders.iter().map(|o| o.id).collect()
    }
}

/// Result of the batching stage.
#[derive(Clone, Debug)]
pub struct BatchingOutcome {
    /// The final batches (the partition `U_1` of Algorithm 1).
    pub batches: Vec<Batch>,
    /// Orders that could not be planned at all (customer unreachable from
    /// restaurant); they bypass batching and will eventually be rejected.
    pub unplannable: Vec<Order>,
    /// Number of merges performed.
    pub merges: usize,
    /// The average batch cost when clustering stopped, in seconds.
    pub final_avg_cost_secs: f64,
}

/// Wraps every order in its own singleton batch without any clustering.
/// Used by the ablation configuration that disables batching and by the
/// vanilla KM baseline.
pub fn singleton_batches(
    orders: &[Order],
    engine: &ShortestPathEngine,
    t: TimePoint,
) -> BatchingOutcome {
    singleton_batches_with_threads(orders, engine, t, 1)
}

/// [`singleton_batches`] with the per-order route planning fanned out across
/// `threads` scoped workers (results are merged in input order, so every
/// thread count yields the same outcome).
pub fn singleton_batches_with_threads(
    orders: &[Order],
    engine: &ShortestPathEngine,
    t: TimePoint,
    threads: usize,
) -> BatchingOutcome {
    let planned: Vec<Option<EvaluatedRoute>> = parallel_map(orders, threads, |_, &order| {
        plan_optimal_route_free_start(t, &[PlannedOrder::pending(order)], engine)
    });
    let mut batches = Vec::with_capacity(orders.len());
    let mut unplannable = Vec::new();
    for (&order, route) in orders.iter().zip(planned) {
        match route {
            Some(route) => batches.push(Batch { orders: vec![order], route }),
            None => unplannable.push(order),
        }
    }
    let final_avg_cost_secs = average_cost(&batches);
    BatchingOutcome { batches, unplannable, merges: 0, final_avg_cost_secs }
}

/// Runs Algorithm 1: iterative clustering of the order graph.
///
/// `t` is the window-close time at which route plans are evaluated.
pub fn batch_orders(
    orders: &[Order],
    engine: &ShortestPathEngine,
    t: TimePoint,
    config: &DispatchConfig,
) -> BatchingOutcome {
    let threads = config.effective_threads();
    // Fan out only when the window carries enough work to amortise the
    // thread spawns; the result is identical either way.
    let singleton_threads = if orders.len() >= 16 { threads } else { 1 };
    let seed = singleton_batches_with_threads(orders, engine, t, singleton_threads);
    if !config.use_batching || seed.batches.len() < 2 {
        return seed;
    }
    let unplannable = seed.unplannable;
    let eta_secs = config.batching_threshold.as_secs_f64();

    // Clusters are slots that may be emptied by merges; `version` lets the
    // lazy heap detect stale candidates.
    let mut clusters: Vec<Option<Batch>> = seed.batches.into_iter().map(Some).collect();
    let mut versions: Vec<u64> = vec![0; clusters.len()];
    let mut active = clusters.len();
    let mut total_cost: f64 = clusters.iter().flatten().map(Batch::cost_secs).sum();
    let mut merges = 0usize;

    // The O(n²) initial pairwise evaluation dominates the clustering stage;
    // fan it out across the dispatch workers. The heap's total order breaks
    // every tie by (i, j), so the merge sequence — and therefore the final
    // batching — is independent of how the candidates were computed.
    let pairs: Vec<(usize, usize)> =
        (0..clusters.len()).flat_map(|i| ((i + 1)..clusters.len()).map(move |j| (i, j))).collect();
    let pair_threads = if pairs.len() >= 32 { threads } else { 1 };
    let mut heap: BinaryHeap<MergeCandidate> = parallel_map(&pairs, pair_threads, |_, &(i, j)| {
        candidate_for(&clusters, &versions, i, j, engine, t, config)
    })
    .into_iter()
    .flatten()
    .collect();

    while active > 1 {
        let avg = total_cost / active as f64;
        if avg > eta_secs {
            break;
        }
        // Pop candidates until a non-stale one appears.
        let candidate = loop {
            match heap.pop() {
                Some(c) => {
                    let fresh = clusters[c.i].is_some()
                        && clusters[c.j].is_some()
                        && versions[c.i] == c.version_i
                        && versions[c.j] == c.version_j;
                    if fresh {
                        break Some(c);
                    }
                }
                None => break None,
            }
        };
        let Some(candidate) = candidate else { break };

        // Perform the merge recorded in the candidate.
        let left = clusters[candidate.i].take().expect("fresh candidate");
        let right = clusters[candidate.j].take().expect("fresh candidate");
        versions[candidate.i] += 1;
        versions[candidate.j] += 1;
        total_cost -= left.cost_secs() + right.cost_secs();
        total_cost += candidate.merged.cost_secs();
        active -= 1;
        merges += 1;

        let slot = candidate.i;
        clusters[slot] = Some(candidate.merged);
        versions[slot] += 1;
        // Refresh the merged cluster's edges to every survivor; this is the
        // serial tail of Algorithm 1, so fan it out like the initial pass.
        let others: Vec<usize> =
            (0..clusters.len()).filter(|&o| o != slot && clusters[o].is_some()).collect();
        let refresh_threads = if others.len() >= 32 { threads } else { 1 };
        for candidate in parallel_map(&others, refresh_threads, |_, &other| {
            let (a, b) = (slot.min(other), slot.max(other));
            candidate_for(&clusters, &versions, a, b, engine, t, config)
        })
        .into_iter()
        .flatten()
        {
            heap.push(candidate);
        }
    }

    let batches: Vec<Batch> = clusters.into_iter().flatten().collect();
    let final_avg_cost_secs = average_cost(&batches);
    BatchingOutcome { batches, unplannable, merges, final_avg_cost_secs }
}

fn average_cost(batches: &[Batch]) -> f64 {
    if batches.is_empty() {
        0.0
    } else {
        batches.iter().map(Batch::cost_secs).sum::<f64>() / batches.len() as f64
    }
}

/// A candidate merge of clusters `i` and `j`, with the merged batch already
/// planned so that accepting the candidate is O(1).
struct MergeCandidate {
    weight: f64,
    i: usize,
    j: usize,
    version_i: u64,
    version_j: u64,
    merged: Batch,
}

impl PartialEq for MergeCandidate {
    fn eq(&self, other: &Self) -> bool {
        self.weight == other.weight && self.i == other.i && self.j == other.j
    }
}
impl Eq for MergeCandidate {}
impl PartialOrd for MergeCandidate {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for MergeCandidate {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on weight (BinaryHeap is a max-heap), ties broken by ids
        // for determinism.
        other
            .weight
            .partial_cmp(&self.weight)
            .expect("weights are never NaN")
            .then_with(|| (other.i, other.j).cmp(&(self.i, self.j)))
    }
}

/// Evaluates the merge of clusters `i` and `j` into a heap candidate, or
/// `None` when the merge is infeasible or fails the quality gate. Pure with
/// respect to the clustering state, so candidates can be computed in
/// parallel.
fn candidate_for(
    clusters: &[Option<Batch>],
    versions: &[u64],
    i: usize,
    j: usize,
    engine: &ShortestPathEngine,
    t: TimePoint,
    config: &DispatchConfig,
) -> Option<MergeCandidate> {
    let (Some(a), Some(b)) = (&clusters[i], &clusters[j]) else { return None };
    let (weight, merged) = merge_weight(a, b, engine, t, config)?;
    // Per-merge quality gate: a merge that by itself adds more extra delivery
    // time than the quality threshold η can never be "orders that suffer no
    // long detour" (§IV-B). Algorithm 1 as written only checks the *average*
    // cost before merging, which lets one arbitrarily bad merge through when
    // the window is sparse (the initial average is always zero); gating the
    // edge weight keeps the same convergence argument (weights are
    // non-negative, Theorem 2) while preventing that pathology. Documented as
    // a stabilising interpretation in DESIGN.md.
    if weight > config.batching_threshold.as_secs_f64() * merged.len() as f64 {
        return None;
    }
    Some(MergeCandidate { weight, i, j, version_i: versions[i], version_j: versions[j], merged })
}

/// Computes the order-graph edge weight between two batches (Eq. 5) and the
/// merged batch, or `None` if the merge is infeasible (capacity or
/// unreachable stops).
pub fn merge_weight(
    a: &Batch,
    b: &Batch,
    engine: &ShortestPathEngine,
    t: TimePoint,
    config: &DispatchConfig,
) -> Option<(f64, Batch)> {
    if a.len() + b.len() > config.max_orders_per_vehicle {
        return None;
    }
    if a.total_items() + b.total_items() > config.max_items_per_vehicle {
        return None;
    }
    let mut orders = Vec::with_capacity(a.len() + b.len());
    orders.extend(a.orders.iter().copied());
    orders.extend(b.orders.iter().copied());
    let planned: Vec<PlannedOrder> = orders.iter().copied().map(PlannedOrder::pending).collect();
    let route = plan_optimal_route_free_start(t, &planned, engine)?;
    let weight = route.cost_secs - (a.cost_secs() + b.cost_secs());
    Some((weight, Batch { orders, route }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use foodmatch_roadnet::generators::GridCityBuilder;
    use foodmatch_roadnet::{CongestionProfile, Duration};

    fn setup() -> (ShortestPathEngine, GridCityBuilder) {
        let b =
            GridCityBuilder::new(8, 8).congestion(CongestionProfile::free_flow()).major_every(0);
        (ShortestPathEngine::cached(b.build()), b)
    }

    fn order(id: u64, r: NodeId, c: NodeId) -> Order {
        Order::new(OrderId(id), r, c, TimePoint::from_hms(13, 0, 0), 1, Duration::from_mins(8.0))
    }

    fn default_config() -> DispatchConfig {
        DispatchConfig::default()
    }

    #[test]
    fn nearby_orders_from_same_restaurant_are_batched() {
        let (engine, b) = setup();
        let t = TimePoint::from_hms(13, 0, 0);
        // Two orders from the same restaurant to adjacent customers: merging
        // adds almost no detour, so they must end up in one batch.
        let orders = vec![
            order(1, b.node_at(1, 1), b.node_at(5, 5)),
            order(2, b.node_at(1, 1), b.node_at(5, 6)),
        ];
        let outcome = batch_orders(&orders, &engine, t, &default_config());
        assert_eq!(outcome.batches.len(), 1);
        assert_eq!(outcome.batches[0].len(), 2);
        assert_eq!(outcome.merges, 1);
    }

    #[test]
    fn far_apart_orders_are_never_merged() {
        let (engine, b) = setup();
        let t = TimePoint::from_hms(13, 0, 0);
        // Three orders in three far-apart corners: every pairwise merge would
        // add far more than η = 60 s of extra delivery time, so the per-merge
        // quality gate rejects all of them and each order stays in its own
        // batch.
        let orders = vec![
            order(1, b.node_at(0, 0), b.node_at(0, 3)),
            order(2, b.node_at(7, 7), b.node_at(7, 4)),
            order(3, b.node_at(0, 7), b.node_at(3, 7)),
        ];
        let outcome = batch_orders(&orders, &engine, t, &default_config());
        assert_eq!(outcome.merges, 0);
        assert_eq!(outcome.batches.len(), 3);
        assert!(outcome.final_avg_cost_secs < 1.0);
    }

    #[test]
    fn batches_respect_maxo() {
        let (engine, b) = setup();
        let t = TimePoint::from_hms(13, 0, 0);
        // Five identical orders: with MAXO = 3 no batch may exceed 3 orders.
        let orders: Vec<Order> =
            (0..5).map(|i| order(i, b.node_at(2, 2), b.node_at(2, 3))).collect();
        let outcome = batch_orders(&orders, &engine, t, &default_config());
        assert!(outcome.batches.iter().all(|batch| batch.len() <= 3));
        let total: usize = outcome.batches.iter().map(Batch::len).sum();
        assert_eq!(total, 5);
    }

    #[test]
    fn batches_respect_maxi() {
        let (engine, b) = setup();
        let t = TimePoint::from_hms(13, 0, 0);
        let heavy = |id: u64| {
            Order::new(
                OrderId(id),
                b.node_at(3, 3),
                b.node_at(3, 4),
                t,
                6,
                Duration::from_mins(5.0),
            )
        };
        let orders = vec![heavy(1), heavy(2)];
        // 6 + 6 = 12 items > MAXI = 10 ⇒ no merge.
        let outcome = batch_orders(&orders, &engine, t, &default_config());
        assert_eq!(outcome.batches.len(), 2);
    }

    #[test]
    fn eta_zero_disables_merging_and_large_eta_merges_aggressively() {
        let (engine, b) = setup();
        let t = TimePoint::from_hms(13, 0, 0);
        let orders: Vec<Order> =
            (0..4).map(|i| order(i, b.node_at(2, i as usize), b.node_at(6, i as usize))).collect();

        let strict = DispatchConfig { batching_threshold: Duration::ZERO, ..default_config() };
        // AvgCost starts at 0 which is not > 0, so the very first check
        // passes, but after any merge that raises the average above zero the
        // loop stops. With distinct restaurants the first merge already costs
        // something, so at most one merge happens.
        let outcome_strict = batch_orders(&orders, &engine, t, &strict);
        assert!(outcome_strict.batches.len() >= 3);

        let generous =
            DispatchConfig { batching_threshold: Duration::from_mins(60.0), ..default_config() };
        let outcome_generous = batch_orders(&orders, &engine, t, &generous);
        assert!(outcome_generous.batches.len() <= outcome_strict.batches.len());
        // MAXO still binds.
        assert!(outcome_generous.batches.iter().all(|batch| batch.len() <= 3));
    }

    #[test]
    fn all_orders_are_preserved_exactly_once() {
        let (engine, b) = setup();
        let t = TimePoint::from_hms(13, 0, 0);
        let orders: Vec<Order> = (0..7)
            .map(|i| {
                order(
                    i,
                    b.node_at((i % 4) as usize, (i % 3) as usize + 1),
                    b.node_at(5, (i % 5) as usize),
                )
            })
            .collect();
        let outcome = batch_orders(&orders, &engine, t, &default_config());
        let mut seen: Vec<u64> = outcome
            .batches
            .iter()
            .flat_map(|batch| batch.orders.iter().map(|o| o.id.0))
            .chain(outcome.unplannable.iter().map(|o| o.id.0))
            .collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..7).collect::<Vec<u64>>());
    }

    #[test]
    fn singleton_batches_have_zero_cost() {
        let (engine, b) = setup();
        let t = TimePoint::from_hms(13, 0, 0);
        let orders = vec![
            order(1, b.node_at(1, 1), b.node_at(4, 4)),
            order(2, b.node_at(6, 6), b.node_at(2, 2)),
        ];
        let outcome = singleton_batches(&orders, &engine, t);
        assert_eq!(outcome.batches.len(), 2);
        for batch in &outcome.batches {
            assert!(batch.cost_secs().abs() < 1e-6);
            assert_eq!(batch.first_pickup(), batch.orders[0].restaurant);
        }
        assert!(outcome.final_avg_cost_secs.abs() < 1e-6);
    }

    #[test]
    fn merge_weight_is_never_negative() {
        // Theorem 2's key lemma: merging two batches can never reduce the
        // total cost below the sum of the parts.
        let (engine, b) = setup();
        let t = TimePoint::from_hms(13, 0, 0);
        let config = default_config();
        let pairs = [
            (
                order(1, b.node_at(0, 0), b.node_at(4, 4)),
                order(2, b.node_at(0, 1), b.node_at(4, 5)),
            ),
            (
                order(3, b.node_at(2, 2), b.node_at(2, 3)),
                order(4, b.node_at(5, 5), b.node_at(1, 1)),
            ),
            (
                order(5, b.node_at(7, 0), b.node_at(0, 7)),
                order(6, b.node_at(0, 7), b.node_at(7, 0)),
            ),
        ];
        for (a, c) in pairs {
            let sa = singleton_batches(&[a], &engine, t).batches.remove(0);
            let sb = singleton_batches(&[c], &engine, t).batches.remove(0);
            let (w, merged) = merge_weight(&sa, &sb, &engine, t, &config).unwrap();
            assert!(w >= -1e-6, "negative merge weight {w}");
            assert!(
                (merged.cost_secs() - (sa.cost_secs() + sb.cost_secs() + w)).abs() < 1e-6,
                "merged cost must decompose into parts plus weight"
            );
        }
    }

    #[test]
    fn final_average_cost_respects_eta_unless_nothing_merged() {
        let (engine, b) = setup();
        let t = TimePoint::from_hms(13, 0, 0);
        let config = default_config();
        let orders: Vec<Order> = (0..6)
            .map(|i| order(i, b.node_at(1, (i % 3) as usize), b.node_at(6, (i % 4) as usize)))
            .collect();
        let outcome = batch_orders(&orders, &engine, t, &config);
        // Either the run stopped because the quality bound was crossed by the
        // final merge (allowed by the algorithm, which checks before merging)
        // or no further feasible merge existed. In both cases every batch is
        // feasible and within capacity.
        for batch in &outcome.batches {
            assert!(batch.len() <= config.max_orders_per_vehicle);
            assert!(batch.total_items() <= config.max_items_per_vehicle);
        }
    }
}
