//! Dispatch configuration: the paper's operational constraints and algorithm
//! parameters in one place.
//!
//! Defaults follow §V-B "Operational Constraints" and "Parameters":
//! `MAXO = 3`, `MAXI = 10`, `Ω = 7200 s`, 30-minute rejection deadline,
//! 45-minute maximum first mile, `Δ = 3 min`, `η = 60 s`, `γ = 0.5`,
//! `k = 200 × |O(ℓ)|/|V(ℓ)|`.

use foodmatch_matching::SolverKind;
use foodmatch_roadnet::Duration;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Why a [`DispatchConfig`] was rejected by [`DispatchConfig::validate`] /
/// [`DispatchConfigBuilder::build`]. Each variant carries the offending
/// value so callers can surface a precise diagnostic.
#[derive(Clone, Debug, PartialEq)]
pub enum ConfigError {
    /// `max_orders_per_vehicle` was zero — a vehicle must be able to carry
    /// at least one order.
    ZeroMaxOrders,
    /// `max_orders_per_vehicle` exceeded the exhaustive-routing limit of 5.
    MaxOrdersIntractable(usize),
    /// `max_items_per_vehicle` was zero.
    ZeroMaxItems,
    /// `rejection_penalty_secs` was not positive and finite.
    InvalidRejectionPenalty(f64),
    /// `gamma` fell outside `[0, 1]`.
    GammaOutOfRange(f64),
    /// `k_factor` was not positive and finite.
    InvalidKFactor(f64),
    /// `accumulation_window` was zero or negative — the dispatch loop
    /// cannot advance without a positive Δ.
    ZeroAccumulationWindow,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroMaxOrders => write!(f, "max_orders_per_vehicle must be at least 1"),
            ConfigError::MaxOrdersIntractable(n) => write!(
                f,
                "max_orders_per_vehicle = {n} makes exhaustive route planning intractable (limit 5)"
            ),
            ConfigError::ZeroMaxItems => write!(f, "max_items_per_vehicle must be at least 1"),
            ConfigError::InvalidRejectionPenalty(v) => {
                write!(f, "rejection_penalty_secs must be positive and finite, got {v}")
            }
            ConfigError::GammaOutOfRange(v) => write!(f, "gamma must be in [0, 1], got {v}"),
            ConfigError::InvalidKFactor(v) => {
                write!(f, "k_factor must be positive and finite, got {v}")
            }
            ConfigError::ZeroAccumulationWindow => {
                write!(f, "accumulation_window must be positive")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Tunable parameters and operational constraints of the dispatcher.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DispatchConfig {
    /// `MAXO`: maximum number of orders that may be assigned to one vehicle.
    pub max_orders_per_vehicle: usize,
    /// `MAXI`: maximum number of items a vehicle can carry.
    pub max_items_per_vehicle: u32,
    /// `Ω`: rejection penalty in seconds (also the edge weight of infeasible
    /// FoodGraph edges).
    pub rejection_penalty_secs: f64,
    /// `Δ`: length of the accumulation window.
    pub accumulation_window: Duration,
    /// `η`: batching stops once the average batch cost exceeds this value.
    pub batching_threshold: Duration,
    /// `γ`: weight between angular distance and normalised travel time in the
    /// vehicle-sensitive edge weight (Eq. 8). `1.0` ignores angular distance.
    pub gamma: f64,
    /// Factor for the per-vehicle degree cap in the sparsified FoodGraph:
    /// `k = k_factor × |O(ℓ)| / |V(ℓ)|` (the paper uses 200).
    pub k_factor: f64,
    /// Orders unassigned for longer than this are rejected (30 min at Swiggy).
    pub rejection_deadline: Duration,
    /// Maximum allowed first-mile travel time (the 45-minute delivery
    /// guarantee bounds the vehicle-to-restaurant distance); pairs further
    /// apart than this get an Ω edge.
    pub max_first_mile: Duration,
    /// Enable the batching stage (Alg. 1). Disabled for the KM baseline and
    /// the ablation study.
    pub use_batching: bool,
    /// Enable reshuffling of assigned-but-not-picked-up orders (§IV-D2).
    pub use_reshuffle: bool,
    /// Enable the best-first sparsification of the FoodGraph (Alg. 2).
    pub use_bfs_sparsification: bool,
    /// Enable the angular-distance component of the edge weight (Eq. 8).
    pub use_angular_distance: bool,
    /// Worker threads for per-window dispatch (FoodGraph per-vehicle edge
    /// construction, batch cost evaluation, and per-component assignment
    /// solving). `0` means "use the machine's available parallelism"; `1`
    /// reproduces the serial dispatch path bit-for-bit. Results are identical
    /// for every value — the fan-out is deterministic — so this knob only
    /// trades wall-clock for cores.
    pub num_threads: usize,
    /// The assignment solver the matching stage routes through (§IV-A). All
    /// exact solvers produce equal-cost assignments; the default shards the
    /// FoodGraph by connected component and solves the shards in parallel
    /// with the sparse Kuhn–Munkres solver.
    pub solver: SolverKind,
}

impl Default for DispatchConfig {
    fn default() -> Self {
        DispatchConfig {
            max_orders_per_vehicle: 3,
            max_items_per_vehicle: 10,
            rejection_penalty_secs: 7_200.0,
            accumulation_window: Duration::from_mins(3.0),
            batching_threshold: Duration::from_secs_f64(60.0),
            gamma: 0.5,
            k_factor: 200.0,
            rejection_deadline: Duration::from_mins(30.0),
            max_first_mile: Duration::from_mins(45.0),
            use_batching: true,
            use_reshuffle: true,
            use_bfs_sparsification: true,
            use_angular_distance: true,
            num_threads: 0,
            solver: SolverKind::DecomposedSparseKm,
        }
    }
}

impl DispatchConfig {
    /// A validating builder starting from the paper defaults: set fields
    /// fluently, then [`DispatchConfigBuilder::build`] checks the result and
    /// returns a typed [`ConfigError`] instead of panicking later. The plain
    /// struct literal (`DispatchConfig { .. }`) stays available for code
    /// that knows its values are valid.
    pub fn builder() -> DispatchConfigBuilder {
        DispatchConfigBuilder { config: DispatchConfig::default() }
    }

    /// Validates the configuration, returning the first problem found.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.max_orders_per_vehicle == 0 {
            return Err(ConfigError::ZeroMaxOrders);
        }
        if self.max_orders_per_vehicle > 5 {
            return Err(ConfigError::MaxOrdersIntractable(self.max_orders_per_vehicle));
        }
        if self.max_items_per_vehicle == 0 {
            return Err(ConfigError::ZeroMaxItems);
        }
        if !self.rejection_penalty_secs.is_finite() || self.rejection_penalty_secs <= 0.0 {
            return Err(ConfigError::InvalidRejectionPenalty(self.rejection_penalty_secs));
        }
        if !(0.0..=1.0).contains(&self.gamma) {
            return Err(ConfigError::GammaOutOfRange(self.gamma));
        }
        if !self.k_factor.is_finite() || self.k_factor <= 0.0 {
            return Err(ConfigError::InvalidKFactor(self.k_factor));
        }
        if self.accumulation_window <= Duration::ZERO {
            return Err(ConfigError::ZeroAccumulationWindow);
        }
        Ok(())
    }

    /// The per-vehicle degree cap `k` for a window with `orders` unassigned
    /// batches/orders and `vehicles` available vehicles (§IV-C1: the paper
    /// sets `k = 200 × |O(ℓ)|/|V(ℓ)|`). Always at least 1; unbounded when BFS
    /// sparsification is disabled.
    pub fn degree_cap(&self, orders: usize, vehicles: usize) -> usize {
        if !self.use_bfs_sparsification {
            return usize::MAX;
        }
        if vehicles == 0 {
            return 1;
        }
        let k = (self.k_factor * orders as f64 / vehicles as f64).ceil() as usize;
        k.max(1)
    }

    /// The number of dispatch worker threads this configuration resolves to:
    /// `num_threads` capped at the machine's available parallelism (dispatch
    /// work is CPU-bound, so oversubscribing cores only adds scheduler
    /// overhead), or the full available parallelism when the knob is `0`.
    pub fn effective_threads(&self) -> usize {
        let cores = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
        match self.num_threads {
            0 => cores,
            n => n.min(cores),
        }
    }

    /// Convenience: the rejection penalty as a [`Duration`].
    pub fn rejection_penalty(&self) -> Duration {
        Duration::from_secs_f64(self.rejection_penalty_secs)
    }

    /// Instantiates the configured assignment solver with the dispatch
    /// fan-out width (used by `Decomposed*` solvers for per-component
    /// parallelism; the result is identical for every width).
    pub fn build_solver(&self) -> Box<dyn foodmatch_matching::AssignmentSolver> {
        self.solver.build(self.effective_threads())
    }

    /// Returns a copy configured as the plain Kuhn–Munkres baseline (§IV-A):
    /// no batching, no reshuffling, full FoodGraph, no angular distance.
    pub fn as_vanilla_km(&self) -> Self {
        DispatchConfig {
            use_batching: false,
            use_reshuffle: false,
            use_bfs_sparsification: false,
            use_angular_distance: false,
            ..self.clone()
        }
    }
}

/// Fluent, validating constructor for [`DispatchConfig`] — see
/// [`DispatchConfig::builder`]. Every setter mirrors the field of the same
/// name; [`Self::build`] runs [`DispatchConfig::validate`] and hands back
/// either the finished configuration or a typed [`ConfigError`].
#[derive(Clone, Debug)]
pub struct DispatchConfigBuilder {
    config: DispatchConfig,
}

impl DispatchConfigBuilder {
    /// Sets `MAXO`, the per-vehicle order capacity.
    pub fn max_orders_per_vehicle(mut self, value: usize) -> Self {
        self.config.max_orders_per_vehicle = value;
        self
    }

    /// Sets `MAXI`, the per-vehicle item capacity.
    pub fn max_items_per_vehicle(mut self, value: u32) -> Self {
        self.config.max_items_per_vehicle = value;
        self
    }

    /// Sets `Ω`, the rejection penalty in seconds.
    pub fn rejection_penalty_secs(mut self, value: f64) -> Self {
        self.config.rejection_penalty_secs = value;
        self
    }

    /// Sets `Δ`, the accumulation-window length.
    pub fn accumulation_window(mut self, value: Duration) -> Self {
        self.config.accumulation_window = value;
        self
    }

    /// Sets `η`, the batching-cost threshold.
    pub fn batching_threshold(mut self, value: Duration) -> Self {
        self.config.batching_threshold = value;
        self
    }

    /// Sets `γ`, the angular-distance weight (must land in `[0, 1]`).
    pub fn gamma(mut self, value: f64) -> Self {
        self.config.gamma = value;
        self
    }

    /// Sets the degree-cap factor `k` (must be positive).
    pub fn k_factor(mut self, value: f64) -> Self {
        self.config.k_factor = value;
        self
    }

    /// Sets the rejection deadline.
    pub fn rejection_deadline(mut self, value: Duration) -> Self {
        self.config.rejection_deadline = value;
        self
    }

    /// Sets the maximum first-mile travel time.
    pub fn max_first_mile(mut self, value: Duration) -> Self {
        self.config.max_first_mile = value;
        self
    }

    /// Toggles the batching stage (Alg. 1).
    pub fn use_batching(mut self, value: bool) -> Self {
        self.config.use_batching = value;
        self
    }

    /// Toggles reshuffling of assigned-but-unpicked orders (§IV-D2).
    pub fn use_reshuffle(mut self, value: bool) -> Self {
        self.config.use_reshuffle = value;
        self
    }

    /// Toggles best-first FoodGraph sparsification (Alg. 2).
    pub fn use_bfs_sparsification(mut self, value: bool) -> Self {
        self.config.use_bfs_sparsification = value;
        self
    }

    /// Toggles the angular-distance component of the edge weight (Eq. 8).
    pub fn use_angular_distance(mut self, value: bool) -> Self {
        self.config.use_angular_distance = value;
        self
    }

    /// Sets the dispatch worker-thread knob (`0` = auto).
    pub fn num_threads(mut self, value: usize) -> Self {
        self.config.num_threads = value;
        self
    }

    /// Sets the assignment solver.
    pub fn solver(mut self, value: SolverKind) -> Self {
        self.config.solver = value;
        self
    }

    /// Validates and returns the configuration.
    pub fn build(self) -> Result<DispatchConfig, ConfigError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_parameters() {
        let c = DispatchConfig::default();
        assert_eq!(c.max_orders_per_vehicle, 3);
        assert_eq!(c.max_items_per_vehicle, 10);
        assert_eq!(c.rejection_penalty_secs, 7_200.0);
        assert_eq!(c.batching_threshold.as_secs_f64(), 60.0);
        assert_eq!(c.gamma, 0.5);
        assert_eq!(c.k_factor, 200.0);
        assert_eq!(c.rejection_deadline.as_mins_f64(), 30.0);
        assert_eq!(c.max_first_mile.as_mins_f64(), 45.0);
        assert_eq!(c.num_threads, 0, "default dispatch fan-out is auto");
        assert_eq!(c.solver, SolverKind::DecomposedSparseKm, "default solver is sharded sparse KM");
        assert_eq!(c.build_solver().name(), "decomposed-sparse-km");
        assert!(c.effective_threads() >= 1);
        let cores = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
        assert_eq!(
            DispatchConfig { num_threads: 3, ..Default::default() }.effective_threads(),
            3.min(cores),
            "explicit requests are capped at the hardware parallelism"
        );
        assert!(c.validate().is_ok());
    }

    #[test]
    fn degree_cap_scales_with_order_to_vehicle_ratio() {
        let c = DispatchConfig::default();
        // 10 orders, 200 vehicles → k = ceil(200 * 10 / 200) = 10.
        assert_eq!(c.degree_cap(10, 200), 10);
        // 50 orders, 100 vehicles → 100.
        assert_eq!(c.degree_cap(50, 100), 100);
        // Never below one.
        assert_eq!(c.degree_cap(0, 100), 1);
        assert_eq!(c.degree_cap(3, 0), 1);
    }

    #[test]
    fn degree_cap_unbounded_without_sparsification() {
        let c = DispatchConfig { use_bfs_sparsification: false, ..Default::default() };
        assert_eq!(c.degree_cap(10, 10), usize::MAX);
    }

    #[test]
    fn vanilla_km_disables_all_optimisations() {
        let km = DispatchConfig::default().as_vanilla_km();
        assert!(!km.use_batching);
        assert!(!km.use_reshuffle);
        assert!(!km.use_bfs_sparsification);
        assert!(!km.use_angular_distance);
        // Operational constraints are preserved.
        assert_eq!(km.max_orders_per_vehicle, 3);
    }

    #[test]
    fn validation_catches_bad_values() {
        let mut c = DispatchConfig { gamma: 1.5, ..Default::default() };
        assert_eq!(c.validate(), Err(ConfigError::GammaOutOfRange(1.5)));
        c.gamma = 0.5;
        c.max_orders_per_vehicle = 0;
        assert_eq!(c.validate(), Err(ConfigError::ZeroMaxOrders));
        c.max_orders_per_vehicle = 9;
        assert_eq!(c.validate(), Err(ConfigError::MaxOrdersIntractable(9)));
        c.max_orders_per_vehicle = 3;
        c.rejection_penalty_secs = f64::NAN;
        assert!(matches!(c.validate(), Err(ConfigError::InvalidRejectionPenalty(_))));
        c.rejection_penalty_secs = 7_200.0;
        c.accumulation_window = Duration::ZERO;
        assert_eq!(c.validate(), Err(ConfigError::ZeroAccumulationWindow));
    }

    #[test]
    fn builder_accepts_valid_configurations() {
        let built = DispatchConfig::builder()
            .accumulation_window(Duration::from_mins(2.0))
            .gamma(0.7)
            .k_factor(50.0)
            .max_orders_per_vehicle(2)
            .num_threads(1)
            .solver(SolverKind::DenseKm)
            .build()
            .expect("a valid configuration");
        assert_eq!(built.accumulation_window, Duration::from_mins(2.0));
        assert_eq!(built.gamma, 0.7);
        assert_eq!(built.k_factor, 50.0);
        assert_eq!(built.max_orders_per_vehicle, 2);
        assert_eq!(built.num_threads, 1);
        assert_eq!(built.solver, SolverKind::DenseKm);
        // Untouched fields keep the paper defaults.
        assert_eq!(built.max_items_per_vehicle, 10);
        assert!(built.use_batching);
    }

    #[test]
    fn builder_rejects_invalid_configurations_with_typed_errors() {
        assert_eq!(
            DispatchConfig::builder().accumulation_window(Duration::ZERO).build(),
            Err(ConfigError::ZeroAccumulationWindow)
        );
        assert_eq!(
            DispatchConfig::builder().gamma(-0.1).build(),
            Err(ConfigError::GammaOutOfRange(-0.1))
        );
        assert_eq!(
            DispatchConfig::builder().k_factor(-3.0).build(),
            Err(ConfigError::InvalidKFactor(-3.0))
        );
        assert_eq!(
            DispatchConfig::builder().max_orders_per_vehicle(0).build(),
            Err(ConfigError::ZeroMaxOrders)
        );
        // Errors render a human-readable diagnostic.
        let err = DispatchConfig::builder().gamma(2.0).build().unwrap_err();
        assert!(err.to_string().contains("gamma"));
    }
}
