//! The FoodGraph: the bipartite graph between order batches and vehicles
//! whose minimum-weight matching yields the window's assignment (§IV-A), with
//! the best-first sparsification of Algorithm 2 and the vehicle-sensitive
//! edge weight of Eq. 8.
//!
//! For every vehicle we explore the road network outward from the vehicle's
//! position in best-first order. With angular distance enabled, the expansion
//! order is driven by `α(v, e, t) = (1 − γ)·adist(v, u', t) + γ·β(e, t) /
//! max β` so nodes that lie in the vehicle's direction of travel are reached
//! earlier — anticipating where the vehicle will actually be by the time the
//! assignment takes effect. The expansion stops once the vehicle has acquired
//! `k` candidate batches (the degree cap); all remaining batches get an Ω
//! edge and their true marginal cost is never computed, which is where the
//! quadratic construction cost is saved.

use crate::batching::Batch;
use crate::config::DispatchConfig;
use crate::cost::{marginal_cost, MarginalCost};
use crate::parallel::parallel_map;
use crate::route::EvaluatedRoute;
use crate::vehicle::{VehicleId, VehicleSnapshot};
use foodmatch_matching::SparseCostMatrix;
use foodmatch_roadnet::dijkstra::Expansion;
use foodmatch_roadnet::{angular_distance, ShortestPathEngine, TimePoint};
use std::collections::HashMap;

/// Cost discount (seconds) applied per batch order that the vehicle already
/// tentatively holds, so reshuffling prefers the incumbent vehicle on ties.
const INCUMBENCY_BONUS_SECS: f64 = 60.0;

/// The bipartite assignment graph for one accumulation window.
///
/// Rows of the cost matrix are batches, columns are vehicles, entries are
/// `min(mCost, Ω)` (Ω for pairs that were pruned or are infeasible).
#[derive(Debug)]
pub struct FoodGraph {
    /// Vehicle ids in column order.
    pub vehicle_ids: Vec<VehicleId>,
    /// The (sparse) cost matrix: rows = batches, columns = vehicles.
    pub costs: SparseCostMatrix,
    /// Quickest route plans for every feasible (batch, vehicle) edge, keyed
    /// by `(row, col)`.
    pub routes: HashMap<(usize, usize), EvaluatedRoute>,
    /// Number of marginal-cost evaluations performed (the dominant cost of
    /// FoodGraph construction; reported by the scalability benchmarks).
    pub evaluations: usize,
}

impl FoodGraph {
    /// Number of batch rows.
    pub fn batch_count(&self) -> usize {
        self.costs.rows()
    }

    /// Number of vehicle columns.
    pub fn vehicle_count(&self) -> usize {
        self.costs.cols()
    }

    /// The edge weight between batch `row` and vehicle `col` (Ω when the
    /// pair was pruned or infeasible) — a sparse lookup, no densification.
    pub fn cost(&self, row: usize, col: usize) -> f64 {
        self.costs.get(row, col)
    }

    /// Number of explicit (finite marginal-cost) edges in the graph.
    pub fn explicit_edges(&self) -> usize {
        self.costs.explicit_entries()
    }
}

/// Builds the FoodGraph between `batches` and `vehicles` at window time `t`.
///
/// Honours the configuration's sparsification (`use_bfs_sparsification`,
/// `k_factor`) and angular-distance (`use_angular_distance`, `gamma`) flags.
/// Construction parallelises across vehicles with
/// [`DispatchConfig::effective_threads`] workers when the instance is large
/// enough to make the thread fan-out worthwhile; the result is identical for
/// every thread count.
pub fn build_food_graph(
    batches: &[Batch],
    vehicles: &[VehicleSnapshot],
    engine: &ShortestPathEngine,
    t: TimePoint,
    config: &DispatchConfig,
) -> FoodGraph {
    let _span = foodmatch_telemetry::span("engine", "foodgraph.build");
    let vehicle_ids: Vec<VehicleId> = vehicles.iter().map(|v| v.id).collect();
    if batches.is_empty() || vehicles.is_empty() {
        let costs = SparseCostMatrix::new(
            batches.len().max(1),
            vehicles.len().max(1),
            config.rejection_penalty_secs,
        );
        return FoodGraph { vehicle_ids, costs, routes: HashMap::new(), evaluations: 0 };
    }

    // Index batches by the node where their route plan starts.
    let mut batches_by_start: HashMap<foodmatch_roadnet::NodeId, Vec<usize>> = HashMap::new();
    for (row, batch) in batches.iter().enumerate() {
        batches_by_start.entry(batch.first_pickup()).or_default().push(row);
    }

    let degree_cap = config.degree_cap(batches.len(), vehicles.len());

    // Fan the per-vehicle edge construction out across scoped workers sharing
    // the engine. The fan-out is deterministic (contiguous chunks merged in
    // input order), so every thread count produces the same FoodGraph; tiny
    // windows stay on the calling thread where a spawn would cost more than
    // the work itself.
    let worker_count = if vehicles.len() < 8 { 1 } else { config.effective_threads() };
    let per_vehicle: Vec<VehicleEdges> = parallel_map(vehicles, worker_count, |col, vehicle| {
        vehicle_edges(col, vehicle, batches, &batches_by_start, engine, t, config, degree_cap)
    });

    let mut costs =
        SparseCostMatrix::new(batches.len(), vehicles.len(), config.rejection_penalty_secs);
    let mut routes = HashMap::new();
    let mut evaluations = 0;
    for edges in per_vehicle {
        evaluations += edges.evaluations;
        for (row, weight, route) in edges.entries {
            costs.set(row, edges.col, weight);
            if let Some(route) = route {
                routes.insert((row, edges.col), route);
            }
        }
    }

    FoodGraph { vehicle_ids, costs, routes, evaluations }
}

struct VehicleEdges {
    col: usize,
    entries: Vec<(usize, f64, Option<EvaluatedRoute>)>,
    evaluations: usize,
}

/// Computes the FoodGraph edges of one vehicle (the body of Algorithm 2's
/// outer loop).
#[allow(clippy::too_many_arguments)]
fn vehicle_edges(
    col: usize,
    vehicle: &VehicleSnapshot,
    batches: &[Batch],
    batches_by_start: &HashMap<foodmatch_roadnet::NodeId, Vec<usize>>,
    engine: &ShortestPathEngine,
    t: TimePoint,
    config: &DispatchConfig,
    degree_cap: usize,
) -> VehicleEdges {
    let mut entries = Vec::new();
    let mut evaluations = 0;

    // A vehicle with no spare capacity cannot take any batch; skip the
    // expansion entirely and leave every edge at Ω.
    if !vehicle.has_capacity(config) {
        return VehicleEdges { col, entries, evaluations };
    }

    let mut evaluate = |row: usize, entries: &mut Vec<(usize, f64, Option<EvaluatedRoute>)>| {
        let batch = &batches[row];
        evaluations += 1;
        match marginal_cost(vehicle, &batch.orders, engine, t, config) {
            MarginalCost::Feasible { cost_secs, route } => {
                // Incumbency tie-break: when reshuffling re-offers orders the
                // vehicle already holds, near-equal costs must not bounce the
                // order to a different vehicle every window (that would reset
                // its first mile forever). A small bonus per already-held
                // order keeps ties with the incumbent without overriding any
                // genuine improvement.
                let incumbency =
                    batch.orders.iter().filter(|o| vehicle.tentative.contains(&o.id)).count()
                        as f64;
                let weight = (cost_secs - INCUMBENCY_BONUS_SECS * incumbency)
                    .min(config.rejection_penalty_secs);
                entries.push((row, weight, Some(route)));
            }
            MarginalCost::Infeasible => {
                // Leave the implicit Ω edge in place.
            }
        }
    };

    if degree_cap == usize::MAX || degree_cap >= batches.len() {
        // Dense construction: evaluate every batch (the vanilla-KM path and
        // the "no BFS" ablation).
        for row in 0..batches.len() {
            evaluate(row, &mut entries);
        }
        return VehicleEdges { col, entries, evaluations };
    }

    // Sparsified construction (Algorithm 2): best-first expansion from the
    // vehicle's location, optionally under the vehicle-sensitive weight.
    let network = engine.network();
    let source_pos = network.position(vehicle.location);
    let heading_pos = vehicle.heading.map(|n| network.position(n));
    let use_angular = config.use_angular_distance && heading_pos.is_some();
    let max_beta = network.max_travel_time().as_secs_f64().max(1e-9);
    let gamma = config.gamma;

    // Run the expansion in a pooled search space so the per-vehicle
    // best-first searches reuse one set of arrays instead of allocating.
    let mut space = engine.search_space();
    let expansion: Expansion<'_> = if use_angular {
        let heading_pos = heading_pos.expect("checked above");
        Expansion::with_weight_in(
            network,
            vehicle.location,
            t,
            move |eid| {
                let edge = network.edge(eid);
                let adist = angular_distance(source_pos, heading_pos, network.position(edge.to));
                let beta = network.travel_time(eid, t).as_secs_f64();
                (1.0 - gamma) * adist + gamma * beta / max_beta
            },
            &mut space,
        )
    } else {
        Expansion::new_in(network, vehicle.location, t, &mut space)
    };

    let mut degree = 0usize;
    for settled in expansion {
        if degree >= degree_cap {
            break;
        }
        // Stop expanding once even the straight-line quickest path exceeds
        // the first-mile bound: no batch out there can be feasible.
        if !use_angular && settled.travel_time > config.max_first_mile {
            break;
        }
        let Some(rows) = batches_by_start.get(&settled.node) else { continue };
        for &row in rows {
            if degree >= degree_cap {
                break;
            }
            degree += 1;
            evaluate(row, &mut entries);
        }
    }

    VehicleEdges { col, entries, evaluations }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batching::singleton_batches;
    use crate::order::{Order, OrderId};
    use foodmatch_roadnet::generators::GridCityBuilder;
    use foodmatch_roadnet::{CongestionProfile, Duration, NodeId};

    fn setup() -> (ShortestPathEngine, GridCityBuilder) {
        let b =
            GridCityBuilder::new(8, 8).congestion(CongestionProfile::free_flow()).major_every(0);
        (ShortestPathEngine::cached(b.build()), b)
    }

    fn order(id: u64, r: NodeId, c: NodeId) -> Order {
        Order::new(OrderId(id), r, c, TimePoint::from_hms(12, 30, 0), 1, Duration::from_mins(8.0))
    }

    fn vehicles_at(nodes: &[NodeId]) -> Vec<VehicleSnapshot> {
        nodes
            .iter()
            .enumerate()
            .map(|(i, &n)| VehicleSnapshot::idle(VehicleId(i as u32), n))
            .collect()
    }

    #[test]
    fn dense_graph_prices_every_feasible_pair() {
        let (engine, b) = setup();
        let t = TimePoint::from_hms(12, 30, 0);
        let config = DispatchConfig { use_bfs_sparsification: false, ..Default::default() };
        let orders = vec![
            order(1, b.node_at(1, 1), b.node_at(5, 5)),
            order(2, b.node_at(6, 2), b.node_at(2, 6)),
        ];
        let batches = singleton_batches(&orders, &engine, t).batches;
        let vehicles = vehicles_at(&[b.node_at(0, 0), b.node_at(7, 7), b.node_at(3, 3)]);
        let graph = build_food_graph(&batches, &vehicles, &engine, t, &config);
        assert_eq!(graph.batch_count(), 2);
        assert_eq!(graph.vehicle_count(), 3);
        // Every (batch, vehicle) pair on a connected free-flow grid is
        // feasible, so all six edges carry a true cost and a route.
        assert_eq!(graph.costs.explicit_entries(), 6);
        assert_eq!(graph.routes.len(), 6);
        assert_eq!(graph.evaluations, 6);
        let dense = graph.costs.to_dense();
        for r in 0..2 {
            for c in 0..3 {
                assert!(dense.get(r, c) < config.rejection_penalty_secs);
            }
        }
    }

    #[test]
    fn sparsified_graph_caps_vehicle_degree() {
        let (engine, b) = setup();
        let t = TimePoint::from_hms(12, 30, 0);
        // Force a tiny degree cap: k_factor 1 with equal orders and vehicles
        // gives k = 1.
        let config = DispatchConfig { k_factor: 1.0, ..Default::default() };
        let orders: Vec<Order> = (0..4)
            .map(|i| order(i, b.node_at(2 * i as usize, 1), b.node_at(2 * i as usize, 6)))
            .collect();
        let batches = singleton_batches(&orders, &engine, t).batches;
        let vehicles =
            vehicles_at(&[b.node_at(0, 0), b.node_at(2, 0), b.node_at(4, 0), b.node_at(6, 0)]);
        let graph = build_food_graph(&batches, &vehicles, &engine, t, &config);
        // Each vehicle has at most one explicit (non-Ω) edge.
        let dense = graph.costs.to_dense();
        for c in 0..4 {
            let explicit =
                (0..4).filter(|&r| dense.get(r, c) < config.rejection_penalty_secs).count();
            assert!(explicit <= 1, "vehicle {c} has {explicit} explicit edges");
        }
        // Sparsification must have saved marginal-cost evaluations.
        assert!(graph.evaluations <= 8, "expected ≤ 2 per vehicle, got {}", graph.evaluations);
    }

    #[test]
    fn sparsified_edges_point_to_nearby_batches() {
        // Lemma 1: a batch with a non-Ω edge must be among the k closest
        // batch start nodes of that vehicle (measured by quickest path).
        let (engine, b) = setup();
        let t = TimePoint::from_hms(12, 30, 0);
        let config =
            DispatchConfig { k_factor: 2.0, use_angular_distance: false, ..Default::default() };
        let orders: Vec<Order> = (0..6)
            .map(|i| order(i, b.node_at(i as usize, i as usize), b.node_at(7, i as usize)))
            .collect();
        let batches = singleton_batches(&orders, &engine, t).batches;
        let vehicles = vehicles_at(&[b.node_at(0, 0)]);
        let k = config.degree_cap(batches.len(), vehicles.len());
        let graph = build_food_graph(&batches, &vehicles, &engine, t, &config);
        let dense = graph.costs.to_dense();

        // Rank batches by network distance from the vehicle.
        let mut by_distance: Vec<(f64, usize)> = batches
            .iter()
            .enumerate()
            .map(|(row, batch)| {
                let d = engine
                    .travel_time(vehicles[0].location, batch.first_pickup(), t)
                    .unwrap()
                    .as_secs_f64();
                (d, row)
            })
            .collect();
        by_distance.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        let closest: Vec<usize> = by_distance.iter().take(k).map(|&(_, r)| r).collect();

        for row in 0..batches.len() {
            if dense.get(row, 0) < config.rejection_penalty_secs {
                assert!(
                    closest.contains(&row),
                    "batch {row} got a real edge but is not among the {k} closest"
                );
            }
        }
    }

    #[test]
    fn fully_loaded_vehicle_gets_only_omega_edges() {
        let (engine, b) = setup();
        let t = TimePoint::from_hms(12, 30, 0);
        let config = DispatchConfig::default();
        let orders = vec![order(10, b.node_at(1, 1), b.node_at(2, 2))];
        let batches = singleton_batches(&orders, &engine, t).batches;
        let mut full = VehicleSnapshot::idle(VehicleId(0), b.node_at(1, 2));
        full.committed = (0..3)
            .map(|i| crate::vehicle::CommittedOrder {
                order: order(i, b.node_at(0, 0), b.node_at(0, 1)),
                picked_up: true,
            })
            .collect();
        let graph = build_food_graph(&batches, &[full], &engine, t, &config);
        assert_eq!(graph.costs.explicit_entries(), 0);
        assert_eq!(graph.evaluations, 0);
    }

    #[test]
    fn angular_distance_biases_edges_towards_the_heading() {
        let (engine, b) = setup();
        let t = TimePoint::from_hms(12, 30, 0);
        // Vehicle at the grid centre heading east; two equidistant batches,
        // one east and one west. With γ = 0 (pure angular) and k = 1 the
        // eastern batch must get the single real edge.
        let config = DispatchConfig { k_factor: 0.5, gamma: 0.0, ..Default::default() };
        let east = order(1, b.node_at(3, 6), b.node_at(0, 6));
        let west = order(2, b.node_at(3, 0), b.node_at(0, 0));
        let batches = singleton_batches(&[east, west], &engine, t).batches;
        let mut vehicle = VehicleSnapshot::idle(VehicleId(0), b.node_at(3, 3));
        vehicle.heading = Some(b.node_at(3, 4));
        let graph = build_food_graph(&batches, &[vehicle], &engine, t, &config);
        let dense = graph.costs.to_dense();
        let east_row = batches.iter().position(|batch| batch.orders[0].id == OrderId(1)).unwrap();
        let west_row = 1 - east_row;
        assert!(
            dense.get(east_row, 0) < config.rejection_penalty_secs,
            "east batch should be reachable"
        );
        assert_eq!(
            dense.get(west_row, 0),
            config.rejection_penalty_secs,
            "west batch should be pruned"
        );
    }

    #[test]
    fn empty_inputs_produce_empty_graph() {
        let (engine, b) = setup();
        let t = TimePoint::from_hms(12, 30, 0);
        let config = DispatchConfig::default();
        let graph = build_food_graph(&[], &vehicles_at(&[b.node_at(0, 0)]), &engine, t, &config);
        assert_eq!(graph.routes.len(), 0);
        assert_eq!(graph.evaluations, 0);
    }

    #[test]
    fn parallel_and_serial_construction_agree() {
        let (engine, b) = setup();
        let t = TimePoint::from_hms(12, 30, 0);
        let config = DispatchConfig { use_bfs_sparsification: false, ..Default::default() };
        let orders: Vec<Order> = (0..5)
            .map(|i| order(i, b.node_at(i as usize, 2), b.node_at(i as usize + 1, 6)))
            .collect();
        let batches = singleton_batches(&orders, &engine, t).batches;
        // 9 vehicles crosses the parallel threshold (8).
        let vehicle_nodes: Vec<NodeId> = (0..9).map(|i| b.node_at(i % 8, 7 - (i % 8))).collect();
        let vehicles = vehicles_at(&vehicle_nodes);
        let parallel = build_food_graph(&batches, &vehicles, &engine, t, &config);
        let serial_vehicles = &vehicles[..7]; // below the threshold ⇒ serial path
        let serial = build_food_graph(&batches, serial_vehicles, &engine, t, &config);
        let dense_parallel = parallel.costs.to_dense();
        let dense_serial = serial.costs.to_dense();
        for r in 0..batches.len() {
            for c in 0..serial_vehicles.len() {
                assert!((dense_parallel.get(r, c) - dense_serial.get(r, c)).abs() < 1e-9);
            }
        }
    }
}
