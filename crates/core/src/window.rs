//! Accumulation-window snapshots and assignment outcomes — the interface
//! between the dispatcher and whatever drives it (the simulator, a replay
//! harness, or a live system).
//!
//! At the end of every accumulation window of length Δ the driver collects
//! the unassigned orders `O(ℓ)` (including, when reshuffling is enabled,
//! orders assigned earlier but not yet picked up) and the available vehicles
//! `V(ℓ)` into a [`WindowSnapshot`]; the dispatch policy answers with an
//! [`AssignmentOutcome`] that says which orders go to which vehicle.

use crate::order::{Order, OrderId};
use crate::vehicle::{VehicleId, VehicleSnapshot};
use foodmatch_roadnet::TimePoint;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// Everything a dispatch policy sees about one accumulation window.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct WindowSnapshot {
    /// The window-close time `t` at which all costs are evaluated.
    pub time: TimePoint,
    /// `O(ℓ)`: the orders to assign in this window.
    pub orders: Vec<Order>,
    /// `V(ℓ)`: the available vehicles.
    pub vehicles: Vec<VehicleSnapshot>,
}

impl WindowSnapshot {
    /// Creates a snapshot.
    pub fn new(time: TimePoint, orders: Vec<Order>, vehicles: Vec<VehicleSnapshot>) -> Self {
        WindowSnapshot { time, orders, vehicles }
    }

    /// Number of orders awaiting assignment.
    pub fn order_count(&self) -> usize {
        self.orders.len()
    }

    /// Number of available vehicles.
    pub fn vehicle_count(&self) -> usize {
        self.vehicles.len()
    }

    /// The order-to-vehicle ratio of this window (∞ when no vehicles).
    pub fn pressure(&self) -> f64 {
        if self.vehicles.is_empty() {
            f64::INFINITY
        } else {
            self.orders.len() as f64 / self.vehicles.len() as f64
        }
    }

    /// Looks up an order by id.
    pub fn order(&self, id: OrderId) -> Option<&Order> {
        self.orders.iter().find(|o| o.id == id)
    }

    /// Looks up a vehicle by id.
    pub fn vehicle(&self, id: VehicleId) -> Option<&VehicleSnapshot> {
        self.vehicles.iter().find(|v| v.id == id)
    }
}

/// One vehicle's share of a window assignment: the orders newly given to it.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct VehicleAssignment {
    /// The vehicle receiving the orders.
    pub vehicle: VehicleId,
    /// The newly assigned orders (a batch of size 1..=MAXO minus the
    /// vehicle's committed load).
    pub orders: Vec<OrderId>,
}

/// The dispatch policy's answer for one window.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct AssignmentOutcome {
    /// Per-vehicle new assignments. A vehicle appears at most once.
    pub assignments: Vec<VehicleAssignment>,
    /// Orders from the snapshot left unassigned in this window.
    pub unassigned: Vec<OrderId>,
}

impl AssignmentOutcome {
    /// An outcome that assigns nothing.
    pub fn all_unassigned(window: &WindowSnapshot) -> Self {
        AssignmentOutcome {
            assignments: Vec::new(),
            unassigned: window.orders.iter().map(|o| o.id).collect(),
        }
    }

    /// Total number of orders assigned to some vehicle.
    pub fn assigned_order_count(&self) -> usize {
        self.assignments.iter().map(|a| a.orders.len()).sum()
    }

    /// Validates the outcome against its window: every order appears exactly
    /// once (assigned or unassigned), assigned vehicles exist in the window
    /// and are not repeated. Returns a description of the first violation.
    pub fn validate(&self, window: &WindowSnapshot) -> Result<(), String> {
        let window_orders: HashSet<OrderId> = window.orders.iter().map(|o| o.id).collect();
        let window_vehicles: HashSet<VehicleId> = window.vehicles.iter().map(|v| v.id).collect();

        let mut seen_orders: HashMap<OrderId, &'static str> = HashMap::new();
        let mut seen_vehicles = HashSet::new();
        for assignment in &self.assignments {
            if !window_vehicles.contains(&assignment.vehicle) {
                return Err(format!(
                    "assignment references unknown vehicle {}",
                    assignment.vehicle
                ));
            }
            if !seen_vehicles.insert(assignment.vehicle) {
                return Err(format!("vehicle {} appears in two assignments", assignment.vehicle));
            }
            if assignment.orders.is_empty() {
                return Err(format!("vehicle {} was assigned an empty batch", assignment.vehicle));
            }
            for &order in &assignment.orders {
                if !window_orders.contains(&order) {
                    return Err(format!("assignment references unknown order {order}"));
                }
                if seen_orders.insert(order, "assigned").is_some() {
                    return Err(format!("order {order} assigned more than once"));
                }
            }
        }
        for &order in &self.unassigned {
            if !window_orders.contains(&order) {
                return Err(format!("unassigned list references unknown order {order}"));
            }
            if seen_orders.insert(order, "unassigned").is_some() {
                return Err(format!("order {order} listed twice"));
            }
        }
        if seen_orders.len() != window_orders.len() {
            return Err(format!(
                "outcome covers {} of {} window orders",
                seen_orders.len(),
                window_orders.len()
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use foodmatch_roadnet::{Duration, NodeId};

    fn order(id: u64) -> Order {
        Order::new(
            OrderId(id),
            NodeId(0),
            NodeId(1),
            TimePoint::from_hms(12, 0, 0),
            1,
            Duration::from_mins(5.0),
        )
    }

    fn window() -> WindowSnapshot {
        WindowSnapshot::new(
            TimePoint::from_hms(12, 3, 0),
            vec![order(1), order(2), order(3)],
            vec![
                VehicleSnapshot::idle(VehicleId(0), NodeId(0)),
                VehicleSnapshot::idle(VehicleId(1), NodeId(1)),
            ],
        )
    }

    #[test]
    fn pressure_is_order_to_vehicle_ratio() {
        let w = window();
        assert!((w.pressure() - 1.5).abs() < 1e-12);
        let empty = WindowSnapshot::new(w.time, w.orders.clone(), Vec::new());
        assert!(empty.pressure().is_infinite());
    }

    #[test]
    fn lookup_helpers_work() {
        let w = window();
        assert!(w.order(OrderId(2)).is_some());
        assert!(w.order(OrderId(9)).is_none());
        assert!(w.vehicle(VehicleId(1)).is_some());
        assert!(w.vehicle(VehicleId(7)).is_none());
    }

    #[test]
    fn valid_outcome_passes_validation() {
        let w = window();
        let outcome = AssignmentOutcome {
            assignments: vec![
                VehicleAssignment { vehicle: VehicleId(0), orders: vec![OrderId(1), OrderId(3)] },
                VehicleAssignment { vehicle: VehicleId(1), orders: vec![OrderId(2)] },
            ],
            unassigned: vec![],
        };
        outcome.validate(&w).unwrap();
        assert_eq!(outcome.assigned_order_count(), 3);
    }

    #[test]
    fn all_unassigned_covers_every_order() {
        let w = window();
        let outcome = AssignmentOutcome::all_unassigned(&w);
        outcome.validate(&w).unwrap();
        assert_eq!(outcome.assigned_order_count(), 0);
        assert_eq!(outcome.unassigned.len(), 3);
    }

    #[test]
    fn validation_rejects_double_assignment() {
        let w = window();
        let outcome = AssignmentOutcome {
            assignments: vec![
                VehicleAssignment { vehicle: VehicleId(0), orders: vec![OrderId(1)] },
                VehicleAssignment { vehicle: VehicleId(1), orders: vec![OrderId(1)] },
            ],
            unassigned: vec![OrderId(2), OrderId(3)],
        };
        assert!(outcome.validate(&w).is_err());
    }

    #[test]
    fn validation_rejects_missing_orders() {
        let w = window();
        let outcome = AssignmentOutcome {
            assignments: vec![VehicleAssignment {
                vehicle: VehicleId(0),
                orders: vec![OrderId(1)],
            }],
            unassigned: vec![OrderId(2)],
        };
        assert!(outcome.validate(&w).is_err());
    }

    #[test]
    fn validation_rejects_unknown_vehicle_and_empty_batch() {
        let w = window();
        let unknown_vehicle = AssignmentOutcome {
            assignments: vec![VehicleAssignment {
                vehicle: VehicleId(9),
                orders: vec![OrderId(1)],
            }],
            unassigned: vec![OrderId(2), OrderId(3)],
        };
        assert!(unknown_vehicle.validate(&w).is_err());
        let empty_batch = AssignmentOutcome {
            assignments: vec![VehicleAssignment { vehicle: VehicleId(0), orders: vec![] }],
            unassigned: vec![OrderId(1), OrderId(2), OrderId(3)],
        };
        assert!(empty_batch.validate(&w).is_err());
    }
}
