//! Deterministic binary encoding for durable dispatch state.
//!
//! The vendored `serde` is an offline no-op stub, so checkpointing and the
//! write-ahead log hand-roll their wire format here: a tiny, explicit
//! little-endian codec with typed decode errors. Three properties matter
//! more than generality:
//!
//! * **Bit-exactness** — `f64` fields travel as raw IEEE-754 bits
//!   ([`f64::to_bits`]), so a decoded [`TimePoint`] or [`Duration`] is the
//!   same value to the last ulp and recovered runs replay bit-identically.
//! * **Determinism** — containers encode in a canonical order (callers sort
//!   map/set entries by key before writing), so encoding the same state
//!   twice yields the same bytes and checksums are meaningful.
//! * **No panics on hostile input** — [`Codec::decode`] validates every
//!   invariant the in-memory constructors assert (durations non-negative,
//!   finite times, hour slots `< 24`) and returns a typed [`DecodeError`]
//!   instead; corrupt or truncated bytes can never take down the service.
//!
//! The module also hosts [`crc32`], the checksum the WAL and checkpoint
//! containers use to detect corruption (CRC-32/ISO-HDLC, the zlib/PNG
//! polynomial — table-driven, no external crates).

use crate::config::DispatchConfig;
use crate::order::{Order, OrderId};
use crate::vehicle::VehicleId;
use foodmatch_matching::SolverKind;
use foodmatch_roadnet::{Duration, EdgeId, HourSlot, NodeId, TimePoint};
use std::fmt;

/// Why a byte slice failed to decode. Every variant is a hard, typed error:
/// decoding never panics and never fabricates state from bad bytes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// The input ended before the value was complete.
    UnexpectedEof {
        /// Bytes the decoder needed to continue.
        needed: usize,
        /// Bytes actually left in the input.
        available: usize,
    },
    /// A fixed-width field held a value outside its domain (a non-finite
    /// time, a negative duration, an hour slot ≥ 24, an unknown enum tag…).
    /// The message names the field and the offending value.
    Invalid(String),
    /// A declared element count was absurdly large for the bytes remaining —
    /// a corrupt length prefix, not a real collection. Caught before any
    /// allocation is attempted.
    LengthOverflow {
        /// The declared element count.
        declared: u64,
        /// Bytes remaining in the input.
        available: usize,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::UnexpectedEof { needed, available } => {
                write!(f, "unexpected end of input: needed {needed} bytes, {available} available")
            }
            DecodeError::Invalid(what) => write!(f, "invalid value: {what}"),
            DecodeError::LengthOverflow { declared, available } => write!(
                f,
                "declared length {declared} exceeds the {available} bytes remaining (corrupt \
                 length prefix)"
            ),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Cursor over a byte slice for [`Codec::decode`]. Every read is
/// bounds-checked and returns [`DecodeError::UnexpectedEof`] rather than
/// panicking past the end.
pub struct ByteReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Starts reading at the beginning of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        ByteReader { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// True once every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Current offset from the start of the slice.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Takes the next `n` bytes, or reports how far short the input fell.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::UnexpectedEof { needed: n, available: self.remaining() });
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Validates a declared element count against the bytes remaining:
    /// every element needs at least one byte, so a count beyond
    /// [`Self::remaining`] is a corrupt prefix, rejected before allocating.
    pub fn check_len(&self, declared: u64) -> Result<usize, DecodeError> {
        if declared > self.remaining() as u64 {
            return Err(DecodeError::LengthOverflow { declared, available: self.remaining() });
        }
        Ok(declared as usize)
    }

    /// Fails unless the input is fully consumed — trailing garbage after a
    /// complete value is corruption, not padding.
    pub fn expect_end(&self) -> Result<(), DecodeError> {
        if self.is_empty() {
            Ok(())
        } else {
            Err(DecodeError::Invalid(format!(
                "{} trailing bytes after a complete value",
                self.remaining()
            )))
        }
    }
}

/// Symmetric binary encode/decode with typed errors — the wire format of the
/// WAL and checkpoints. Implementations must round-trip bit-exactly:
/// `decode(encode(x)) == x` for every representable `x`.
pub trait Codec: Sized {
    /// Appends this value's canonical encoding to `out`.
    fn encode(&self, out: &mut Vec<u8>);

    /// Reads one value back, validating every domain invariant.
    fn decode(reader: &mut ByteReader<'_>) -> Result<Self, DecodeError>;

    /// Convenience: this value encoded into a fresh buffer.
    fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode(&mut out);
        out
    }

    /// Convenience: decodes a value that must span the entire slice.
    fn from_bytes(bytes: &[u8]) -> Result<Self, DecodeError> {
        let mut reader = ByteReader::new(bytes);
        let value = Self::decode(&mut reader)?;
        reader.expect_end()?;
        Ok(value)
    }
}

impl Codec for u8 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(*self);
    }
    fn decode(reader: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        Ok(reader.take(1)?[0])
    }
}

impl Codec for u32 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    fn decode(reader: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        let bytes = reader.take(4)?;
        Ok(u32::from_le_bytes(bytes.try_into().expect("take(4) returns 4 bytes")))
    }
}

impl Codec for u64 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    fn decode(reader: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        let bytes = reader.take(8)?;
        Ok(u64::from_le_bytes(bytes.try_into().expect("take(8) returns 8 bytes")))
    }
}

/// `usize` travels as `u64` so 32- and 64-bit hosts agree on the format.
impl Codec for usize {
    fn encode(&self, out: &mut Vec<u8>) {
        (*self as u64).encode(out);
    }
    fn decode(reader: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        let raw = u64::decode(reader)?;
        usize::try_from(raw)
            .map_err(|_| DecodeError::Invalid(format!("usize value {raw} exceeds host width")))
    }
}

/// `f64` travels as its raw IEEE-754 bits — bit-exact, NaN-preserving.
impl Codec for f64 {
    fn encode(&self, out: &mut Vec<u8>) {
        self.to_bits().encode(out);
    }
    fn decode(reader: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        Ok(f64::from_bits(u64::decode(reader)?))
    }
}

impl Codec for bool {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }
    fn decode(reader: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        match reader.take(1)?[0] {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(DecodeError::Invalid(format!("bool byte must be 0 or 1, got {other}"))),
        }
    }
}

impl Codec for String {
    fn encode(&self, out: &mut Vec<u8>) {
        self.len().encode(out);
        out.extend_from_slice(self.as_bytes());
    }
    fn decode(reader: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        let declared = u64::decode(reader)?;
        let len = reader.check_len(declared)?;
        let bytes = reader.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| DecodeError::Invalid("string is not valid UTF-8".to_string()))
    }
}

impl<T: Codec> Codec for Option<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(value) => {
                out.push(1);
                value.encode(out);
            }
        }
    }
    fn decode(reader: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        match reader.take(1)?[0] {
            0 => Ok(None),
            1 => Ok(Some(T::decode(reader)?)),
            other => Err(DecodeError::Invalid(format!("Option tag must be 0 or 1, got {other}"))),
        }
    }
}

impl<T: Codec> Codec for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.len().encode(out);
        for item in self {
            item.encode(out);
        }
    }
    fn decode(reader: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        let declared = u64::decode(reader)?;
        let len = reader.check_len(declared)?;
        let mut items = Vec::with_capacity(len);
        for _ in 0..len {
            items.push(T::decode(reader)?);
        }
        Ok(items)
    }
}

impl<A: Codec, B: Codec> Codec for (A, B) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
    }
    fn decode(reader: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        Ok((A::decode(reader)?, B::decode(reader)?))
    }
}

impl<T: Codec + Copy + Default, const N: usize> Codec for [T; N] {
    fn encode(&self, out: &mut Vec<u8>) {
        for item in self {
            item.encode(out);
        }
    }
    fn decode(reader: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        let mut items = [T::default(); N];
        for slot in &mut items {
            *slot = T::decode(reader)?;
        }
        Ok(items)
    }
}

impl Codec for TimePoint {
    fn encode(&self, out: &mut Vec<u8>) {
        self.as_secs_f64().encode(out);
    }
    fn decode(reader: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        let secs = f64::decode(reader)?;
        if !secs.is_finite() {
            return Err(DecodeError::Invalid(format!("TimePoint must be finite, got {secs}")));
        }
        Ok(TimePoint::from_secs_f64(secs))
    }
}

impl Codec for Duration {
    fn encode(&self, out: &mut Vec<u8>) {
        self.as_secs_f64().encode(out);
    }
    fn decode(reader: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        let secs = f64::decode(reader)?;
        if !secs.is_finite() || secs < 0.0 {
            return Err(DecodeError::Invalid(format!(
                "Duration must be finite and non-negative, got {secs}"
            )));
        }
        Ok(Duration::from_secs_f64(secs))
    }
}

impl Codec for HourSlot {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(self.hour());
    }
    fn decode(reader: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        let hour = reader.take(1)?[0];
        if hour >= 24 {
            return Err(DecodeError::Invalid(format!("HourSlot must be in 0..24, got {hour}")));
        }
        Ok(HourSlot::new(hour))
    }
}

impl Codec for NodeId {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
    }
    fn decode(reader: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        Ok(NodeId(u32::decode(reader)?))
    }
}

impl Codec for EdgeId {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
    }
    fn decode(reader: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        Ok(EdgeId(u32::decode(reader)?))
    }
}

impl Codec for OrderId {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
    }
    fn decode(reader: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        Ok(OrderId(u64::decode(reader)?))
    }
}

impl Codec for VehicleId {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
    }
    fn decode(reader: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        Ok(VehicleId(u32::decode(reader)?))
    }
}

impl Codec for Order {
    fn encode(&self, out: &mut Vec<u8>) {
        self.id.encode(out);
        self.restaurant.encode(out);
        self.customer.encode(out);
        self.placed_at.encode(out);
        self.items.encode(out);
        self.prep_time.encode(out);
    }
    fn decode(reader: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        let id = OrderId::decode(reader)?;
        let restaurant = NodeId::decode(reader)?;
        let customer = NodeId::decode(reader)?;
        let placed_at = TimePoint::decode(reader)?;
        let items = u32::decode(reader)?;
        let prep_time = Duration::decode(reader)?;
        if items == 0 {
            return Err(DecodeError::Invalid("Order must contain at least one item".to_string()));
        }
        Ok(Order { id, restaurant, customer, placed_at, items, prep_time })
    }
}

impl Codec for SolverKind {
    fn encode(&self, out: &mut Vec<u8>) {
        let tag = SolverKind::ALL
            .iter()
            .position(|kind| kind == self)
            .expect("SolverKind::ALL lists every variant") as u8;
        out.push(tag);
    }
    fn decode(reader: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        let tag = reader.take(1)?[0];
        SolverKind::ALL
            .get(usize::from(tag))
            .copied()
            .ok_or_else(|| DecodeError::Invalid(format!("unknown SolverKind tag {tag}")))
    }
}

impl Codec for DispatchConfig {
    fn encode(&self, out: &mut Vec<u8>) {
        self.max_orders_per_vehicle.encode(out);
        self.max_items_per_vehicle.encode(out);
        self.rejection_penalty_secs.encode(out);
        self.accumulation_window.encode(out);
        self.batching_threshold.encode(out);
        self.gamma.encode(out);
        self.k_factor.encode(out);
        self.rejection_deadline.encode(out);
        self.max_first_mile.encode(out);
        self.use_batching.encode(out);
        self.use_reshuffle.encode(out);
        self.use_bfs_sparsification.encode(out);
        self.use_angular_distance.encode(out);
        self.num_threads.encode(out);
        self.solver.encode(out);
    }
    fn decode(reader: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        let config = DispatchConfig {
            max_orders_per_vehicle: usize::decode(reader)?,
            max_items_per_vehicle: u32::decode(reader)?,
            rejection_penalty_secs: f64::decode(reader)?,
            accumulation_window: Duration::decode(reader)?,
            batching_threshold: Duration::decode(reader)?,
            gamma: f64::decode(reader)?,
            k_factor: f64::decode(reader)?,
            rejection_deadline: Duration::decode(reader)?,
            max_first_mile: Duration::decode(reader)?,
            use_batching: bool::decode(reader)?,
            use_reshuffle: bool::decode(reader)?,
            use_bfs_sparsification: bool::decode(reader)?,
            use_angular_distance: bool::decode(reader)?,
            num_threads: usize::decode(reader)?,
            solver: SolverKind::decode(reader)?,
        };
        config.validate().map_err(|err| DecodeError::Invalid(format!("DispatchConfig: {err}")))?;
        Ok(config)
    }
}

/// Reads a little-endian `u32` at byte offset `at`. Infallible by
/// construction (fixed-size copy), so frame parsers that have already
/// length-checked their input need no `try_into().expect(..)`.
///
/// # Panics
/// Slice-indexes out of bounds if `bytes.len() < at + 4`; callers must
/// length-check first (the WAL/checkpoint readers do).
pub fn u32_le_at(bytes: &[u8], at: usize) -> u32 {
    let mut word = [0u8; 4];
    word.copy_from_slice(&bytes[at..at + 4]);
    u32::from_le_bytes(word)
}

/// Reads a little-endian `u64` at byte offset `at`. See [`u32_le_at`].
///
/// # Panics
/// Slice-indexes out of bounds if `bytes.len() < at + 8`; callers must
/// length-check first.
pub fn u64_le_at(bytes: &[u8], at: usize) -> u64 {
    let mut word = [0u8; 8];
    word.copy_from_slice(&bytes[at..at + 8]);
    u64::from_le_bytes(word)
}

/// CRC-32/ISO-HDLC (the zlib/PNG polynomial `0xEDB88320`), table-driven.
/// Used by the WAL record frame and checkpoint container to detect
/// corruption; not a cryptographic integrity check.
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = build_crc_table();
    let mut crc = !0u32;
    for &byte in bytes {
        let index = ((crc ^ u32::from(byte)) & 0xFF) as usize;
        crc = (crc >> 8) ^ TABLE[index];
    }
    !crc
}

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Codec + PartialEq + fmt::Debug>(value: T) {
        let bytes = value.to_bytes();
        assert_eq!(T::from_bytes(&bytes).expect("roundtrip decodes"), value);
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(0u8);
        roundtrip(255u8);
        roundtrip(0xDEAD_BEEFu32);
        roundtrip(u64::MAX);
        roundtrip(usize::MAX);
        roundtrip(true);
        roundtrip(false);
        roundtrip(String::from("Δ-window"));
        roundtrip(Option::<u32>::None);
        roundtrip(Some(7u32));
        roundtrip(vec![1u64, 2, 3]);
        roundtrip((3u32, 4u64));
        roundtrip([1.0f64, 2.5, -0.0]);
    }

    #[test]
    fn floats_roundtrip_bit_exactly() {
        for value in [0.0, -0.0, 1.0 / 3.0, f64::MIN_POSITIVE, 1e300, -1e-300] {
            let bytes = value.to_bytes();
            let back = f64::from_bytes(&bytes).unwrap();
            assert_eq!(back.to_bits(), value.to_bits());
        }
    }

    #[test]
    fn domain_types_roundtrip() {
        roundtrip(TimePoint::from_hms(12, 34, 56));
        roundtrip(Duration::from_mins(7.25));
        roundtrip(HourSlot::new(23));
        roundtrip(NodeId(42));
        roundtrip(EdgeId(7));
        roundtrip(OrderId(u64::MAX));
        roundtrip(VehicleId(9));
        roundtrip(Order::new(
            OrderId(3),
            NodeId(1),
            NodeId(2),
            TimePoint::from_hms(12, 0, 0),
            2,
            Duration::from_mins(9.0),
        ));
        for kind in SolverKind::ALL {
            roundtrip(kind);
        }
        roundtrip(DispatchConfig::default());
    }

    #[test]
    fn invalid_values_yield_typed_errors_not_panics() {
        // A negative duration on the wire.
        let bytes = (-1.0f64).to_bytes();
        assert!(matches!(Duration::from_bytes(&bytes), Err(DecodeError::Invalid(_))));
        // A NaN time point.
        let bytes = f64::NAN.to_bytes();
        assert!(matches!(TimePoint::from_bytes(&bytes), Err(DecodeError::Invalid(_))));
        // An out-of-range hour slot.
        assert!(matches!(HourSlot::from_bytes(&[24]), Err(DecodeError::Invalid(_))));
        // An unknown solver tag.
        assert!(matches!(SolverKind::from_bytes(&[200]), Err(DecodeError::Invalid(_))));
        // A zero-item order.
        let mut bytes = Vec::new();
        OrderId(1).encode(&mut bytes);
        NodeId(0).encode(&mut bytes);
        NodeId(1).encode(&mut bytes);
        TimePoint::MIDNIGHT.encode(&mut bytes);
        0u32.encode(&mut bytes);
        Duration::ZERO.encode(&mut bytes);
        assert!(matches!(Order::from_bytes(&bytes), Err(DecodeError::Invalid(_))));
    }

    #[test]
    fn truncation_yields_eof_not_panics() {
        let full = Order::new(
            OrderId(3),
            NodeId(1),
            NodeId(2),
            TimePoint::from_hms(12, 0, 0),
            2,
            Duration::from_mins(9.0),
        )
        .to_bytes();
        for cut in 0..full.len() {
            let err = Order::from_bytes(&full[..cut]).expect_err("truncated input must fail");
            assert!(matches!(err, DecodeError::UnexpectedEof { .. }), "cut at {cut} gave {err:?}");
        }
    }

    #[test]
    fn corrupt_length_prefix_is_rejected_before_allocation() {
        // A Vec claiming u64::MAX elements with 2 bytes of payload.
        let mut bytes = Vec::new();
        u64::MAX.encode(&mut bytes);
        bytes.extend_from_slice(&[1, 2]);
        assert!(matches!(Vec::<u64>::from_bytes(&bytes), Err(DecodeError::LengthOverflow { .. })));
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut bytes = 7u32.to_bytes();
        bytes.push(0);
        assert!(matches!(u32::from_bytes(&bytes), Err(DecodeError::Invalid(_))));
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // The canonical CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        // Sensitive to every bit.
        assert_ne!(crc32(b"foodmatch"), crc32(b"foodmatcg"));
    }
}
