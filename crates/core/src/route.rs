//! Route plans and the exhaustive quickest-route planner (Definition 3).
//!
//! A route plan is a sequence of pick-up and drop-off stops in which every
//! order's restaurant appears before its customer. Because `MAXO` is small
//! (3 at Swiggy), the paper — and this reproduction — finds the *quickest*
//! plan by enumerating all feasible permutations; we add branch-and-bound
//! pruning and reuse a small pairwise distance matrix so each evaluation
//! costs a handful of shortest-path queries rather than hundreds.
//!
//! Two entry points are provided:
//!
//! * [`plan_optimal_route`] — plan for a vehicle standing at a known node
//!   (used for marginal costs, Greedy, KM, FoodMatch edges).
//! * [`plan_optimal_route_free_start`] — plan where the vehicle is assumed to
//!   start at the first pick-up of the plan itself; this is the "simulated
//!   vehicle" of the batching stage (§IV-B1).

use crate::order::{Order, OrderId};
use foodmatch_roadnet::{Duration, NodeId, ShortestPathEngine, TimePoint};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};

/// Whether a stop picks food up from a restaurant or drops it off at the
/// customer.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum StopAction {
    /// Collect the order at its restaurant node.
    Pickup,
    /// Deliver the order at its customer node.
    Dropoff,
}

/// One stop of a route plan.
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub struct Stop {
    /// The order being picked up or dropped off.
    pub order: OrderId,
    /// The road-network node of the stop.
    pub node: NodeId,
    /// Pickup or drop-off.
    pub action: StopAction,
}

/// An ordered sequence of stops fulfilling a set of orders (Definition 3).
#[derive(Clone, PartialEq, Debug, Default, Serialize, Deserialize)]
pub struct RoutePlan {
    /// The stops in visiting order.
    pub stops: Vec<Stop>,
}

impl RoutePlan {
    /// An empty plan (vehicle with nothing to do).
    pub fn empty() -> Self {
        RoutePlan { stops: Vec::new() }
    }

    /// True if the plan contains no stops.
    pub fn is_empty(&self) -> bool {
        self.stops.is_empty()
    }

    /// The node of the first stop, if any.
    pub fn first_node(&self) -> Option<NodeId> {
        self.stops.first().map(|s| s.node)
    }

    /// The node of the first *pick-up* stop, if any — `π[1]^r` in the
    /// paper's notation, the anchor used by the sparsified FoodGraph.
    pub fn first_pickup_node(&self) -> Option<NodeId> {
        self.stops.iter().find(|s| s.action == StopAction::Pickup).map(|s| s.node)
    }

    /// Checks that the plan is structurally valid for the given orders:
    /// every not-yet-picked-up order has exactly one pickup followed (not
    /// necessarily immediately) by exactly one drop-off, every picked-up
    /// order has exactly one drop-off and no pickup, stops reference the
    /// right nodes, and no foreign orders appear.
    pub fn validate(&self, orders: &[PlannedOrder]) -> Result<(), String> {
        // BTreeMap: the final sweep below reports the *first* offending
        // order, so the map's iteration order decides which error message
        // surfaces — keep it the smallest order id, not hasher order.
        let expected: BTreeMap<OrderId, &PlannedOrder> =
            orders.iter().map(|p| (p.order.id, p)).collect();
        let mut pickup_seen: HashMap<OrderId, usize> = HashMap::new();
        let mut dropoff_seen: HashMap<OrderId, usize> = HashMap::new();

        for (idx, stop) in self.stops.iter().enumerate() {
            let Some(planned) = expected.get(&stop.order) else {
                return Err(format!("stop {idx} references unknown order {}", stop.order));
            };
            match stop.action {
                StopAction::Pickup => {
                    if planned.picked_up {
                        return Err(format!(
                            "order {} is already on board but has a pickup stop",
                            stop.order
                        ));
                    }
                    if stop.node != planned.order.restaurant {
                        return Err(format!("pickup for {} is not at its restaurant", stop.order));
                    }
                    if pickup_seen.insert(stop.order, idx).is_some() {
                        return Err(format!("order {} is picked up twice", stop.order));
                    }
                }
                StopAction::Dropoff => {
                    if stop.node != planned.order.customer {
                        return Err(format!("drop-off for {} is not at its customer", stop.order));
                    }
                    if !planned.picked_up && !pickup_seen.contains_key(&stop.order) {
                        return Err(format!(
                            "order {} is dropped off before being picked up",
                            stop.order
                        ));
                    }
                    if dropoff_seen.insert(stop.order, idx).is_some() {
                        return Err(format!("order {} is dropped off twice", stop.order));
                    }
                }
            }
        }

        for (id, planned) in expected {
            if !dropoff_seen.contains_key(&id) {
                return Err(format!("order {id} is never dropped off"));
            }
            if !planned.picked_up && !pickup_seen.contains_key(&id) {
                return Err(format!("order {id} is never picked up"));
            }
        }
        Ok(())
    }
}

/// An order together with its pickup state, as input to the route planner.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PlannedOrder {
    /// The order to plan for.
    pub order: Order,
    /// Whether the food is already on board the vehicle.
    pub picked_up: bool,
}

impl PlannedOrder {
    /// A not-yet-picked-up order.
    pub fn pending(order: Order) -> Self {
        PlannedOrder { order, picked_up: false }
    }

    /// An order already on board (only its drop-off remains).
    pub fn on_board(order: Order) -> Self {
        PlannedOrder { order, picked_up: true }
    }
}

/// Projected delivery of one order under an evaluated route plan.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ProjectedDelivery {
    /// The order delivered.
    pub order: OrderId,
    /// When the plan projects the drop-off to happen.
    pub delivered_at: TimePoint,
    /// The extra delivery time (Definition 7) of the order under this plan,
    /// in seconds.
    pub xdt_secs: f64,
}

/// The quickest route plan for a set of orders together with its cost
/// break-down.
#[derive(Clone, Debug, PartialEq)]
pub struct EvaluatedRoute {
    /// The stop sequence.
    pub plan: RoutePlan,
    /// Sum of per-order extra delivery times (the `Cost(v, O)` of Eq. 4), in
    /// seconds.
    pub cost_secs: f64,
    /// Total driving time of the plan (waiting at restaurants excluded).
    pub driving_time: Duration,
    /// Total time spent waiting at restaurants for food to become ready.
    pub waiting_time: Duration,
    /// Projected delivery time and XDT of every order.
    pub deliveries: Vec<ProjectedDelivery>,
    /// Node where the plan starts (the vehicle location, or the first stop
    /// for free-start plans).
    pub start_node: NodeId,
    /// Projected completion time of the final stop.
    pub finish_at: TimePoint,
}

impl EvaluatedRoute {
    /// The node of the first pick-up stop, if any.
    pub fn first_pickup_node(&self) -> Option<NodeId> {
        self.plan.first_pickup_node()
    }
}

/// Plans the quickest route for `orders` starting from `start` at
/// `start_time`.
///
/// Returns `None` if any required node is unreachable from the tour. With no
/// orders the result is an empty plan of zero cost.
///
/// # Panics
/// Panics if more than five orders are supplied (exhaustive search would
/// blow up; the paper's `MAXO` is 3).
pub fn plan_optimal_route(
    start: NodeId,
    start_time: TimePoint,
    orders: &[PlannedOrder],
    engine: &ShortestPathEngine,
) -> Option<EvaluatedRoute> {
    plan_route_inner(Some(start), start_time, orders, engine)
}

/// Plans the quickest route where the vehicle is assumed to already stand at
/// the first stop of the plan (zero first leg). This is the "simulated
/// vehicle" used to weigh order-graph edges during batching (§IV-B1).
pub fn plan_optimal_route_free_start(
    start_time: TimePoint,
    orders: &[PlannedOrder],
    engine: &ShortestPathEngine,
) -> Option<EvaluatedRoute> {
    plan_route_inner(None, start_time, orders, engine)
}

fn plan_route_inner(
    start: Option<NodeId>,
    start_time: TimePoint,
    orders: &[PlannedOrder],
    engine: &ShortestPathEngine,
) -> Option<EvaluatedRoute> {
    assert!(
        orders.len() <= 5,
        "exhaustive route planning is limited to 5 orders, got {}",
        orders.len()
    );

    if orders.is_empty() {
        let node = start.unwrap_or(NodeId(0));
        return Some(EvaluatedRoute {
            plan: RoutePlan::empty(),
            cost_secs: 0.0,
            driving_time: Duration::ZERO,
            waiting_time: Duration::ZERO,
            deliveries: Vec::new(),
            start_node: node,
            finish_at: start_time,
        });
    }

    // Gather the distinct nodes the tour can touch and build a small
    // travel-time matrix over them with one one-to-many query per node.
    let mut nodes: Vec<NodeId> = Vec::new();
    let mut index_of = HashMap::new();
    let intern = |node: NodeId, nodes: &mut Vec<NodeId>, index_of: &mut HashMap<NodeId, usize>| {
        *index_of.entry(node).or_insert_with(|| {
            nodes.push(node);
            nodes.len() - 1
        })
    };
    if let Some(s) = start {
        intern(s, &mut nodes, &mut index_of);
    }
    for planned in orders {
        if !planned.picked_up {
            intern(planned.order.restaurant, &mut nodes, &mut index_of);
        }
        intern(planned.order.customer, &mut nodes, &mut index_of);
    }

    let mut matrix = vec![vec![None; nodes.len()]; nodes.len()];
    for (i, &from) in nodes.iter().enumerate() {
        let row = engine.travel_times_to_many(from, &nodes, start_time);
        for (j, d) in row.into_iter().enumerate() {
            matrix[i][j] = d.map(|d| d.as_secs_f64());
        }
    }

    // Shortest delivery time per order (Definition 6), needed for XDT.
    let mut sdt_secs = Vec::with_capacity(orders.len());
    for planned in orders {
        let sp = engine
            .travel_time(planned.order.restaurant, planned.order.customer, start_time)?
            .as_secs_f64();
        sdt_secs.push(planned.order.prep_time.as_secs_f64() + sp);
    }

    let mut search = Search {
        orders,
        sdt_secs: &sdt_secs,
        matrix: &matrix,
        index_of: &index_of,
        best: None,
        best_cost: f64::INFINITY,
    };
    let initial_state: Vec<OrderState> = orders
        .iter()
        .map(|p| if p.picked_up { OrderState::OnBoard } else { OrderState::NeedsPickup })
        .collect();
    let start_idx = start.map(|s| index_of[&s]);
    search.explore(start_idx, start_time, initial_state, Vec::new(), 0.0, 0.0, 0.0, Vec::new());

    let best = search.best?;
    let start_node = start.unwrap_or_else(|| best.plan.first_node().expect("non-empty plan"));
    Some(EvaluatedRoute { start_node, ..best })
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum OrderState {
    NeedsPickup,
    OnBoard,
    Delivered,
}

struct Search<'a> {
    orders: &'a [PlannedOrder],
    sdt_secs: &'a [f64],
    matrix: &'a [Vec<Option<f64>>],
    index_of: &'a HashMap<NodeId, usize>,
    best: Option<EvaluatedRoute>,
    best_cost: f64,
}

impl Search<'_> {
    #[allow(clippy::too_many_arguments)]
    fn explore(
        &mut self,
        current: Option<usize>,
        now: TimePoint,
        states: Vec<OrderState>,
        stops: Vec<Stop>,
        cost_so_far: f64,
        driving_so_far: f64,
        waiting_so_far: f64,
        deliveries: Vec<ProjectedDelivery>,
    ) {
        // Branch-and-bound: accumulated XDT only grows as more orders are
        // delivered, so any partial cost at or above the best is hopeless.
        if cost_so_far >= self.best_cost {
            return;
        }
        if states.iter().all(|s| *s == OrderState::Delivered) {
            self.best_cost = cost_so_far;
            self.best = Some(EvaluatedRoute {
                plan: RoutePlan { stops },
                cost_secs: cost_so_far,
                driving_time: Duration::from_secs_f64(driving_so_far),
                waiting_time: Duration::from_secs_f64(waiting_so_far),
                deliveries,
                start_node: NodeId(0), // overwritten by the caller
                finish_at: now,
            });
            return;
        }

        for (i, state) in states.iter().enumerate() {
            let planned = &self.orders[i];
            let (target, action) = match state {
                OrderState::NeedsPickup => (planned.order.restaurant, StopAction::Pickup),
                OrderState::OnBoard => (planned.order.customer, StopAction::Dropoff),
                OrderState::Delivered => continue,
            };
            let target_idx = self.index_of[&target];
            let travel = match current {
                Some(cur) => match self.matrix[cur][target_idx] {
                    Some(t) => t,
                    None => continue, // unreachable along this branch
                },
                None => 0.0,
            };
            let arrival = now + Duration::from_secs_f64(travel);

            let mut next_states = states.clone();
            let mut next_stops = stops.clone();
            next_stops.push(Stop { order: planned.order.id, node: target, action });
            let mut next_deliveries = deliveries.clone();
            let mut next_cost = cost_so_far;
            let mut next_wait = waiting_so_far;
            let next_now;
            match action {
                StopAction::Pickup => {
                    next_states[i] = OrderState::OnBoard;
                    let ready = planned.order.ready_at();
                    let depart = arrival.max(ready);
                    next_wait += depart.saturating_since(arrival).as_secs_f64();
                    next_now = depart;
                }
                StopAction::Dropoff => {
                    next_states[i] = OrderState::Delivered;
                    let edt = arrival.saturating_since(planned.order.placed_at).as_secs_f64();
                    let xdt = edt - self.sdt_secs[i];
                    next_cost += xdt;
                    next_deliveries.push(ProjectedDelivery {
                        order: planned.order.id,
                        delivered_at: arrival,
                        xdt_secs: xdt,
                    });
                    next_now = arrival;
                }
            }
            self.explore(
                Some(target_idx),
                next_now,
                next_states,
                next_stops,
                next_cost,
                driving_so_far + travel,
                next_wait,
                next_deliveries,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use foodmatch_roadnet::generators::GridCityBuilder;
    use foodmatch_roadnet::{CongestionProfile, RoadClass};

    /// A free-flow 5×5 grid, 250 m spacing, all local roads.
    fn grid() -> (foodmatch_roadnet::RoadNetwork, GridCityBuilder) {
        let b =
            GridCityBuilder::new(5, 5).congestion(CongestionProfile::free_flow()).major_every(0);
        (b.build(), b)
    }

    fn edge_secs() -> f64 {
        250.0 / RoadClass::Local.free_flow_speed_mps()
    }

    fn order(
        id: u64,
        restaurant: NodeId,
        customer: NodeId,
        placed_hms: (u32, u32),
        prep_mins: f64,
    ) -> Order {
        Order::new(
            OrderId(id),
            restaurant,
            customer,
            TimePoint::from_hms(placed_hms.0, placed_hms.1, 0),
            1,
            Duration::from_mins(prep_mins),
        )
    }

    #[test]
    fn empty_order_set_gives_empty_plan() {
        let (net, _) = grid();
        let engine = ShortestPathEngine::cached(net);
        let r = plan_optimal_route(NodeId(0), TimePoint::from_hms(12, 0, 0), &[], &engine).unwrap();
        assert!(r.plan.is_empty());
        assert_eq!(r.cost_secs, 0.0);
        assert_eq!(r.driving_time, Duration::ZERO);
    }

    #[test]
    fn single_order_route_is_pickup_then_dropoff() {
        let (net, b) = grid();
        let engine = ShortestPathEngine::cached(net);
        let start = b.node_at(0, 0);
        let o = order(1, b.node_at(0, 2), b.node_at(4, 2), (12, 0), 5.0);
        let t = TimePoint::from_hms(12, 0, 0);
        let r = plan_optimal_route(start, t, &[PlannedOrder::pending(o)], &engine).unwrap();
        assert_eq!(r.plan.stops.len(), 2);
        assert_eq!(r.plan.stops[0].action, StopAction::Pickup);
        assert_eq!(r.plan.stops[1].action, StopAction::Dropoff);
        assert_eq!(r.first_pickup_node(), Some(o.restaurant));
        r.plan.validate(&[PlannedOrder::pending(o)]).unwrap();
        // First mile = 2 edges, prep 5 min = 300 s > first mile, last mile = 4 edges.
        let first_mile = 2.0 * edge_secs();
        let last_mile = 4.0 * edge_secs();
        let expected_edt = first_mile.max(300.0) + last_mile;
        let expected_xdt = expected_edt - (300.0 + last_mile);
        assert!(
            (r.cost_secs - expected_xdt).abs() < 1e-6,
            "cost {} vs {}",
            r.cost_secs,
            expected_xdt
        );
        assert!((r.waiting_time.as_secs_f64() - (300.0 - first_mile)).abs() < 1e-6);
    }

    #[test]
    fn waiting_disappears_when_prep_is_short() {
        let (net, b) = grid();
        let engine = ShortestPathEngine::cached(net);
        let start = b.node_at(0, 0);
        let o = order(1, b.node_at(0, 4), b.node_at(4, 4), (12, 0), 0.5);
        let t = TimePoint::from_hms(12, 0, 0);
        let r = plan_optimal_route(start, t, &[PlannedOrder::pending(o)], &engine).unwrap();
        assert_eq!(r.waiting_time, Duration::ZERO);
        // Prep finished before the vehicle arrived, so XDT = first mile − prep
        // (EDT = first + last, SDT = prep + last).
        assert!((r.cost_secs - (4.0 * edge_secs() - 30.0)).abs() < 1e-6);
    }

    #[test]
    fn on_board_order_only_needs_dropoff() {
        let (net, b) = grid();
        let engine = ShortestPathEngine::cached(net);
        let start = b.node_at(2, 2);
        let o = order(1, b.node_at(0, 0), b.node_at(4, 4), (11, 30), 10.0);
        let r = plan_optimal_route(
            start,
            TimePoint::from_hms(12, 0, 0),
            &[PlannedOrder::on_board(o)],
            &engine,
        )
        .unwrap();
        assert_eq!(r.plan.stops.len(), 1);
        assert_eq!(r.plan.stops[0].action, StopAction::Dropoff);
        r.plan.validate(&[PlannedOrder::on_board(o)]).unwrap();
    }

    #[test]
    fn two_orders_prefer_the_cheaper_interleaving() {
        let (net, b) = grid();
        let engine = ShortestPathEngine::cached(net);
        // Both restaurants near the start, customers on the far side: the
        // optimal plan picks up both before dropping off either.
        let o1 = order(1, b.node_at(0, 1), b.node_at(4, 3), (12, 0), 1.0);
        let o2 = order(2, b.node_at(0, 2), b.node_at(4, 4), (12, 0), 1.0);
        let start = b.node_at(0, 0);
        let t = TimePoint::from_hms(12, 5, 0);
        let orders = [PlannedOrder::pending(o1), PlannedOrder::pending(o2)];
        let r = plan_optimal_route(start, t, &orders, &engine).unwrap();
        r.plan.validate(&orders).unwrap();
        let pickups_first = r.plan.stops[0].action == StopAction::Pickup
            && r.plan.stops[1].action == StopAction::Pickup;
        assert!(pickups_first, "expected both pickups before any drop-off: {:?}", r.plan.stops);
    }

    #[test]
    fn optimal_route_beats_naive_sequential_plan() {
        let (net, b) = grid();
        let engine = ShortestPathEngine::cached(net);
        let start = b.node_at(2, 0);
        let o1 = order(1, b.node_at(0, 2), b.node_at(0, 4), (12, 0), 2.0);
        let o2 = order(2, b.node_at(4, 2), b.node_at(4, 4), (12, 0), 2.0);
        let o3 = order(3, b.node_at(2, 2), b.node_at(2, 4), (12, 0), 2.0);
        let t = TimePoint::from_hms(12, 0, 0);
        let orders =
            [PlannedOrder::pending(o1), PlannedOrder::pending(o2), PlannedOrder::pending(o3)];
        let best = plan_optimal_route(start, t, &orders, &engine).unwrap();
        best.plan.validate(&orders).unwrap();

        // Hand-rolled "serve orders one at a time in id order" plan cost.
        let mut naive_cost = 0.0;
        let mut now = t;
        let mut loc = start;
        for planned in &orders {
            let o = planned.order;
            let to_rest = engine.travel_time(loc, o.restaurant, t).unwrap();
            let arrive = now + to_rest;
            let depart = arrive.max(o.ready_at());
            let to_cust = engine.travel_time(o.restaurant, o.customer, t).unwrap();
            let delivered = depart + to_cust;
            let sdt = o.prep_time.as_secs_f64() + to_cust.as_secs_f64();
            naive_cost += delivered.saturating_since(o.placed_at).as_secs_f64() - sdt;
            now = delivered;
            loc = o.customer;
        }
        assert!(
            best.cost_secs <= naive_cost + 1e-6,
            "optimal {} > naive {naive_cost}",
            best.cost_secs
        );
    }

    #[test]
    fn free_start_plan_starts_at_a_restaurant() {
        let (net, b) = grid();
        let engine = ShortestPathEngine::cached(net);
        let o1 = order(1, b.node_at(1, 1), b.node_at(3, 3), (12, 0), 3.0);
        let o2 = order(2, b.node_at(1, 2), b.node_at(3, 4), (12, 0), 3.0);
        let orders = [PlannedOrder::pending(o1), PlannedOrder::pending(o2)];
        let r =
            plan_optimal_route_free_start(TimePoint::from_hms(12, 0, 0), &orders, &engine).unwrap();
        r.plan.validate(&orders).unwrap();
        assert_eq!(r.start_node, r.plan.first_node().unwrap());
        assert_eq!(r.plan.stops[0].action, StopAction::Pickup);
    }

    #[test]
    fn single_order_free_start_has_zero_cost() {
        // A lone order with a simulated vehicle parked at its restaurant
        // achieves exactly the shortest delivery time, so XDT = 0 — this is
        // what makes the initial AvgCost of the order graph zero.
        let (net, b) = grid();
        let engine = ShortestPathEngine::cached(net);
        let o = order(1, b.node_at(2, 2), b.node_at(0, 0), (12, 0), 6.0);
        let r = plan_optimal_route_free_start(
            TimePoint::from_hms(12, 0, 0),
            &[PlannedOrder::pending(o)],
            &engine,
        )
        .unwrap();
        assert!(r.cost_secs.abs() < 1e-6, "expected zero XDT, got {}", r.cost_secs);
    }

    #[test]
    fn unreachable_customer_returns_none() {
        use foodmatch_roadnet::{GeoPoint, RoadNetworkBuilder};
        let mut builder = RoadNetworkBuilder::new();
        let a = builder.add_node(GeoPoint::new(0.0, 0.0));
        let bnode = builder.add_node(GeoPoint::new(0.0, 0.01));
        let island = builder.add_node(GeoPoint::new(1.0, 1.0));
        builder.add_bidirectional(a, bnode, 500.0, RoadClass::Local);
        let net = builder.build();
        let engine = ShortestPathEngine::cached(net);
        let o = Order::new(OrderId(1), bnode, island, TimePoint::MIDNIGHT, 1, Duration::ZERO);
        assert!(plan_optimal_route(a, TimePoint::MIDNIGHT, &[PlannedOrder::pending(o)], &engine)
            .is_none());
    }

    #[test]
    fn validate_rejects_malformed_plans() {
        let o = order(1, NodeId(1), NodeId(2), (12, 0), 5.0);
        let planned = [PlannedOrder::pending(o)];
        // Drop-off before pickup.
        let bad = RoutePlan {
            stops: vec![
                Stop { order: o.id, node: o.customer, action: StopAction::Dropoff },
                Stop { order: o.id, node: o.restaurant, action: StopAction::Pickup },
            ],
        };
        assert!(bad.validate(&planned).is_err());
        // Missing drop-off.
        let incomplete = RoutePlan {
            stops: vec![Stop { order: o.id, node: o.restaurant, action: StopAction::Pickup }],
        };
        assert!(incomplete.validate(&planned).is_err());
        // Unknown order.
        let foreign = RoutePlan {
            stops: vec![Stop { order: OrderId(99), node: NodeId(1), action: StopAction::Pickup }],
        };
        assert!(foreign.validate(&planned).is_err());
    }

    #[test]
    #[should_panic(expected = "limited to 5 orders")]
    fn too_many_orders_panics() {
        let (net, b) = grid();
        let engine = ShortestPathEngine::cached(net);
        let orders: Vec<PlannedOrder> = (0..6)
            .map(|i| {
                PlannedOrder::pending(order(i, b.node_at(0, 0), b.node_at(1, 1), (12, 0), 1.0))
            })
            .collect();
        let _ =
            plan_optimal_route(b.node_at(2, 2), TimePoint::from_hms(12, 0, 0), &orders, &engine);
    }
}
