//! Food orders (Definition 2 of the paper).

use foodmatch_roadnet::{Duration, NodeId, TimePoint};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a food order, unique within a simulation run.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct OrderId(pub u64);

impl OrderId {
    /// The id as a raw integer.
    pub fn value(self) -> u64 {
        self.0
    }
}

impl fmt::Debug for OrderId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "o{}", self.0)
    }
}

impl fmt::Display for OrderId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "o{}", self.0)
    }
}

/// A food order `o = ⟨o^r, o^c, o^t, o^i, o^p⟩` (Definition 2).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Order {
    /// Unique identifier.
    pub id: OrderId,
    /// `o^r`: restaurant (pick-up) node.
    pub restaurant: NodeId,
    /// `o^c`: customer (drop-off) node.
    pub customer: NodeId,
    /// `o^t`: the time the order was placed.
    pub placed_at: TimePoint,
    /// `o^i`: number of items in the order.
    pub items: u32,
    /// `o^p`: expected food preparation time.
    pub prep_time: Duration,
}

impl Order {
    /// Creates an order, validating that it has at least one item.
    ///
    /// # Panics
    /// Panics if `items == 0`.
    pub fn new(
        id: OrderId,
        restaurant: NodeId,
        customer: NodeId,
        placed_at: TimePoint,
        items: u32,
        prep_time: Duration,
    ) -> Self {
        assert!(items > 0, "an order must contain at least one item");
        Order { id, restaurant, customer, placed_at, items, prep_time }
    }

    /// The earliest time the food can leave the restaurant:
    /// `o^t + o^p`.
    pub fn ready_at(&self) -> TimePoint {
        self.placed_at + self.prep_time
    }

    /// How long this order has been waiting for assignment at time `now`
    /// (zero if `now` precedes the order).
    pub fn age_at(&self, now: TimePoint) -> Duration {
        now.saturating_since(self.placed_at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Order {
        Order::new(
            OrderId(7),
            NodeId(1),
            NodeId(2),
            TimePoint::from_hms(12, 0, 0),
            3,
            Duration::from_mins(10.0),
        )
    }

    #[test]
    fn ready_at_adds_prep_time() {
        let o = sample();
        assert_eq!(o.ready_at(), TimePoint::from_hms(12, 10, 0));
    }

    #[test]
    fn age_is_clamped_before_placement() {
        let o = sample();
        assert_eq!(o.age_at(TimePoint::from_hms(11, 0, 0)), Duration::ZERO);
        assert_eq!(o.age_at(TimePoint::from_hms(12, 5, 0)), Duration::from_mins(5.0));
    }

    #[test]
    fn order_id_formats_like_the_paper() {
        assert_eq!(format!("{}", OrderId(3)), "o3");
    }

    #[test]
    #[should_panic(expected = "at least one item")]
    fn zero_item_orders_rejected() {
        let _ =
            Order::new(OrderId(1), NodeId(0), NodeId(1), TimePoint::MIDNIGHT, 0, Duration::ZERO);
    }
}
