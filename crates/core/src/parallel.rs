//! Deterministic scoped fan-out for the dispatch hot path.
//!
//! Per-window dispatch work — FoodGraph per-vehicle edge construction,
//! batch route planning, pairwise merge-candidate evaluation, per-component
//! assignment solving — consists of many independent evaluations against
//! shared `Send + Sync` state. [`parallel_map`] fans such work out across
//! `std::thread::scope` workers while keeping the output *bit-for-bit
//! identical* to the serial path: items are split into contiguous chunks,
//! every worker writes only its own chunk, and results come back in input
//! order. [`DispatchConfig::effective_threads`](crate::DispatchConfig)
//! decides the fan-out width.
//!
//! The implementation lives in [`foodmatch_matching::parallel`] — the
//! workspace's dependency-free leaf crate — so the matching layer
//! ([`Decomposed`](foodmatch_matching::Decomposed)), the road network layer
//! (`ShortestPathEngine::warm_all`), and this crate all share one
//! primitive; this module re-exports it under the historical
//! `foodmatch_core::parallel` path.

pub use foodmatch_matching::parallel::parallel_map;
