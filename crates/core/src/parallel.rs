//! Deterministic scoped fan-out for the dispatch hot path.
//!
//! Per-window dispatch work — FoodGraph per-vehicle edge construction,
//! batch route planning, pairwise merge-candidate evaluation — consists of
//! many independent evaluations against a shared `Send + Sync`
//! [`ShortestPathEngine`](foodmatch_roadnet::ShortestPathEngine).
//! [`parallel_map`] fans such work out across `std::thread::scope` workers
//! while keeping the output *bit-for-bit identical* to the serial path:
//! items are split into contiguous chunks, every worker writes only its own
//! chunk, and results come back in input order.
//! [`DispatchConfig::effective_threads`](crate::DispatchConfig) decides the
//! fan-out width.
//!
//! The implementation lives in [`foodmatch_roadnet::parallel`] so the road
//! network layer can use the same primitive for concurrent per-hour-slot
//! index warm-up
//! ([`ShortestPathEngine::warm_all`](foodmatch_roadnet::ShortestPathEngine::warm_all));
//! this module re-exports it under the historical `foodmatch_core::parallel`
//! path.

pub use foodmatch_roadnet::parallel::parallel_map;
