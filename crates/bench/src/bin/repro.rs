//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro list                               # show available experiments
//! repro all [--quick]                      # run the whole suite
//! repro fig6cde [--seed 3]                 # run one experiment
//! repro dispatch --bench-out BENCH_dispatch.json   # machine-readable perf baseline
//! repro matching --solver dense-km         # pin the assignment solver
//! repro service --telemetry-out telemetry.json     # metrics + Chrome trace export
//! ```
//!
//! `--telemetry-out PATH` installs a global [`foodmatch_telemetry`] recorder
//! before the first experiment runs, then writes the aggregated metric
//! snapshot to `PATH` as JSON and the ring-buffered span trace to
//! `PATH` with a `.trace.json` suffix (Chrome trace-event format, loadable
//! in `chrome://tracing` or Perfetto).

use foodmatch_bench::experiments;
use foodmatch_bench::ExperimentContext;
use foodmatch_core::SolverKind;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
        return ExitCode::FAILURE;
    }

    let mut ctx = ExperimentContext::default();
    let mut names: Vec<String> = Vec::new();
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" => ctx.quick = true,
            "--seed" => match iter.next().and_then(|s| s.parse().ok()) {
                Some(seed) => ctx.seed = seed,
                None => {
                    eprintln!("--seed requires an integer argument");
                    return ExitCode::FAILURE;
                }
            },
            "--bench-out" => match iter.next() {
                Some(path) => ctx.bench_out = Some(path.into()),
                None => {
                    eprintln!("--bench-out requires a file path argument");
                    return ExitCode::FAILURE;
                }
            },
            "--telemetry-out" => match iter.next() {
                Some(path) => ctx.telemetry_out = Some(path.into()),
                None => {
                    eprintln!("--telemetry-out requires a file path argument");
                    return ExitCode::FAILURE;
                }
            },
            "--solver" => match iter.next().as_deref().and_then(SolverKind::parse) {
                Some(solver) => ctx.solver = Some(solver),
                None => {
                    eprintln!(
                        "--solver requires one of: {}",
                        SolverKind::ALL.map(|s| s.name()).join(", ")
                    );
                    return ExitCode::FAILURE;
                }
            },
            "-h" | "--help" => {
                usage();
                return ExitCode::SUCCESS;
            }
            other => names.push(other.to_string()),
        }
    }

    if names.iter().any(|n| n == "list") {
        println!("Available experiments:");
        for experiment in experiments::ALL {
            println!("  {:<10} {}", experiment.name, experiment.description);
        }
        return ExitCode::SUCCESS;
    }

    let to_run: Vec<&experiments::Experiment> = if names.iter().any(|n| n == "all") {
        experiments::ALL.iter().collect()
    } else {
        let mut selected = Vec::new();
        for name in &names {
            match experiments::find(name) {
                Some(experiment) => selected.push(experiment),
                None => {
                    eprintln!("unknown experiment '{name}' (try `repro list`)");
                    return ExitCode::FAILURE;
                }
            }
        }
        selected
    };

    if to_run.is_empty() {
        usage();
        return ExitCode::FAILURE;
    }

    println!(
        "# FoodMatch reproduction harness — seed {}, {} mode",
        ctx.seed,
        if ctx.quick { "quick" } else { "full" }
    );
    let recorder = ctx.telemetry_out.as_ref().map(|_| {
        let recorder = foodmatch_telemetry::Recorder::new();
        foodmatch_telemetry::install(recorder.clone());
        recorder
    });
    for experiment in to_run {
        let started = std::time::Instant::now();
        (experiment.run)(&ctx);
        println!("\n[{} finished in {:.1}s]", experiment.name, started.elapsed().as_secs_f64());
    }
    if let (Some(path), Some(recorder)) = (&ctx.telemetry_out, recorder) {
        foodmatch_telemetry::uninstall();
        if let Err(error) = write_telemetry(path, &recorder) {
            eprintln!("failed to write telemetry to {}: {error}", path.display());
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

/// Writes the metric snapshot to `path` and the span trace to a sibling
/// `<stem>.trace.json` in Chrome trace-event format.
fn write_telemetry(
    path: &std::path::Path,
    recorder: &foodmatch_telemetry::Recorder,
) -> std::io::Result<()> {
    let snapshot = recorder.telemetry.snapshot();
    std::fs::write(path, snapshot.to_json())?;
    println!("\ntelemetry snapshot written to {}", path.display());
    let trace_path = path.with_extension("trace.json");
    std::fs::write(&trace_path, recorder.trace.chrome_trace_json())?;
    println!("span trace written to {} ({} spans)", trace_path.display(), recorder.trace.len());
    Ok(())
}

fn usage() {
    eprintln!(
        "usage: repro <experiment|all|list> [--quick] [--seed N] [--bench-out FILE] \
         [--solver NAME] [--telemetry-out FILE]"
    );
    eprintln!("run `repro list` to see the available experiments");
    eprintln!("solvers: {}", SolverKind::ALL.map(|s| s.name()).join(", "));
}
