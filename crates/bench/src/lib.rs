//! # foodmatch-bench
//!
//! The experiment harness that regenerates every table and figure of the
//! paper's evaluation (§V), plus shared plumbing for the Criterion
//! micro-benchmarks.
//!
//! The entry point is the `repro` binary:
//!
//! ```text
//! cargo run --release -p foodmatch-bench --bin repro -- <experiment> [--quick] [--seed N]
//! cargo run --release -p foodmatch-bench --bin repro -- list
//! ```
//!
//! Each experiment prints a plain-text table whose rows correspond to the
//! series of the paper's figure (or the rows of the table). `EXPERIMENTS.md`
//! at the repository root records a measured run next to the paper's
//! reported numbers.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod experiments;
pub mod harness;

pub use harness::{ExperimentContext, RunSummary};
