//! Shared plumbing for the experiment harness: scenario caching, policy
//! runs, and summary extraction.

use foodmatch_core::{DispatchConfig, PolicyKind, SolverKind};
use foodmatch_roadnet::TimePoint;
use foodmatch_sim::SimulationReport;
use foodmatch_workload::{CityId, Scenario, ScenarioOptions};
use std::collections::HashMap;

/// Global options shared by all experiments.
#[derive(Clone, Debug)]
pub struct ExperimentContext {
    /// Seed of the synthetic "day" (the paper cross-validates over 6 days;
    /// run the harness with several seeds to do the same).
    pub seed: u64,
    /// Quick mode shrinks horizons and restricts the city list so that the
    /// whole suite finishes in minutes rather than hours.
    pub quick: bool,
    /// Where machine-readable benchmark results should be written
    /// (`--bench-out`); experiments that produce none ignore it.
    pub bench_out: Option<std::path::PathBuf>,
    /// Assignment-solver override (`--solver`): simulation-driving
    /// experiments route the matching stage through this solver instead of
    /// the config default.
    pub solver: Option<SolverKind>,
    /// Where the telemetry snapshot should be written after the run
    /// (`--telemetry-out`); when set, `repro` installs a global recorder
    /// before the first experiment starts.
    pub telemetry_out: Option<std::path::PathBuf>,
}

impl Default for ExperimentContext {
    fn default() -> Self {
        ExperimentContext {
            seed: 1,
            quick: false,
            bench_out: None,
            solver: None,
            telemetry_out: None,
        }
    }
}

impl ExperimentContext {
    /// The cities used for the Swiggy-style comparisons.
    pub fn swiggy_cities(&self) -> Vec<CityId> {
        if self.quick {
            vec![CityId::B, CityId::A]
        } else {
            CityId::SWIGGY.to_vec()
        }
    }

    /// All four cities (only Fig. 6(b) uses GrubHub).
    pub fn all_cities(&self) -> Vec<CityId> {
        let mut cities = self.swiggy_cities();
        cities.push(CityId::GrubHub);
        cities
    }

    /// The horizon used for head-to-head policy comparisons: the full lunch
    /// period (11:00–15:00), or a shorter slice in quick mode.
    pub fn comparison_options(&self) -> ScenarioOptions {
        let mut options = ScenarioOptions::lunch_peak(self.seed);
        if self.quick {
            options.start = TimePoint::from_hms(12, 0, 0);
            options.end = TimePoint::from_hms(13, 30, 0);
        }
        options
    }

    /// The horizon used for per-timeslot figures (a full day, or a
    /// lunch+evening slice in quick mode).
    pub fn full_day_options(&self) -> ScenarioOptions {
        let mut options = ScenarioOptions::full_day(self.seed);
        if self.quick {
            options.start = TimePoint::from_hms(11, 0, 0);
            options.end = TimePoint::from_hms(21, 0, 0);
        }
        options
    }

    /// The horizon used for parameter sweeps (shorter, since each sweep point
    /// is a full simulation run).
    pub fn sweep_options(&self) -> ScenarioOptions {
        ScenarioOptions {
            seed: self.seed,
            start: TimePoint::from_hms(12, 0, 0),
            end: TimePoint::from_hms(if self.quick { 13 } else { 14 }, 0, 0),
            vehicle_fraction: 1.0,
        }
    }

    /// Applies the `--solver` override (when given) to a dispatch
    /// configuration.
    pub fn apply_solver(&self, config: DispatchConfig) -> DispatchConfig {
        match self.solver {
            Some(solver) => DispatchConfig { solver, ..config },
            None => config,
        }
    }
}

/// The headline numbers extracted from one simulation run.
#[derive(Clone, Debug)]
pub struct RunSummary {
    /// City the run was on.
    pub city: CityId,
    /// Policy name.
    pub policy: String,
    /// Extra delivery time, hours per day.
    pub xdt_hours_per_day: f64,
    /// Orders per kilometre.
    pub orders_per_km: f64,
    /// Waiting time, hours per day.
    pub waiting_hours_per_day: f64,
    /// Rejected orders, percent of offered orders.
    pub rejection_pct: f64,
    /// Percentage of overflown windows (all slots).
    pub overflow_pct: f64,
    /// Percentage of overflown windows (peak slots only).
    pub overflow_peak_pct: f64,
    /// Mean per-window policy computation time, seconds.
    pub mean_compute_secs: f64,
    /// The full report, for experiments that need per-slot detail.
    pub report: SimulationReport,
}

impl RunSummary {
    fn from_report(city: CityId, report: SimulationReport) -> Self {
        RunSummary {
            city,
            policy: report.policy.clone(),
            xdt_hours_per_day: report.xdt_hours_per_day(),
            orders_per_km: report.orders_per_km(),
            waiting_hours_per_day: report.waiting_hours_per_day(),
            rejection_pct: report.rejection_rate_pct(),
            overflow_pct: report.overflow_pct(false),
            overflow_peak_pct: report.overflow_pct(true),
            mean_compute_secs: report.mean_window_compute_secs(),
            report,
        }
    }
}

/// Runs `policy` on `city` with the scenario `options`, after applying
/// `configure` to the city's default dispatcher configuration.
pub fn run_city(
    city: CityId,
    options: ScenarioOptions,
    policy: PolicyKind,
    configure: impl FnOnce(DispatchConfig) -> DispatchConfig,
) -> RunSummary {
    let scenario = Scenario::generate(city, options);
    let config = configure(scenario.default_config());
    let simulation = scenario.into_simulation_with(config);
    let mut policy = policy.build();
    let report = simulation.run(policy.as_mut());
    RunSummary::from_report(city, report)
}

/// Runs several policies on the *same* scenario so that comparisons are
/// apples-to-apples, returning one summary per policy.
pub fn run_policies(
    city: CityId,
    options: ScenarioOptions,
    policies: &[PolicyKind],
    configure: impl Fn(DispatchConfig) -> DispatchConfig,
) -> HashMap<PolicyKind, RunSummary> {
    let scenario = Scenario::generate(city, options);
    let config = configure(scenario.default_config());
    let simulation = scenario.into_simulation_with(config);
    policies
        .iter()
        .map(|&kind| {
            let mut policy = kind.build();
            let report = simulation.run(policy.as_mut());
            (kind, RunSummary::from_report(city, report))
        })
        .collect()
}

/// Formats a floating point cell with a fixed width.
pub fn cell(value: f64) -> String {
    if value.abs() >= 1000.0 {
        format!("{value:>10.0}")
    } else if value.abs() >= 10.0 {
        format!("{value:>10.1}")
    } else {
        format!("{value:>10.3}")
    }
}

/// Nearest-rank percentile of an ascending-sorted sample (0 for empty).
pub fn percentile(sorted: &[f64], pct: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((pct / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Prints a rule + header for an experiment section.
pub fn header(title: &str) {
    println!();
    println!("================================================================");
    println!("{title}");
    println!("================================================================");
}

/// The improvement of `ours` over `baseline` in percent, following Eq. 9 of
/// the paper (positive = FoodMatch better). For metrics where larger values
/// are better (O/Km), pass `higher_is_better = true`.
pub fn improvement_pct(baseline: f64, ours: f64, higher_is_better: bool) -> f64 {
    if baseline.abs() < 1e-12 {
        return 0.0;
    }
    if higher_is_better {
        (ours - baseline) / baseline * 100.0
    } else {
        (baseline - ours) / baseline * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn improvement_follows_equation_9() {
        assert!((improvement_pct(100.0, 70.0, false) - 30.0).abs() < 1e-9);
        assert!((improvement_pct(0.5, 0.6, true) - 20.0).abs() < 1e-6);
        assert_eq!(improvement_pct(0.0, 5.0, false), 0.0);
    }

    #[test]
    fn quick_context_shrinks_the_city_list() {
        let quick = ExperimentContext { quick: true, ..Default::default() };
        assert_eq!(quick.swiggy_cities().len(), 2);
        let full = ExperimentContext::default();
        assert_eq!(full.swiggy_cities().len(), 3);
        assert_eq!(full.all_cities().len(), 4);
    }

    #[test]
    fn cells_are_fixed_width() {
        assert_eq!(cell(1234.5).len(), 10);
        assert_eq!(cell(12.34).len(), 10);
        assert_eq!(cell(0.1234).len(), 10);
    }

    #[test]
    fn percentile_uses_nearest_rank() {
        let sorted = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&sorted, 50.0), 2.0);
        assert_eq!(percentile(&sorted, 90.0), 4.0);
        assert_eq!(percentile(&sorted, 1.0), 1.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    #[test]
    fn apply_solver_overrides_only_when_set() {
        let ctx = ExperimentContext::default();
        let config = ctx.apply_solver(DispatchConfig::default());
        assert_eq!(config.solver, SolverKind::DecomposedSparseKm);
        let ctx = ExperimentContext { solver: Some(SolverKind::DenseKm), ..ctx };
        assert_eq!(ctx.apply_solver(DispatchConfig::default()).solver, SolverKind::DenseKm);
    }

    #[test]
    fn run_city_produces_a_consistent_summary() {
        let options = ScenarioOptions {
            seed: 3,
            start: TimePoint::from_hms(12, 0, 0),
            end: TimePoint::from_hms(12, 30, 0),
            vehicle_fraction: 1.0,
        };
        let summary = run_city(CityId::GrubHub, options, PolicyKind::FoodMatch, |c| c);
        assert_eq!(summary.city, CityId::GrubHub);
        assert_eq!(summary.policy, "FoodMatch");
        assert!(summary.xdt_hours_per_day >= 0.0);
        assert!(summary.report.total_orders > 0);
    }
}
