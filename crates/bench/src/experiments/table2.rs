//! Table II: summary of the (synthetic) order-history datasets.

use crate::harness::ExperimentContext;
use foodmatch_workload::{Scenario, ScenarioOptions};

/// Prints one row per city preset: restaurants, vehicles, orders/day, mean
/// prep time, road-network nodes and edges — the columns of Table II.
pub fn run(ctx: &ExperimentContext) {
    crate::harness::header("Table II — dataset summary (synthetic presets)");
    println!(
        "{:<10} {:>8} {:>10} {:>12} {:>16} {:>8} {:>8}",
        "City", "# Rest.", "# Vehicles", "# Orders/day", "Prep (avg min)", "# Nodes", "# Edges"
    );
    for city in ctx.all_cities() {
        let scenario = Scenario::generate(city, ScenarioOptions::full_day(ctx.seed));
        let row = scenario.table2_row();
        println!(
            "{:<10} {:>8} {:>10} {:>12} {:>16.2} {:>8} {:>8}",
            city.name(),
            row.restaurants,
            row.vehicles,
            row.orders,
            row.avg_prep_mins,
            row.nodes,
            row.edges
        );
    }
    println!();
    println!("(Volumes are scaled ≈1/50 of the paper's Table II; proportions and");
    println!(" prep-time means match the paper — see DESIGN.md §1.)");
}
