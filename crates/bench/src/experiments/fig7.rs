//! Figure 7: the ablation study (a) and the fleet-size study (b–e).

use crate::harness::{cell, header, improvement_pct, run_city, run_policies, ExperimentContext};
use foodmatch_core::{DispatchConfig, PolicyKind};

/// Fig. 7(a): layered ablation — Batching & Reshuffling (B&R), plus
/// best-first sparsification (BFS), plus angular distance (A) — reported as
/// XDT improvement over vanilla KM.
pub fn fig7a(ctx: &ExperimentContext) {
    header("Fig. 7(a) — ablation: XDT improvement over KM");
    println!("{:<10} {:>10} {:>14} {:>18}", "City", "B&R %", "B&R+BFS %", "B&R+BFS+A %");
    for city in ctx.swiggy_cities() {
        // All variants run on the same scenario; only the config toggles vary.
        let km = run_policies(city, ctx.comparison_options(), &[PolicyKind::KuhnMunkres], |c| c)
            .remove(&PolicyKind::KuhnMunkres)
            .expect("km summary");
        let variant = |use_bfs: bool, use_angular: bool| {
            run_city(city, ctx.comparison_options(), PolicyKind::FoodMatch, |c| DispatchConfig {
                use_batching: true,
                use_reshuffle: true,
                use_bfs_sparsification: use_bfs,
                use_angular_distance: use_angular,
                ..c
            })
        };
        let br = variant(false, false);
        let br_bfs = variant(true, false);
        let br_bfs_a = variant(true, true);
        println!(
            "{:<10} {:>10.1} {:>14.1} {:>18.1}",
            city.name(),
            improvement_pct(km.xdt_hours_per_day, br.xdt_hours_per_day, false),
            improvement_pct(km.xdt_hours_per_day, br_bfs.xdt_hours_per_day, false),
            improvement_pct(km.xdt_hours_per_day, br_bfs_a.xdt_hours_per_day, false),
        );
    }
}

/// Fig. 7(b–e): FoodMatch with 20%–100% of the fleet on duty — XDT, O/Km,
/// waiting time and rejection rate.
pub fn fig7bcde(ctx: &ExperimentContext) {
    header("Fig. 7(b-e) — impact of the number of vehicles (FoodMatch)");
    let fractions: &[f64] = if ctx.quick { &[0.2, 0.6, 1.0] } else { &[0.2, 0.4, 0.6, 0.8, 1.0] };
    println!(
        "{:<10} {:>10} {:>12} {:>10} {:>12} {:>14}",
        "City", "Vehicles%", "XDT (h/d)", "O/Km", "WT (h/d)", "Rejections %"
    );
    for city in ctx.swiggy_cities() {
        for &fraction in fractions {
            let options = ctx.comparison_options().with_vehicle_fraction(fraction);
            let summary = run_city(city, options, PolicyKind::FoodMatch, |c| c);
            println!(
                "{:<10} {:>9.0}% {} {} {} {:>13.1}%",
                city.name(),
                fraction * 100.0,
                cell(summary.xdt_hours_per_day),
                cell(summary.orders_per_km),
                cell(summary.waiting_hours_per_day),
                summary.rejection_pct
            );
        }
    }
}
