//! Figure 8: parameter sweeps over the batching threshold η (a–c), the
//! accumulation window Δ (d–g) and the vehicle degree cap k (h–k).

use crate::harness::{cell, header, run_city, ExperimentContext};
use foodmatch_core::{DispatchConfig, PolicyKind};
use foodmatch_roadnet::Duration;

fn sweep_header(extra: &str) {
    println!(
        "{:<10} {:>10} {:>12} {:>10} {:>12} {:>16}",
        "City", extra, "XDT (h/d)", "O/Km", "WT (h/d)", "Total compute (s)"
    );
}

/// Fig. 8(a–c): XDT, O/Km and WT as the batching quality threshold η grows.
pub fn fig8_eta(ctx: &ExperimentContext) {
    header("Fig. 8(a-c) — impact of the batching threshold eta");
    let etas: &[f64] =
        if ctx.quick { &[30.0, 60.0, 120.0] } else { &[30.0, 60.0, 90.0, 120.0, 150.0] };
    sweep_header("eta (s)");
    for city in ctx.swiggy_cities() {
        for &eta in etas {
            let summary = run_city(city, ctx.sweep_options(), PolicyKind::FoodMatch, |c| {
                DispatchConfig { batching_threshold: Duration::from_secs_f64(eta), ..c }
            });
            println!(
                "{:<10} {:>10.0} {} {} {} {:>16.1}",
                city.name(),
                eta,
                cell(summary.xdt_hours_per_day),
                cell(summary.orders_per_km),
                cell(summary.waiting_hours_per_day),
                summary.report.total_compute_secs()
            );
        }
    }
}

/// Fig. 8(d–g): XDT, O/Km, WT and running time as the accumulation window Δ
/// grows from 1 to 4 minutes.
pub fn fig8_delta(ctx: &ExperimentContext) {
    header("Fig. 8(d-g) — impact of the accumulation window Delta");
    let deltas: &[f64] = if ctx.quick { &[1.0, 3.0] } else { &[1.0, 2.0, 3.0, 4.0] };
    sweep_header("Delta (m)");
    for city in ctx.swiggy_cities() {
        for &minutes in deltas {
            let summary = run_city(city, ctx.sweep_options(), PolicyKind::FoodMatch, |c| {
                DispatchConfig { accumulation_window: Duration::from_mins(minutes), ..c }
            });
            println!(
                "{:<10} {:>10.0} {} {} {} {:>16.1}",
                city.name(),
                minutes,
                cell(summary.xdt_hours_per_day),
                cell(summary.orders_per_km),
                cell(summary.waiting_hours_per_day),
                summary.report.total_compute_secs()
            );
        }
    }
}

/// Fig. 8(h–k): XDT, O/Km, WT and running time as the per-vehicle degree cap
/// factor k grows.
pub fn fig8_k(ctx: &ExperimentContext) {
    header("Fig. 8(h-k) — impact of the FoodGraph degree cap k");
    let ks: &[f64] = if ctx.quick { &[50.0, 200.0] } else { &[50.0, 100.0, 200.0, 300.0] };
    sweep_header("k factor");
    for city in ctx.swiggy_cities() {
        for &k in ks {
            let summary = run_city(city, ctx.sweep_options(), PolicyKind::FoodMatch, |c| {
                DispatchConfig { k_factor: k, ..c }
            });
            println!(
                "{:<10} {:>10.0} {} {} {} {:>16.1}",
                city.name(),
                k,
                cell(summary.xdt_hours_per_day),
                cell(summary.orders_per_km),
                cell(summary.waiting_hours_per_day),
                summary.report.total_compute_secs()
            );
        }
    }
}
