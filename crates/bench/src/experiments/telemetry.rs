//! Telemetry overhead benchmark: the metro dispatch loop with the
//! recorder off vs on.
//!
//! Not a figure of the paper — this experiment prices the observability
//! layer. The same metro workload (4-way sharded [`DispatchRouter`],
//! full ingest + lockstep stepping through the drain) runs in
//! alternating passes:
//!
//! * **recorder off** — no global recorder installed; every handle the
//!   stack acquires is inert, spans never read the clock.
//! * **recorder on** — a live [`foodmatch_telemetry::Recorder`]
//!   installed before the router is built, so every component holds live
//!   handles and the span ring fills with engine/solver/shard/service
//!   spans.
//!
//! The passes interleave (off, on, off, on, …) and each mode keeps its
//! best wall time, so the comparison is same-machine, same-minute. The
//! headline number is `overhead_pct` — how much slower the full loop
//! runs with telemetry recording — which the observability contract
//! keeps under 5% (`scripts/check_bench_regression.py` fails the build
//! otherwise; the check is self-contained in one file, not a
//! baseline diff).
//!
//! A recorder-on durable coda (WAL-logged ingest, a checkpoint
//! save/restore pair) then exercises the `wal.*` and `checkpoint.*`
//! instruments so the exported trace covers every span category.
//!
//! When `--telemetry-out` pre-installed a recorder for the whole run,
//! the "off" passes are not actually off; the JSON flags
//! `recorder_preinstalled` and the regression guard skips the overhead
//! gate.

use crate::harness::{header, ExperimentContext};
use foodmatch_core::PolicyKind;
use foodmatch_sim::{
    load_checkpoint, save_checkpoint, DispatchService, DurableDispatch, ServiceCheckpoint,
    WriteAheadLog,
};
use foodmatch_telemetry as telemetry;
use foodmatch_workload::{CityId, MetroOptions, MetroScenario, Scenario, ScenarioOptions};
use std::path::PathBuf;
use std::time::Instant;

/// Shard count for the measured router; 4 ways exercises the parallel
/// fan-out (and its per-shard spans) on any multi-core runner.
const SHARDS: usize = 4;

/// Span categories the exported trace must cover, in display order.
const SPAN_CATEGORIES: [&str; 6] = ["engine", "solver", "shard", "service", "wal", "checkpoint"];

/// The measured price of observability.
struct TelemetryResult {
    shards: usize,
    /// Passes per mode (best-of).
    passes: usize,
    orders: usize,
    windows: usize,
    /// True when `--telemetry-out` installed a recorder before this
    /// experiment ran — the off passes were contaminated and the
    /// overhead gate must not be enforced.
    recorder_preinstalled: bool,
    off_best_secs: f64,
    on_best_secs: f64,
    off_orders_per_sec: f64,
    on_orders_per_sec: f64,
    /// `on/off - 1` in percent; positive = telemetry costs time.
    overhead_pct: f64,
    /// Spans captured per category during the recorder-on passes and the
    /// durable coda, aligned with [`SPAN_CATEGORIES`].
    span_counts: [usize; SPAN_CATEGORIES.len()],
}

/// Runs the benchmark, prints the tables, and writes `ctx.bench_out` when
/// set.
pub fn run(ctx: &ExperimentContext) {
    header("Telemetry overhead — dispatch loop with the recorder off vs on");

    let mut options = MetroOptions::lunch_peak(ctx.seed);
    if !ctx.quick {
        options.grid = 60;
        options.orders = 400;
        options.vehicles = 320;
    }
    let metro = MetroScenario::generate(options);
    println!(
        "metro: {}x{} grid, {} hotspots, {} orders, {} vehicles, {} shards, delta {:.0}s",
        options.grid,
        options.grid,
        options.zones,
        options.orders,
        options.vehicles,
        SHARDS,
        metro.config().accumulation_window.as_secs_f64()
    );

    let result = bench_overhead(ctx, &metro);
    print_result(&result);

    if let Some(path) = &ctx.bench_out {
        let json = to_json(ctx, &result);
        match std::fs::write(path, json) {
            Ok(()) => println!("wrote {}", path.display()),
            Err(err) => eprintln!("failed to write {}: {err}", path.display()),
        }
    }
}

/// One full dispatch loop: admit the whole stream, then lockstep-advance
/// through the drain. Returns `(loop wall secs, windows stepped)`. The
/// router is built *inside* the current recorder regime so its handles
/// are live exactly when the recorder is.
fn dispatch_pass(metro: &MetroScenario) -> (f64, usize) {
    let mut router =
        metro.router(metro.grouped_zone_map(SHARDS), |_| PolicyKind::FoodMatch.build());
    let mut windows = 0usize;
    let started = Instant::now();
    for order in &metro.orders {
        let _ = router.submit_order(*order);
    }
    while !router.is_finished() {
        let tick = router.now() + router.config().accumulation_window;
        let _ = router.advance_to(tick);
        windows += 1;
    }
    (started.elapsed().as_secs_f64(), windows)
}

/// Scratch file unique to this process.
fn scratch(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("fm-bench-telemetry-{}-{name}", std::process::id()))
}

/// Recorder-on durable coda: a short city day through the WAL plus one
/// checkpoint save/restore, so `wal.*` and `checkpoint.*` spans and
/// metrics appear in the exported artifacts.
fn durable_coda(ctx: &ExperimentContext) {
    let options = ScenarioOptions {
        seed: ctx.seed,
        start: foodmatch_roadnet::TimePoint::from_hms(12, 0, 0),
        end: foodmatch_roadnet::TimePoint::from_hms(12, 30, 0),
        vehicle_fraction: 1.0,
    };
    let scenario = Scenario::generate(CityId::GrubHub, options);
    let config = ctx.apply_solver(scenario.default_config());
    let sim = scenario.into_simulation_with(config);

    let wal_path = scratch("coda.wal");
    let log = WriteAheadLog::create(&wal_path).expect("create coda WAL");
    let mut durable = DurableDispatch::new(sim.service(PolicyKind::FoodMatch.build()), log);
    for order in &sim.orders {
        let _ = durable.submit_order(*order).expect("durable submit");
    }
    let window = sim.config.accumulation_window;
    for _ in 0..4 {
        let tick = durable.target().now() + window;
        let _ = durable.advance_to(tick).expect("durable advance");
    }

    let ckpt_path = scratch("coda.ckpt");
    let checkpoint = durable.target().checkpoint();
    save_checkpoint(&ckpt_path, &checkpoint).expect("save coda checkpoint");
    let restored: ServiceCheckpoint = load_checkpoint(&ckpt_path).expect("load coda checkpoint");
    let service =
        DispatchService::restore(sim.engine.clone(), PolicyKind::FoodMatch.build(), &restored);
    drop(service);
    std::fs::remove_file(&wal_path).ok();
    std::fs::remove_file(&ckpt_path).ok();
}

fn bench_overhead(ctx: &ExperimentContext, metro: &MetroScenario) -> TelemetryResult {
    // Best-of-5 (quick) / best-of-6 per mode: the loop is sub-second, so
    // a single pass is too exposed to scheduler noise to gate a 5%
    // contract on; the per-mode floor over interleaved passes is stable.
    let passes = if ctx.quick { 5 } else { 6 };
    let recorder_preinstalled = telemetry::active();
    let recorder = match telemetry::recorder() {
        Some(preinstalled) => preinstalled,
        None => telemetry::Recorder::new(),
    };

    // Untimed warm-up: one full loop fills the page cache and allocator
    // arenas so the first measured pass is not uniquely cold.
    let _ = dispatch_pass(metro);

    // Interleaved best-of passes: off and on alternate so both modes see
    // the same machine state (caches, thermal budget, neighbours).
    let mut off_best_secs = f64::MAX;
    let mut on_best_secs = f64::MAX;
    let mut windows = 0usize;
    for _ in 0..passes {
        let (off_secs, w) = dispatch_pass(metro);
        off_best_secs = off_best_secs.min(off_secs);
        windows = w;

        if !recorder_preinstalled {
            telemetry::install(recorder.clone());
        }
        let (on_secs, _) = dispatch_pass(metro);
        if !recorder_preinstalled {
            telemetry::uninstall();
        }
        on_best_secs = on_best_secs.min(on_secs);
    }

    // Durable coda under the recorder, so the trace covers wal/checkpoint.
    if !recorder_preinstalled {
        telemetry::install(recorder.clone());
    }
    durable_coda(ctx);
    if !recorder_preinstalled {
        telemetry::uninstall();
    }

    let mut span_counts = [0usize; SPAN_CATEGORIES.len()];
    for event in recorder.trace.events() {
        if let Some(slot) = SPAN_CATEGORIES.iter().position(|&cat| cat == event.cat) {
            span_counts[slot] += 1;
        }
    }

    print_snapshot_stats(&recorder);

    let orders = metro.orders.len();
    TelemetryResult {
        shards: SHARDS,
        passes,
        orders,
        windows,
        recorder_preinstalled,
        off_best_secs,
        on_best_secs,
        off_orders_per_sec: orders as f64 / off_best_secs.max(f64::EPSILON),
        on_orders_per_sec: orders as f64 / on_best_secs.max(f64::EPSILON),
        overhead_pct: (on_best_secs / off_best_secs.max(f64::EPSILON) - 1.0) * 100.0,
        span_counts,
    }
}

/// Prints the headline instruments the recorder-on passes filled — the
/// live smoke test that every layer actually reported.
fn print_snapshot_stats(recorder: &telemetry::Recorder) {
    let snap = recorder.telemetry.snapshot();
    let hits = snap.counter_sum("engine.memo.hits");
    let misses = snap.counter_sum("engine.memo.misses");
    let total = hits + misses;
    println!();
    println!(
        "recorder-on instruments: engine {} queries, memo hit rate {:.1}% ({} hits / {} misses)",
        snap.counter("engine.queries").unwrap_or(0),
        if total > 0 { hits as f64 / total as f64 * 100.0 } else { 0.0 },
        hits,
        misses
    );
    let solves = snap.histogram_sum("matching.solve_ns.");
    if let (Some(p50), Some(p99)) = (solves.quantile(50.0), solves.quantile(99.0)) {
        println!("  matching: {} solves, solve_ns p50 {} / p99 {}", solves.count, p50, p99);
    }
    if let Some(advance) = snap.histogram("router.advance_ns") {
        println!(
            "  router: {} lockstep advances, advance_ns p50 {} / p99 {}",
            advance.count,
            advance.quantile(50.0).unwrap_or(0),
            advance.quantile(99.0).unwrap_or(0)
        );
    }
    if let Some(fsync) = snap.histogram("wal.fsync_ns") {
        println!(
            "  wal: {} records, {} bytes, fsync_ns p50 {} / p99 {}",
            snap.counter("wal.records").unwrap_or(0),
            snap.counter("wal.bytes").unwrap_or(0),
            fsync.quantile(50.0).unwrap_or(0),
            fsync.quantile(99.0).unwrap_or(0)
        );
    }
}

fn print_result(result: &TelemetryResult) {
    println!();
    println!(
        "dispatch loop ({} orders, {} windows, {} shards), best of {} interleaved passes:",
        result.orders, result.windows, result.shards, result.passes
    );
    println!(
        "  recorder off: {:.3}s ({:.0} orders/s) | recorder on: {:.3}s ({:.0} orders/s)",
        result.off_best_secs,
        result.off_orders_per_sec,
        result.on_best_secs,
        result.on_orders_per_sec
    );
    println!(
        "  overhead: {:+.2}% {}",
        result.overhead_pct,
        if result.recorder_preinstalled {
            "(recorder pre-installed via --telemetry-out; off passes were live, gate skipped)"
        } else {
            "(contract: <= 5%)"
        }
    );
    let spans: Vec<String> = SPAN_CATEGORIES
        .iter()
        .zip(result.span_counts)
        .map(|(cat, n)| format!("{cat} {n}"))
        .collect();
    println!("  spans captured: {}", spans.join(", "));
}

/// Serialises the result by hand (the vendored serde is an offline stub);
/// flat, stable keys — CI diffs them and the regression guard gates
/// `overhead_pct` in-file.
fn to_json(ctx: &ExperimentContext, r: &TelemetryResult) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"scenario\": \"metro lunch peak, recorder off vs on\",\n");
    out.push_str(&format!("  \"seed\": {},\n", ctx.seed));
    out.push_str(&format!("  \"quick\": {},\n", ctx.quick));
    out.push_str(&format!(
        "  \"available_parallelism\": {},\n",
        std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1)
    ));
    out.push_str("  \"telemetry\": [\n");
    let spans: Vec<String> = SPAN_CATEGORIES
        .iter()
        .zip(r.span_counts)
        .map(|(cat, n)| format!("\"{cat}\": {n}"))
        .collect();
    out.push_str(&format!(
        "    {{\"shards\": {}, \"passes\": {}, \"orders\": {}, \"windows\": {}, \
         \"recorder_preinstalled\": {}, \
         \"off\": {{\"best_secs\": {:.6}, \"orders_per_sec\": {:.1}}}, \
         \"on\": {{\"best_secs\": {:.6}, \"orders_per_sec\": {:.1}}}, \
         \"overhead_pct\": {:.3}, \
         \"spans\": {{{}}}}}\n",
        r.shards,
        r.passes,
        r.orders,
        r.windows,
        r.recorder_preinstalled,
        r.off_best_secs,
        r.off_orders_per_sec,
        r.on_best_secs,
        r.on_orders_per_sec,
        r.overhead_pct,
        spans.join(", ")
    ));
    out.push_str("  ]\n");
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_layout_is_wellformed() {
        let ctx = ExperimentContext::default();
        let result = TelemetryResult {
            shards: 4,
            passes: 3,
            orders: 400,
            windows: 80,
            recorder_preinstalled: false,
            off_best_secs: 2.0,
            on_best_secs: 2.04,
            off_orders_per_sec: 200.0,
            on_orders_per_sec: 196.1,
            overhead_pct: 2.0,
            span_counts: [120, 80, 320, 84, 40, 2],
        };
        let json = to_json(&ctx, &result);
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        for key in [
            "\"telemetry\"",
            "recorder_preinstalled",
            "overhead_pct",
            "\"spans\"",
            "\"wal\"",
            "available_parallelism",
        ] {
            assert!(json.contains(key), "missing {key}");
        }
    }
}
