//! Fig. 4(a): cumulative distribution of the percentile rank of the order
//! assigned to each vehicle by Kuhn–Munkres, ranked by network distance from
//! the vehicle to the order's restaurant.
//!
//! This is the measurement that motivates the best-first sparsification of
//! Algorithm 2: in the paper ~95% of assignments fall within the closest 10%
//! of orders.

use crate::harness::{header, ExperimentContext};
use foodmatch_core::{DispatchConfig, DispatchPolicy, KuhnMunkresPolicy, WindowSnapshot};
use foodmatch_core::{VehicleId, VehicleSnapshot};
use foodmatch_roadnet::ShortestPathEngine;
use foodmatch_workload::{CityId, Scenario};
use rand::rngs::StdRng;
use rand::seq::IndexedRandom;
use rand::SeedableRng;

/// Runs KM over the windows of a City B lunch period (vehicles redrawn at
/// random positions each window) and prints the CDF of assignment percentile
/// ranks at 10%-wide buckets.
pub fn run(ctx: &ExperimentContext) {
    header("Fig. 4(a) — percentile rank of KM-assigned orders (City B)");

    let scenario = Scenario::generate(CityId::B, ctx.comparison_options());
    let engine = ShortestPathEngine::cached(scenario.city.network.clone());
    let config =
        DispatchConfig { accumulation_window: scenario.city.preset.delta, ..Default::default() };
    let delta = config.accumulation_window;
    let mut rng = StdRng::seed_from_u64(ctx.seed ^ 0x4a4a);
    let nodes: Vec<_> = scenario.city.network.node_ids().collect();
    let mut policy = KuhnMunkresPolicy::new();

    let mut ranks: Vec<f64> = Vec::new();
    let mut window_start = scenario.options.start;
    while window_start < scenario.options.end {
        let window_end = window_start + delta;
        let orders: Vec<_> = scenario
            .orders
            .iter()
            .filter(|o| o.placed_at >= window_start && o.placed_at < window_end)
            .copied()
            .collect();
        window_start = window_end;
        if orders.len() < 2 {
            continue;
        }
        let vehicles: Vec<VehicleSnapshot> = (0..scenario.vehicle_starts.len())
            .map(|i| {
                VehicleSnapshot::idle(VehicleId(i as u32), *nodes.choose(&mut rng).expect("nodes"))
            })
            .collect();
        let window = WindowSnapshot::new(window_end, orders.clone(), vehicles.clone());
        let outcome = policy.assign(&window, &engine, &config);

        for assignment in &outcome.assignments {
            let vehicle = window.vehicle(assignment.vehicle).expect("vehicle in window");
            // Rank every window order by network distance from this vehicle.
            let mut distances: Vec<(f64, foodmatch_core::OrderId)> = orders
                .iter()
                .map(|o| {
                    let d = engine
                        .travel_time(vehicle.location, o.restaurant, window.time)
                        .map(|d| d.as_secs_f64())
                        .unwrap_or(f64::INFINITY);
                    (d, o.id)
                })
                .collect();
            distances.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
            for &assigned in &assignment.orders {
                let rank = distances.iter().position(|&(_, id)| id == assigned).unwrap_or(0);
                ranks.push(100.0 * rank as f64 / orders.len() as f64);
            }
        }
    }

    ranks.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    println!("{:>16} {:>16}", "Percentile rank", "Assignments (%)");
    for bucket in (10..=100).step_by(10) {
        let covered = ranks.iter().filter(|&&r| r <= bucket as f64).count();
        let pct = if ranks.is_empty() { 0.0 } else { 100.0 * covered as f64 / ranks.len() as f64 };
        println!("{:>15}% {:>16.1}", bucket, pct);
    }
    println!("\n({} assignments measured)", ranks.len());
}
