//! One module per paper table/figure. Every public function prints the
//! regenerated rows/series to stdout; the `repro` binary maps experiment
//! names to these functions.

pub mod dispatch;
pub mod disruptions;
pub mod fig4a;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod matching;
pub mod recovery;
pub mod router;
pub mod service;
pub mod table2;
pub mod telemetry;

use crate::harness::ExperimentContext;

/// An experiment of the paper's evaluation that the harness can regenerate.
#[derive(Clone, Copy, Debug)]
pub struct Experiment {
    /// The name used on the `repro` command line.
    pub name: &'static str,
    /// What part of the paper it reproduces.
    pub description: &'static str,
    /// The function that runs it.
    pub run: fn(&ExperimentContext),
}

/// The registry of all experiments, in paper order.
pub const ALL: &[Experiment] = &[
    Experiment {
        name: "table2",
        description: "Table II: dataset summary of the synthetic city presets",
        run: table2::run,
    },
    Experiment {
        name: "fig4a",
        description: "Fig. 4(a): CDF of percentile ranks of vehicles assigned by KM",
        run: fig4a::run,
    },
    Experiment {
        name: "fig6a",
        description: "Fig. 6(a): order-to-vehicle ratio per hourly timeslot",
        run: fig6::fig6a,
    },
    Experiment {
        name: "fig6b",
        description: "Fig. 6(b): XDT of FoodMatch vs the Reyes-style baseline",
        run: fig6::fig6b,
    },
    Experiment {
        name: "fig6cde",
        description: "Fig. 6(c-e): XDT, Orders/Km and Waiting Time vs Greedy",
        run: fig6::fig6cde,
    },
    Experiment {
        name: "fig6fgh",
        description: "Fig. 6(f-h): overflown windows (all/peak) and running time",
        run: fig6::fig6fgh,
    },
    Experiment {
        name: "fig6ijk",
        description: "Fig. 6(i-k): improvement over KM per timeslot (XDT, O/Km, WT)",
        run: fig6::fig6ijk,
    },
    Experiment {
        name: "fig7a",
        description: "Fig. 7(a): ablation of B&R, BFS sparsification and angular distance",
        run: fig7::fig7a,
    },
    Experiment {
        name: "fig7bcde",
        description: "Fig. 7(b-e): impact of the number of vehicles (XDT, O/Km, WT, rejections)",
        run: fig7::fig7bcde,
    },
    Experiment {
        name: "fig8eta",
        description: "Fig. 8(a-c): impact of the batching threshold eta",
        run: fig8::fig8_eta,
    },
    Experiment {
        name: "fig8delta",
        description: "Fig. 8(d-g): impact of the accumulation window Delta",
        run: fig8::fig8_delta,
    },
    Experiment {
        name: "fig8k",
        description: "Fig. 8(h-k): impact of the vehicle degree cap k",
        run: fig8::fig8_k,
    },
    Experiment {
        name: "fig9",
        description: "Fig. 9(a-d): impact of the angular weight gamma",
        run: fig9::run,
    },
    Experiment {
        name: "dispatch",
        description: "Dispatch hot path: per-backend oracle throughput and parallel windows",
        run: dispatch::run,
    },
    Experiment {
        name: "disruptions",
        description: "Dynamic events: policies under calm vs rainy/incident-heavy days",
        run: disruptions::run,
    },
    Experiment {
        name: "matching",
        description: "Assignment solvers: component sharding and solve times vs window pressure",
        run: matching::run,
    },
    Experiment {
        name: "service",
        description: "Online dispatch service: ingest throughput and advance_to latency",
        run: service::run,
    },
    Experiment {
        name: "router",
        description: "Sharded dispatch router: ingest and lockstep advance_to vs shard count",
        run: router::run,
    },
    Experiment {
        name: "recovery",
        description: "Crash-safe dispatch: WAL overhead, checkpoint latency, replay catch-up",
        run: recovery::run,
    },
    Experiment {
        name: "telemetry",
        description: "Observability: dispatch-loop overhead with the recorder off vs on",
        run: telemetry::run,
    },
];

/// Looks an experiment up by name.
pub fn find(name: &str) -> Option<&'static Experiment> {
    ALL.iter().find(|e| e.name.eq_ignore_ascii_case(name))
}

/// The names every registered experiment must carry, in paper order — the
/// single source of truth for the registry-coverage tests here and in the
/// workspace-level smoke suite.
pub const EXPECTED_NAMES: [&str; 20] = [
    "table2",
    "fig4a",
    "fig6a",
    "fig6b",
    "fig6cde",
    "fig6fgh",
    "fig6ijk",
    "fig7a",
    "fig7bcde",
    "fig8eta",
    "fig8delta",
    "fig8k",
    "fig9",
    "dispatch",
    "disruptions",
    "matching",
    "service",
    "router",
    "recovery",
    "telemetry",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_every_table_and_figure() {
        let names: Vec<&str> = ALL.iter().map(|e| e.name).collect();
        for expected in EXPECTED_NAMES {
            assert!(names.contains(&expected), "missing experiment {expected}");
        }
    }

    #[test]
    fn find_is_case_insensitive() {
        assert!(find("TABLE2").is_some());
        assert!(find("Fig6a").is_some());
        assert!(find("nope").is_none());
    }
}
