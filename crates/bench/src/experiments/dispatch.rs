//! Dispatch hot-path benchmark: per-backend distance-oracle throughput and
//! parallel per-window dispatch latency.
//!
//! Not a figure of the paper — this is the perf-trajectory baseline the
//! ROADMAP asks for. Two measurements:
//!
//! 1. **Oracle throughput** — the same random `SP(u, v, t)` workload on the
//!    City A lunch-peak network against every [`EngineKind`], reporting
//!    nanoseconds per query, queries/second and the speedup over the
//!    plain-Dijkstra baseline (index construction time is reported
//!    separately, never mixed into query time).
//! 2. **Window dispatch wall-clock** — the full FoodMatch pipeline over the
//!    accumulation windows of the City B lunch peak (the busiest table2
//!    preset: enough orders and vehicles per window for the fan-out to
//!    matter) with `num_threads = 1` vs `4`, reporting mean/percentile
//!    per-window latency.
//!
//! With `--bench-out FILE` the results are additionally written as JSON
//! (`BENCH_dispatch.json` in CI) so successive commits can be compared.

use crate::harness::{header, percentile, ExperimentContext};
use foodmatch_core::{DispatchConfig, FoodMatchPolicy};
use foodmatch_roadnet::{EngineKind, NodeId, ShortestPathEngine, TimePoint};
use foodmatch_sim::Simulation;
use foodmatch_workload::{CityId, Scenario, ScenarioOptions};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use std::time::Instant;

/// Point-to-point queries per backend measurement.
const QUERY_ROUNDS: usize = 8;
/// Distinct random (source, target) pairs in the query workload.
const QUERY_PAIRS: usize = 256;

struct BackendResult {
    kind: EngineKind,
    build_ms: f64,
    ns_per_query: f64,
    queries_per_sec: f64,
    engine_query_count: u64,
}

struct DispatchResult {
    num_threads: usize,
    windows: usize,
    mean_ms: f64,
    p50_ms: f64,
    p90_ms: f64,
    p99_ms: f64,
    max_ms: f64,
    engine_query_count: u64,
}

/// Runs the benchmark, prints the tables, and writes `ctx.bench_out` when
/// set.
pub fn run(ctx: &ExperimentContext) {
    header("Dispatch hot path — oracle throughput and parallel window dispatch");

    let scenario = Scenario::generate(CityId::A, query_options(ctx));
    let network = scenario.city.network.clone();
    let t = TimePoint::from_hms(13, 0, 0);

    // Identical random query workload for every backend.
    let mut rng = StdRng::seed_from_u64(ctx.seed.wrapping_mul(0xA24B_AED4).wrapping_add(977));
    let n = network.node_count() as u32;
    let pairs: Vec<(NodeId, NodeId)> = (0..QUERY_PAIRS)
        .map(|_| (NodeId(rng.random_range(0..n)), NodeId(rng.random_range(0..n))))
        .collect();

    println!(
        "{:<24} {:>12} {:>14} {:>16} {:>10}",
        "Backend", "build (ms)", "ns/query", "queries/sec", "speedup"
    );
    let mut backends: Vec<BackendResult> = Vec::new();
    for kind in EngineKind::ALL {
        let result = bench_backend(&network, kind, &pairs, t);
        backends.push(result);
    }
    let dijkstra_ns = backends
        .iter()
        .find(|b| b.kind == EngineKind::Dijkstra)
        .map(|b| b.ns_per_query)
        .unwrap_or(f64::NAN);
    for backend in &backends {
        println!(
            "{:<24} {:>12.2} {:>14.0} {:>16.0} {:>9.1}x",
            format!("{:?}", backend.kind),
            backend.build_ms,
            backend.ns_per_query,
            backend.queries_per_sec,
            dijkstra_ns / backend.ns_per_query
        );
    }
    let ch_speedup = backends
        .iter()
        .find(|b| b.kind == EngineKind::ContractionHierarchies)
        .map(|b| dijkstra_ns / b.ns_per_query)
        .unwrap_or(f64::NAN);

    println!();
    let dispatch_scenario = Scenario::generate(CityId::B, dispatch_options(ctx));
    println!(
        "{:<14} {:>9} {:>11} {:>10} {:>10} {:>10} {:>10}",
        "Dispatch (B)", "windows", "mean (ms)", "p50", "p90", "p99", "max"
    );
    let dispatch = bench_dispatch_pair(&dispatch_scenario, ctx);
    for result in &dispatch {
        println!(
            "{:<14} {:>9} {:>11.2} {:>10.2} {:>10.2} {:>10.2} {:>10.2}",
            format!("{} thread(s)", result.num_threads),
            result.windows,
            result.mean_ms,
            result.p50_ms,
            result.p90_ms,
            result.p99_ms,
            result.max_ms
        );
    }
    let parallel_speedup = match (dispatch.first(), dispatch.last()) {
        (Some(serial), Some(parallel)) if parallel.mean_ms > 0.0 => {
            serial.mean_ms / parallel.mean_ms
        }
        _ => f64::NAN,
    };
    let cores = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
    println!();
    println!("CH speedup over plain Dijkstra: {ch_speedup:.1}x (point-to-point queries)");
    println!(
        "4-thread dispatch speedup over serial: {parallel_speedup:.2}x (mean window, \
         {cores} core(s) available{})",
        if cores == 1 { "; expect parity on a single core" } else { "" }
    );

    if let Some(path) = &ctx.bench_out {
        let json = to_json(ctx, &backends, ch_speedup, &dispatch, parallel_speedup);
        match std::fs::write(path, json) {
            Ok(()) => println!("wrote {}", path.display()),
            Err(err) => eprintln!("failed to write {}: {err}", path.display()),
        }
    }
}

fn query_options(ctx: &ExperimentContext) -> ScenarioOptions {
    let mut options = ScenarioOptions::lunch_peak(ctx.seed);
    if ctx.quick {
        options.start = TimePoint::from_hms(12, 0, 0);
        options.end = TimePoint::from_hms(13, 0, 0);
    }
    options
}

fn dispatch_options(ctx: &ExperimentContext) -> ScenarioOptions {
    let mut options = ScenarioOptions::lunch_peak(ctx.seed);
    if ctx.quick {
        options.start = TimePoint::from_hms(12, 0, 0);
        options.end = TimePoint::from_hms(12, 45, 0);
    }
    options
}

fn bench_backend(
    network: &foodmatch_roadnet::RoadNetwork,
    kind: EngineKind,
    pairs: &[(NodeId, NodeId)],
    t: TimePoint,
) -> BackendResult {
    let engine = ShortestPathEngine::new(network.clone(), kind);
    // Index construction (and, for the cached engine, one priming pass) is
    // measured separately so query time reflects the steady state.
    let build_started = Instant::now();
    engine.warm_up(t.hour_slot());
    if kind == EngineKind::Cached {
        for &(a, b) in pairs {
            black_box(engine.travel_time(a, b, t));
        }
    }
    let build_ms = build_started.elapsed().as_secs_f64() * 1e3;

    // Best-of-3: the min is the noise-robust estimator on a shared box.
    let mut elapsed = f64::INFINITY;
    for _ in 0..3 {
        let started = Instant::now();
        for _ in 0..QUERY_ROUNDS {
            for &(a, b) in pairs {
                black_box(engine.travel_time(a, b, t));
            }
        }
        elapsed = elapsed.min(started.elapsed().as_secs_f64());
    }
    let queries = (QUERY_ROUNDS * pairs.len()) as f64;
    BackendResult {
        kind,
        build_ms,
        ns_per_query: elapsed * 1e9 / queries,
        queries_per_sec: queries / elapsed,
        engine_query_count: engine.query_count(),
    }
}

/// Benchmarks serial (`num_threads = 1`) against 4-thread dispatch.
///
/// The two legs are *interleaved* round-robin with alternating order (3
/// rounds, best-of per leg), each against a fresh cached engine so every run
/// measures the same cold-cache, route-planning-heavy regime. Interleaving
/// matters: on throttled/shared machines wall-clock drifts over the
/// benchmark's lifetime, and running one leg entirely after the other would
/// charge that drift to whichever went second.
fn bench_dispatch_pair(scenario: &Scenario, ctx: &ExperimentContext) -> Vec<DispatchResult> {
    const LEGS: [usize; 2] = [1, 4];
    let mut best: [Option<(foodmatch_sim::SimulationReport, u64)>; 2] = [None, None];
    for round in 0..3 {
        for position in 0..LEGS.len() {
            let leg = (round + position) % LEGS.len();
            let (run, queries) = run_dispatch_once(scenario, LEGS[leg], ctx);
            let better = best[leg]
                .as_ref()
                .is_none_or(|(r, _)| run.mean_window_compute_secs() < r.mean_window_compute_secs());
            if better {
                best[leg] = Some((run, queries));
            }
        }
    }
    LEGS.iter()
        .zip(best)
        .map(|(&num_threads, slot)| {
            let (report, queries) = slot.expect("every leg ran");
            summarise_dispatch(num_threads, &report, queries)
        })
        .collect()
}

fn run_dispatch_once(
    scenario: &Scenario,
    num_threads: usize,
    ctx: &ExperimentContext,
) -> (foodmatch_sim::SimulationReport, u64) {
    let config = ctx.apply_solver(DispatchConfig { num_threads, ..scenario.default_config() });
    let engine = ShortestPathEngine::cached(scenario.city.network.clone());
    let simulation = Simulation::new(
        engine.clone(),
        scenario.orders.clone(),
        scenario.vehicle_starts.clone(),
        config,
        scenario.options.start,
        scenario.options.end,
    );
    let report = simulation.run(&mut FoodMatchPolicy::new());
    let queries = engine.query_count();
    (report, queries)
}

fn summarise_dispatch(
    num_threads: usize,
    report: &foodmatch_sim::SimulationReport,
    queries: u64,
) -> DispatchResult {
    let mut window_ms: Vec<f64> = report.windows.iter().map(|w| w.compute_secs * 1e3).collect();
    window_ms.sort_by(|a, b| a.partial_cmp(b).expect("latencies are never NaN"));
    let mean_ms = if window_ms.is_empty() {
        0.0
    } else {
        window_ms.iter().sum::<f64>() / window_ms.len() as f64
    };
    DispatchResult {
        num_threads,
        windows: window_ms.len(),
        mean_ms,
        p50_ms: percentile(&window_ms, 50.0),
        p90_ms: percentile(&window_ms, 90.0),
        p99_ms: percentile(&window_ms, 99.0),
        max_ms: window_ms.last().copied().unwrap_or(0.0),
        engine_query_count: queries,
    }
}

/// Serialises the results by hand: the vendored serde is an offline stub, so
/// the JSON layout lives here (flat, stable keys — CI diffs them).
fn to_json(
    ctx: &ExperimentContext,
    backends: &[BackendResult],
    ch_speedup: f64,
    dispatch: &[DispatchResult],
    parallel_speedup: f64,
) -> String {
    let mut out = String::from("{\n");
    out.push_str(
        "  \"scenario\": {\"queries\": \"city-A lunch-peak\", \"dispatch\": \"city-B lunch-peak\"},\n",
    );
    out.push_str(&format!("  \"seed\": {},\n", ctx.seed));
    out.push_str(&format!("  \"quick\": {},\n", ctx.quick));
    out.push_str(&format!(
        "  \"available_parallelism\": {},\n",
        std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1)
    ));
    out.push_str(&format!(
        "  \"query_workload\": {{\"pairs\": {QUERY_PAIRS}, \"rounds\": {QUERY_ROUNDS}}},\n"
    ));
    out.push_str("  \"backends\": [\n");
    for (i, b) in backends.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"kind\": \"{:?}\", \"build_ms\": {:.3}, \"ns_per_query\": {:.1}, \
             \"queries_per_sec\": {:.1}, \"engine_query_count\": {}}}{}\n",
            b.kind,
            b.build_ms,
            b.ns_per_query,
            b.queries_per_sec,
            b.engine_query_count,
            if i + 1 < backends.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!("  \"ch_speedup_vs_dijkstra\": {ch_speedup:.2},\n"));
    out.push_str("  \"dispatch\": [\n");
    for (i, d) in dispatch.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"num_threads\": {}, \"windows\": {}, \"mean_ms\": {:.3}, \
             \"p50_ms\": {:.3}, \"p90_ms\": {:.3}, \"p99_ms\": {:.3}, \"max_ms\": {:.3}, \
             \"engine_query_count\": {}}}{}\n",
            d.num_threads,
            d.windows,
            d.mean_ms,
            d.p50_ms,
            d.p90_ms,
            d.p99_ms,
            d.max_ms,
            d.engine_query_count,
            if i + 1 < dispatch.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!("  \"parallel_speedup_mean\": {parallel_speedup:.3}\n"));
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_layout_is_wellformed() {
        let ctx = ExperimentContext::default();
        let backends = vec![BackendResult {
            kind: EngineKind::Dijkstra,
            build_ms: 0.0,
            ns_per_query: 1500.0,
            queries_per_sec: 666_666.0,
            engine_query_count: 2048,
        }];
        let dispatch = vec![DispatchResult {
            num_threads: 1,
            windows: 10,
            mean_ms: 4.2,
            p50_ms: 4.0,
            p90_ms: 6.0,
            p99_ms: 7.5,
            max_ms: 8.0,
            engine_query_count: 123,
        }];
        let json = to_json(&ctx, &backends, 12.0, &dispatch, 1.8);
        // Balanced braces/brackets and the headline keys present.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        for key in ["ch_speedup_vs_dijkstra", "parallel_speedup_mean", "ns_per_query"] {
            assert!(json.contains(key), "missing {key}");
        }
    }
}
