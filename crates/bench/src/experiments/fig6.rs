//! Figure 6: the paper's headline comparison — demand profile (a), XDT vs
//! the Reyes-style baseline (b), XDT / Orders-per-Km / Waiting time vs
//! Greedy (c–e), scalability (f–h) and per-timeslot improvement over KM
//! (i–k).

use crate::harness::{cell, header, improvement_pct, run_policies, ExperimentContext};
use foodmatch_core::PolicyKind;
use foodmatch_workload::Scenario;

/// Fig. 6(a): order-to-vehicle ratio per hourly timeslot for every city.
pub fn fig6a(ctx: &ExperimentContext) {
    header("Fig. 6(a) — order/vehicle ratio per timeslot");
    let cities = ctx.swiggy_cities();
    let scenarios: Vec<Scenario> = cities
        .iter()
        .map(|&c| Scenario::generate(c, foodmatch_workload::ScenarioOptions::full_day(ctx.seed)))
        .collect();
    print!("{:>8}", "Slot");
    for city in &cities {
        print!("{:>10}", city.name());
    }
    println!();
    let ratios: Vec<[f64; 24]> =
        scenarios.iter().map(|s| s.order_vehicle_ratio_by_slot()).collect();
    for slot in 0..24 {
        print!("{slot:>8}");
        for ratio in &ratios {
            print!("{}", cell(ratio[slot]));
        }
        println!();
    }
}

/// Fig. 6(b): XDT (hours/day) of FoodMatch vs the Reyes-style baseline on
/// all four cities (the only experiment that includes GrubHub).
pub fn fig6b(ctx: &ExperimentContext) {
    header("Fig. 6(b) — XDT (hours/day): FoodMatch vs Reyes");
    println!("{:<10} {:>12} {:>12} {:>10}", "City", "FoodMatch", "Reyes", "Ratio");
    for city in ctx.all_cities() {
        let summaries = run_policies(
            city,
            ctx.comparison_options(),
            &[PolicyKind::FoodMatch, PolicyKind::Reyes],
            |c| c,
        );
        let fm = &summaries[&PolicyKind::FoodMatch];
        let reyes = &summaries[&PolicyKind::Reyes];
        let ratio = if fm.xdt_hours_per_day > 1e-9 {
            reyes.xdt_hours_per_day / fm.xdt_hours_per_day
        } else {
            f64::INFINITY
        };
        println!(
            "{:<10} {} {} {:>9.1}x",
            city.name(),
            cell(fm.xdt_hours_per_day),
            cell(reyes.xdt_hours_per_day),
            ratio
        );
    }
}

/// Fig. 6(c–e): XDT, Orders/Km and Waiting Time of FoodMatch vs Greedy.
pub fn fig6cde(ctx: &ExperimentContext) {
    header("Fig. 6(c-e) — FoodMatch vs Greedy: XDT, Orders/Km, Waiting Time");
    println!(
        "{:<10} {:>12} {:>12} | {:>10} {:>10} | {:>10} {:>10} | {:>12}",
        "City", "XDT(FM)", "XDT(Greedy)", "O/Km(FM)", "O/Km(Gr)", "WT(FM)", "WT(Gr)", "XDT impr.%"
    );
    for city in ctx.swiggy_cities() {
        let summaries = run_policies(
            city,
            ctx.comparison_options(),
            &[PolicyKind::FoodMatch, PolicyKind::Greedy],
            |c| c,
        );
        let fm = &summaries[&PolicyKind::FoodMatch];
        let gr = &summaries[&PolicyKind::Greedy];
        println!(
            "{:<10} {} {} | {} {} | {} {} | {:>11.1}%",
            city.name(),
            cell(fm.xdt_hours_per_day),
            cell(gr.xdt_hours_per_day),
            cell(fm.orders_per_km),
            cell(gr.orders_per_km),
            cell(fm.waiting_hours_per_day),
            cell(gr.waiting_hours_per_day),
            improvement_pct(gr.xdt_hours_per_day, fm.xdt_hours_per_day, false)
        );
    }
}

/// Fig. 6(f–h): percentage of overflown windows (all slots and peak slots)
/// and mean per-window running time for Greedy, vanilla KM and FoodMatch.
pub fn fig6fgh(ctx: &ExperimentContext) {
    header("Fig. 6(f-h) — overflown windows and running time");
    println!(
        "{:<10} {:<10} {:>14} {:>14} {:>18}",
        "City", "Policy", "Overflow(all)%", "Overflow(peak)%", "Mean window (ms)"
    );
    for city in ctx.swiggy_cities() {
        let summaries = run_policies(
            city,
            ctx.comparison_options(),
            &[PolicyKind::Greedy, PolicyKind::KuhnMunkres, PolicyKind::FoodMatch],
            |c| c,
        );
        for kind in [PolicyKind::Greedy, PolicyKind::KuhnMunkres, PolicyKind::FoodMatch] {
            let s = &summaries[&kind];
            println!(
                "{:<10} {:<10} {:>14.1} {:>14.1} {:>18.1}",
                city.name(),
                s.policy,
                s.overflow_pct,
                s.overflow_peak_pct,
                s.mean_compute_secs * 1_000.0
            );
        }
    }
    println!("\n(Absolute times are hardware-specific; the paper's claim is the ordering:");
    println!(" FoodMatch fastest with no overflown windows, Greedy slowest.)");
}

/// Fig. 6(i–k): improvement of FoodMatch over vanilla KM per hourly timeslot
/// for XDT, Orders/Km and Waiting Time.
pub fn fig6ijk(ctx: &ExperimentContext) {
    header("Fig. 6(i-k) — improvement over KM per timeslot (XDT / O/Km / WT)");
    for city in ctx.swiggy_cities() {
        let summaries = run_policies(
            city,
            ctx.full_day_options(),
            &[PolicyKind::FoodMatch, PolicyKind::KuhnMunkres],
            |c| c,
        );
        let fm = &summaries[&PolicyKind::FoodMatch];
        let km = &summaries[&PolicyKind::KuhnMunkres];
        let fm_xdt = fm.report.xdt_hours_by_slot();
        let km_xdt = km.report.xdt_hours_by_slot();
        let fm_okm = fm.report.orders_per_km_by_slot();
        let km_okm = km.report.orders_per_km_by_slot();
        let fm_wt = fm.report.waiting_hours_by_slot();
        let km_wt = km.report.waiting_hours_by_slot();

        println!("\n{}:", city.name());
        println!("{:>6} {:>14} {:>14} {:>14}", "Slot", "XDT impr.%", "O/Km impr.%", "WT impr.%");
        for slot in 0..24 {
            if km_xdt[slot] <= 1e-9 && km_wt[slot] <= 1e-9 {
                continue; // empty overnight slots
            }
            println!(
                "{:>6} {:>14.1} {:>14.1} {:>14.1}",
                slot,
                improvement_pct(km_xdt[slot], fm_xdt[slot], false),
                improvement_pct(km_okm[slot], fm_okm[slot], true),
                improvement_pct(km_wt[slot], fm_wt[slot], false),
            );
        }
    }
}
