//! Assignment-solver benchmark: solvers × window pressure on real
//! FoodGraphs.
//!
//! Not a figure of the paper — this experiment measures the pluggable
//! matching stage across the two regimes a dispatcher actually sees:
//!
//! * **City tier** (`city-b-*`): the genuine pipeline — Algorithm 1
//!   batching, then the sparsified FoodGraph of Algorithm 2 — on slices of
//!   the City B lunch-peak order stream. The preset cities are compact
//!   (every vehicle reaches every restaurant inside the first-mile bound),
//!   so these graphs are nearly dense single components: the regime where
//!   the serial dense Kuhn–Munkres baseline is hard to beat, reported
//!   honestly as such.
//! * **Metro tier** (`metro-*`): the high-pressure windows. The same
//!   FoodGraph construction runs on a generated metro-scale grid whose
//!   restaurant hotspots sit farther apart than the first-mile bound
//!   reaches, as in a real multi-zone city. Algorithm 2 then leaves most
//!   (batch, vehicle) pairs at Ω, the bipartite graph splits into
//!   per-zone connected components, and the component-sharded sparse
//!   solvers pull ahead of the dense baseline — the regime this refactor
//!   targets.
//!
//! Reported per pressure level: the connected-component structure of the
//! bipartite graph (count histogram, largest shard), per-solver solve-time
//! percentiles, the worst per-instance total-cost deviation from the dense
//! reference (0 for the exact solvers; sub-unit for the auction), and the
//! speedup of the default `decomposed-sparse-km` over serial dense KM.
//!
//! With `--bench-out FILE` the results are additionally written as JSON
//! (`BENCH_matching.json` in CI) so successive commits can compare solver
//! trajectories.

use crate::harness::{header, percentile, ExperimentContext};
use foodmatch_core::{
    batch_orders, build_food_graph, singleton_batches, DispatchConfig, Order, OrderId, VehicleId,
    VehicleSnapshot,
};
use foodmatch_matching::{decompose, SolverKind, SparseCostMatrix};
use foodmatch_roadnet::generators::GridCityBuilder;
use foodmatch_roadnet::{Duration, NodeId, ShortestPathEngine, TimePoint};
use foodmatch_workload::{CityId, Scenario, ScenarioOptions};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::time::Instant;

/// Timing rounds per (solver, instance); the best round is kept.
const ROUNDS: usize = 3;

/// One window instance at a pressure level.
struct Instance {
    costs: SparseCostMatrix,
    batches: usize,
}

/// Aggregated per-solver timings at one pressure level.
struct SolverResult {
    kind: SolverKind,
    mean_us: f64,
    p50_us: f64,
    p90_us: f64,
    max_us: f64,
    /// Worst |total − dense total| across instances.
    max_cost_delta: f64,
}

/// Component structure of one pressure level's instances.
struct ComponentStats {
    count_min: usize,
    count_max: usize,
    count_mean: f64,
    largest_rows: usize,
    largest_cols: usize,
    /// component count → number of instances with that count.
    histogram: BTreeMap<usize, usize>,
}

struct PressureResult {
    label: String,
    orders: usize,
    instances: usize,
    vehicles: usize,
    batches_mean: f64,
    explicit_entries_mean: f64,
    components: ComponentStats,
    solvers: Vec<SolverResult>,
    speedup_decomposed_sparse_vs_dense: f64,
}

/// Runs the benchmark, prints the tables, and writes `ctx.bench_out` when
/// set.
pub fn run(ctx: &ExperimentContext) {
    header("Assignment solvers — component sharding and solve times");

    let threads = DispatchConfig::default().effective_threads();
    let mut results: Vec<PressureResult> = Vec::new();

    // City tier: real batched City B lunch-peak windows (near-dense).
    let scenario = Scenario::generate(CityId::B, options(ctx));
    let engine = ShortestPathEngine::cached(scenario.city.network.clone());
    let t = TimePoint::from_hms(13, 0, 0);
    let config = scenario.default_config();
    let vehicles: Vec<VehicleSnapshot> =
        scenario.vehicle_starts.iter().map(|&(id, node)| VehicleSnapshot::idle(id, node)).collect();
    let city_pressures: &[usize] = if ctx.quick { &[40, 120] } else { &[60, 150, 300] };
    let instance_count = if ctx.quick { 3 } else { 5 };
    println!(
        "city tier: {} orders in stream, {} vehicles, {} instances per pressure; \
         {} solver thread(s)",
        scenario.orders.len(),
        vehicles.len(),
        instance_count,
        threads
    );
    for &pressure in city_pressures {
        let instances = build_city_instances(
            &scenario,
            &vehicles,
            &engine,
            t,
            &config,
            pressure,
            instance_count,
        );
        let result = bench_pressure(
            format!("city-b-{pressure}"),
            pressure,
            vehicles.len(),
            &instances,
            threads,
        );
        print_pressure(&result);
        results.push(result);
    }

    // Metro tier: multi-zone metro grid where the first-mile bound bites —
    // the high-pressure, sparse, decomposing regime.
    let metro = if ctx.quick {
        MetroShape { grid: 50, spacing_m: 1_300.0, zones: 4, orders: 300, vehicles: 250 }
    } else {
        MetroShape { grid: 70, spacing_m: 1_300.0, zones: 6, orders: 600, vehicles: 480 }
    };
    let metro_instances = if ctx.quick { 2 } else { 3 };
    println!();
    println!(
        "metro tier: {}x{} grid at {:.0} m spacing, {} restaurant zones, {} orders x {} vehicles",
        metro.grid, metro.grid, metro.spacing_m, metro.zones, metro.orders, metro.vehicles
    );
    let instances = build_metro_instances(&metro, ctx.seed, metro_instances);
    let result = bench_pressure(
        format!("metro-{}", metro.orders),
        metro.orders,
        metro.vehicles,
        &instances,
        threads,
    );
    print_pressure(&result);
    results.push(result);

    let headline = results.last().map(|r| r.speedup_decomposed_sparse_vs_dense).unwrap_or(f64::NAN);
    println!();
    println!(
        "decomposed-sparse-km speedup over serial dense KM on the metro windows: {headline:.2}x"
    );

    if let Some(path) = &ctx.bench_out {
        let json = to_json(ctx, threads, &results);
        match std::fs::write(path, json) {
            Ok(()) => println!("wrote {}", path.display()),
            Err(err) => eprintln!("failed to write {}: {err}", path.display()),
        }
    }
}

fn options(ctx: &ExperimentContext) -> ScenarioOptions {
    let mut options = ScenarioOptions::lunch_peak(ctx.seed);
    if ctx.quick {
        options.start = TimePoint::from_hms(12, 0, 0);
        options.end = TimePoint::from_hms(13, 30, 0);
    }
    options
}

/// Builds `count` window instances of `pressure` orders each by running the
/// batching + FoodGraph pipeline over consecutive (wrapping) slices of the
/// scenario's order stream.
fn build_city_instances(
    scenario: &Scenario,
    vehicles: &[VehicleSnapshot],
    engine: &ShortestPathEngine,
    t: TimePoint,
    config: &DispatchConfig,
    pressure: usize,
    count: usize,
) -> Vec<Instance> {
    let stream = &scenario.orders;
    (0..count)
        .map(|i| {
            let window_orders: Vec<_> =
                (0..pressure).map(|k| stream[(i * pressure + k) % stream.len()]).collect();
            let batches = batch_orders(&window_orders, engine, t, config).batches;
            let graph = build_food_graph(&batches, vehicles, engine, t, config);
            Instance { costs: graph.costs, batches: batches.len() }
        })
        .collect()
}

/// Shape of the generated metro-scale city.
struct MetroShape {
    grid: usize,
    spacing_m: f64,
    zones: usize,
    orders: usize,
    vehicles: usize,
}

/// Builds metro-tier window instances: restaurant hotspots in well-separated
/// zones, customers a short hop away, vehicles scattered city-wide, and a
/// 15-minute first-mile bound (a metro dispatcher never sends a courier
/// across town). Everything downstream is the real pipeline: singleton
/// batches plus Algorithm 2's sparsified FoodGraph construction.
fn build_metro_instances(shape: &MetroShape, seed: u64, count: usize) -> Vec<Instance> {
    let builder = GridCityBuilder::new(shape.grid, shape.grid).spacing_m(shape.spacing_m);
    let engine = ShortestPathEngine::cached(builder.build());
    let t = TimePoint::from_hms(13, 0, 0);
    let config =
        DispatchConfig { max_first_mile: Duration::from_mins(15.0), ..DispatchConfig::default() };
    // Zone centres on a 2×⌈zones/2⌉ grid spread to the city edges, far
    // enough apart that no vehicle reaches two zones inside the first-mile
    // bound (which is what keeps the zones separate components).
    let per_row = shape.zones.div_ceil(2);
    let col_step = if per_row > 1 { (shape.grid * 3 / 5) / (per_row - 1) } else { 0 };
    let hotspots: Vec<(usize, usize)> = (0..shape.zones)
        .map(|z| {
            let row = if z < per_row { shape.grid / 5 } else { shape.grid * 4 / 5 };
            let col = shape.grid / 5 + (z % per_row) * col_step;
            (row, col)
        })
        .collect();

    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9).wrapping_add(71));
    (0..count)
        .map(|_| {
            let orders: Vec<Order> = (0..shape.orders)
                .map(|i| {
                    let (hr, hc) = hotspots[rng.random_range(0..hotspots.len())];
                    let mut jitter = |v: usize, span: i64| {
                        (v as i64 + rng.random_range(-span..=span)).clamp(0, shape.grid as i64 - 1)
                            as usize
                    };
                    let (rr, rc) = (jitter(hr, 2), jitter(hc, 2));
                    let (cr, cc) = (jitter(hr, 6), jitter(hc, 6));
                    let restaurant = builder.node_at(rr, rc);
                    let customer = builder.node_at(cr, cc);
                    Order::new(
                        OrderId(i as u64),
                        restaurant,
                        customer,
                        t,
                        1 + (i % 2) as u32,
                        Duration::from_mins(6.0),
                    )
                })
                .collect();
            let vehicles: Vec<VehicleSnapshot> = (0..shape.vehicles)
                .map(|i| {
                    let node = NodeId(rng.random_range(0..(shape.grid * shape.grid) as u32));
                    VehicleSnapshot::idle(VehicleId(i as u32), node)
                })
                .collect();
            let batches = singleton_batches(&orders, &engine, t).batches;
            let graph = build_food_graph(&batches, &vehicles, &engine, t, &config);
            Instance { costs: graph.costs, batches: batches.len() }
        })
        .collect()
}

fn bench_pressure(
    label: String,
    pressure: usize,
    vehicles: usize,
    instances: &[Instance],
    threads: usize,
) -> PressureResult {
    // Component structure (solver-independent).
    let mut histogram: BTreeMap<usize, usize> = BTreeMap::new();
    let (mut count_min, mut count_max, mut count_sum) = (usize::MAX, 0usize, 0usize);
    let (mut largest_rows, mut largest_cols) = (0usize, 0usize);
    for instance in instances {
        let components = decompose(&instance.costs);
        let count = components.len();
        *histogram.entry(count).or_insert(0) += 1;
        count_min = count_min.min(count);
        count_max = count_max.max(count);
        count_sum += count;
        for component in &components {
            largest_rows = largest_rows.max(component.rows.len());
            largest_cols = largest_cols.max(component.cols.len());
        }
    }

    // Reference totals from the serial dense solver.
    let dense = SolverKind::DenseKm.build(1);
    let dense_totals: Vec<f64> =
        instances.iter().map(|i| dense.solve(&i.costs).total_cost).collect();

    let mut solvers: Vec<SolverResult> = Vec::new();
    for kind in SolverKind::ALL {
        let solver = kind.build(threads);
        let mut best_us: Vec<f64> = Vec::with_capacity(instances.len());
        let mut max_cost_delta = 0.0_f64;
        for (instance, &dense_total) in instances.iter().zip(&dense_totals) {
            let mut best = f64::INFINITY;
            let mut total = f64::NAN;
            for _ in 0..ROUNDS {
                let started = Instant::now();
                let assignment = solver.solve(&instance.costs);
                best = best.min(started.elapsed().as_secs_f64() * 1e6);
                total = assignment.total_cost;
            }
            best_us.push(best);
            max_cost_delta = max_cost_delta.max((total - dense_total).abs());
        }
        let mut sorted = best_us.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("timings are never NaN"));
        solvers.push(SolverResult {
            kind,
            mean_us: best_us.iter().sum::<f64>() / best_us.len().max(1) as f64,
            p50_us: percentile(&sorted, 50.0),
            p90_us: percentile(&sorted, 90.0),
            max_us: sorted.last().copied().unwrap_or(0.0),
            max_cost_delta,
        });
    }

    let mean_of = |kind: SolverKind| {
        solvers.iter().find(|s| s.kind == kind).map(|s| s.mean_us).unwrap_or(f64::NAN)
    };
    let speedup = mean_of(SolverKind::DenseKm) / mean_of(SolverKind::DecomposedSparseKm);

    PressureResult {
        label,
        orders: pressure,
        instances: instances.len(),
        vehicles,
        batches_mean: instances.iter().map(|i| i.batches as f64).sum::<f64>()
            / instances.len().max(1) as f64,
        explicit_entries_mean: instances
            .iter()
            .map(|i| i.costs.explicit_entries() as f64)
            .sum::<f64>()
            / instances.len().max(1) as f64,
        components: ComponentStats {
            count_min: if count_min == usize::MAX { 0 } else { count_min },
            count_max,
            count_mean: count_sum as f64 / instances.len().max(1) as f64,
            largest_rows,
            largest_cols,
            histogram,
        },
        solvers,
        speedup_decomposed_sparse_vs_dense: speedup,
    }
}

fn print_pressure(result: &PressureResult) {
    println!();
    println!(
        "{}: {} orders -> {:.1} batches x {} vehicles, {:.0} explicit edges, \
         components {}..{} (mean {:.1}), largest shard {}x{}",
        result.label,
        result.orders,
        result.batches_mean,
        result.vehicles,
        result.explicit_entries_mean,
        result.components.count_min,
        result.components.count_max,
        result.components.count_mean,
        result.components.largest_rows,
        result.components.largest_cols
    );
    println!(
        "  {:<22} {:>10} {:>10} {:>10} {:>10} {:>14}",
        "solver", "mean (us)", "p50", "p90", "max", "cost dev"
    );
    for solver in &result.solvers {
        println!(
            "  {:<22} {:>10.0} {:>10.0} {:>10.0} {:>10.0} {:>14.6}",
            solver.kind.name(),
            solver.mean_us,
            solver.p50_us,
            solver.p90_us,
            solver.max_us,
            solver.max_cost_delta
        );
    }
    println!(
        "  speedup decomposed-sparse-km vs dense-km: {:.2}x",
        result.speedup_decomposed_sparse_vs_dense
    );
}

/// Serialises the results by hand (the vendored serde is an offline stub);
/// flat, stable keys — CI diffs them.
fn to_json(ctx: &ExperimentContext, threads: usize, results: &[PressureResult]) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"scenario\": \"city-B lunch-peak windows\",\n");
    out.push_str(&format!("  \"seed\": {},\n", ctx.seed));
    out.push_str(&format!("  \"quick\": {},\n", ctx.quick));
    out.push_str(&format!(
        "  \"available_parallelism\": {},\n",
        std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1)
    ));
    out.push_str(&format!("  \"threads\": {threads},\n"));
    out.push_str("  \"pressures\": [\n");
    for (i, p) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"label\": \"{}\", \"orders\": {}, \"instances\": {}, \"vehicles\": {}, \
             \"batches_mean\": {:.1}, \"explicit_entries_mean\": {:.1},\n",
            p.label, p.orders, p.instances, p.vehicles, p.batches_mean, p.explicit_entries_mean
        ));
        let histogram = p
            .components
            .histogram
            .iter()
            .map(|(count, instances)| format!("[{count}, {instances}]"))
            .collect::<Vec<_>>()
            .join(", ");
        out.push_str(&format!(
            "     \"components\": {{\"count_min\": {}, \"count_max\": {}, \
             \"count_mean\": {:.2}, \"largest_rows\": {}, \"largest_cols\": {}, \
             \"histogram\": [{}]}},\n",
            p.components.count_min,
            p.components.count_max,
            p.components.count_mean,
            p.components.largest_rows,
            p.components.largest_cols,
            histogram
        ));
        out.push_str("     \"solvers\": [\n");
        for (j, s) in p.solvers.iter().enumerate() {
            out.push_str(&format!(
                "       {{\"name\": \"{}\", \"mean_us\": {:.1}, \"p50_us\": {:.1}, \
                 \"p90_us\": {:.1}, \"max_us\": {:.1}, \"max_cost_delta_vs_dense\": {:.6}}}{}\n",
                s.kind.name(),
                s.mean_us,
                s.p50_us,
                s.p90_us,
                s.max_us,
                s.max_cost_delta,
                if j + 1 < p.solvers.len() { "," } else { "" }
            ));
        }
        out.push_str("     ],\n");
        out.push_str(&format!(
            "     \"speedup_decomposed_sparse_vs_dense\": {:.3}}}{}\n",
            p.speedup_decomposed_sparse_vs_dense,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n");
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_layout_is_wellformed() {
        let ctx = ExperimentContext::default();
        let mut histogram = BTreeMap::new();
        histogram.insert(3, 2);
        let results = vec![PressureResult {
            label: "city-b-60".to_string(),
            orders: 60,
            instances: 2,
            vehicles: 90,
            batches_mean: 41.0,
            explicit_entries_mean: 800.0,
            components: ComponentStats {
                count_min: 3,
                count_max: 3,
                count_mean: 3.0,
                largest_rows: 20,
                largest_cols: 30,
                histogram,
            },
            solvers: vec![SolverResult {
                kind: SolverKind::DenseKm,
                mean_us: 100.0,
                p50_us: 90.0,
                p90_us: 120.0,
                max_us: 130.0,
                max_cost_delta: 0.0,
            }],
            speedup_decomposed_sparse_vs_dense: 2.5,
        }];
        let json = to_json(&ctx, 4, &results);
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        for key in ["speedup_decomposed_sparse_vs_dense", "histogram", "max_cost_delta_vs_dense"] {
            assert!(json.contains(key), "missing {key}");
        }
    }
}
