//! Disruption benchmark: all four policies under calm vs disrupted days.
//!
//! Not a figure of the paper — this experiment exercises the dynamic-events
//! subsystem end to end. The same City A lunch-peak scenario is run under
//! every [`DisruptionPreset`] (calm, rainy_evening, incident_heavy) with
//! every dispatch policy; the calm run is the baseline the disrupted runs
//! are compared against. Reported per run: XDT, orders/km, rejection and
//! cancellation rates, the fraction of windows closed under an active
//! traffic perturbation, and the share of XDT accrued during those windows.
//!
//! With `--bench-out FILE` the results are additionally written as JSON
//! (`BENCH_disruptions.json` in CI) so successive commits can compare how
//! policies cope with a moving environment.

use crate::harness::{cell, header, ExperimentContext};
use foodmatch_core::PolicyKind;
use foodmatch_roadnet::{ShortestPathEngine, TimePoint};
use foodmatch_sim::{Simulation, SimulationReport};
use foodmatch_workload::{CityId, DisruptionPreset, Scenario, ScenarioOptions};

/// One (policy, preset) simulation outcome.
struct DisruptionRun {
    policy: PolicyKind,
    preset: DisruptionPreset,
    events: usize,
    xdt_hours_per_day: f64,
    orders_per_km: f64,
    rejection_pct: f64,
    cancellation_pct: f64,
    delivered: usize,
    disrupted_window_pct: f64,
    xdt_disrupted_hours: f64,
}

/// Runs the benchmark, prints the comparison table, and writes
/// `ctx.bench_out` when set.
pub fn run(ctx: &ExperimentContext) {
    header("Disruptions — policies under calm vs disrupted days (City A, lunch peak)");

    let scenario = Scenario::generate(CityId::A, options(ctx));
    let config = ctx.apply_solver(scenario.default_config());
    println!(
        "{} orders, {} vehicles, horizon {}–{}",
        scenario.orders.len(),
        scenario.vehicle_starts.len(),
        scenario.options.start,
        scenario.options.end
    );
    println!();
    println!(
        "{:<10} {:<15} {:>7} {:>10} {:>10} {:>8} {:>8} {:>9} {:>10}",
        "Policy", "Profile", "events", "XDT h/d", "O/Km", "Rej %", "Canc %", "DisrW %", "ΔXDT %"
    );

    let mut runs: Vec<DisruptionRun> = Vec::new();
    for policy in PolicyKind::ALL {
        let mut calm_xdt = f64::NAN;
        for preset in DisruptionPreset::ALL {
            let events = preset.builder(ctx.seed).build(&scenario);
            let event_count = events.len();
            // A fresh engine per run: overlays mutate engine state, and every
            // (policy, preset) pair must see the same cold-cache regime.
            let engine = ShortestPathEngine::cached(scenario.city.network.clone());
            let simulation = Simulation::new(
                engine,
                scenario.orders.clone(),
                scenario.vehicle_starts.clone(),
                config.clone(),
                scenario.options.start,
                scenario.options.end,
            )
            .with_events(events);
            let mut built = policy.build();
            let report = simulation.run(built.as_mut());
            let run = summarise(policy, preset, event_count, &report);
            if preset == DisruptionPreset::Calm {
                calm_xdt = run.xdt_hours_per_day;
            }
            let delta_pct = if preset == DisruptionPreset::Calm || calm_xdt.abs() < 1e-12 {
                0.0
            } else {
                (run.xdt_hours_per_day - calm_xdt) / calm_xdt * 100.0
            };
            println!(
                "{:<10} {:<15} {:>7} {} {} {} {} {} {}",
                policy.name(),
                preset.name(),
                run.events,
                cell(run.xdt_hours_per_day),
                cell(run.orders_per_km),
                cell(run.rejection_pct),
                cell(run.cancellation_pct),
                cell(run.disrupted_window_pct),
                cell(delta_pct)
            );
            runs.push(run);
        }
    }

    if let Some(path) = &ctx.bench_out {
        let json = to_json(ctx, &scenario, &runs);
        match std::fs::write(path, json) {
            Ok(()) => println!("\nwrote {}", path.display()),
            Err(err) => eprintln!("failed to write {}: {err}", path.display()),
        }
    }
}

fn options(ctx: &ExperimentContext) -> ScenarioOptions {
    let mut options = ScenarioOptions::lunch_peak(ctx.seed);
    if ctx.quick {
        options.start = TimePoint::from_hms(12, 0, 0);
        options.end = TimePoint::from_hms(13, 0, 0);
    }
    options
}

fn summarise(
    policy: PolicyKind,
    preset: DisruptionPreset,
    events: usize,
    report: &SimulationReport,
) -> DisruptionRun {
    DisruptionRun {
        policy,
        preset,
        events,
        xdt_hours_per_day: report.xdt_hours_per_day(),
        orders_per_km: report.orders_per_km(),
        rejection_pct: report.rejection_rate_pct(),
        cancellation_pct: report.cancellation_rate_pct(),
        delivered: report.delivered.len(),
        disrupted_window_pct: report.disrupted_window_pct(),
        xdt_disrupted_hours: report.xdt_hours_disrupted(),
    }
}

/// Serialises the results by hand (the vendored serde is an offline stub);
/// flat, stable keys — CI diffs them.
fn to_json(ctx: &ExperimentContext, scenario: &Scenario, runs: &[DisruptionRun]) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"scenario\": \"city-A lunch-peak\",\n");
    out.push_str(&format!("  \"seed\": {},\n", ctx.seed));
    out.push_str(&format!("  \"quick\": {},\n", ctx.quick));
    out.push_str(&format!("  \"orders\": {},\n", scenario.orders.len()));
    out.push_str(&format!("  \"vehicles\": {},\n", scenario.vehicle_starts.len()));
    out.push_str(&format!(
        "  \"profiles\": [{}],\n",
        DisruptionPreset::ALL
            .iter()
            .map(|p| format!("\"{}\"", p.name()))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    out.push_str("  \"runs\": [\n");
    for (i, r) in runs.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"policy\": \"{}\", \"profile\": \"{}\", \"events\": {}, \
             \"xdt_hours_per_day\": {:.4}, \"orders_per_km\": {:.4}, \"rejection_pct\": {:.3}, \
             \"cancellation_pct\": {:.3}, \"delivered\": {}, \"disrupted_window_pct\": {:.3}, \
             \"xdt_disrupted_hours\": {:.4}}}{}\n",
            r.policy.name(),
            r.preset.name(),
            r.events,
            r.xdt_hours_per_day,
            r.orders_per_km,
            r.rejection_pct,
            r.cancellation_pct,
            r.delivered,
            r.disrupted_window_pct,
            r.xdt_disrupted_hours,
            if i + 1 < runs.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n");
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_layout_is_wellformed() {
        let ctx = ExperimentContext::default();
        let scenario = Scenario::generate(
            CityId::GrubHub,
            ScenarioOptions {
                seed: 1,
                start: TimePoint::from_hms(12, 0, 0),
                end: TimePoint::from_hms(12, 30, 0),
                vehicle_fraction: 1.0,
            },
        );
        let runs = vec![DisruptionRun {
            policy: PolicyKind::FoodMatch,
            preset: DisruptionPreset::IncidentHeavy,
            events: 12,
            xdt_hours_per_day: 4.2,
            orders_per_km: 0.9,
            rejection_pct: 3.0,
            cancellation_pct: 5.0,
            delivered: 40,
            disrupted_window_pct: 35.0,
            xdt_disrupted_hours: 1.5,
        }];
        let json = to_json(&ctx, &scenario, &runs);
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        for key in ["incident_heavy", "xdt_hours_per_day", "cancellation_pct", "profiles"] {
            assert!(json.contains(key), "missing {key}");
        }
    }
}
