//! Online dispatch-service benchmark: sustained ingest throughput and
//! per-`advance_to` latency.
//!
//! Not a figure of the paper — this experiment measures the streaming API
//! that fronts the dispatch loop, in the two motions a live deployment
//! performs continuously:
//!
//! * **Ingest** — `submit_order` on the full lunch-peak stream, timed as a
//!   single sustained burst. Each submission computes the order's SDT
//!   baseline (one oracle query), so this is the realistic admission cost,
//!   not a queue push.
//! * **Stepping** — `advance_to`, one accumulation window per call, through
//!   the whole horizon plus the drain phase. Each call advances the fleet,
//!   pulls arrivals, runs the policy and applies the assignment; the
//!   latency distribution (p50/p90/p99/max) is the service's tick budget —
//!   every percentile must sit far below Δ for the dispatcher to keep up
//!   with the clock.
//!
//! With `--bench-out FILE` the results are additionally written as JSON
//! (`BENCH_service.json` in CI) so successive commits can compare the
//! service's ingest and stepping trajectory;
//! `scripts/check_bench_regression.py` guards both.

use crate::harness::{header, percentile, ExperimentContext};
use foodmatch_core::PolicyKind;

use foodmatch_workload::{CityId, Scenario};
use std::time::Instant;

/// One policy's measured service run.
struct ServiceResult {
    policy: &'static str,
    orders: usize,
    /// Total timed submissions (the stream replayed enough times for a
    /// stable clock reading).
    submissions: usize,
    ingest_secs: f64,
    orders_per_sec: f64,
    windows: usize,
    advance_total_secs: f64,
    mean_ms: f64,
    p50_ms: f64,
    p90_ms: f64,
    p99_ms: f64,
    max_ms: f64,
    delivered: usize,
    rejected: usize,
    xdt_hours: f64,
}

/// Runs the benchmark, prints the tables, and writes `ctx.bench_out` when
/// set.
pub fn run(ctx: &ExperimentContext) {
    header("Online dispatch service — ingest throughput and advance_to latency");

    // City B is the largest preset; quick mode shrinks the horizon (via
    // `comparison_options`) but keeps the city so the ingest burst stays
    // large enough for a stable regression baseline.
    let city = CityId::B;
    let scenario = Scenario::generate(city, ctx.comparison_options());
    let config = ctx.apply_solver(scenario.default_config());
    let sim = scenario.into_simulation_with(config);
    println!(
        "scenario: {city:?} lunch peak, {} orders, {} vehicles, delta {:.0}s",
        sim.orders.len(),
        sim.vehicle_starts.len(),
        sim.config.accumulation_window.as_secs_f64()
    );

    let policies: &[PolicyKind] = if ctx.quick {
        &[PolicyKind::FoodMatch]
    } else {
        &[PolicyKind::FoodMatch, PolicyKind::Greedy]
    };
    let mut results = Vec::new();
    for &kind in policies {
        let result = bench_policy(&sim, kind);
        print_result(&result);
        results.push(result);
    }

    if let Some(path) = &ctx.bench_out {
        let json = to_json(ctx, &results);
        match std::fs::write(path, json) {
            Ok(()) => println!("wrote {}", path.display()),
            Err(err) => eprintln!("failed to write {}: {err}", path.display()),
        }
    }
}

/// The timed ingest phase replays the stream into fresh services until at
/// least this many submissions are measured, so the throughput reading is
/// milliseconds of work rather than clock noise.
const TARGET_SUBMISSIONS: usize = 200_000;

fn bench_policy(sim: &foodmatch_sim::Simulation, kind: PolicyKind) -> ServiceResult {
    let orders = sim.orders.len();
    let fresh_service = || sim.service(kind.build());

    // Warm-up round: fills the shared oracle caches and doubles as the
    // service the stepping phase drives afterwards.
    let mut service = fresh_service();
    for order in &sim.orders {
        let _ = service.submit_order(*order);
    }

    // Sustained ingest burst: spin up a service and admit the whole stream,
    // repeated until the measurement is comfortably larger than timer
    // noise. This is the steady-state admission cost (one SDT oracle probe
    // plus queue insertion per order).
    let reps = TARGET_SUBMISSIONS.div_ceil(orders.max(1)).max(1);
    let started = Instant::now();
    for _ in 0..reps {
        let mut throwaway = fresh_service();
        for order in &sim.orders {
            let _ = throwaway.submit_order(*order);
        }
    }
    let ingest_secs = started.elapsed().as_secs_f64();
    let submissions = orders * reps;

    // Tick-driven stepping: one window per advance_to, through the drain.
    let mut latencies_ms: Vec<f64> = Vec::new();
    while !service.is_finished() {
        let tick = service.now() + service.config().accumulation_window;
        let started = Instant::now();
        let _ = service.advance_to(tick);
        latencies_ms.push(started.elapsed().as_secs_f64() * 1e3);
    }
    let report = service.report();

    let mut sorted = latencies_ms.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("latencies are never NaN"));
    ServiceResult {
        policy: kind.build().name(),
        orders,
        submissions,
        ingest_secs,
        orders_per_sec: if ingest_secs > 0.0 { submissions as f64 / ingest_secs } else { f64::NAN },
        windows: latencies_ms.len(),
        advance_total_secs: latencies_ms.iter().sum::<f64>() / 1e3,
        mean_ms: latencies_ms.iter().sum::<f64>() / latencies_ms.len().max(1) as f64,
        p50_ms: percentile(&sorted, 50.0),
        p90_ms: percentile(&sorted, 90.0),
        p99_ms: percentile(&sorted, 99.0),
        max_ms: sorted.last().copied().unwrap_or(0.0),
        delivered: report.delivered.len(),
        rejected: report.rejected.len(),
        xdt_hours: report.total_xdt_hours(),
    }
}

fn print_result(result: &ServiceResult) {
    println!();
    println!(
        "{}: sustained ingest {} submissions ({}-order stream) in {:.3}s ({:.0} orders/s)",
        result.policy, result.submissions, result.orders, result.ingest_secs, result.orders_per_sec
    );
    println!(
        "  advance_to: {} calls, {:.2}s total | mean {:.2} ms, p50 {:.2}, p90 {:.2}, \
         p99 {:.2}, max {:.2}",
        result.windows,
        result.advance_total_secs,
        result.mean_ms,
        result.p50_ms,
        result.p90_ms,
        result.p99_ms,
        result.max_ms
    );
    println!(
        "  outcome: {} delivered, {} rejected, XDT {:.2} h",
        result.delivered, result.rejected, result.xdt_hours
    );
}

/// Serialises the results by hand (the vendored serde is an offline stub);
/// flat, stable keys — CI diffs them.
fn to_json(ctx: &ExperimentContext, results: &[ServiceResult]) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"scenario\": \"lunch-peak replay through DispatchService\",\n");
    out.push_str(&format!("  \"seed\": {},\n", ctx.seed));
    out.push_str(&format!("  \"quick\": {},\n", ctx.quick));
    out.push_str(&format!(
        "  \"available_parallelism\": {},\n",
        std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1)
    ));
    out.push_str("  \"service\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"policy\": \"{}\", \
             \"ingest\": {{\"orders\": {}, \"submissions\": {}, \"secs\": {:.6}, \
             \"orders_per_sec\": {:.1}}}, \
             \"advance\": {{\"windows\": {}, \"total_secs\": {:.3}, \"mean_ms\": {:.3}, \
             \"p50_ms\": {:.3}, \"p90_ms\": {:.3}, \"p99_ms\": {:.3}, \"max_ms\": {:.3}}}, \
             \"outcome\": {{\"delivered\": {}, \"rejected\": {}, \"xdt_hours\": {:.4}}}}}{}\n",
            r.policy,
            r.orders,
            r.submissions,
            r.ingest_secs,
            r.orders_per_sec,
            r.windows,
            r.advance_total_secs,
            r.mean_ms,
            r.p50_ms,
            r.p90_ms,
            r.p99_ms,
            r.max_ms,
            r.delivered,
            r.rejected,
            r.xdt_hours,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n");
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_layout_is_wellformed() {
        let ctx = ExperimentContext::default();
        let results = vec![ServiceResult {
            policy: "FoodMatch",
            orders: 1200,
            submissions: 24_000,
            ingest_secs: 0.5,
            orders_per_sec: 2400.0,
            windows: 140,
            advance_total_secs: 4.2,
            mean_ms: 30.0,
            p50_ms: 25.0,
            p90_ms: 55.0,
            p99_ms: 80.0,
            max_ms: 95.0,
            delivered: 1150,
            rejected: 50,
            xdt_hours: 12.5,
        }];
        let json = to_json(&ctx, &results);
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        for key in ["orders_per_sec", "p99_ms", "windows", "xdt_hours", "available_parallelism"] {
            assert!(json.contains(key), "missing {key}");
        }
    }
}
