//! Sharded dispatch-router benchmark: how ingest throughput and lockstep
//! `advance_to` latency scale with the shard count.
//!
//! Not a figure of the paper — this experiment measures the metro-scale
//! façade over the streaming service. One fixed metro workload (the
//! [`MetroScenario`] geometry: restaurant hotspots farther apart than the
//! first-mile bound) is routed through a [`DispatchRouter`] sharded 1, 2
//! and 4 ways over the *same* city, so the series isolates what sharding
//! buys (and costs):
//!
//! * **Ingest** — `submit_order` on the full metro stream: zone lookup,
//!   global duplicate guard, then the owning shard's admission (one SDT
//!   oracle query). Per-shard engines mean smaller per-engine caches, so
//!   this is the realistic multi-tenant admission cost.
//! * **Stepping** — `advance_to`, one lockstep window per call, through the
//!   horizon plus the drain. Shards advance concurrently; the latency
//!   distribution per call is the router's tick budget, and it should
//!   *fall* as shards shrink while their fan-out runs in parallel.
//!
//! With `--bench-out FILE` the results are written as JSON
//! (`BENCH_router.json` in CI); `scripts/check_bench_regression.py` guards
//! the per-shard-count throughput and latency against the committed
//! baseline.

use crate::harness::{header, percentile, ExperimentContext};
use foodmatch_core::PolicyKind;
use foodmatch_workload::{MetroOptions, MetroScenario};
use std::time::Instant;

/// One shard count's measured router run.
struct RouterResult {
    zones: usize,
    orders: usize,
    submissions: usize,
    ingest_secs: f64,
    orders_per_sec: f64,
    windows: usize,
    advance_total_secs: f64,
    mean_ms: f64,
    p50_ms: f64,
    p90_ms: f64,
    p99_ms: f64,
    max_ms: f64,
    delivered: usize,
    rejected: usize,
    xdt_hours: f64,
}

/// Runs the benchmark, prints the tables, and writes `ctx.bench_out` when
/// set.
pub fn run(ctx: &ExperimentContext) {
    header("Sharded dispatch router — ingest and lockstep advance_to vs shard count");

    let mut options = MetroOptions::lunch_peak(ctx.seed);
    if !ctx.quick {
        options.grid = 70;
        options.orders = 600;
        options.vehicles = 480;
    }
    let metro = MetroScenario::generate(options);
    println!(
        "metro: {}x{} grid at {:.0} m spacing, {} hotspots, {} orders, {} vehicles, delta {:.0}s",
        options.grid,
        options.grid,
        options.spacing_m,
        options.zones,
        options.orders,
        options.vehicles,
        metro.config().accumulation_window.as_secs_f64()
    );

    let mut results = Vec::new();
    for shards in [1usize, 2, 4] {
        let result = bench_shard_count(ctx, &metro, shards);
        print_result(&result);
        results.push(result);
    }

    if let Some(path) = &ctx.bench_out {
        let json = to_json(ctx, &results);
        match std::fs::write(path, json) {
            Ok(()) => println!("wrote {}", path.display()),
            Err(err) => eprintln!("failed to write {}: {err}", path.display()),
        }
    }
}

fn bench_shard_count(
    ctx: &ExperimentContext,
    metro: &MetroScenario,
    shards: usize,
) -> RouterResult {
    let orders = metro.orders.len();
    let fresh_router =
        || metro.router(metro.grouped_zone_map(shards), |_| PolicyKind::FoodMatch.build());

    // Warm-up round: fills the per-shard oracle caches and doubles as the
    // router the stepping phase drives afterwards.
    let mut router = fresh_router();
    for order in &metro.orders {
        let _ = router.submit_order(*order);
    }

    // Sustained ingest burst: a fresh router per repetition (per-shard
    // engines start cold, as a redeploy would), the whole stream admitted
    // each time. Zone lookup + duplicate guard + the shard's SDT probe.
    let reps = if ctx.quick { 4 } else { 8 };
    let started = Instant::now();
    for _ in 0..reps {
        let mut throwaway = fresh_router();
        for order in &metro.orders {
            let _ = throwaway.submit_order(*order);
        }
    }
    let ingest_secs = started.elapsed().as_secs_f64();
    let submissions = orders * reps;

    // Lockstep stepping: one window per advance_to, through the drain.
    let mut latencies_ms: Vec<f64> = Vec::new();
    while !router.is_finished() {
        let tick = router.now() + router.config().accumulation_window;
        let started = Instant::now();
        let _ = router.advance_to(tick);
        latencies_ms.push(started.elapsed().as_secs_f64() * 1e3);
    }
    let report = router.report();

    let mut sorted = latencies_ms.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("latencies are never NaN"));
    RouterResult {
        zones: shards,
        orders,
        submissions,
        ingest_secs,
        orders_per_sec: if ingest_secs > 0.0 { submissions as f64 / ingest_secs } else { f64::NAN },
        windows: latencies_ms.len(),
        advance_total_secs: latencies_ms.iter().sum::<f64>() / 1e3,
        mean_ms: latencies_ms.iter().sum::<f64>() / latencies_ms.len().max(1) as f64,
        p50_ms: percentile(&sorted, 50.0),
        p90_ms: percentile(&sorted, 90.0),
        p99_ms: percentile(&sorted, 99.0),
        max_ms: sorted.last().copied().unwrap_or(0.0),
        delivered: report.aggregate.delivered.len(),
        rejected: report.aggregate.rejected.len(),
        xdt_hours: report.aggregate.total_xdt_hours(),
    }
}

fn print_result(result: &RouterResult) {
    println!();
    println!(
        "{} shard(s): sustained ingest {} submissions ({}-order stream) in {:.3}s \
         ({:.0} orders/s)",
        result.zones, result.submissions, result.orders, result.ingest_secs, result.orders_per_sec
    );
    println!(
        "  advance_to: {} lockstep calls, {:.2}s total | mean {:.2} ms, p50 {:.2}, p90 {:.2}, \
         p99 {:.2}, max {:.2}",
        result.windows,
        result.advance_total_secs,
        result.mean_ms,
        result.p50_ms,
        result.p90_ms,
        result.p99_ms,
        result.max_ms
    );
    println!(
        "  outcome: {} delivered, {} rejected, XDT {:.2} h",
        result.delivered, result.rejected, result.xdt_hours
    );
}

/// Serialises the results by hand (the vendored serde is an offline stub);
/// flat, stable keys — CI diffs them.
fn to_json(ctx: &ExperimentContext, results: &[RouterResult]) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"scenario\": \"metro lunch peak through DispatchRouter\",\n");
    out.push_str(&format!("  \"seed\": {},\n", ctx.seed));
    out.push_str(&format!("  \"quick\": {},\n", ctx.quick));
    out.push_str(&format!(
        "  \"available_parallelism\": {},\n",
        std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1)
    ));
    out.push_str("  \"router\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"zones\": {}, \
             \"ingest\": {{\"orders\": {}, \"submissions\": {}, \"secs\": {:.6}, \
             \"orders_per_sec\": {:.1}}}, \
             \"advance\": {{\"windows\": {}, \"total_secs\": {:.3}, \"mean_ms\": {:.3}, \
             \"p50_ms\": {:.3}, \"p90_ms\": {:.3}, \"p99_ms\": {:.3}, \"max_ms\": {:.3}}}, \
             \"outcome\": {{\"delivered\": {}, \"rejected\": {}, \"xdt_hours\": {:.4}}}}}{}\n",
            r.zones,
            r.orders,
            r.submissions,
            r.ingest_secs,
            r.orders_per_sec,
            r.windows,
            r.advance_total_secs,
            r.mean_ms,
            r.p50_ms,
            r.p90_ms,
            r.p99_ms,
            r.max_ms,
            r.delivered,
            r.rejected,
            r.xdt_hours,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n");
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_layout_is_wellformed() {
        let ctx = ExperimentContext::default();
        let results = vec![RouterResult {
            zones: 2,
            orders: 300,
            submissions: 1_200,
            ingest_secs: 0.4,
            orders_per_sec: 3000.0,
            windows: 60,
            advance_total_secs: 2.1,
            mean_ms: 35.0,
            p50_ms: 30.0,
            p90_ms: 60.0,
            p99_ms: 85.0,
            max_ms: 90.0,
            delivered: 290,
            rejected: 10,
            xdt_hours: 4.5,
        }];
        let json = to_json(&ctx, &results);
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        for key in ["\"router\"", "zones", "orders_per_sec", "p90_ms", "available_parallelism"] {
            assert!(json.contains(key), "missing {key}");
        }
    }
}
