//! Figure 9: impact of the angular-distance weight γ (a–c) and the rejection
//! rate versus fleet size for three γ values on City B (d).

use crate::harness::{cell, header, run_city, ExperimentContext};
use foodmatch_core::{DispatchConfig, PolicyKind};
use foodmatch_workload::CityId;

/// Runs both halves of Figure 9.
pub fn run(ctx: &ExperimentContext) {
    fig9_abc(ctx);
    fig9_d(ctx);
}

/// Fig. 9(a–c): XDT, O/Km and WT as γ sweeps from angular-dominated (0.1) to
/// travel-time-dominated (0.9).
pub fn fig9_abc(ctx: &ExperimentContext) {
    header("Fig. 9(a-c) — impact of the angular weight gamma");
    let gammas: &[f64] = if ctx.quick { &[0.1, 0.5, 0.9] } else { &[0.1, 0.25, 0.5, 0.75, 0.9] };
    println!("{:<10} {:>8} {:>12} {:>10} {:>12}", "City", "gamma", "XDT (h/d)", "O/Km", "WT (h/d)");
    for city in ctx.swiggy_cities() {
        for &gamma in gammas {
            let summary = run_city(city, ctx.sweep_options(), PolicyKind::FoodMatch, |c| {
                DispatchConfig { gamma, ..c }
            });
            println!(
                "{:<10} {:>8.2} {} {} {}",
                city.name(),
                gamma,
                cell(summary.xdt_hours_per_day),
                cell(summary.orders_per_km),
                cell(summary.waiting_hours_per_day),
            );
        }
    }
}

/// Fig. 9(d): rejection rate versus fleet size for γ ∈ {0.1, 0.5, 0.9} on
/// City B.
pub fn fig9_d(ctx: &ExperimentContext) {
    header("Fig. 9(d) — rejection rate vs vehicles for three gammas (City B)");
    let fractions: &[f64] = if ctx.quick { &[0.1, 0.3] } else { &[0.1, 0.2, 0.3] };
    println!("{:<10} {:>10} {:>8} {:>14}", "City", "Vehicles%", "gamma", "Rejections %");
    for &fraction in fractions {
        for gamma in [0.1, 0.5, 0.9] {
            let options = ctx.sweep_options().with_vehicle_fraction(fraction);
            let summary = run_city(CityId::B, options, PolicyKind::FoodMatch, |c| DispatchConfig {
                gamma,
                ..c
            });
            println!(
                "{:<10} {:>9.0}% {:>8.1} {:>13.1}%",
                CityId::B.name(),
                fraction * 100.0,
                gamma,
                summary.rejection_pct
            );
        }
    }
}
