//! Crash-safety benchmark: what durability costs and how fast recovery
//! catches up.
//!
//! Not a figure of the paper — this experiment measures the persistence
//! layer around the online dispatch service, in the four motions a
//! crash-safe deployment performs:
//!
//! * **WAL ingest overhead** — `submit_order` through a [`DurableDispatch`]
//!   (frame + checksum + append + flush per order) vs the bare service, as
//!   sustained bursts. The ratio is the price of the write-ahead contract.
//!   A **flush-policy sweep** repeats the durable burst under each
//!   group-commit [`FlushPolicy`], showing how amortising the fsync across
//!   batches buys the overhead back.
//! * **Checkpoint save** — capture + atomically persist the full mid-day
//!   service state (orders, fleet physics, schedule, metrics), timed per
//!   snapshot, with the sealed container size reported. The **capture
//!   stall** row times only the in-thread half of the two-phase background
//!   path ([`DurableDispatch::checkpoint`] +
//!   [`BackgroundCheckpointer::save`]) — the part the dispatch thread
//!   actually pays when persistence moves off-thread.
//! * **Checkpoint restore** — read, verify (magic, length, CRC) and rebuild
//!   a live service from the container.
//! * **Replay catch-up** — drive a whole logged day back through
//!   [`replay_wal`] on a restored service; the catch-up factor is simulated
//!   seconds per wall second, the margin by which recovery outruns the
//!   clock it is chasing.
//!
//! With `--bench-out FILE` the results are additionally written as JSON
//! (`BENCH_recovery.json` in CI) so successive commits can compare the
//! durability trajectory; `scripts/check_bench_regression.py` guards it.

use crate::harness::{header, percentile, ExperimentContext};
use foodmatch_core::PolicyKind;
use foodmatch_sim::{
    load_checkpoint, read_wal_file, replay_wal, save_checkpoint, BackgroundCheckpointer,
    DispatchService, DurableDispatch, FlushPolicy, ServiceCheckpoint, Simulation, WriteAheadLog,
};
use foodmatch_workload::{CityId, Scenario};
use std::path::PathBuf;
use std::time::Instant;

/// One row of the group-commit sweep: the durable burst re-run under a
/// single [`FlushPolicy`].
struct FlushPolicyResult {
    /// Stable label from [`FlushPolicy::label`] (`every-record`,
    /// `every-64`, `window`).
    label: String,
    /// Durable sustained ingest under this policy (orders/sec).
    wal_orders_per_sec: f64,
    /// plain / wal for this policy — the residual durability tax.
    wal_overhead_ratio: f64,
}

/// The measured durability profile of one policy's day.
struct RecoveryResult {
    policy: &'static str,
    orders: usize,
    /// Bare-service sustained ingest (orders/sec) — the no-WAL baseline.
    plain_orders_per_sec: f64,
    /// Ingest through the durable wrapper (orders/sec), every submission
    /// framed, checksummed, appended and flushed before it is applied.
    wal_orders_per_sec: f64,
    /// plain / wal — how many times slower durable ingest is.
    wal_overhead_ratio: f64,
    /// The same burst under each group-commit flush policy (the
    /// `every-record` row repeats the headline pair above).
    flush_policies: Vec<FlushPolicyResult>,
    /// Sealed on-disk size of the mid-day checkpoint container.
    checkpoint_bytes: u64,
    /// Fastest observed snapshot (capture + atomic write). The best-of
    /// estimator is the guarded number: it bounds the true cost from below
    /// and is far less runner-noise-sensitive than a mean of
    /// sub-millisecond samples.
    save_best_ms: f64,
    save_mean_ms: f64,
    save_p90_ms: f64,
    /// In-thread capture stall on the two-phase background path: flush the
    /// WAL, clone the state, hand it to the worker — no serialisation, no
    /// disk wait on the dispatch thread.
    capture_best_ms: f64,
    capture_mean_ms: f64,
    /// Highest sequence the background worker durably sealed before the
    /// final drain — proof the off-thread half actually persisted.
    background_sealed: u64,
    restore_best_ms: f64,
    restore_mean_ms: f64,
    restore_p90_ms: f64,
    /// Records in the full-day log the replay phase consumed.
    replay_records: usize,
    replay_secs: f64,
    replay_records_per_sec: f64,
    /// Simulated seconds recovered per wall-clock second of replay.
    replay_catchup_x: f64,
}

/// Runs the benchmark, prints the tables, and writes `ctx.bench_out` when
/// set.
pub fn run(ctx: &ExperimentContext) {
    header("Crash-safe dispatch — WAL overhead, checkpoint latency, replay catch-up");

    let city = CityId::B;
    let scenario = Scenario::generate(city, ctx.comparison_options());
    let config = ctx.apply_solver(scenario.default_config());
    let sim = scenario.into_simulation_with(config);
    println!(
        "scenario: {city:?} lunch peak, {} orders, {} vehicles, delta {:.0}s",
        sim.orders.len(),
        sim.vehicle_starts.len(),
        sim.config.accumulation_window.as_secs_f64()
    );

    let result = bench_policy(&sim, PolicyKind::FoodMatch, ctx.quick);
    print_result(&result);

    if let Some(path) = &ctx.bench_out {
        let json = to_json(ctx, &result);
        match std::fs::write(path, json) {
            Ok(()) => println!("wrote {}", path.display()),
            Err(err) => eprintln!("failed to write {}: {err}", path.display()),
        }
    }
}

/// Scratch file unique to this process.
fn scratch(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("fm-bench-recovery-{}-{name}", std::process::id()))
}

fn bench_policy(sim: &Simulation, kind: PolicyKind, quick: bool) -> RecoveryResult {
    let orders = sim.orders.len();
    // The WAL burst pays one flush per submission; keep its target an order
    // of magnitude below the plain burst so the phase stays in seconds.
    let (plain_target, wal_target, snapshots): (usize, usize, usize) =
        if quick { (50_000, 10_000, 64) } else { (200_000, 40_000, 128) };

    // Warm-up: fill the shared oracle caches once.
    let mut warm = sim.service(kind.build());
    for order in &sim.orders {
        let _ = warm.submit_order(*order);
    }
    drop(warm);

    // Throughputs are best-of-six chunked bursts: the fastest chunk is
    // the least noise-contaminated estimate of what the machine can
    // actually sustain, so the regression guard does not flap on a busy
    // runner.
    let best_of_chunks = |target: usize, mut burst: Box<dyn FnMut()>| -> f64 {
        let reps = target.div_ceil(orders.max(1)).max(1);
        let chunk = reps.div_ceil(6).max(1);
        let mut best = 0.0f64;
        let mut done = 0;
        while done < reps {
            let n = chunk.min(reps - done);
            let started = Instant::now();
            for _ in 0..n {
                burst();
            }
            let secs = started.elapsed().as_secs_f64();
            best = best.max((orders * n) as f64 / secs.max(f64::EPSILON));
            done += n;
        }
        best
    };

    // Plain sustained ingest — the no-WAL baseline.
    let plain_orders_per_sec = best_of_chunks(
        plain_target,
        Box::new(|| {
            let mut service = sim.service(kind.build());
            for order in &sim.orders {
                let _ = service.submit_order(*order);
            }
        }),
    );

    // Durable sustained ingest — same stream through the write-ahead log,
    // once per flush policy. `every-record` pays one fsync per order and
    // stays the headline (worst-case) pair; the group-commit policies
    // amortise it and should land near the bare-service rate.
    let wal_path = scratch("ingest.wal");
    let durable_burst = |policy: FlushPolicy, target: usize| -> f64 {
        let path = &wal_path;
        best_of_chunks(
            target,
            Box::new(move || {
                let log = WriteAheadLog::create_with(path, policy).expect("create ingest WAL");
                let mut durable = DurableDispatch::new(sim.service(kind.build()), log);
                for order in &sim.orders {
                    let _ = durable.submit_order(*order).expect("durable submit");
                }
                // The drop flushes the final partial group — inside the
                // timed region, so every policy is charged its full fsync
                // bill.
            }),
        )
    };
    let wal_orders_per_sec = durable_burst(FlushPolicy::EveryRecord, wal_target);
    let mut flush_policies = vec![FlushPolicyResult {
        label: FlushPolicy::EveryRecord.label(),
        wal_orders_per_sec,
        wal_overhead_ratio: plain_orders_per_sec / wal_orders_per_sec.max(f64::EPSILON),
    }];
    for policy in [FlushPolicy::EveryN(64), FlushPolicy::Window] {
        // Group-committed bursts run near bare speed: give them the plain
        // target so the measurement window stays comparable.
        let rate = durable_burst(policy, plain_target);
        flush_policies.push(FlushPolicyResult {
            label: policy.label(),
            wal_orders_per_sec: rate,
            wal_overhead_ratio: plain_orders_per_sec / rate.max(f64::EPSILON),
        });
    }
    std::fs::remove_file(&wal_path).ok();

    // Checkpoint save/restore latency, measured on a mid-day service with
    // real in-flight state (routes, carried orders, window history).
    let mut service = sim.service(kind.build());
    for order in &sim.orders {
        let _ = service.submit_order(*order);
    }
    let horizon = sim.end - sim.start;
    let _ = service.advance_to(
        sim.start + foodmatch_roadnet::Duration::from_secs_f64(horizon.as_secs_f64() * 0.5),
    );
    let ckpt_path = scratch("midday.ckpt");
    let mut save_ms = Vec::with_capacity(snapshots);
    for _ in 0..snapshots {
        let started = Instant::now();
        let checkpoint = service.checkpoint();
        save_checkpoint(&ckpt_path, &checkpoint).expect("save checkpoint");
        save_ms.push(started.elapsed().as_secs_f64() * 1e3);
    }
    let checkpoint_bytes = std::fs::metadata(&ckpt_path).map(|m| m.len()).unwrap_or(0);
    let mut restore_ms = Vec::with_capacity(snapshots);
    for _ in 0..snapshots {
        let started = Instant::now();
        let checkpoint: ServiceCheckpoint = load_checkpoint(&ckpt_path).expect("load checkpoint");
        let restored = DispatchService::restore(sim.engine.clone(), kind.build(), &checkpoint);
        restore_ms.push(started.elapsed().as_secs_f64() * 1e3);
        drop(restored);
    }
    std::fs::remove_file(&ckpt_path).ok();

    // Capture stall: the same mid-day state through the two-phase
    // background path. The dispatch thread pays only flush-barrier +
    // capture + hand-off; serialisation and fsync happen on the worker.
    let capture_wal = scratch("capture.wal");
    let bg_ckpt = scratch("background.ckpt");
    let log = WriteAheadLog::create(&capture_wal).expect("create capture WAL");
    let mut durable = DurableDispatch::new(service, log);
    let checkpointer = BackgroundCheckpointer::service(&bg_ckpt).expect("spawn checkpointer");
    let mut capture_ms = Vec::with_capacity(snapshots);
    for seq in 1..=snapshots as u64 {
        let started = Instant::now();
        let checkpoint = durable.checkpoint().expect("capture checkpoint");
        checkpointer.save(seq, checkpoint);
        capture_ms.push(started.elapsed().as_secs_f64() * 1e3);
    }
    let background_sealed = checkpointer.drain().expect("background checkpoints seal");
    drop(durable);
    std::fs::remove_file(&capture_wal).ok();
    std::fs::remove_file(&bg_ckpt).ok();

    // Replay catch-up: log a full day (just-in-time submissions, one window
    // per advance), then replay it cold onto a fresh service.
    let day_path = scratch("day.wal");
    let log = WriteAheadLog::create(&day_path).expect("create day WAL");
    let mut durable = DurableDispatch::new(sim.service(kind.build()), log);
    let mut pending = sim.orders.clone();
    pending.sort_by(|a, b| {
        a.placed_at.partial_cmp(&b.placed_at).expect("no NaN").then(a.id.cmp(&b.id))
    });
    let mut next = 0usize;
    let window = sim.config.accumulation_window;
    let mut tick = sim.start;
    let drain_end = sim.end + sim.drain_limit;
    while !durable.target().is_finished() && tick < drain_end {
        tick += window;
        while next < pending.len() && pending[next].placed_at <= tick {
            let _ = durable.submit_order(pending[next]).expect("log submit");
            next += 1;
        }
        let _ = durable.advance_to(tick).expect("log advance");
    }
    let simulated_secs = (durable.target().now() - sim.start).as_secs_f64();
    drop(durable);

    // Best of five cold replays: the fastest pass is the stable estimate
    // (a single 0.2s window is too exposed to scheduler noise to guard).
    let outcome = read_wal_file(&day_path).expect("read day WAL");
    let replay_records = outcome.records.len();
    let mut replay_secs = f64::MAX;
    for _ in 0..5 {
        let mut cold = sim.service(kind.build());
        let started = Instant::now();
        let _ = replay_wal(&mut cold, &outcome.records).expect("replay the day");
        replay_secs = replay_secs.min(started.elapsed().as_secs_f64());
    }
    std::fs::remove_file(&day_path).ok();

    let p = |v: &[f64], q: f64| {
        let mut sorted = v.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("latencies are never NaN"));
        percentile(&sorted, q)
    };
    RecoveryResult {
        policy: kind.build().name(),
        orders,
        plain_orders_per_sec,
        wal_orders_per_sec,
        wal_overhead_ratio: plain_orders_per_sec / wal_orders_per_sec.max(f64::EPSILON),
        flush_policies,
        checkpoint_bytes,
        save_best_ms: save_ms.iter().copied().fold(f64::MAX, f64::min),
        save_mean_ms: save_ms.iter().sum::<f64>() / save_ms.len().max(1) as f64,
        save_p90_ms: p(&save_ms, 90.0),
        capture_best_ms: capture_ms.iter().copied().fold(f64::MAX, f64::min),
        capture_mean_ms: capture_ms.iter().sum::<f64>() / capture_ms.len().max(1) as f64,
        background_sealed,
        restore_best_ms: restore_ms.iter().copied().fold(f64::MAX, f64::min),
        restore_mean_ms: restore_ms.iter().sum::<f64>() / restore_ms.len().max(1) as f64,
        restore_p90_ms: p(&restore_ms, 90.0),
        replay_records,
        replay_secs,
        replay_records_per_sec: replay_records as f64 / replay_secs.max(f64::EPSILON),
        replay_catchup_x: simulated_secs / replay_secs.max(f64::EPSILON),
    }
}

fn print_result(result: &RecoveryResult) {
    println!();
    println!(
        "{}: ingest {:.0} orders/s bare vs {:.0} orders/s through the WAL ({:.2}x overhead)",
        result.policy,
        result.plain_orders_per_sec,
        result.wal_orders_per_sec,
        result.wal_overhead_ratio
    );
    println!("  flush-policy sweep (same burst, group-committed fsync):");
    for row in &result.flush_policies {
        println!(
            "    {:<14} {:>9.0} orders/s   {:>7.2}x overhead",
            row.label, row.wal_orders_per_sec, row.wal_overhead_ratio
        );
    }
    println!(
        "  checkpoint: {} bytes sealed | save best {:.2} ms, mean {:.2}, p90 {:.2} | \
         restore best {:.2} ms, mean {:.2}, p90 {:.2}",
        result.checkpoint_bytes,
        result.save_best_ms,
        result.save_mean_ms,
        result.save_p90_ms,
        result.restore_best_ms,
        result.restore_mean_ms,
        result.restore_p90_ms
    );
    println!(
        "  background checkpoint: capture stall best {:.3} ms, mean {:.3} \
         (vs {:.2} ms synchronous save) — worker sealed through seq {}",
        result.capture_best_ms,
        result.capture_mean_ms,
        result.save_best_ms,
        result.background_sealed
    );
    println!(
        "  replay: {} records in {:.3}s ({:.0} records/s) — catches up {:.0}x faster than \
         the simulated clock",
        result.replay_records,
        result.replay_secs,
        result.replay_records_per_sec,
        result.replay_catchup_x
    );
}

/// Serialises the result by hand (the vendored serde is an offline stub);
/// flat, stable keys — CI diffs them.
fn to_json(ctx: &ExperimentContext, r: &RecoveryResult) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"scenario\": \"lunch-peak replay through DurableDispatch\",\n");
    out.push_str(&format!("  \"seed\": {},\n", ctx.seed));
    out.push_str(&format!("  \"quick\": {},\n", ctx.quick));
    out.push_str(&format!(
        "  \"available_parallelism\": {},\n",
        std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1)
    ));
    let flush_policies = r
        .flush_policies
        .iter()
        .map(|row| {
            format!(
                "{{\"policy\": \"{}\", \"wal_orders_per_sec\": {:.1}, \
                 \"wal_overhead_ratio\": {:.4}}}",
                row.label, row.wal_orders_per_sec, row.wal_overhead_ratio
            )
        })
        .collect::<Vec<_>>()
        .join(", ");
    out.push_str("  \"recovery\": [\n");
    out.push_str(&format!(
        "    {{\"policy\": \"{}\", \
         \"ingest\": {{\"orders\": {}, \"plain_orders_per_sec\": {:.1}, \
         \"wal_orders_per_sec\": {:.1}, \"wal_overhead_ratio\": {:.4}, \
         \"flush_policies\": [{}]}}, \
         \"checkpoint\": {{\"bytes\": {}, \"save_best_ms\": {:.3}, \"save_mean_ms\": {:.3}, \
         \"save_p90_ms\": {:.3}, \"capture_best_ms\": {:.3}, \"capture_mean_ms\": {:.3}, \
         \"background_sealed\": {}, \
         \"restore_best_ms\": {:.3}, \"restore_mean_ms\": {:.3}, \
         \"restore_p90_ms\": {:.3}}}, \
         \"replay\": {{\"records\": {}, \"secs\": {:.6}, \"records_per_sec\": {:.1}, \
         \"catchup_x\": {:.1}}}}}\n",
        r.policy,
        r.orders,
        r.plain_orders_per_sec,
        r.wal_orders_per_sec,
        r.wal_overhead_ratio,
        flush_policies,
        r.checkpoint_bytes,
        r.save_best_ms,
        r.save_mean_ms,
        r.save_p90_ms,
        r.capture_best_ms,
        r.capture_mean_ms,
        r.background_sealed,
        r.restore_best_ms,
        r.restore_mean_ms,
        r.restore_p90_ms,
        r.replay_records,
        r.replay_secs,
        r.replay_records_per_sec,
        r.replay_catchup_x,
    ));
    out.push_str("  ]\n");
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_layout_is_wellformed() {
        let ctx = ExperimentContext::default();
        let result = RecoveryResult {
            policy: "FoodMatch",
            orders: 1200,
            plain_orders_per_sec: 250_000.0,
            wal_orders_per_sec: 40_000.0,
            wal_overhead_ratio: 6.25,
            flush_policies: vec![
                FlushPolicyResult {
                    label: "every-record".to_string(),
                    wal_orders_per_sec: 40_000.0,
                    wal_overhead_ratio: 6.25,
                },
                FlushPolicyResult {
                    label: "window".to_string(),
                    wal_orders_per_sec: 240_000.0,
                    wal_overhead_ratio: 1.04,
                },
            ],
            checkpoint_bytes: 180_000,
            save_best_ms: 1.6,
            save_mean_ms: 2.0,
            save_p90_ms: 3.1,
            capture_best_ms: 0.4,
            capture_mean_ms: 0.6,
            background_sealed: 128,
            restore_best_ms: 1.1,
            restore_mean_ms: 1.4,
            restore_p90_ms: 2.2,
            replay_records: 1340,
            replay_secs: 0.8,
            replay_records_per_sec: 1675.0,
            replay_catchup_x: 13_500.0,
        };
        let json = to_json(&ctx, &result);
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        for key in [
            "wal_overhead_ratio",
            "flush_policies",
            "\"every-record\"",
            "\"window\"",
            "save_best_ms",
            "save_mean_ms",
            "capture_best_ms",
            "background_sealed",
            "restore_best_ms",
            "restore_p90_ms",
            "catchup_x",
            "available_parallelism",
        ] {
            assert!(json.contains(key), "missing {key}");
        }
    }
}
