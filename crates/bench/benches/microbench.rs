//! Criterion micro-benchmarks for the building blocks whose cost dominates
//! the per-window running time reported in Fig. 6(h), 8(g) and 8(k):
//! shortest-path queries under the four engines, per-backend index
//! construction, Kuhn–Munkres matching, order batching, sparsified vs dense
//! FoodGraph construction, and one full FoodMatch window.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use foodmatch_core::{
    batch_orders, build_food_graph, DispatchConfig, DispatchPolicy, FoodMatchPolicy, GreedyPolicy,
    KuhnMunkresPolicy, WindowSnapshot,
};
use foodmatch_matching::{solve_hungarian, CostMatrix};
use foodmatch_roadnet::{
    ContractionHierarchy, EngineKind, HourSlot, HubLabelIndex, ShortestPathEngine, TimePoint,
};
use foodmatch_workload::{CityId, Scenario, ScenarioOptions};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn lunch_window(
    city: CityId,
    orders: usize,
) -> (WindowSnapshot, ShortestPathEngine, DispatchConfig) {
    let scenario = Scenario::generate(city, ScenarioOptions::lunch_peak(7));
    let engine = ShortestPathEngine::cached(scenario.city.network.clone());
    let config =
        DispatchConfig { accumulation_window: scenario.city.preset.delta, ..Default::default() };
    let time = TimePoint::from_hms(13, 0, 0);
    let window_orders: Vec<_> = scenario.orders.iter().copied().take(orders).collect();
    let vehicles: Vec<_> = scenario
        .vehicle_starts
        .iter()
        .map(|&(id, node)| foodmatch_core::VehicleSnapshot::idle(id, node))
        .collect();
    (WindowSnapshot::new(time, window_orders, vehicles), engine, config)
}

fn bench_shortest_paths(c: &mut Criterion) {
    let scenario = Scenario::generate(CityId::A, ScenarioOptions::lunch_peak(3));
    let network = scenario.city.network.clone();
    let nodes: Vec<_> = network.node_ids().collect();
    let mut rng = StdRng::seed_from_u64(11);
    let pairs: Vec<_> = (0..64)
        .map(|_| (nodes[rng.random_range(0..nodes.len())], nodes[rng.random_range(0..nodes.len())]))
        .collect();
    let t = TimePoint::from_hms(13, 0, 0);

    let mut group = c.benchmark_group("shortest_path");
    for kind in EngineKind::ALL {
        let engine = ShortestPathEngine::new(network.clone(), kind);
        engine.warm_up(HourSlot::new(13));
        // Prime the cache so the cached engine measures steady-state queries.
        for &(a, b) in &pairs {
            black_box(engine.travel_time(a, b, t));
        }
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{kind:?}")),
            &engine,
            |b, engine| {
                b.iter(|| {
                    for &(from, to) in &pairs {
                        black_box(engine.travel_time(from, to, t));
                    }
                })
            },
        );
    }
    group.finish();
}

fn bench_index_build(c: &mut Criterion) {
    // Preprocessing cost per indexed backend, tracked alongside query cost so
    // a regression in either shows up. Built for one hour slot on the City A
    // network (the same graph the query benchmark uses).
    let scenario = Scenario::generate(CityId::A, ScenarioOptions::lunch_peak(3));
    let network = scenario.city.network.clone();
    let slot = HourSlot::new(13);
    let mut group = c.benchmark_group("index_build");
    group.sample_size(10);
    group.bench_function("hub_labels", |b| {
        b.iter(|| black_box(HubLabelIndex::build(&network, slot)))
    });
    group.bench_function("contraction_hierarchies", |b| {
        b.iter(|| black_box(ContractionHierarchy::build(&network, slot)))
    });
    group.finish();
}

fn bench_hungarian(c: &mut Criterion) {
    let mut group = c.benchmark_group("hungarian");
    let mut rng = StdRng::seed_from_u64(5);
    for size in [10usize, 40, 120] {
        let matrix = CostMatrix::from_fn(size, size, |_, _| rng.random_range(0.0..1_000.0));
        group.bench_with_input(BenchmarkId::from_parameter(size), &matrix, |b, matrix| {
            b.iter(|| black_box(solve_hungarian(matrix)))
        });
    }
    // Tall matrices (rows > cols) exercise the index-swapped view that
    // replaced the clone-and-transpose path.
    for (rows, cols) in [(120usize, 30usize), (300, 60)] {
        let matrix = CostMatrix::from_fn(rows, cols, |_, _| rng.random_range(0.0..1_000.0));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("tall_{rows}x{cols}")),
            &matrix,
            |b, matrix| b.iter(|| black_box(solve_hungarian(matrix))),
        );
    }
    group.finish();
}

fn bench_solvers(c: &mut Criterion) {
    use foodmatch_matching::{SolverKind, SparseCostMatrix};
    // A sparse window-shaped instance: 200 batches × 90 vehicles, ~8 finite
    // edges per vehicle, Ω everywhere else.
    let mut rng = StdRng::seed_from_u64(17);
    let (rows, cols) = (200usize, 90usize);
    let mut costs = SparseCostMatrix::new(rows, cols, 7_200.0);
    for col in 0..cols {
        for _ in 0..8 {
            let row = rng.random_range(0..rows);
            costs.set(row, col, rng.random_range(0.0..3_000.0));
        }
    }
    let mut group = c.benchmark_group("assignment_solvers");
    group.sample_size(10);
    for kind in SolverKind::ALL {
        let solver = kind.build(4);
        group.bench_function(kind.name(), |b| b.iter(|| black_box(solver.solve(&costs))));
    }
    group.finish();
}

fn bench_batching(c: &mut Criterion) {
    let (window, engine, config) = lunch_window(CityId::A, 24);
    let mut group = c.benchmark_group("batching");
    group.sample_size(10);
    group.bench_function("cluster_24_orders", |b| {
        b.iter(|| black_box(batch_orders(&window.orders, &engine, window.time, &config)))
    });
    group.finish();
}

fn bench_foodgraph(c: &mut Criterion) {
    let (window, engine, config) = lunch_window(CityId::A, 24);
    let batches = batch_orders(&window.orders, &engine, window.time, &config).batches;
    let mut group = c.benchmark_group("foodgraph");
    group.sample_size(10);
    let dense_config = DispatchConfig { use_bfs_sparsification: false, ..config.clone() };
    group.bench_function("dense", |b| {
        b.iter(|| {
            black_box(build_food_graph(
                &batches,
                &window.vehicles,
                &engine,
                window.time,
                &dense_config,
            ))
        })
    });
    group.bench_function("sparsified_bfs", |b| {
        b.iter(|| {
            black_box(build_food_graph(&batches, &window.vehicles, &engine, window.time, &config))
        })
    });
    group.finish();
}

fn bench_window_assignment(c: &mut Criterion) {
    let (window, engine, config) = lunch_window(CityId::A, 18);
    let mut group = c.benchmark_group("window_assignment");
    group.sample_size(10);
    group.bench_function("foodmatch", |b| {
        let mut policy = FoodMatchPolicy::new();
        b.iter(|| black_box(policy.assign(&window, &engine, &config)))
    });
    group.bench_function("km", |b| {
        let mut policy = KuhnMunkresPolicy::new();
        b.iter(|| black_box(policy.assign(&window, &engine, &config)))
    });
    group.bench_function("greedy", |b| {
        let mut policy = GreedyPolicy::new();
        b.iter(|| black_box(policy.assign(&window, &engine, &config)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_shortest_paths,
    bench_index_build,
    bench_hungarian,
    bench_solvers,
    bench_batching,
    bench_foodgraph,
    bench_window_assignment
);
criterion_main!(benches);
