//! The batch entry point: replaying a complete scenario through the online
//! [`DispatchService`].
//!
//! [`Simulation`] bundles an immutable scenario — network, order stream,
//! fleet, configuration, horizon, disruption events — and
//! [`Simulation::run`] replays it: every order and event is submitted to a
//! fresh [`DispatchService`] up front and the service is advanced through
//! the whole horizon plus a drain phase (still assigning leftovers until
//! every order is delivered or rejected). The window-by-window mechanics —
//! Fig. 5's loop of vehicle advancement, order arrival, snapshotting, the
//! policy call, assignment application, and disruption replay — live in
//! [`crate::service`]; a golden test (`tests/service_equivalence.rs`) pins
//! the batch replay bit-identical to externally-driven incremental
//! stepping.

use crate::metrics::SimulationReport;
use crate::service::DispatchService;
use foodmatch_core::{DispatchConfig, DispatchPolicy, Order, VehicleId};
use foodmatch_events::DisruptionEvent;
use foodmatch_roadnet::{Duration, NodeId, ShortestPathEngine, TimePoint};

/// A complete simulation scenario: the network, the order stream, and the
/// fleet's starting positions.
#[derive(Clone, Debug)]
pub struct Simulation {
    /// Shared shortest-path engine over the scenario's road network.
    pub engine: ShortestPathEngine,
    /// The full order stream (any order, in any order; sorted internally).
    pub orders: Vec<Order>,
    /// Starting node of every vehicle.
    pub vehicle_starts: Vec<(VehicleId, NodeId)>,
    /// Dispatcher configuration (window length, capacities, toggles…).
    pub config: DispatchConfig,
    /// When the simulated day starts.
    pub start: TimePoint,
    /// When the workload horizon ends (orders placed later are ignored).
    pub end: TimePoint,
    /// How long after `end` the drain phase may run before giving up.
    pub drain_limit: Duration,
    /// Time-stamped disruption events applied while the simulation runs
    /// (empty = the static world of the plain scenarios).
    pub events: Vec<DisruptionEvent>,
}

impl Simulation {
    /// Creates a simulation with a three-hour drain limit.
    pub fn new(
        engine: ShortestPathEngine,
        orders: Vec<Order>,
        vehicle_starts: Vec<(VehicleId, NodeId)>,
        config: DispatchConfig,
        start: TimePoint,
        end: TimePoint,
    ) -> Self {
        assert!(end > start, "simulation horizon must be non-empty");
        Simulation {
            engine,
            orders,
            vehicle_starts,
            config,
            start,
            end,
            drain_limit: Duration::from_hours(3.0),
            events: Vec::new(),
        }
    }

    /// Attaches a disruption-event stream to the scenario (builder style).
    /// Events are replayed deterministically on every [`Self::run`].
    pub fn with_events(mut self, events: Vec<DisruptionEvent>) -> Self {
        self.events = events;
        self
    }

    /// Runs the scenario under `policy` and returns the metrics report.
    ///
    /// ## Re-runnability contract
    ///
    /// `run` takes `&self` and keeps the scenario immutable: every call
    /// builds a fresh [`DispatchService`] (which owns all mutable run state
    /// explicitly), so the same `Simulation` can be run repeatedly — with
    /// different policies or configurations — for side-by-side comparisons.
    /// The shared [`ShortestPathEngine`] is the one deliberate exception:
    /// its caches persist across runs (pure speed-up, never answers), and
    /// any traffic overlay is cleared on service construction and again on
    /// completion, so each run starts from, and hands back, the unperturbed
    /// network.
    pub fn run(&self, policy: &mut dyn DispatchPolicy) -> SimulationReport {
        self.run_with_config(policy, &self.config)
    }

    /// Runs the scenario under `policy` with an explicit dispatcher
    /// configuration (used by the parameter-sweep experiments). Same
    /// re-runnability contract as [`Self::run`].
    ///
    /// This is a thin batch driver over the online [`DispatchService`]: it
    /// submits the scenario's in-horizon orders and its full event stream up
    /// front, then drains the service through the drain phase. The service
    /// owns all mutable run state (`&mut self` stepping), which is what
    /// keeps `&self` here honest.
    pub fn run_with_config(
        &self,
        policy: &mut dyn DispatchPolicy,
        config: &DispatchConfig,
    ) -> SimulationReport {
        let mut service = self.service_with_config(policy, config.clone());
        for order in &self.orders {
            if order.placed_at >= self.start && order.placed_at < self.end {
                // Scenario streams may legitimately repeat ids across runs;
                // the batch driver keeps the old "first submission wins"
                // semantics and drops refused duplicates silently.
                let _ = service.submit_order(*order);
            }
        }
        for &event in &self.events {
            let _ = service.ingest_event(event);
        }
        service.run_to_completion()
    }

    /// An idle [`DispatchService`] configured from this scenario — shared
    /// engine handle, the scenario's fleet, horizon, drain limit and
    /// configuration — with nothing submitted yet. This is the online entry
    /// point for drivers that want the scenario's world but their own
    /// demand: stream orders in via
    /// [`submit_order`](DispatchService::submit_order) (from an
    /// `OrderSource`, a replay, anywhere) and step with
    /// [`advance_to`](DispatchService::advance_to).
    pub fn service<P: DispatchPolicy>(&self, policy: P) -> DispatchService<P> {
        self.service_with_config(policy, self.config.clone())
    }

    /// [`Self::service`] with an explicit dispatcher configuration.
    pub fn service_with_config<P: DispatchPolicy>(
        &self,
        policy: P,
        config: DispatchConfig,
    ) -> DispatchService<P> {
        DispatchService::new(
            self.engine.clone(),
            self.vehicle_starts.clone(),
            policy,
            config,
            self.start,
            self.end,
            self.drain_limit,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use foodmatch_core::policies::{FoodMatchPolicy, GreedyPolicy, KuhnMunkresPolicy};
    use foodmatch_core::OrderId;
    use foodmatch_events::{DisruptionCause, EventKind, TrafficDisruption};
    use foodmatch_roadnet::generators::GridCityBuilder;
    use foodmatch_roadnet::CongestionProfile;

    fn grid() -> (ShortestPathEngine, GridCityBuilder) {
        let b =
            GridCityBuilder::new(8, 8).congestion(CongestionProfile::free_flow()).major_every(0);
        (ShortestPathEngine::cached(b.build()), b)
    }

    fn order(id: u64, r: NodeId, c: NodeId, placed: TimePoint) -> Order {
        Order::new(OrderId(id), r, c, placed, 1, Duration::from_mins(8.0))
    }

    fn small_scenario(engine: &ShortestPathEngine, b: &GridCityBuilder) -> Simulation {
        let start = TimePoint::from_hms(12, 0, 0);
        let orders = vec![
            order(1, b.node_at(1, 1), b.node_at(5, 1), start + Duration::from_mins(1.0)),
            order(2, b.node_at(1, 2), b.node_at(5, 2), start + Duration::from_mins(2.0)),
            order(3, b.node_at(6, 6), b.node_at(2, 6), start + Duration::from_mins(10.0)),
            order(4, b.node_at(6, 5), b.node_at(2, 5), start + Duration::from_mins(12.0)),
        ];
        let vehicles = vec![(VehicleId(0), b.node_at(0, 0)), (VehicleId(1), b.node_at(7, 7))];
        Simulation::new(
            engine.clone(),
            orders,
            vehicles,
            DispatchConfig::default(),
            start,
            start + Duration::from_hours(1.0),
        )
    }

    #[test]
    fn every_order_is_delivered_with_ample_supply() {
        let (engine, b) = grid();
        let sim = small_scenario(&engine, &b);
        for mut policy in [
            Box::new(GreedyPolicy::new()) as Box<dyn DispatchPolicy>,
            Box::new(KuhnMunkresPolicy::new()),
            Box::new(FoodMatchPolicy::new()),
        ] {
            let report = sim.run(policy.as_mut());
            assert_eq!(report.total_orders, 4, "{}", report.policy);
            assert_eq!(report.delivered.len(), 4, "{} delivered", report.policy);
            assert!(report.rejected.is_empty(), "{} rejected", report.policy);
            assert!(report.undelivered.is_empty(), "{} undelivered", report.policy);
            assert!(report.total_km() > 0.0);
            // Every delivery happens after its order was placed.
            for d in &report.delivered {
                assert!(d.delivered_at > d.placed_at);
            }
        }
    }

    #[test]
    fn deliveries_are_unique_and_account_for_all_orders() {
        let (engine, b) = grid();
        let sim = small_scenario(&engine, &b);
        let report = sim.run(&mut FoodMatchPolicy::new());
        let mut ids: Vec<u64> = report.delivered.iter().map(|d| d.id.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), report.delivered.len(), "duplicate deliveries");
        assert_eq!(
            report.delivered.len() + report.rejected.len() + report.undelivered.len(),
            report.total_orders
        );
    }

    #[test]
    fn unreachable_supply_leads_to_rejections() {
        let (engine, b) = grid();
        let start = TimePoint::from_hms(12, 0, 0);
        // No vehicles at all: every order must eventually be rejected.
        let sim = Simulation::new(
            engine.clone(),
            vec![order(1, b.node_at(1, 1), b.node_at(5, 1), start + Duration::from_mins(1.0))],
            vec![],
            DispatchConfig::default(),
            start,
            start + Duration::from_hours(1.0),
        );
        let report = sim.run(&mut GreedyPolicy::new());
        assert_eq!(report.delivered.len(), 0);
        assert_eq!(report.rejected.len(), 1);
        assert!((report.rejection_rate_pct() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn runs_are_deterministic() {
        let (engine, b) = grid();
        let sim = small_scenario(&engine, &b);
        let a = sim.run(&mut FoodMatchPolicy::new());
        let c = sim.run(&mut FoodMatchPolicy::new());
        assert_eq!(a.delivered.len(), c.delivered.len());
        assert!((a.total_xdt_hours() - c.total_xdt_hours()).abs() < 1e-9);
        assert!((a.total_km() - c.total_km()).abs() < 1e-9);
    }

    #[test]
    fn windows_are_recorded_with_the_configured_cadence() {
        let (engine, b) = grid();
        let sim = small_scenario(&engine, &b);
        let report = sim.run(&mut GreedyPolicy::new());
        assert!(!report.windows.is_empty());
        for w in &report.windows {
            assert!(w.vehicles <= 2);
            assert!(w.compute_secs >= 0.0);
        }
    }

    #[test]
    fn overloaded_fleet_rejects_the_overflow() {
        let (engine, b) = grid();
        let start = TimePoint::from_hms(12, 0, 0);
        // Ten simultaneous orders, one vehicle with MAXO = 3 and a short
        // rejection deadline: most orders cannot be served in time.
        let orders: Vec<Order> = (0..10)
            .map(|i| order(i, b.node_at(0, 4), b.node_at(7, 4), start + Duration::from_mins(1.0)))
            .collect();
        let config =
            DispatchConfig { rejection_deadline: Duration::from_mins(10.0), ..Default::default() };
        let sim = Simulation::new(
            engine.clone(),
            orders,
            vec![(VehicleId(0), b.node_at(0, 0))],
            config,
            start,
            start + Duration::from_mins(30.0),
        );
        let report = sim.run(&mut FoodMatchPolicy::new());
        assert!(report.rejected.len() >= 4, "expected rejections, got {}", report.rejected.len());
        assert!(!report.delivered.is_empty(), "the single vehicle should deliver something");
        assert_eq!(report.delivered.len() + report.rejected.len(), 10);
    }

    #[test]
    fn cancelled_orders_never_deliver_and_routes_are_repaired() {
        let (engine, b) = grid();
        let sim = small_scenario(&engine, &b);
        let start = sim.start;
        // Order 1 is cancelled before it even reaches a window; order 3 is
        // cancelled after assignment but before pickup (its prep time keeps
        // the food off the vehicle until well past the event).
        let sim = sim.with_events(vec![
            DisruptionEvent::new(
                start + Duration::from_mins(2.0),
                EventKind::OrderCancelled { order: OrderId(1) },
            ),
            DisruptionEvent::new(
                start + Duration::from_mins(13.0),
                EventKind::OrderCancelled { order: OrderId(3) },
            ),
        ]);
        for mut policy in [
            Box::new(GreedyPolicy::new()) as Box<dyn DispatchPolicy>,
            Box::new(FoodMatchPolicy::new()),
        ] {
            let report = sim.run(policy.as_mut());
            let mut cancelled: Vec<u64> = report.cancelled.iter().map(|o| o.0).collect();
            cancelled.sort_unstable();
            assert_eq!(cancelled, vec![1, 3], "{}", report.policy);
            for d in &report.delivered {
                assert!(
                    !report.cancelled.contains(&d.id),
                    "{}: cancelled order {} was delivered",
                    report.policy,
                    d.id
                );
            }
            // The repaired routes still serve the surviving orders.
            assert_eq!(report.delivered.len(), 2, "{}", report.policy);
            assert!(report.undelivered.is_empty(), "{}", report.policy);
            assert_eq!(
                report.delivered.len()
                    + report.rejected.len()
                    + report.cancelled.len()
                    + report.undelivered.len(),
                report.total_orders,
                "{}",
                report.policy
            );
        }
    }

    #[test]
    fn traffic_disruptions_inflate_xdt_and_are_attributed() {
        let (engine, b) = grid();
        let calm = small_scenario(&engine, &b);
        let calm_report = calm.run(&mut FoodMatchPolicy::new());

        let disruption = TrafficDisruption::city_wide(
            DisruptionCause::Rain,
            3.0,
            calm.start + Duration::from_hours(4.0),
        );
        let disrupted = small_scenario(&engine, &b).with_events(vec![DisruptionEvent::new(
            calm.start + Duration::from_secs_f64(30.0),
            EventKind::Traffic(disruption),
        )]);
        let report = disrupted.run(&mut FoodMatchPolicy::new());

        assert_eq!(report.delivered.len(), 4, "slow ≠ undeliverable");
        assert!(
            report.total_xdt_hours() > calm_report.total_xdt_hours() + 1e-6,
            "a 3x city-wide slowdown must show up as XDT: {} vs {}",
            report.total_xdt_hours(),
            calm_report.total_xdt_hours()
        );
        assert!(report.disrupted_window_pct() > 0.0);
        assert!(report.delivered_during_disruption() > 0);
        assert!(report.xdt_hours_disrupted() > 0.0);
        // The engine is handed back clean for the next run.
        assert!(!engine.has_overlay());
    }

    #[test]
    fn mid_flight_slowdowns_retime_in_flight_itineraries() {
        let (engine, b) = grid();
        let calm = small_scenario(&engine, &b);
        let calm_report = calm.run(&mut GreedyPolicy::new());
        let calm_last = calm_report.delivered.iter().map(|d| d.delivered_at).max().unwrap();

        // The slowdown starts well after the first assignments: vehicles are
        // already en route on itineraries expanded at calm speeds, so only
        // re-timing those itineraries can make the disruption bite.
        let disrupted = small_scenario(&engine, &b).with_events(vec![DisruptionEvent::new(
            calm.start + Duration::from_mins(6.0),
            EventKind::Traffic(TrafficDisruption::city_wide(
                DisruptionCause::Rain,
                8.0,
                calm.start + Duration::from_hours(4.0),
            )),
        )]);
        let report = disrupted.run(&mut GreedyPolicy::new());
        let disrupted_last = report.delivered.iter().map(|d| d.delivered_at).max().unwrap();
        assert!(
            disrupted_last > calm_last + Duration::from_mins(1.0),
            "an 8x slowdown hitting vehicles mid-drive must delay deliveries \
             ({disrupted_last:?} vs calm {calm_last:?})"
        );
    }

    #[test]
    fn off_shift_fleet_rejects_everything() {
        let (engine, b) = grid();
        let sim = small_scenario(&engine, &b);
        let start = sim.start;
        let sim = sim.with_events(vec![
            DisruptionEvent::new(
                start + Duration::from_secs_f64(30.0),
                EventKind::VehicleOffShift { vehicle: VehicleId(0) },
            ),
            DisruptionEvent::new(
                start + Duration::from_secs_f64(30.0),
                EventKind::VehicleOffShift { vehicle: VehicleId(1) },
            ),
        ]);
        let report = sim.run(&mut FoodMatchPolicy::new());
        assert_eq!(report.delivered.len(), 0);
        assert_eq!(report.rejected.len(), report.total_orders);
    }

    #[test]
    fn mid_day_shift_start_adds_serving_capacity() {
        let (engine, b) = grid();
        let start = TimePoint::from_hms(12, 0, 0);
        let orders = vec![
            order(1, b.node_at(1, 1), b.node_at(5, 1), start + Duration::from_mins(1.0)),
            order(2, b.node_at(1, 2), b.node_at(5, 2), start + Duration::from_mins(2.0)),
        ];
        // No initial fleet at all; a driver starts a shift a minute in.
        let sim = Simulation::new(
            engine.clone(),
            orders,
            vec![],
            DispatchConfig::default(),
            start,
            start + Duration::from_hours(1.0),
        )
        .with_events(vec![DisruptionEvent::new(
            start + Duration::from_mins(1.0),
            EventKind::VehicleOnShift { vehicle: VehicleId(9), location: b.node_at(0, 0) },
        )]);
        let report = sim.run(&mut FoodMatchPolicy::new());
        assert_eq!(report.delivered.len(), 2, "the late starter must serve the day");
    }

    #[test]
    fn prep_delays_push_deliveries_back() {
        let (engine, b) = grid();
        let start = TimePoint::from_hms(12, 0, 0);
        let placed = start + Duration::from_mins(1.0);
        let o = order(1, b.node_at(1, 1), b.node_at(5, 1), placed);
        let sim = Simulation::new(
            engine.clone(),
            vec![o],
            vec![(VehicleId(0), b.node_at(0, 0))],
            DispatchConfig::default(),
            start,
            start + Duration::from_hours(1.0),
        )
        .with_events(vec![DisruptionEvent::new(
            start + Duration::from_mins(2.0),
            EventKind::PrepDelay { order: OrderId(1), extra: Duration::from_mins(20.0) },
        )]);
        let report = sim.run(&mut GreedyPolicy::new());
        assert_eq!(report.delivered.len(), 1);
        // Original prep is 8 min; with +20 the food leaves no earlier than
        // placed + 28 min.
        assert!(report.delivered[0].delivered_at > placed + Duration::from_mins(28.0));
        assert!(report.delivered[0].xdt > Duration::from_mins(15.0));
    }

    #[test]
    fn disrupted_runs_are_deterministic() {
        let (engine, b) = grid();
        let start = TimePoint::from_hms(12, 0, 0);
        let events = vec![
            DisruptionEvent::new(
                start + Duration::from_secs_f64(30.0),
                EventKind::Traffic(TrafficDisruption::localized(
                    DisruptionCause::Incident,
                    b.node_at(3, 3),
                    900.0,
                    2.5,
                    start + Duration::from_mins(40.0),
                )),
            ),
            DisruptionEvent::new(
                start + Duration::from_mins(2.0),
                EventKind::OrderCancelled { order: OrderId(2) },
            ),
            DisruptionEvent::new(
                start + Duration::from_mins(5.0),
                EventKind::VehicleOffShift { vehicle: VehicleId(1) },
            ),
        ];
        let sim = small_scenario(&engine, &b).with_events(events);
        let a = sim.run(&mut FoodMatchPolicy::new());
        let c = sim.run(&mut FoodMatchPolicy::new());
        assert_eq!(a.delivered, c.delivered);
        assert_eq!(a.rejected, c.rejected);
        assert_eq!(a.cancelled, c.cancelled);
        assert!((a.total_km() - c.total_km()).abs() < 1e-12);
        assert!((a.total_xdt_hours() - c.total_xdt_hours()).abs() < 1e-12);
    }

    #[test]
    fn reshuffling_never_loses_orders() {
        let (engine, b) = grid();
        let start = TimePoint::from_hms(12, 0, 0);
        // A burst of orders across two windows so reshuffling has something
        // to reconsider.
        let mut orders = Vec::new();
        for i in 0..6 {
            orders.push(order(
                i,
                b.node_at((i % 3) as usize + 1, 1),
                b.node_at(6, (i % 4) as usize + 2),
                start + Duration::from_mins(1.0 + i as f64),
            ));
        }
        let sim = Simulation::new(
            engine.clone(),
            orders,
            vec![(VehicleId(0), b.node_at(0, 0)), (VehicleId(1), b.node_at(7, 7))],
            DispatchConfig::default(),
            start,
            start + Duration::from_hours(1.0),
        );
        let report = sim.run(&mut FoodMatchPolicy::new());
        assert_eq!(report.delivered.len() + report.rejected.len() + report.undelivered.len(), 6);
        assert!(report.undelivered.is_empty());
    }
}
