//! The window-stepped delivery simulation.
//!
//! The simulation advances in accumulation windows of length Δ, exactly the
//! loop of Fig. 5 in the paper:
//!
//! 1. advance every vehicle along its itinerary to the window-close time,
//!    recording pickups, deliveries, driven distance and restaurant waits;
//! 2. pull newly placed orders into the unassigned pool and reject orders
//!    that have waited longer than the deadline;
//! 3. build a [`WindowSnapshot`] — with reshuffling, orders that are assigned
//!    but not yet picked up re-enter the pool and their vehicles' snapshots
//!    drop them from the committed set;
//! 4. call the dispatch policy (its wall-clock time is measured for the
//!    overflow metric);
//! 5. apply the assignment: reshuffled orders move between vehicles, every
//!    vehicle whose order set changed gets a fresh quickest route plan.
//!
//! After the workload horizon ends, a drain phase keeps the clock running
//! (still assigning leftover orders) until every order is delivered or
//! rejected, so the metrics always account for the full order set.
//!
//! ## Dynamic events
//!
//! A scenario may carry a stream of [`DisruptionEvent`]s (see
//! [`foodmatch_events`]): live traffic perturbations, order cancellations,
//! restaurant prep delays, and vehicles going on/off shift. The stream is
//! drained once per accumulation window, *before* vehicles drive through it,
//! so an event timestamped inside a window takes effect at that window's
//! open. Traffic perturbations are rendered as a
//! [`TrafficOverlay`](foodmatch_roadnet::TrafficOverlay) and installed on the
//! shared engine (bounded overlay search, no index rebuild); cancellations
//! and prep delays repair the affected vehicle's route in place; off-shift
//! vehicles release their unpicked orders back into the pool and finish only
//! what is already on board.

use crate::fleet::{CarriedOrder, FleetEvent, VehicleState};
use crate::metrics::{MetricsCollector, SimulationReport, WindowStats};
use foodmatch_core::route::{plan_optimal_route, PlannedOrder};
use foodmatch_core::{DispatchConfig, DispatchPolicy, Order, OrderId, VehicleId, WindowSnapshot};
use foodmatch_events::{DisruptionEvent, EventKind, EventSchedule};
use foodmatch_roadnet::{Duration, NodeId, ShortestPathEngine, TimePoint};
use std::collections::{HashMap, HashSet};
use std::time::Instant;

/// A complete simulation scenario: the network, the order stream, and the
/// fleet's starting positions.
#[derive(Clone, Debug)]
pub struct Simulation {
    /// Shared shortest-path engine over the scenario's road network.
    pub engine: ShortestPathEngine,
    /// The full order stream (any order, in any order; sorted internally).
    pub orders: Vec<Order>,
    /// Starting node of every vehicle.
    pub vehicle_starts: Vec<(VehicleId, NodeId)>,
    /// Dispatcher configuration (window length, capacities, toggles…).
    pub config: DispatchConfig,
    /// When the simulated day starts.
    pub start: TimePoint,
    /// When the workload horizon ends (orders placed later are ignored).
    pub end: TimePoint,
    /// How long after `end` the drain phase may run before giving up.
    pub drain_limit: Duration,
    /// Time-stamped disruption events applied while the simulation runs
    /// (empty = the static world of the plain scenarios).
    pub events: Vec<DisruptionEvent>,
}

impl Simulation {
    /// Creates a simulation with a three-hour drain limit.
    pub fn new(
        engine: ShortestPathEngine,
        orders: Vec<Order>,
        vehicle_starts: Vec<(VehicleId, NodeId)>,
        config: DispatchConfig,
        start: TimePoint,
        end: TimePoint,
    ) -> Self {
        assert!(end > start, "simulation horizon must be non-empty");
        Simulation {
            engine,
            orders,
            vehicle_starts,
            config,
            start,
            end,
            drain_limit: Duration::from_hours(3.0),
            events: Vec::new(),
        }
    }

    /// Attaches a disruption-event stream to the scenario (builder style).
    /// Events are replayed deterministically on every [`Self::run`].
    pub fn with_events(mut self, events: Vec<DisruptionEvent>) -> Self {
        self.events = events;
        self
    }

    /// Runs the scenario under `policy` and returns the metrics report.
    ///
    /// The scenario itself is immutable, so the same `Simulation` can be run
    /// repeatedly with different policies or configurations for side-by-side
    /// comparisons.
    pub fn run(&self, policy: &mut dyn DispatchPolicy) -> SimulationReport {
        self.run_with_config(policy, &self.config)
    }

    /// Runs the scenario under `policy` with an explicit dispatcher
    /// configuration (used by the parameter-sweep experiments).
    pub fn run_with_config(
        &self,
        policy: &mut dyn DispatchPolicy,
        config: &DispatchConfig,
    ) -> SimulationReport {
        config.validate().expect("invalid dispatch configuration");
        let reshuffle = policy.uses_reshuffling(config);
        let delta = config.accumulation_window;

        let mut orders: Vec<Order> = self
            .orders
            .iter()
            .copied()
            .filter(|o| o.placed_at >= self.start && o.placed_at < self.end)
            .collect();
        orders.sort_by(|a, b| a.placed_at.cmp(&b.placed_at).then(a.id.cmp(&b.id)));
        let total_orders = orders.len();

        let mut vehicles: Vec<VehicleState> =
            self.vehicle_starts.iter().map(|&(id, node)| VehicleState::new(id, node)).collect();
        let mut vehicle_index: HashMap<VehicleId, usize> =
            vehicles.iter().enumerate().map(|(i, v)| (v.id, i)).collect();

        // The event stream is replayed from scratch on every run; a leftover
        // overlay from a previous (aborted) run must not leak into the SDT
        // baselines computed below.
        let mut schedule = EventSchedule::new(self.events.clone());
        if self.engine.has_overlay() {
            self.engine.clear_overlay();
        }
        let order_ids: HashSet<OrderId> = orders.iter().map(|o| o.id).collect();
        // Cancellations for orders that have not reached the pending pool yet.
        let mut cancel_requested: HashSet<OrderId> = HashSet::new();
        // Prep delays for orders that have not reached the pending pool yet.
        let mut prep_delay_pending: HashMap<OrderId, Duration> = HashMap::new();
        let mut cancelled_ids: HashSet<OrderId> = HashSet::new();

        let mut collector =
            MetricsCollector::new(policy.name(), total_orders, self.end - self.start);
        // SDT of every order, evaluated at placement time (Definition 6).
        let sdt: HashMap<OrderId, Duration> = orders
            .iter()
            .map(|o| {
                let sdt = self
                    .engine
                    .travel_time(o.restaurant, o.customer, o.placed_at)
                    .map(|sp| o.prep_time + sp)
                    .unwrap_or(Duration::ZERO);
                (o.id, sdt)
            })
            .collect();

        let mut next_order = 0usize;
        let mut pending: Vec<Order> = Vec::new();
        let mut assigned_or_done: HashSet<OrderId> = HashSet::new();
        let mut delivered: HashSet<OrderId> = HashSet::new();

        let drain_end = self.end + self.drain_limit;
        let mut window_close = self.start;
        loop {
            window_close += delta;
            if window_close > drain_end {
                break;
            }
            let in_horizon = window_close <= self.end + delta;

            // 0. Drain disruption events that fall inside this window; they
            //    take effect at the window's open, before vehicles drive
            //    through it. Route repairs replan from the vehicles' current
            //    positions (they are synced to the previous window close).
            if !schedule.is_empty() {
                let window_open = window_close - delta;
                let fired = schedule.advance_to(window_close);
                if fired.traffic_changed {
                    // Diff-based render: only changed disruption footprints
                    // are reapplied (debug-asserted against a full rebuild).
                    let overlay = schedule.render_overlay(self.engine.network());
                    if schedule.traffic_active() {
                        self.engine.set_overlay(overlay);
                    } else {
                        self.engine.clear_overlay();
                    }
                    collector.set_disruption_active(schedule.traffic_active());
                    // In-flight itineraries were expanded at the old speeds;
                    // re-time (and, where the planner prefers, re-route)
                    // every en-route vehicle so fleet physics track the
                    // perturbed oracle.
                    for vehicle in vehicles.iter_mut().filter(|v| v.is_en_route()) {
                        replan_vehicle(vehicle, window_open, &self.engine);
                    }
                }
                for event in fired.fired {
                    match event.kind {
                        EventKind::OrderCancelled { order } => {
                            let picked_up = vehicles.iter().any(|v| {
                                v.carried.iter().any(|c| c.picked_up && c.order.id == order)
                            });
                            if picked_up
                                || delivered.contains(&order)
                                || cancelled_ids.contains(&order)
                            {
                                // Too late (food already on board or done) or
                                // a duplicate event: the platform delivers.
                                continue;
                            }
                            if let Some(pos) = pending.iter().position(|o| o.id == order) {
                                pending.remove(pos);
                            } else if let Some(vi) = vehicles.iter().position(|v| {
                                v.carried.iter().any(|c| !c.picked_up && c.order.id == order)
                            }) {
                                // Route repair: drop the stop pair and replan
                                // the rest of the vehicle's load.
                                vehicles[vi].remove_unpicked(order);
                                replan_vehicle(&mut vehicles[vi], window_open, &self.engine);
                            } else if !order_ids.contains(&order)
                                || assigned_or_done.contains(&order)
                            {
                                // Unknown order, or already rejected.
                                continue;
                            } else {
                                // Placed later in the stream: remember to
                                // swallow it on arrival.
                                cancel_requested.insert(order);
                            }
                            cancelled_ids.insert(order);
                            assigned_or_done.insert(order);
                            collector.record_cancellation(order);
                        }
                        EventKind::PrepDelay { order, extra } => {
                            if let Some(o) = pending.iter_mut().find(|o| o.id == order) {
                                o.prep_time += extra;
                            } else if let Some(vi) = vehicles.iter().position(|v| {
                                v.carried.iter().any(|c| !c.picked_up && c.order.id == order)
                            }) {
                                let vehicle = &mut vehicles[vi];
                                for carried in
                                    vehicle.carried.iter_mut().filter(|c| c.order.id == order)
                                {
                                    carried.order.prep_time += extra;
                                }
                                // The planned wait at the restaurant is stale.
                                replan_vehicle(vehicle, window_open, &self.engine);
                            } else if order_ids.contains(&order)
                                && !assigned_or_done.contains(&order)
                                && !cancel_requested.contains(&order)
                            {
                                *prep_delay_pending.entry(order).or_insert(Duration::ZERO) += extra;
                            }
                            // Picked-up or finished orders are unaffected.
                        }
                        EventKind::VehicleOffShift { vehicle } => {
                            if let Some(&vi) = vehicle_index.get(&vehicle) {
                                let state = &mut vehicles[vi];
                                if state.on_shift {
                                    state.on_shift = false;
                                    // Unpicked orders re-enter the pool; the
                                    // vehicle finishes what is on board.
                                    let released = state.take_unpicked();
                                    if !released.is_empty() {
                                        pending.extend(released);
                                        replan_vehicle(state, window_open, &self.engine);
                                    }
                                }
                            }
                        }
                        EventKind::VehicleOnShift { vehicle, location } => {
                            match vehicle_index.get(&vehicle) {
                                Some(&vi) => vehicles[vi].on_shift = true,
                                None => {
                                    vehicle_index.insert(vehicle, vehicles.len());
                                    vehicles.push(VehicleState::new(vehicle, location));
                                }
                            }
                        }
                        EventKind::Traffic(_) => {
                            unreachable!("traffic events are absorbed by the schedule")
                        }
                    }
                }
            }

            // 1. Advance vehicles and harvest their events.
            for vehicle in &mut vehicles {
                for event in vehicle.advance(window_close) {
                    match event {
                        FleetEvent::Drove { length_m, load } => {
                            collector.record_drive(window_close, load, length_m);
                        }
                        FleetEvent::PickedUp { at, waited, .. } => {
                            collector.record_wait(at, waited);
                        }
                        FleetEvent::Delivered { order, at } => {
                            delivered.insert(order);
                            let placed = self
                                .orders
                                .iter()
                                .find(|o| o.id == order)
                                .map(|o| o.placed_at)
                                .unwrap_or(at);
                            collector.record_delivery(
                                order,
                                placed,
                                at,
                                sdt.get(&order).copied().unwrap_or(Duration::ZERO),
                            );
                        }
                    }
                }
            }

            // 2. New arrivals and deadline rejections. Orders cancelled
            //    before they arrived are swallowed (already accounted as
            //    cancellations); pending prep delays are applied on arrival.
            while next_order < orders.len() && orders[next_order].placed_at <= window_close {
                let mut order = orders[next_order];
                next_order += 1;
                if cancel_requested.remove(&order.id) {
                    continue;
                }
                if let Some(extra) = prep_delay_pending.remove(&order.id) {
                    order.prep_time += extra;
                }
                pending.push(order);
            }
            pending.retain(|o| {
                let expired =
                    window_close.saturating_since(o.placed_at) > config.rejection_deadline;
                if expired {
                    collector.record_rejection(o.id);
                    assigned_or_done.insert(o.id);
                }
                !expired
            });

            // Termination: past the horizon with nothing left to do.
            let all_arrived = next_order >= orders.len();
            let fleet_idle = vehicles.iter().all(VehicleState::is_idle);
            if window_close > self.end && all_arrived && pending.is_empty() && fleet_idle {
                break;
            }

            // 3–4. Snapshot and policy call.
            if pending.is_empty() && !reshuffle {
                // Nothing to assign; skip the policy call but keep advancing.
                continue;
            }
            let mut snapshot_orders = pending.clone();
            if reshuffle {
                for vehicle in vehicles.iter().filter(|v| v.on_shift) {
                    snapshot_orders.extend(vehicle.unpicked_orders());
                }
            }
            if snapshot_orders.is_empty() {
                continue;
            }
            // Off-shift vehicles are invisible to the dispatcher.
            let snapshots =
                vehicles.iter().filter(|v| v.on_shift).map(|v| v.snapshot(reshuffle)).collect();
            let window = WindowSnapshot::new(window_close, snapshot_orders, snapshots);
            let order_count = window.order_count();
            let vehicle_count = window.vehicle_count();

            let started = Instant::now();
            let outcome = policy.assign(&window, &self.engine, config);
            let compute_secs = started.elapsed().as_secs_f64();
            debug_assert!(outcome.validate(&window).is_ok(), "policy produced invalid outcome");

            if in_horizon {
                collector.record_window(WindowStats {
                    closed_at: window_close,
                    slot: window_close.hour_slot(),
                    orders: order_count,
                    vehicles: vehicle_count,
                    assigned: outcome.assigned_order_count(),
                    compute_secs,
                    overflown: compute_secs > delta.as_secs_f64(),
                    disrupted: schedule.traffic_active(),
                });
            }

            // 5. Apply the assignment.
            let order_lookup: HashMap<OrderId, Order> =
                window.orders.iter().map(|o| (o.id, *o)).collect();
            let mut touched: HashSet<usize> = HashSet::new();
            // Carried order-id sets before this window's changes; vehicles
            // whose set is unchanged keep their current itinerary, so partial
            // progress along an edge is never thrown away by a no-op replan.
            let carried_before: Vec<Vec<OrderId>> = vehicles
                .iter()
                .map(|v| {
                    let mut ids: Vec<OrderId> = v.carried.iter().map(|c| c.order.id).collect();
                    ids.sort_unstable();
                    ids
                })
                .collect();
            let assigned_now: HashSet<OrderId> =
                outcome.assignments.iter().flat_map(|a| a.orders.iter().copied()).collect();

            // Detach every order that the matching moved somewhere (it may be
            // re-attached to the same vehicle below). Orders the matching did
            // NOT touch keep their incumbent vehicle — reshuffling re-examines
            // assignments, it never strands an order that already had a ride.
            for &order_id in &assigned_now {
                pending.retain(|o| o.id != order_id);
                for (vi, vehicle) in vehicles.iter_mut().enumerate() {
                    if vehicle.remove_unpicked(order_id) {
                        touched.insert(vi);
                    }
                }
            }
            // Attach the orders to their new vehicles. If a vehicle that
            // receives a new batch still holds unpicked orders the matching
            // left untouched and the combination would exceed its capacity,
            // the untouched ones are released back into the pending pool
            // (they will be re-offered next window).
            for assignment in &outcome.assignments {
                let Some(&vi) = vehicle_index.get(&assignment.vehicle) else { continue };
                touched.insert(vi);
                for &order_id in &assignment.orders {
                    let Some(&order) = order_lookup.get(&order_id) else { continue };
                    vehicles[vi].carried.push(CarriedOrder { order, picked_up: false });
                    assigned_or_done.insert(order_id);
                }
                let vehicle = &mut vehicles[vi];
                while vehicle.carried.len() > config.max_orders_per_vehicle
                    || vehicle.carried.iter().map(|c| c.order.items).sum::<u32>()
                        > config.max_items_per_vehicle
                {
                    // Release the oldest untouched, unpicked order that is not
                    // part of this window's batch for the vehicle.
                    let Some(pos) = vehicle
                        .carried
                        .iter()
                        .position(|c| !c.picked_up && !assigned_now.contains(&c.order.id))
                    else {
                        break;
                    };
                    let released = vehicle.carried.remove(pos);
                    pending.push(released.order);
                }
            }
            // Replan every vehicle whose carried set actually changed.
            for vi in touched {
                let vehicle = &mut vehicles[vi];
                let mut ids_now: Vec<OrderId> =
                    vehicle.carried.iter().map(|c| c.order.id).collect();
                ids_now.sort_unstable();
                if ids_now == carried_before[vi] {
                    continue;
                }
                replan_vehicle(vehicle, window_close, &self.engine);
            }
        }

        // The events of this run must not leak into the next one (the same
        // engine may back several runs for side-by-side comparisons).
        if self.engine.has_overlay() {
            self.engine.clear_overlay();
        }

        // Anything still pending or on a vehicle when the drain limit hits.
        for order in &pending {
            collector.record_rejection(order.id);
        }
        for vehicle in &vehicles {
            for carried in &vehicle.carried {
                if !delivered.contains(&carried.order.id) {
                    collector.record_undelivered(carried.order.id);
                }
            }
        }
        for order in &orders {
            if !delivered.contains(&order.id)
                && !assigned_or_done.contains(&order.id)
                && !pending.iter().any(|p| p.id == order.id)
            {
                // Orders that never even entered a window (horizon cut short).
                collector.record_rejection(order.id);
            }
        }

        collector.finish()
    }
}

/// Re-plans `vehicle`'s quickest route for its current carried set from its
/// current location at `now`, replacing the edge-level itinerary. Used both
/// by the assignment step and by event-driven route repair (cancellations,
/// prep delays, shift ends).
fn replan_vehicle(vehicle: &mut VehicleState, now: TimePoint, engine: &ShortestPathEngine) {
    let planned: Vec<PlannedOrder> = vehicle
        .carried
        .iter()
        .map(|c| PlannedOrder { order: c.order, picked_up: c.picked_up })
        .collect();
    let carried = vehicle.carried.clone();
    let route = plan_optimal_route(vehicle.location, now, &planned, engine).unwrap_or_else(|| {
        foodmatch_core::EvaluatedRoute {
            plan: foodmatch_core::RoutePlan::empty(),
            cost_secs: 0.0,
            driving_time: Duration::ZERO,
            waiting_time: Duration::ZERO,
            deliveries: Vec::new(),
            start_node: vehicle.location,
            finish_at: now,
        }
    });
    vehicle.install_plan(carried, &route, now, engine);
}

#[cfg(test)]
mod tests {
    use super::*;
    use foodmatch_core::policies::{FoodMatchPolicy, GreedyPolicy, KuhnMunkresPolicy};
    use foodmatch_events::{DisruptionCause, TrafficDisruption};
    use foodmatch_roadnet::generators::GridCityBuilder;
    use foodmatch_roadnet::CongestionProfile;

    fn grid() -> (ShortestPathEngine, GridCityBuilder) {
        let b =
            GridCityBuilder::new(8, 8).congestion(CongestionProfile::free_flow()).major_every(0);
        (ShortestPathEngine::cached(b.build()), b)
    }

    fn order(id: u64, r: NodeId, c: NodeId, placed: TimePoint) -> Order {
        Order::new(OrderId(id), r, c, placed, 1, Duration::from_mins(8.0))
    }

    fn small_scenario(engine: &ShortestPathEngine, b: &GridCityBuilder) -> Simulation {
        let start = TimePoint::from_hms(12, 0, 0);
        let orders = vec![
            order(1, b.node_at(1, 1), b.node_at(5, 1), start + Duration::from_mins(1.0)),
            order(2, b.node_at(1, 2), b.node_at(5, 2), start + Duration::from_mins(2.0)),
            order(3, b.node_at(6, 6), b.node_at(2, 6), start + Duration::from_mins(10.0)),
            order(4, b.node_at(6, 5), b.node_at(2, 5), start + Duration::from_mins(12.0)),
        ];
        let vehicles = vec![(VehicleId(0), b.node_at(0, 0)), (VehicleId(1), b.node_at(7, 7))];
        Simulation::new(
            engine.clone(),
            orders,
            vehicles,
            DispatchConfig::default(),
            start,
            start + Duration::from_hours(1.0),
        )
    }

    #[test]
    fn every_order_is_delivered_with_ample_supply() {
        let (engine, b) = grid();
        let sim = small_scenario(&engine, &b);
        for mut policy in [
            Box::new(GreedyPolicy::new()) as Box<dyn DispatchPolicy>,
            Box::new(KuhnMunkresPolicy::new()),
            Box::new(FoodMatchPolicy::new()),
        ] {
            let report = sim.run(policy.as_mut());
            assert_eq!(report.total_orders, 4, "{}", report.policy);
            assert_eq!(report.delivered.len(), 4, "{} delivered", report.policy);
            assert!(report.rejected.is_empty(), "{} rejected", report.policy);
            assert!(report.undelivered.is_empty(), "{} undelivered", report.policy);
            assert!(report.total_km() > 0.0);
            // Every delivery happens after its order was placed.
            for d in &report.delivered {
                assert!(d.delivered_at > d.placed_at);
            }
        }
    }

    #[test]
    fn deliveries_are_unique_and_account_for_all_orders() {
        let (engine, b) = grid();
        let sim = small_scenario(&engine, &b);
        let report = sim.run(&mut FoodMatchPolicy::new());
        let mut ids: Vec<u64> = report.delivered.iter().map(|d| d.id.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), report.delivered.len(), "duplicate deliveries");
        assert_eq!(
            report.delivered.len() + report.rejected.len() + report.undelivered.len(),
            report.total_orders
        );
    }

    #[test]
    fn unreachable_supply_leads_to_rejections() {
        let (engine, b) = grid();
        let start = TimePoint::from_hms(12, 0, 0);
        // No vehicles at all: every order must eventually be rejected.
        let sim = Simulation::new(
            engine.clone(),
            vec![order(1, b.node_at(1, 1), b.node_at(5, 1), start + Duration::from_mins(1.0))],
            vec![],
            DispatchConfig::default(),
            start,
            start + Duration::from_hours(1.0),
        );
        let report = sim.run(&mut GreedyPolicy::new());
        assert_eq!(report.delivered.len(), 0);
        assert_eq!(report.rejected.len(), 1);
        assert!((report.rejection_rate_pct() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn runs_are_deterministic() {
        let (engine, b) = grid();
        let sim = small_scenario(&engine, &b);
        let a = sim.run(&mut FoodMatchPolicy::new());
        let c = sim.run(&mut FoodMatchPolicy::new());
        assert_eq!(a.delivered.len(), c.delivered.len());
        assert!((a.total_xdt_hours() - c.total_xdt_hours()).abs() < 1e-9);
        assert!((a.total_km() - c.total_km()).abs() < 1e-9);
    }

    #[test]
    fn windows_are_recorded_with_the_configured_cadence() {
        let (engine, b) = grid();
        let sim = small_scenario(&engine, &b);
        let report = sim.run(&mut GreedyPolicy::new());
        assert!(!report.windows.is_empty());
        for w in &report.windows {
            assert!(w.vehicles <= 2);
            assert!(w.compute_secs >= 0.0);
        }
    }

    #[test]
    fn overloaded_fleet_rejects_the_overflow() {
        let (engine, b) = grid();
        let start = TimePoint::from_hms(12, 0, 0);
        // Ten simultaneous orders, one vehicle with MAXO = 3 and a short
        // rejection deadline: most orders cannot be served in time.
        let orders: Vec<Order> = (0..10)
            .map(|i| order(i, b.node_at(0, 4), b.node_at(7, 4), start + Duration::from_mins(1.0)))
            .collect();
        let config =
            DispatchConfig { rejection_deadline: Duration::from_mins(10.0), ..Default::default() };
        let sim = Simulation::new(
            engine.clone(),
            orders,
            vec![(VehicleId(0), b.node_at(0, 0))],
            config,
            start,
            start + Duration::from_mins(30.0),
        );
        let report = sim.run(&mut FoodMatchPolicy::new());
        assert!(report.rejected.len() >= 4, "expected rejections, got {}", report.rejected.len());
        assert!(!report.delivered.is_empty(), "the single vehicle should deliver something");
        assert_eq!(report.delivered.len() + report.rejected.len(), 10);
    }

    #[test]
    fn cancelled_orders_never_deliver_and_routes_are_repaired() {
        let (engine, b) = grid();
        let sim = small_scenario(&engine, &b);
        let start = sim.start;
        // Order 1 is cancelled before it even reaches a window; order 3 is
        // cancelled after assignment but before pickup (its prep time keeps
        // the food off the vehicle until well past the event).
        let sim = sim.with_events(vec![
            DisruptionEvent::new(
                start + Duration::from_mins(2.0),
                EventKind::OrderCancelled { order: OrderId(1) },
            ),
            DisruptionEvent::new(
                start + Duration::from_mins(13.0),
                EventKind::OrderCancelled { order: OrderId(3) },
            ),
        ]);
        for mut policy in [
            Box::new(GreedyPolicy::new()) as Box<dyn DispatchPolicy>,
            Box::new(FoodMatchPolicy::new()),
        ] {
            let report = sim.run(policy.as_mut());
            let mut cancelled: Vec<u64> = report.cancelled.iter().map(|o| o.0).collect();
            cancelled.sort_unstable();
            assert_eq!(cancelled, vec![1, 3], "{}", report.policy);
            for d in &report.delivered {
                assert!(
                    !report.cancelled.contains(&d.id),
                    "{}: cancelled order {} was delivered",
                    report.policy,
                    d.id
                );
            }
            // The repaired routes still serve the surviving orders.
            assert_eq!(report.delivered.len(), 2, "{}", report.policy);
            assert!(report.undelivered.is_empty(), "{}", report.policy);
            assert_eq!(
                report.delivered.len()
                    + report.rejected.len()
                    + report.cancelled.len()
                    + report.undelivered.len(),
                report.total_orders,
                "{}",
                report.policy
            );
        }
    }

    #[test]
    fn traffic_disruptions_inflate_xdt_and_are_attributed() {
        let (engine, b) = grid();
        let calm = small_scenario(&engine, &b);
        let calm_report = calm.run(&mut FoodMatchPolicy::new());

        let disruption = TrafficDisruption::city_wide(
            DisruptionCause::Rain,
            3.0,
            calm.start + Duration::from_hours(4.0),
        );
        let disrupted = small_scenario(&engine, &b).with_events(vec![DisruptionEvent::new(
            calm.start + Duration::from_secs_f64(30.0),
            EventKind::Traffic(disruption),
        )]);
        let report = disrupted.run(&mut FoodMatchPolicy::new());

        assert_eq!(report.delivered.len(), 4, "slow ≠ undeliverable");
        assert!(
            report.total_xdt_hours() > calm_report.total_xdt_hours() + 1e-6,
            "a 3x city-wide slowdown must show up as XDT: {} vs {}",
            report.total_xdt_hours(),
            calm_report.total_xdt_hours()
        );
        assert!(report.disrupted_window_pct() > 0.0);
        assert!(report.delivered_during_disruption() > 0);
        assert!(report.xdt_hours_disrupted() > 0.0);
        // The engine is handed back clean for the next run.
        assert!(!engine.has_overlay());
    }

    #[test]
    fn mid_flight_slowdowns_retime_in_flight_itineraries() {
        let (engine, b) = grid();
        let calm = small_scenario(&engine, &b);
        let calm_report = calm.run(&mut GreedyPolicy::new());
        let calm_last = calm_report.delivered.iter().map(|d| d.delivered_at).max().unwrap();

        // The slowdown starts well after the first assignments: vehicles are
        // already en route on itineraries expanded at calm speeds, so only
        // re-timing those itineraries can make the disruption bite.
        let disrupted = small_scenario(&engine, &b).with_events(vec![DisruptionEvent::new(
            calm.start + Duration::from_mins(6.0),
            EventKind::Traffic(TrafficDisruption::city_wide(
                DisruptionCause::Rain,
                8.0,
                calm.start + Duration::from_hours(4.0),
            )),
        )]);
        let report = disrupted.run(&mut GreedyPolicy::new());
        let disrupted_last = report.delivered.iter().map(|d| d.delivered_at).max().unwrap();
        assert!(
            disrupted_last > calm_last + Duration::from_mins(1.0),
            "an 8x slowdown hitting vehicles mid-drive must delay deliveries \
             ({disrupted_last:?} vs calm {calm_last:?})"
        );
    }

    #[test]
    fn off_shift_fleet_rejects_everything() {
        let (engine, b) = grid();
        let sim = small_scenario(&engine, &b);
        let start = sim.start;
        let sim = sim.with_events(vec![
            DisruptionEvent::new(
                start + Duration::from_secs_f64(30.0),
                EventKind::VehicleOffShift { vehicle: VehicleId(0) },
            ),
            DisruptionEvent::new(
                start + Duration::from_secs_f64(30.0),
                EventKind::VehicleOffShift { vehicle: VehicleId(1) },
            ),
        ]);
        let report = sim.run(&mut FoodMatchPolicy::new());
        assert_eq!(report.delivered.len(), 0);
        assert_eq!(report.rejected.len(), report.total_orders);
    }

    #[test]
    fn mid_day_shift_start_adds_serving_capacity() {
        let (engine, b) = grid();
        let start = TimePoint::from_hms(12, 0, 0);
        let orders = vec![
            order(1, b.node_at(1, 1), b.node_at(5, 1), start + Duration::from_mins(1.0)),
            order(2, b.node_at(1, 2), b.node_at(5, 2), start + Duration::from_mins(2.0)),
        ];
        // No initial fleet at all; a driver starts a shift a minute in.
        let sim = Simulation::new(
            engine.clone(),
            orders,
            vec![],
            DispatchConfig::default(),
            start,
            start + Duration::from_hours(1.0),
        )
        .with_events(vec![DisruptionEvent::new(
            start + Duration::from_mins(1.0),
            EventKind::VehicleOnShift { vehicle: VehicleId(9), location: b.node_at(0, 0) },
        )]);
        let report = sim.run(&mut FoodMatchPolicy::new());
        assert_eq!(report.delivered.len(), 2, "the late starter must serve the day");
    }

    #[test]
    fn prep_delays_push_deliveries_back() {
        let (engine, b) = grid();
        let start = TimePoint::from_hms(12, 0, 0);
        let placed = start + Duration::from_mins(1.0);
        let o = order(1, b.node_at(1, 1), b.node_at(5, 1), placed);
        let sim = Simulation::new(
            engine.clone(),
            vec![o],
            vec![(VehicleId(0), b.node_at(0, 0))],
            DispatchConfig::default(),
            start,
            start + Duration::from_hours(1.0),
        )
        .with_events(vec![DisruptionEvent::new(
            start + Duration::from_mins(2.0),
            EventKind::PrepDelay { order: OrderId(1), extra: Duration::from_mins(20.0) },
        )]);
        let report = sim.run(&mut GreedyPolicy::new());
        assert_eq!(report.delivered.len(), 1);
        // Original prep is 8 min; with +20 the food leaves no earlier than
        // placed + 28 min.
        assert!(report.delivered[0].delivered_at > placed + Duration::from_mins(28.0));
        assert!(report.delivered[0].xdt > Duration::from_mins(15.0));
    }

    #[test]
    fn disrupted_runs_are_deterministic() {
        let (engine, b) = grid();
        let start = TimePoint::from_hms(12, 0, 0);
        let events = vec![
            DisruptionEvent::new(
                start + Duration::from_secs_f64(30.0),
                EventKind::Traffic(TrafficDisruption::localized(
                    DisruptionCause::Incident,
                    b.node_at(3, 3),
                    900.0,
                    2.5,
                    start + Duration::from_mins(40.0),
                )),
            ),
            DisruptionEvent::new(
                start + Duration::from_mins(2.0),
                EventKind::OrderCancelled { order: OrderId(2) },
            ),
            DisruptionEvent::new(
                start + Duration::from_mins(5.0),
                EventKind::VehicleOffShift { vehicle: VehicleId(1) },
            ),
        ];
        let sim = small_scenario(&engine, &b).with_events(events);
        let a = sim.run(&mut FoodMatchPolicy::new());
        let c = sim.run(&mut FoodMatchPolicy::new());
        assert_eq!(a.delivered, c.delivered);
        assert_eq!(a.rejected, c.rejected);
        assert_eq!(a.cancelled, c.cancelled);
        assert!((a.total_km() - c.total_km()).abs() < 1e-12);
        assert!((a.total_xdt_hours() - c.total_xdt_hours()).abs() < 1e-12);
    }

    #[test]
    fn reshuffling_never_loses_orders() {
        let (engine, b) = grid();
        let start = TimePoint::from_hms(12, 0, 0);
        // A burst of orders across two windows so reshuffling has something
        // to reconsider.
        let mut orders = Vec::new();
        for i in 0..6 {
            orders.push(order(
                i,
                b.node_at((i % 3) as usize + 1, 1),
                b.node_at(6, (i % 4) as usize + 2),
                start + Duration::from_mins(1.0 + i as f64),
            ));
        }
        let sim = Simulation::new(
            engine.clone(),
            orders,
            vec![(VehicleId(0), b.node_at(0, 0)), (VehicleId(1), b.node_at(7, 7))],
            DispatchConfig::default(),
            start,
            start + Duration::from_hours(1.0),
        );
        let report = sim.run(&mut FoodMatchPolicy::new());
        assert_eq!(report.delivered.len() + report.rejected.len() + report.undelivered.len(), 6);
        assert!(report.undelivered.is_empty());
    }
}
