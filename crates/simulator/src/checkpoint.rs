//! Checkpoint serialisation for the online dispatch layer.
//!
//! A [`ServiceCheckpoint`] is the complete, self-contained run state of a
//! [`DispatchService`](crate::DispatchService): order pools and cursors,
//! fleet physics (positions, edge-level itineraries, restaurant waits,
//! shift state), the event-schedule cursor with its active disruption set,
//! and every metrics accumulator. A [`RouterCheckpoint`] is the sharded
//! analogue for a [`DispatchRouter`](crate::DispatchRouter): one service
//! checkpoint per zone plus the router's own manifest (zone membership
//! maps, lockstep clock, termination flag).
//!
//! What a checkpoint deliberately does **not** contain: the road network
//! and zone map (deployment configuration, rebuilt deterministically), the
//! policy (stateless across windows by the
//! [`DispatchPolicy`](foodmatch_core::DispatchPolicy) contract), the
//! engine's memo caches (performance state — queries re-memoise), and the
//! schedule's rendered-overlay cache (rebuilt on restore and debug-asserted
//! equal). Restoring therefore needs the same network, zones and policy the
//! original run was created with; everything else round-trips bit-exactly.
//!
//! ## On-disk format
//!
//! Checkpoints encode through the deterministic
//! [`Codec`](foodmatch_core::Codec) (hash containers are serialised in
//! sorted key order, floats as raw IEEE-754 bits), so the same state always
//! produces the same bytes. A checkpoint *file* wraps the payload in a
//! checksummed container:
//!
//! ```text
//! [8-byte magic "FMCKPT01"] [u64 payload length] [u32 CRC-32 of payload] [payload]
//! ```
//!
//! Files are written atomically — to a temporary sibling, fsynced, then
//! renamed into place — so a crash mid-write leaves the previous checkpoint
//! (or nothing), never a torn one. A router checkpoint is a *directory*:
//! per-shard checkpoint files plus a `manifest` that records each shard
//! file's checksum; the directory is staged under a temporary name and
//! renamed as a unit. Corruption anywhere (bad magic, short file, checksum
//! mismatch, invalid payload) surfaces as a typed [`CheckpointError`] —
//! never a panic, never silently wrong state.

use crate::fleet::VehicleState;
use crate::metrics::MetricsCollector;
use foodmatch_core::codec::{crc32, u32_le_at, u64_le_at, ByteReader, Codec, DecodeError};
use foodmatch_core::{DispatchConfig, Order, OrderId, VehicleId};
use foodmatch_events::EventSchedule;
use foodmatch_roadnet::TimePoint;
use std::fmt;
use std::fs;
use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Magic prefix of every checkpoint file (8 bytes, versioned).
pub const CHECKPOINT_MAGIC: &[u8; 8] = b"FMCKPT01";

/// Name of the manifest file inside a router checkpoint directory.
pub const ROUTER_MANIFEST: &str = "manifest";

/// A typed failure loading or storing a checkpoint. Corrupt or truncated
/// files are always reported through one of these variants — reading a
/// checkpoint never panics.
#[derive(Debug)]
pub enum CheckpointError {
    /// The underlying filesystem operation failed.
    Io(std::io::Error),
    /// The file is shorter than the fixed container header.
    TooShort {
        /// Bytes actually present.
        len: usize,
    },
    /// The file does not start with [`CHECKPOINT_MAGIC`] (wrong file, or a
    /// future/incompatible format version).
    BadMagic {
        /// The 8 bytes actually found.
        found: [u8; 8],
    },
    /// The header's payload length disagrees with the file size.
    LengthMismatch {
        /// Payload length declared in the header.
        declared: u64,
        /// Payload bytes actually present.
        actual: u64,
    },
    /// The payload's CRC-32 does not match the header — the file is
    /// corrupt.
    ChecksumMismatch {
        /// Checksum recorded in the header.
        expected: u32,
        /// Checksum of the bytes actually read.
        actual: u32,
    },
    /// The payload passed its checksum but failed structural validation
    /// (should not happen without a CRC collision; reported, not trusted).
    Decode(DecodeError),
    /// A router manifest references a different number of shards than the
    /// checkpoint directory (or the zone map at restore time) provides.
    ShardCountMismatch {
        /// Shards the manifest declares.
        expected: usize,
        /// Shards actually found.
        found: usize,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint i/o failed: {e}"),
            CheckpointError::TooShort { len } => {
                write!(f, "checkpoint file too short ({len} bytes) for the container header")
            }
            CheckpointError::BadMagic { found } => {
                write!(f, "not a checkpoint file (magic {found:?})")
            }
            CheckpointError::LengthMismatch { declared, actual } => {
                write!(f, "checkpoint payload length mismatch: header says {declared}, file holds {actual}")
            }
            CheckpointError::ChecksumMismatch { expected, actual } => {
                write!(
                    f,
                    "checkpoint checksum mismatch: expected {expected:#010x}, got {actual:#010x}"
                )
            }
            CheckpointError::Decode(e) => write!(f, "checkpoint payload invalid: {e}"),
            CheckpointError::ShardCountMismatch { expected, found } => {
                write!(f, "router checkpoint shard count mismatch: manifest says {expected}, found {found}")
            }
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            CheckpointError::Decode(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

impl From<DecodeError> for CheckpointError {
    fn from(e: DecodeError) -> Self {
        CheckpointError::Decode(e)
    }
}

/// A typed failure rebuilding a dispatcher from an (already decoded)
/// checkpoint, when the caller-supplied deployment pieces do not match it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RestoreError {
    /// The zone map handed to [`DispatchRouter::restore`](crate::DispatchRouter::restore)
    /// has a different number of zones than the checkpoint has shards.
    ZoneCountMismatch {
        /// Shards in the checkpoint.
        checkpoint: usize,
        /// Zones in the supplied zone map.
        zones: usize,
    },
}

impl fmt::Display for RestoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RestoreError::ZoneCountMismatch { checkpoint, zones } => write!(
                f,
                "checkpoint has {checkpoint} shards but the zone map has {zones} zones — \
                 restore with the zone map the run was created with"
            ),
        }
    }
}

impl std::error::Error for RestoreError {}

/// The complete run state of one [`DispatchService`](crate::DispatchService).
///
/// Obtained from [`DispatchService::checkpoint`](crate::DispatchService::checkpoint);
/// turned back into a live service by
/// [`DispatchService::restore`](crate::DispatchService::restore). Serialises
/// deterministically through [`Codec`]; persist with [`save_checkpoint`] /
/// [`load_checkpoint`].
#[derive(Clone, Debug)]
pub struct ServiceCheckpoint {
    /// Number of write-ahead-log records already applied when the
    /// checkpoint was taken. Zero for bare (non-durable) services; a
    /// [`DurableDispatch`](crate::durable::DurableDispatch) stamps its log
    /// position here so recovery knows which log suffix to replay.
    pub wal_seq: u64,
    pub(crate) config: DispatchConfig,
    pub(crate) start: TimePoint,
    pub(crate) end: TimePoint,
    pub(crate) drain_end: TimePoint,
    pub(crate) window_close: TimePoint,
    pub(crate) orders: Vec<Order>,
    pub(crate) next_order: usize,
    pub(crate) known: Vec<(OrderId, TimePoint)>,
    pub(crate) schedule: EventSchedule,
    pub(crate) vehicles: Vec<VehicleState>,
    pub(crate) pending: Vec<Order>,
    pub(crate) assigned_or_done: Vec<OrderId>,
    pub(crate) delivered: Vec<OrderId>,
    pub(crate) cancel_requested: Vec<OrderId>,
    pub(crate) prep_delay_pending: Vec<(OrderId, foodmatch_roadnet::Duration)>,
    pub(crate) cancelled_ids: Vec<OrderId>,
    pub(crate) sdt: Vec<(OrderId, foodmatch_roadnet::Duration)>,
    pub(crate) collector: MetricsCollector,
    pub(crate) finished: bool,
}

impl ServiceCheckpoint {
    /// The service clock (close time of the last processed window) at the
    /// moment the checkpoint was taken.
    pub fn clock(&self) -> TimePoint {
        self.window_close
    }

    /// Whether the checkpointed service had already finished.
    pub fn is_finished(&self) -> bool {
        self.finished
    }
}

fn require(cond: bool, msg: impl FnOnce() -> String) -> Result<(), DecodeError> {
    if cond {
        Ok(())
    } else {
        Err(DecodeError::Invalid(msg()))
    }
}

fn require_sorted_unique<K: Ord + Copy + fmt::Debug>(
    keys: impl Iterator<Item = K> + Clone,
    what: &str,
) -> Result<(), DecodeError> {
    let mut shifted = keys.clone();
    shifted.next();
    for (a, b) in keys.zip(shifted) {
        if a >= b {
            return Err(DecodeError::Invalid(format!(
                "{what} must be strictly sorted, found {a:?} before {b:?}"
            )));
        }
    }
    Ok(())
}

impl Codec for ServiceCheckpoint {
    fn encode(&self, out: &mut Vec<u8>) {
        self.wal_seq.encode(out);
        self.config.encode(out);
        self.start.encode(out);
        self.end.encode(out);
        self.drain_end.encode(out);
        self.window_close.encode(out);
        self.orders.encode(out);
        self.next_order.encode(out);
        self.known.encode(out);
        self.schedule.encode(out);
        self.vehicles.encode(out);
        self.pending.encode(out);
        self.assigned_or_done.encode(out);
        self.delivered.encode(out);
        self.cancel_requested.encode(out);
        self.prep_delay_pending.encode(out);
        self.cancelled_ids.encode(out);
        self.sdt.encode(out);
        self.collector.encode(out);
        self.finished.encode(out);
    }

    fn decode(reader: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        let wal_seq = u64::decode(reader)?;
        let config = DispatchConfig::decode(reader)?;
        let start = TimePoint::decode(reader)?;
        let end = TimePoint::decode(reader)?;
        let drain_end = TimePoint::decode(reader)?;
        let window_close = TimePoint::decode(reader)?;
        require(start <= end && end <= drain_end, || {
            format!("checkpoint horizon out of order: start {start:?}, end {end:?}, drain {drain_end:?}")
        })?;
        require(start <= window_close && window_close <= drain_end, || {
            format!("checkpoint clock {window_close:?} outside [start, drain] bounds")
        })?;
        let orders = Vec::<Order>::decode(reader)?;
        let next_order = usize::decode(reader)?;
        require(next_order <= orders.len(), || {
            format!("order cursor {next_order} past the {} submitted orders", orders.len())
        })?;
        let known = Vec::<(OrderId, TimePoint)>::decode(reader)?;
        require_sorted_unique(known.iter().map(|&(id, _)| id), "checkpoint order index")?;
        let schedule = EventSchedule::decode(reader)?;
        let vehicles = Vec::<VehicleState>::decode(reader)?;
        {
            let mut ids: Vec<VehicleId> = vehicles.iter().map(|v| v.id).collect();
            ids.sort_unstable();
            ids.dedup();
            require(ids.len() == vehicles.len(), || {
                "checkpoint fleet contains duplicate vehicle ids".to_string()
            })?;
        }
        let pending = Vec::<Order>::decode(reader)?;
        let assigned_or_done = Vec::<OrderId>::decode(reader)?;
        require_sorted_unique(assigned_or_done.iter().copied(), "assigned/done set")?;
        let delivered = Vec::<OrderId>::decode(reader)?;
        require_sorted_unique(delivered.iter().copied(), "delivered set")?;
        let cancel_requested = Vec::<OrderId>::decode(reader)?;
        require_sorted_unique(cancel_requested.iter().copied(), "cancel-requested set")?;
        let prep_delay_pending = Vec::<(OrderId, foodmatch_roadnet::Duration)>::decode(reader)?;
        require_sorted_unique(prep_delay_pending.iter().map(|&(id, _)| id), "prep-delay map")?;
        let cancelled_ids = Vec::<OrderId>::decode(reader)?;
        require_sorted_unique(cancelled_ids.iter().copied(), "cancelled set")?;
        let sdt = Vec::<(OrderId, foodmatch_roadnet::Duration)>::decode(reader)?;
        require_sorted_unique(sdt.iter().map(|&(id, _)| id), "SDT map")?;
        let collector = MetricsCollector::decode(reader)?;
        let finished = bool::decode(reader)?;
        Ok(ServiceCheckpoint {
            wal_seq,
            config,
            start,
            end,
            drain_end,
            window_close,
            orders,
            next_order,
            known,
            schedule,
            vehicles,
            pending,
            assigned_or_done,
            delivered,
            cancel_requested,
            prep_delay_pending,
            cancelled_ids,
            sdt,
            collector,
            finished,
        })
    }
}

/// The complete run state of one [`DispatchRouter`](crate::DispatchRouter):
/// the router's own manifest (zone membership maps, lockstep clock,
/// termination state) plus one [`ServiceCheckpoint`] per zone shard.
///
/// Obtained from [`DispatchRouter::checkpoint`](crate::DispatchRouter::checkpoint);
/// turned back into a live router by
/// [`DispatchRouter::restore`](crate::DispatchRouter::restore). Persist as
/// a directory of per-shard files with [`save_router_checkpoint`] /
/// [`load_router_checkpoint`], or as a single file with the plain
/// [`save_checkpoint`] (it implements [`Codec`] like any other state).
#[derive(Clone, Debug)]
pub struct RouterCheckpoint {
    /// Write-ahead-log position, as on [`ServiceCheckpoint::wal_seq`].
    pub wal_seq: u64,
    pub(crate) config: DispatchConfig,
    pub(crate) window_close: TimePoint,
    pub(crate) drain_end: TimePoint,
    pub(crate) finished: bool,
    pub(crate) order_zone: Vec<(OrderId, u32)>,
    pub(crate) vehicle_zone: Vec<(VehicleId, u32)>,
    pub(crate) shards: Vec<ServiceCheckpoint>,
}

impl RouterCheckpoint {
    /// The router clock at the moment the checkpoint was taken.
    pub fn clock(&self) -> TimePoint {
        self.window_close
    }

    /// Number of zone shards in the checkpoint.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Whether the checkpointed router had already finished.
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// Encodes only the manifest part (everything but the shard states);
    /// shard checksums bind the manifest to its shard files.
    fn encode_manifest(&self, shard_crcs: &[u32], out: &mut Vec<u8>) {
        self.wal_seq.encode(out);
        self.config.encode(out);
        self.window_close.encode(out);
        self.drain_end.encode(out);
        self.finished.encode(out);
        self.order_zone.encode(out);
        self.vehicle_zone.encode(out);
        shard_crcs.to_vec().encode(out);
    }

    fn decode_manifest(
        reader: &mut ByteReader<'_>,
    ) -> Result<(RouterCheckpoint, Vec<u32>), DecodeError> {
        let wal_seq = u64::decode(reader)?;
        let config = DispatchConfig::decode(reader)?;
        let window_close = TimePoint::decode(reader)?;
        let drain_end = TimePoint::decode(reader)?;
        let finished = bool::decode(reader)?;
        let order_zone = Vec::<(OrderId, u32)>::decode(reader)?;
        require_sorted_unique(order_zone.iter().map(|&(id, _)| id), "router order-zone map")?;
        let vehicle_zone = Vec::<(VehicleId, u32)>::decode(reader)?;
        require_sorted_unique(vehicle_zone.iter().map(|&(id, _)| id), "router vehicle-zone map")?;
        let shard_crcs = Vec::<u32>::decode(reader)?;
        Ok((
            RouterCheckpoint {
                wal_seq,
                config,
                window_close,
                drain_end,
                finished,
                order_zone,
                vehicle_zone,
                shards: Vec::new(),
            },
            shard_crcs,
        ))
    }
}

impl Codec for RouterCheckpoint {
    fn encode(&self, out: &mut Vec<u8>) {
        self.encode_manifest(&[], out);
        self.shards.encode(out);
    }

    fn decode(reader: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        let (mut checkpoint, shard_crcs) = RouterCheckpoint::decode_manifest(reader)?;
        require(shard_crcs.is_empty(), || {
            "inline router checkpoint must not carry shard-file checksums".to_string()
        })?;
        checkpoint.shards = Vec::<ServiceCheckpoint>::decode(reader)?;
        Ok(checkpoint)
    }
}

/// Wraps `payload` in the checksummed checkpoint container.
fn seal(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 20);
    out.extend_from_slice(CHECKPOINT_MAGIC);
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Verifies the container framing and returns the payload slice.
fn unseal(bytes: &[u8]) -> Result<&[u8], CheckpointError> {
    if bytes.len() < 20 {
        return Err(CheckpointError::TooShort { len: bytes.len() });
    }
    if &bytes[..8] != CHECKPOINT_MAGIC {
        let mut found = [0u8; 8];
        found.copy_from_slice(&bytes[..8]);
        return Err(CheckpointError::BadMagic { found });
    }
    let declared = u64_le_at(bytes, 8);
    let expected = u32_le_at(bytes, 16);
    let payload = &bytes[20..];
    if declared != payload.len() as u64 {
        return Err(CheckpointError::LengthMismatch { declared, actual: payload.len() as u64 });
    }
    let actual = crc32(payload);
    if actual != expected {
        return Err(CheckpointError::ChecksumMismatch { expected, actual });
    }
    Ok(payload)
}

/// Writes `bytes` to `path` atomically: a temporary sibling is written,
/// fsynced, then renamed over the destination, so a crash mid-write never
/// leaves a torn file.
fn atomic_write(path: &Path, bytes: &[u8]) -> Result<(), CheckpointError> {
    let tmp = path.with_extension("ckpt-tmp");
    {
        let mut file = fs::File::create(&tmp)?;
        file.write_all(bytes)?;
        file.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    Ok(())
}

/// Serialises any checkpoint (`ServiceCheckpoint`, `RouterCheckpoint`, or
/// any other [`Codec`] state) into a checksummed container and writes it
/// atomically to `path`.
pub fn save_checkpoint<C: Codec>(path: impl AsRef<Path>, state: &C) -> Result<(), CheckpointError> {
    let _span = foodmatch_telemetry::span("checkpoint", "save");
    // lint: allow(telemetry-handle-discipline) — free function with no
    // struct to cache a handle in; runs once per checkpoint save, not per
    // window, and must bind whatever recorder is installed at call time.
    let _timer = foodmatch_telemetry::histogram("checkpoint.save_ns").timer();
    atomic_write(path.as_ref(), &seal(&state.to_bytes()))
}

/// Reads a checkpoint container from `path`, verifying magic, length and
/// checksum before decoding. Every corruption mode is a typed
/// [`CheckpointError`].
pub fn load_checkpoint<C: Codec>(path: impl AsRef<Path>) -> Result<C, CheckpointError> {
    let _span = foodmatch_telemetry::span("checkpoint", "restore");
    // lint: allow(telemetry-handle-discipline) — free function, once per
    // restore; see `save_checkpoint`.
    let _timer = foodmatch_telemetry::histogram("checkpoint.restore_ns").timer();
    let bytes = fs::read(path.as_ref())?;
    let payload = unseal(&bytes)?;
    Ok(C::from_bytes(payload)?)
}

/// Name of the shard file for shard `index` inside a router checkpoint
/// directory.
pub fn shard_file_name(index: usize) -> String {
    format!("shard-{index:04}.ckpt")
}

/// Persists a [`RouterCheckpoint`] as a directory: one container file per
/// shard plus a [`ROUTER_MANIFEST`] binding them together by checksum. The
/// directory is staged under a temporary name and renamed into place as a
/// unit; an existing checkpoint directory at `dir` is replaced.
pub fn save_router_checkpoint(
    dir: impl AsRef<Path>,
    checkpoint: &RouterCheckpoint,
) -> Result<(), CheckpointError> {
    let _span = foodmatch_telemetry::span("checkpoint", "save_router");
    // lint: allow(telemetry-handle-discipline) — free function, once per
    // checkpoint save; see `save_checkpoint`.
    let _timer = foodmatch_telemetry::histogram("checkpoint.save_ns").timer();
    let dir = dir.as_ref();
    let staging = dir.with_extension("ckpt-staging");
    if staging.exists() {
        fs::remove_dir_all(&staging)?;
    }
    fs::create_dir_all(&staging)?;
    let mut shard_crcs = Vec::with_capacity(checkpoint.shards.len());
    for (i, shard) in checkpoint.shards.iter().enumerate() {
        let sealed = seal(&shard.to_bytes());
        shard_crcs.push(crc32(&sealed));
        let mut file = fs::File::create(staging.join(shard_file_name(i)))?;
        file.write_all(&sealed)?;
        file.sync_all()?;
    }
    let mut manifest_payload = Vec::new();
    checkpoint.encode_manifest(&shard_crcs, &mut manifest_payload);
    let mut file = fs::File::create(staging.join(ROUTER_MANIFEST))?;
    file.write_all(&seal(&manifest_payload))?;
    file.sync_all()?;
    drop(file);
    if dir.exists() {
        fs::remove_dir_all(dir)?;
    }
    fs::rename(&staging, dir)?;
    Ok(())
}

/// Loads a router checkpoint directory written by
/// [`save_router_checkpoint`], verifying the manifest and every shard file
/// (container checksum *and* the manifest's record of it) before decoding.
pub fn load_router_checkpoint(dir: impl AsRef<Path>) -> Result<RouterCheckpoint, CheckpointError> {
    let _span = foodmatch_telemetry::span("checkpoint", "restore_router");
    // lint: allow(telemetry-handle-discipline) — free function, once per
    // restore; see `save_checkpoint`.
    let _timer = foodmatch_telemetry::histogram("checkpoint.restore_ns").timer();
    let dir = dir.as_ref();
    let manifest_bytes = fs::read(dir.join(ROUTER_MANIFEST))?;
    let payload = unseal(&manifest_bytes)?;
    let mut reader = ByteReader::new(payload);
    let (mut checkpoint, shard_crcs) = RouterCheckpoint::decode_manifest(&mut reader)?;
    reader.expect_end()?;
    let mut shards = Vec::with_capacity(shard_crcs.len());
    for (i, &expected) in shard_crcs.iter().enumerate() {
        let path = dir.join(shard_file_name(i));
        let bytes = match fs::read(&path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Err(CheckpointError::ShardCountMismatch {
                    expected: shard_crcs.len(),
                    found: i,
                });
            }
            Err(e) => return Err(e.into()),
        };
        let actual = crc32(&bytes);
        if actual != expected {
            return Err(CheckpointError::ChecksumMismatch { expected, actual });
        }
        let shard_payload = unseal(&bytes)?;
        shards.push(ServiceCheckpoint::from_bytes(shard_payload)?);
    }
    checkpoint.shards = shards;
    Ok(checkpoint)
}

/// One enqueued background save: the WAL sequence the checkpoint covers,
/// plus the captured state itself.
struct CheckpointJob<C> {
    seq: u64,
    state: C,
}

/// Cross-thread state shared between the dispatch side and the persist
/// worker.
struct CheckpointerShared {
    /// Highest WAL sequence whose checkpoint is sealed on disk (0 until the
    /// first seal; 0 is also the trivially-sealed empty prefix).
    sealed_seq: AtomicU64,
    /// Jobs enqueued but not yet persisted (or coalesced away).
    pending: Mutex<usize>,
    /// Signalled whenever `pending` drops.
    idle: Condvar,
    /// First persist failure, if any. Once set, later seals still proceed
    /// (a transient disk error on one save does not doom the next), but the
    /// error stays visible until [`BackgroundCheckpointer::take_error`].
    error: Mutex<Option<String>>,
}

/// Locks a mutex, recovering from poisoning instead of panicking. A
/// poisoned lock means some thread panicked while holding it; every value
/// guarded here (a pending-job counter, an error slot) is valid in any
/// intermediate state, so the durability layer keeps going rather than
/// cascading the panic through crash recovery.
fn lock_unpoisoned<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Two-phase background checkpointing: cheap in-thread *capture*
/// (cloning the dispatcher's state — what
/// [`DurableDispatch::checkpoint`](crate::DurableDispatch::checkpoint)
/// returns), worker-thread *persist* (Codec-serialise, seal, atomic
/// rename). The dispatch thread stalls only for the capture; the
/// serialisation and fsync — the expensive phase — happen off-thread.
///
/// When saves arrive faster than the disk persists them, queued jobs are
/// **coalesced**: the worker drains the queue and seals only the newest
/// state (each checkpoint is a complete snapshot, so intermediate ones are
/// dead weight the moment a newer capture exists). The skipped count is
/// recorded on the `checkpoint.coalesced` counter.
///
/// [`sealed_seq`](Self::sealed_seq) publishes the newest checkpoint known
/// safe on disk — the anchor [`WriteAheadLog::compact_below`](crate::WriteAheadLog::compact_below)
/// may truncate the log to. Never compact past a sequence this has not
/// published: the checkpoint covering the dropped prefix must exist before
/// the prefix goes.
///
/// Dropping the checkpointer drains the queue and joins the worker, so an
/// in-flight seal is never abandoned half-written (the atomic rename
/// guarantees that even a hard kill leaves the previous file intact).
pub struct BackgroundCheckpointer<C: Send + 'static> {
    sender: Option<std::sync::mpsc::Sender<CheckpointJob<C>>>,
    worker: Option<std::thread::JoinHandle<()>>,
    shared: Arc<CheckpointerShared>,
}

impl<C: Send + 'static> fmt::Debug for BackgroundCheckpointer<C> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BackgroundCheckpointer")
            .field("sealed_seq", &self.sealed_seq())
            .finish_non_exhaustive()
    }
}

impl BackgroundCheckpointer<ServiceCheckpoint> {
    /// A background checkpointer persisting [`ServiceCheckpoint`]s to a
    /// single container file via [`save_checkpoint`].
    pub fn service(path: impl AsRef<Path>) -> Result<Self, CheckpointError> {
        Self::new(path, |path, state| save_checkpoint(path, state))
    }
}

impl BackgroundCheckpointer<RouterCheckpoint> {
    /// A background checkpointer persisting [`RouterCheckpoint`]s to a
    /// checkpoint directory via [`save_router_checkpoint`].
    pub fn router(dir: impl AsRef<Path>) -> Result<Self, CheckpointError> {
        Self::new(dir, |dir, state| save_router_checkpoint(dir, state))
    }
}

impl<C: Send + 'static> BackgroundCheckpointer<C> {
    /// Starts the persist worker, writing every sealed checkpoint to
    /// `path` through `persist` (an atomic-rename writer such as
    /// [`save_checkpoint`] or [`save_router_checkpoint`]). Fails with
    /// [`CheckpointError::Io`] if the worker thread cannot be spawned.
    pub fn new(
        path: impl AsRef<Path>,
        persist: fn(&Path, &C) -> Result<(), CheckpointError>,
    ) -> Result<Self, CheckpointError> {
        let path = path.as_ref().to_path_buf();
        let shared = Arc::new(CheckpointerShared {
            sealed_seq: AtomicU64::new(0),
            pending: Mutex::new(0),
            idle: Condvar::new(),
            error: Mutex::new(None),
        });
        let (sender, receiver) = std::sync::mpsc::channel::<CheckpointJob<C>>();
        let worker_shared = Arc::clone(&shared);
        let worker = std::thread::Builder::new()
            .name("fm-checkpointer".to_string())
            .spawn(move || {
                let persist_ns = foodmatch_telemetry::histogram("checkpoint.persist_ns");
                let sealed = foodmatch_telemetry::counter("checkpoint.sealed");
                let coalesced = foodmatch_telemetry::counter("checkpoint.coalesced");
                while let Ok(first) = receiver.recv() {
                    // Coalesce: a newer complete snapshot obsoletes every
                    // older queued one.
                    let mut consumed = 1usize;
                    let mut job = first;
                    while let Ok(newer) = receiver.try_recv() {
                        consumed += 1;
                        job = newer;
                    }
                    if consumed > 1 {
                        coalesced.add(consumed as u64 - 1);
                    }
                    let result = {
                        let _span = foodmatch_telemetry::span("checkpoint", "persist");
                        let _timer = persist_ns.timer();
                        persist(&path, &job.state)
                    };
                    match result {
                        Ok(()) => {
                            worker_shared.sealed_seq.fetch_max(job.seq, Ordering::SeqCst);
                            sealed.inc();
                        }
                        Err(e) => {
                            let mut slot = lock_unpoisoned(&worker_shared.error);
                            slot.get_or_insert_with(|| {
                                format!("background checkpoint at seq {} failed: {e}", job.seq)
                            });
                        }
                    }
                    let mut pending = lock_unpoisoned(&worker_shared.pending);
                    *pending = pending.saturating_sub(consumed);
                    worker_shared.idle.notify_all();
                }
            })
            .map_err(CheckpointError::Io)?;
        Ok(BackgroundCheckpointer { sender: Some(sender), worker: Some(worker), shared })
    }

    /// Phase two: hands a captured checkpoint (covering WAL records below
    /// `seq`) to the persist worker and returns immediately. `seq` must be
    /// the value stamped on the checkpoint (its `wal_seq`).
    /// The worker lives until `Drop` closes the channel, so a send only
    /// fails if the worker thread died; that failure lands in the error
    /// slot (surfaced by [`take_error`](Self::take_error) /
    /// [`drain`](Self::drain)) rather than panicking the dispatch thread.
    pub fn save(&self, seq: u64, state: C) {
        let mut pending = lock_unpoisoned(&self.shared.pending);
        *pending += 1;
        drop(pending);
        let sent = match self.sender.as_ref() {
            Some(sender) => sender.send(CheckpointJob { seq, state }).is_ok(),
            None => false,
        };
        if !sent {
            let mut pending = lock_unpoisoned(&self.shared.pending);
            *pending = pending.saturating_sub(1);
            drop(pending);
            lock_unpoisoned(&self.shared.error).get_or_insert_with(|| {
                format!("checkpoint worker unavailable; save at seq {seq} dropped")
            });
            self.shared.idle.notify_all();
        }
    }

    /// Highest WAL sequence whose checkpoint is sealed on disk — safe to
    /// [compact](crate::WriteAheadLog::compact_below) the log below. Zero
    /// until the first seal (the empty prefix needs no checkpoint).
    pub fn sealed_seq(&self) -> u64 {
        self.shared.sealed_seq.load(Ordering::SeqCst)
    }

    /// Jobs enqueued but not yet persisted or coalesced.
    pub fn pending(&self) -> usize {
        *lock_unpoisoned(&self.shared.pending)
    }

    /// Takes the first persist failure, if one occurred. A failed save
    /// never advances [`sealed_seq`](Self::sealed_seq), so compaction
    /// anchored there stays safe even if the error goes unchecked.
    pub fn take_error(&self) -> Option<String> {
        lock_unpoisoned(&self.shared.error).take()
    }

    /// Blocks until every enqueued job is persisted (or coalesced away)
    /// and returns the sealed sequence, or the first persist failure.
    pub fn drain(&self) -> Result<u64, String> {
        let mut pending = lock_unpoisoned(&self.shared.pending);
        while *pending > 0 {
            pending =
                self.shared.idle.wait(pending).unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        drop(pending);
        match self.take_error() {
            Some(error) => Err(error),
            None => Ok(self.sealed_seq()),
        }
    }
}

impl<C: Send + 'static> Drop for BackgroundCheckpointer<C> {
    fn drop(&mut self) {
        // Close the channel so the worker drains the queue and exits, then
        // join it: every enqueued seal completes (or reports its error)
        // before the checkpointer is gone.
        self.sender.take();
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn container_rejects_every_corruption_mode_with_typed_errors() {
        let payload = 42u64.to_bytes();
        let sealed = seal(&payload);
        assert_eq!(unseal(&sealed).expect("clean container"), &payload[..]);

        assert!(matches!(unseal(&sealed[..10]), Err(CheckpointError::TooShort { len: 10 })));

        let mut wrong_magic = sealed.clone();
        wrong_magic[0] ^= 0xFF;
        assert!(matches!(unseal(&wrong_magic), Err(CheckpointError::BadMagic { .. })));

        let mut truncated = sealed.clone();
        truncated.pop();
        assert!(matches!(unseal(&truncated), Err(CheckpointError::LengthMismatch { .. })));

        let mut flipped = sealed.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x01;
        assert!(matches!(unseal(&flipped), Err(CheckpointError::ChecksumMismatch { .. })));
    }

    #[test]
    fn atomic_save_round_trips_through_the_filesystem() {
        let dir = std::env::temp_dir().join(format!("fm-ckpt-test-{}", std::process::id()));
        fs::create_dir_all(&dir).expect("create temp dir");
        let path = dir.join("value.ckpt");
        save_checkpoint(&path, &0xDEAD_BEEFu64).expect("save");
        let value: u64 = load_checkpoint(&path).expect("load");
        assert_eq!(value, 0xDEAD_BEEF);
        // Overwrite goes through the same atomic rename.
        save_checkpoint(&path, &7u64).expect("overwrite");
        assert_eq!(load_checkpoint::<u64>(&path).expect("reload"), 7);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn background_checkpointer_seals_the_newest_state_and_publishes_its_seq() {
        let dir = std::env::temp_dir().join(format!("fm-bgckpt-test-{}", std::process::id()));
        fs::create_dir_all(&dir).expect("create temp dir");
        let path = dir.join("bg.ckpt");
        let bg: BackgroundCheckpointer<u64> =
            BackgroundCheckpointer::new(&path, |path, state| save_checkpoint(path, state))
                .expect("spawn checkpoint worker");
        assert_eq!(bg.sealed_seq(), 0, "nothing sealed yet");
        // A burst of saves: the worker may coalesce, but the newest always
        // lands, and sealed_seq only moves forward.
        for seq in 1..=5u64 {
            bg.save(seq, seq * 100);
        }
        let sealed = bg.drain().expect("drain");
        assert_eq!(sealed, 5);
        assert_eq!(load_checkpoint::<u64>(&path).expect("load"), 500);
        assert_eq!(bg.pending(), 0);
        drop(bg);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn background_checkpointer_reports_persist_failures_without_advancing() {
        let dir = std::env::temp_dir().join(format!("fm-bgckpt-err-{}", std::process::id()));
        // The parent directory does not exist, so every atomic write fails.
        let path = dir.join("missing").join("bg.ckpt");
        let bg: BackgroundCheckpointer<u64> =
            BackgroundCheckpointer::new(&path, |path, state| save_checkpoint(path, state))
                .expect("spawn checkpoint worker");
        bg.save(3, 42);
        let err = bg.drain().expect_err("persist into a missing dir fails");
        assert!(err.contains("seq 3"), "error names the failed seq: {err}");
        assert_eq!(bg.sealed_seq(), 0, "a failed save never advances the seal");
        fs::remove_dir_all(&dir).ok();
    }
}
