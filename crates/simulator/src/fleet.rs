//! Runtime vehicle state and movement along route plans.
//!
//! The dispatcher only ever sees [`VehicleSnapshot`]s; this module owns the
//! full picture: which orders a vehicle carries, the itinerary it is
//! executing (travel legs expanded to individual road edges, waits at
//! restaurants, pickups and drop-offs), and how far it has progressed. The
//! simulation advances vehicles window by window; positions between nodes are
//! snapped to the last reached node, mirroring the paper's "approximate its
//! location to the closest node" rule.

use foodmatch_core::codec::{ByteReader, Codec, DecodeError};
use foodmatch_core::route::{EvaluatedRoute, StopAction};
use foodmatch_core::{CommittedOrder, Order, OrderId, VehicleId, VehicleSnapshot};
use foodmatch_roadnet::{Duration, NodeId, ShortestPathEngine, TimePoint};
use std::collections::VecDeque;

/// An order currently tied to a vehicle.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CarriedOrder {
    /// The order.
    pub order: Order,
    /// Whether the food has been collected from the restaurant.
    pub picked_up: bool,
}

/// One step of a vehicle's itinerary.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ItineraryStep {
    /// Drive one road edge.
    Travel {
        /// Node the edge leaves from.
        from: NodeId,
        /// Node the edge arrives at.
        to: NodeId,
        /// Departure time.
        depart: TimePoint,
        /// Arrival time.
        arrive: TimePoint,
        /// Edge length in meters.
        length_m: f64,
    },
    /// Wait at a restaurant until the food is ready.
    Wait {
        /// The restaurant node.
        node: NodeId,
        /// When the wait starts (arrival at the restaurant).
        from: TimePoint,
        /// When the wait ends (food ready).
        until: TimePoint,
    },
    /// Collect an order.
    Pickup {
        /// The order collected.
        order: OrderId,
        /// When the pickup happens.
        at: TimePoint,
    },
    /// Deliver an order.
    Dropoff {
        /// The order delivered.
        order: OrderId,
        /// When the drop-off happens.
        at: TimePoint,
    },
}

impl ItineraryStep {
    /// The simulation time at which this step completes.
    pub fn completes_at(&self) -> TimePoint {
        match *self {
            ItineraryStep::Travel { arrive, .. } => arrive,
            ItineraryStep::Wait { until, .. } => until,
            ItineraryStep::Pickup { at, .. } | ItineraryStep::Dropoff { at, .. } => at,
        }
    }
}

/// Events a vehicle reports back to the simulation while advancing.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FleetEvent {
    /// An order was picked up at `at`; the vehicle had waited `waited` for it.
    PickedUp {
        /// The order.
        order: OrderId,
        /// Pickup time.
        at: TimePoint,
        /// Time spent waiting at the restaurant for this pickup.
        waited: Duration,
    },
    /// An order was delivered at `at`.
    Delivered {
        /// The order.
        order: OrderId,
        /// Delivery time.
        at: TimePoint,
    },
    /// The vehicle drove one edge while carrying `load` picked-up orders.
    Drove {
        /// Meters driven.
        length_m: f64,
        /// Number of picked-up orders on board during the edge.
        load: usize,
    },
}

/// Full runtime state of one delivery vehicle.
#[derive(Clone, Debug)]
pub struct VehicleState {
    /// The vehicle's id.
    pub id: VehicleId,
    /// Current position, snapped to the last reached node.
    pub location: NodeId,
    /// Orders currently assigned to the vehicle (picked up or not).
    pub carried: Vec<CarriedOrder>,
    /// Whether the driver is on shift. Off-shift vehicles are not offered to
    /// the dispatcher; they still finish the deliveries already on board.
    pub on_shift: bool,
    itinerary: VecDeque<ItineraryStep>,
    /// Waiting time accumulated since the last pickup event (used to
    /// attribute waits to the right order).
    pending_wait: Duration,
}

impl VehicleState {
    /// Creates an idle, on-shift vehicle at `location`.
    pub fn new(id: VehicleId, location: NodeId) -> Self {
        VehicleState {
            id,
            location,
            carried: Vec::new(),
            on_shift: true,
            itinerary: VecDeque::new(),
            pending_wait: Duration::ZERO,
        }
    }

    /// True if the vehicle has nothing left to do.
    pub fn is_idle(&self) -> bool {
        self.itinerary.is_empty() && self.carried.is_empty()
    }

    /// True while the vehicle is executing an itinerary. Used by the
    /// simulation to re-time in-flight routes when traffic conditions change
    /// (itinerary steps carry precomputed edge times).
    pub fn is_en_route(&self) -> bool {
        !self.itinerary.is_empty()
    }

    /// Orders assigned but not yet picked up (the reshufflable set).
    pub fn unpicked_orders(&self) -> Vec<Order> {
        self.carried.iter().filter(|c| !c.picked_up).map(|c| c.order).collect()
    }

    /// The node the vehicle is currently driving towards, if any.
    pub fn heading(&self) -> Option<NodeId> {
        self.itinerary.iter().find_map(|step| match step {
            ItineraryStep::Travel { to, .. } => Some(*to),
            _ => None,
        })
    }

    /// Number of picked-up orders currently on board.
    pub fn onboard_load(&self) -> usize {
        self.carried.iter().filter(|c| c.picked_up).count()
    }

    /// The dispatcher-facing snapshot of this vehicle.
    ///
    /// `reshuffle` controls which orders count as *committed*: with
    /// reshuffling enabled only picked-up orders are committed (the rest go
    /// back into the window's order pool); without it, everything the vehicle
    /// carries is committed.
    pub fn snapshot(&self, reshuffle: bool) -> VehicleSnapshot {
        let committed = self
            .carried
            .iter()
            .filter(|c| c.picked_up || !reshuffle)
            .map(|c| CommittedOrder { order: c.order, picked_up: c.picked_up })
            .collect();
        let tentative = if reshuffle {
            self.carried.iter().filter(|c| !c.picked_up).map(|c| c.order.id).collect()
        } else {
            Vec::new()
        };
        VehicleSnapshot {
            id: self.id,
            location: self.location,
            heading: self.heading(),
            committed,
            tentative,
        }
    }

    /// Detaches every not-yet-picked-up order from the vehicle, returning
    /// them. Used when reshuffling puts unpicked orders back into the
    /// window's pool before the new assignment is applied (§IV-D2).
    pub fn take_unpicked(&mut self) -> Vec<Order> {
        let removed = self.unpicked_orders();
        if !removed.is_empty() {
            self.carried.retain(|c| c.picked_up);
        }
        removed
    }

    /// Removes a not-yet-picked-up order (because it was reshuffled to
    /// another vehicle or rejected). Returns true if the order was present.
    pub fn remove_unpicked(&mut self, order: OrderId) -> bool {
        let before = self.carried.len();
        self.carried.retain(|c| c.picked_up || c.order.id != order);
        before != self.carried.len()
    }

    /// Installs a new set of carried orders and the route plan serving them,
    /// expanding the plan into an edge-level itinerary starting at the
    /// vehicle's current location and time.
    ///
    /// Legs whose shortest path cannot be found (disconnected network) are
    /// skipped; affected orders simply never get picked up and will surface
    /// as undelivered in the report — the synthetic networks used by the
    /// experiments are connected, so this is a corner case.
    pub fn install_plan(
        &mut self,
        carried: Vec<CarriedOrder>,
        route: &EvaluatedRoute,
        now: TimePoint,
        engine: &ShortestPathEngine,
    ) {
        self.carried = carried;
        self.itinerary.clear();
        self.pending_wait = Duration::ZERO;

        let mut cursor_node = self.location;
        let mut cursor_time = now;
        for stop in &route.plan.stops {
            // Drive to the stop.
            if stop.node != cursor_node {
                let Some(path) = engine.shortest_path(cursor_node, stop.node, cursor_time) else {
                    continue;
                };
                for pair in path.nodes.windows(2) {
                    let (from, to) = (pair[0], pair[1]);
                    let network = engine.network();
                    let Some((eid, edge)) = network.out_edges(from).find(|(_, e)| e.to == to)
                    else {
                        continue;
                    };
                    // Overlay-aware: a vehicle drives slower through an
                    // active disruption, exactly as the oracle predicted.
                    let tt = engine.edge_travel_time(eid, cursor_time);
                    let depart = cursor_time;
                    cursor_time += tt;
                    self.itinerary.push_back(ItineraryStep::Travel {
                        from,
                        to,
                        depart,
                        arrive: cursor_time,
                        length_m: edge.length_m,
                    });
                }
                cursor_node = stop.node;
            }
            // Handle the stop itself.
            let order = self.carried.iter().find(|c| c.order.id == stop.order).map(|c| c.order);
            let Some(order) = order else { continue };
            match stop.action {
                StopAction::Pickup => {
                    let ready = order.ready_at();
                    if ready > cursor_time {
                        self.itinerary.push_back(ItineraryStep::Wait {
                            node: stop.node,
                            from: cursor_time,
                            until: ready,
                        });
                        cursor_time = ready;
                    }
                    self.itinerary
                        .push_back(ItineraryStep::Pickup { order: order.id, at: cursor_time });
                }
                StopAction::Dropoff => {
                    self.itinerary
                        .push_back(ItineraryStep::Dropoff { order: order.id, at: cursor_time });
                }
            }
        }
    }

    /// Advances the vehicle to `until`, returning the events that happened.
    pub fn advance(&mut self, until: TimePoint) -> Vec<FleetEvent> {
        let mut events = Vec::new();
        while let Some(step) = self.itinerary.front().copied() {
            if step.completes_at() > until {
                break;
            }
            self.itinerary.pop_front();
            match step {
                ItineraryStep::Travel { to, length_m, .. } => {
                    self.location = to;
                    events.push(FleetEvent::Drove { length_m, load: self.onboard_load() });
                }
                ItineraryStep::Wait { from, until: wait_until, .. } => {
                    self.pending_wait += wait_until - from;
                }
                ItineraryStep::Pickup { order, at } => {
                    if let Some(c) = self.carried.iter_mut().find(|c| c.order.id == order) {
                        c.picked_up = true;
                    }
                    events.push(FleetEvent::PickedUp { order, at, waited: self.pending_wait });
                    self.pending_wait = Duration::ZERO;
                }
                ItineraryStep::Dropoff { order, at } => {
                    self.carried.retain(|c| c.order.id != order);
                    events.push(FleetEvent::Delivered { order, at });
                }
            }
        }
        events
    }

    /// The time at which the vehicle finishes its current itinerary (`None`
    /// when idle).
    pub fn busy_until(&self) -> Option<TimePoint> {
        self.itinerary.back().map(ItineraryStep::completes_at)
    }
}

impl Codec for CarriedOrder {
    fn encode(&self, out: &mut Vec<u8>) {
        self.order.encode(out);
        self.picked_up.encode(out);
    }
    fn decode(reader: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        Ok(CarriedOrder { order: Order::decode(reader)?, picked_up: bool::decode(reader)? })
    }
}

impl Codec for ItineraryStep {
    fn encode(&self, out: &mut Vec<u8>) {
        match *self {
            ItineraryStep::Travel { from, to, depart, arrive, length_m } => {
                out.push(0);
                from.encode(out);
                to.encode(out);
                depart.encode(out);
                arrive.encode(out);
                length_m.encode(out);
            }
            ItineraryStep::Wait { node, from, until } => {
                out.push(1);
                node.encode(out);
                from.encode(out);
                until.encode(out);
            }
            ItineraryStep::Pickup { order, at } => {
                out.push(2);
                order.encode(out);
                at.encode(out);
            }
            ItineraryStep::Dropoff { order, at } => {
                out.push(3);
                order.encode(out);
                at.encode(out);
            }
        }
    }
    fn decode(reader: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        match reader.take(1)?[0] {
            0 => {
                let from = NodeId::decode(reader)?;
                let to = NodeId::decode(reader)?;
                let depart = TimePoint::decode(reader)?;
                let arrive = TimePoint::decode(reader)?;
                let length_m = f64::decode(reader)?;
                if !(length_m.is_finite() && length_m >= 0.0) {
                    return Err(DecodeError::Invalid(format!(
                        "travel length must be finite and non-negative, got {length_m}"
                    )));
                }
                Ok(ItineraryStep::Travel { from, to, depart, arrive, length_m })
            }
            1 => Ok(ItineraryStep::Wait {
                node: NodeId::decode(reader)?,
                from: TimePoint::decode(reader)?,
                until: TimePoint::decode(reader)?,
            }),
            2 => Ok(ItineraryStep::Pickup {
                order: OrderId::decode(reader)?,
                at: TimePoint::decode(reader)?,
            }),
            3 => Ok(ItineraryStep::Dropoff {
                order: OrderId::decode(reader)?,
                at: TimePoint::decode(reader)?,
            }),
            tag => Err(DecodeError::Invalid(format!("unknown ItineraryStep tag {tag}"))),
        }
    }
}

/// The full runtime state round-trips, including the private edge-level
/// itinerary and the pending restaurant wait — a restored vehicle resumes
/// mid-edge exactly where the checkpointed one stopped.
impl Codec for VehicleState {
    fn encode(&self, out: &mut Vec<u8>) {
        self.id.encode(out);
        self.location.encode(out);
        self.carried.encode(out);
        self.on_shift.encode(out);
        self.itinerary.len().encode(out);
        for step in &self.itinerary {
            step.encode(out);
        }
        self.pending_wait.encode(out);
    }
    fn decode(reader: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        let id = VehicleId::decode(reader)?;
        let location = NodeId::decode(reader)?;
        let carried = Vec::<CarriedOrder>::decode(reader)?;
        let on_shift = bool::decode(reader)?;
        let declared = u64::decode(reader)?;
        let steps = reader.check_len(declared)?;
        let mut itinerary = VecDeque::with_capacity(steps);
        for _ in 0..steps {
            itinerary.push_back(ItineraryStep::decode(reader)?);
        }
        let pending_wait = Duration::decode(reader)?;
        Ok(VehicleState { id, location, carried, on_shift, itinerary, pending_wait })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use foodmatch_core::route::{plan_optimal_route, PlannedOrder};
    use foodmatch_roadnet::generators::GridCityBuilder;
    use foodmatch_roadnet::CongestionProfile;

    fn setup() -> (ShortestPathEngine, GridCityBuilder) {
        let b =
            GridCityBuilder::new(6, 6).congestion(CongestionProfile::free_flow()).major_every(0);
        (ShortestPathEngine::cached(b.build()), b)
    }

    fn order(id: u64, r: NodeId, c: NodeId, t: TimePoint, prep_mins: f64) -> Order {
        Order::new(OrderId(id), r, c, t, 1, Duration::from_mins(prep_mins))
    }

    fn install_single(
        vehicle: &mut VehicleState,
        o: Order,
        now: TimePoint,
        engine: &ShortestPathEngine,
    ) {
        let route =
            plan_optimal_route(vehicle.location, now, &[PlannedOrder::pending(o)], engine).unwrap();
        vehicle.install_plan(
            vec![CarriedOrder { order: o, picked_up: false }],
            &route,
            now,
            engine,
        );
    }

    #[test]
    fn idle_vehicle_does_nothing() {
        let (_, b) = setup();
        let mut v = VehicleState::new(VehicleId(0), b.node_at(0, 0));
        assert!(v.is_idle());
        assert!(v.advance(TimePoint::from_hms(23, 0, 0)).is_empty());
        assert_eq!(v.heading(), None);
        assert!(v.busy_until().is_none());
    }

    #[test]
    fn vehicle_completes_a_single_delivery() {
        let (engine, b) = setup();
        let t = TimePoint::from_hms(12, 0, 0);
        let mut v = VehicleState::new(VehicleId(0), b.node_at(0, 0));
        let o = order(1, b.node_at(0, 2), b.node_at(3, 2), t, 2.0);
        install_single(&mut v, o, t, &engine);
        assert!(!v.is_idle());
        assert!(v.heading().is_some());

        // Advance far enough for the whole plan to finish.
        let events = v.advance(TimePoint::from_hms(13, 0, 0));
        assert!(v.is_idle());
        let picked = events
            .iter()
            .any(|e| matches!(e, FleetEvent::PickedUp { order, .. } if *order == o.id));
        let delivered = events
            .iter()
            .any(|e| matches!(e, FleetEvent::Delivered { order, .. } if *order == o.id));
        assert!(picked && delivered);
        assert_eq!(v.location, o.customer);
        // Drove events cover first mile (2 edges) + last mile (3 edges).
        let edges = events.iter().filter(|e| matches!(e, FleetEvent::Drove { .. })).count();
        assert_eq!(edges, 5);
    }

    #[test]
    fn advancing_in_small_steps_matches_the_plan() {
        let (engine, b) = setup();
        let t = TimePoint::from_hms(12, 0, 0);
        let mut v = VehicleState::new(VehicleId(0), b.node_at(0, 0));
        let o = order(1, b.node_at(0, 3), b.node_at(5, 3), t, 1.0);
        install_single(&mut v, o, t, &engine);
        let deadline = v.busy_until().unwrap();

        let mut step_time = t;
        let mut delivered_at = None;
        while step_time < deadline {
            step_time += Duration::from_mins(1.0);
            for event in v.advance(step_time) {
                if let FleetEvent::Delivered { at, .. } = event {
                    delivered_at = Some(at);
                }
            }
        }
        assert!(delivered_at.is_some());
        assert!(v.is_idle());
        assert_eq!(v.location, o.customer);
    }

    #[test]
    fn waiting_is_attributed_to_the_pickup() {
        let (engine, b) = setup();
        let t = TimePoint::from_hms(12, 0, 0);
        let mut v = VehicleState::new(VehicleId(0), b.node_at(0, 1));
        // Restaurant one edge away but prep takes 10 minutes ⇒ a long wait.
        let o = order(1, b.node_at(0, 0), b.node_at(2, 0), t, 10.0);
        install_single(&mut v, o, t, &engine);
        let events = v.advance(TimePoint::from_hms(12, 30, 0));
        let waited = events
            .iter()
            .find_map(|e| match e {
                FleetEvent::PickedUp { waited, .. } => Some(*waited),
                _ => None,
            })
            .unwrap();
        let edge_secs = 250.0 / foodmatch_roadnet::RoadClass::Local.free_flow_speed_mps();
        assert!((waited.as_secs_f64() - (600.0 - edge_secs)).abs() < 1e-6);
    }

    #[test]
    fn snapshot_reflects_reshuffling_policy() {
        let (engine, b) = setup();
        let t = TimePoint::from_hms(12, 0, 0);
        let mut v = VehicleState::new(VehicleId(0), b.node_at(0, 0));
        let o = order(1, b.node_at(0, 3), b.node_at(4, 3), t, 5.0);
        install_single(&mut v, o, t, &engine);

        // Before pickup: reshuffle ⇒ order is not committed; no reshuffle ⇒ it is.
        assert_eq!(v.snapshot(true).committed.len(), 0);
        assert_eq!(v.snapshot(false).committed.len(), 1);
        assert_eq!(v.unpicked_orders().len(), 1);

        // After the pickup the order is committed either way.
        v.advance(TimePoint::from_hms(12, 20, 0));
        if v.carried.iter().any(|c| c.picked_up) {
            assert_eq!(v.snapshot(true).committed.len(), 1);
            assert!(v.unpicked_orders().is_empty());
        }
    }

    #[test]
    fn remove_unpicked_only_touches_unpicked_orders() {
        let (engine, b) = setup();
        let t = TimePoint::from_hms(12, 0, 0);
        let mut v = VehicleState::new(VehicleId(0), b.node_at(0, 0));
        let o = order(1, b.node_at(0, 2), b.node_at(3, 2), t, 1.0);
        install_single(&mut v, o, t, &engine);
        assert!(v.remove_unpicked(o.id));
        assert!(v.carried.is_empty());
        assert!(!v.remove_unpicked(o.id));
    }

    #[test]
    fn mid_edge_positions_snap_to_the_previous_node() {
        let (engine, b) = setup();
        let t = TimePoint::from_hms(12, 0, 0);
        let mut v = VehicleState::new(VehicleId(0), b.node_at(0, 0));
        let o = order(1, b.node_at(0, 5), b.node_at(5, 5), t, 0.5);
        install_single(&mut v, o, t, &engine);
        // Half an edge's travel time: the vehicle must still report node (0,0)
        // and head towards (0,1).
        let half_edge = Duration::from_secs_f64(250.0 / 6.9 / 2.0);
        v.advance(t + half_edge);
        assert_eq!(v.location, b.node_at(0, 0));
        assert_eq!(v.heading(), Some(b.node_at(0, 1)));
    }
}
