//! Crash-safe dispatch: the durable wrapper tying a dispatcher to its
//! write-ahead log, plus the fault-injection hook and recovery replay.
//!
//! [`DurableDispatch`] wraps a [`DispatchService`](crate::DispatchService)
//! or [`DispatchRouter`](crate::DispatchRouter) (anything implementing
//! [`WalTarget`]) and enforces the write-ahead contract on every mutating
//! call: the input is framed and checksummed into the [`WriteAheadLog`]
//! *first*, and only then applied. Under a group-commit
//! [`FlushPolicy`](crate::wal::FlushPolicy) the record may sit in the
//! log's in-memory group until the next flush — the wrapper therefore
//! exposes both ends of the durability ledger:
//! [`acked_seq`](DurableDispatch::acked_seq) (records fsynced to disk,
//! guaranteed to survive a crash) and
//! [`appended_seq`](DurableDispatch::appended_seq) (records accepted,
//! durable *or* buffered). A crash loses at most the unacked suffix, and
//! recovery is a pure function of (latest checkpoint, log):
//!
//! 1. [`WriteAheadLog::open`] the log — torn tails from a crash mid-flush
//!    are truncated, corruption is a typed error;
//! 2. [restore](crate::DispatchService::restore) the latest checkpoint;
//! 3. [`replay_wal`] the records past the checkpoint's
//!    [`wal_seq`](crate::checkpoint::ServiceCheckpoint::wal_seq) — on a
//!    compacted log, [`suffix_from`](crate::wal::WalReadOutcome::suffix_from)
//!    guards against a missing prefix with a typed error.
//!
//! [`checkpoint`](DurableDispatch::checkpoint) is a *flush barrier*: the
//! buffered group is made durable before the state is captured, so a
//! checkpoint's `wal_seq` never exceeds the acked log — restoring it can
//! always find (on disk) every record at or below its stamp.
//!
//! Because dispatch is deterministic, the recovered run continues with the
//! same windows, the same assignments, the same outputs and the same final
//! report as the run that never crashed — the property
//! `tests/recovery_equivalence.rs` pins across policies, crash points and
//! both dispatcher shapes.
//!
//! Crashes are simulated, not real: a [`FailPoint`] names a sequence
//! number and a [`FailMode`] (die before the append, after it, or midway
//! through the frame bytes), and the wrapper returns
//! [`WalError::CrashInjected`] at that exact boundary, refusing all further
//! input. Production code simply never installs a fail point.

use crate::checkpoint::{RouterCheckpoint, ServiceCheckpoint};
use crate::router::{DispatchRouter, RoutedOutput};
use crate::service::{
    AdvanceOutcome, DispatchOutput, DispatchService, IngestOutcome, SubmitOutcome,
};
use crate::wal::{WalError, WalRecord, WriteAheadLog};
use foodmatch_core::{DispatchPolicy, Order};
use foodmatch_events::DisruptionEvent;
use foodmatch_roadnet::TimePoint;
use std::fmt;

/// A dispatcher the durable wrapper can drive: the three mutating calls of
/// the online API plus checkpointing. Implemented by
/// [`DispatchService`] and [`DispatchRouter`].
pub trait WalTarget {
    /// The per-window output type ([`DispatchOutput`], or zone-tagged
    /// [`RoutedOutput`] for the router).
    type Output;
    /// The checkpoint type capturing this dispatcher's full state.
    type Checkpoint;

    /// Applies one submitted order.
    fn apply_submit(&mut self, order: Order) -> SubmitOutcome;
    /// Applies one ingested disruption event.
    fn apply_ingest(&mut self, event: DisruptionEvent) -> IngestOutcome;
    /// Advances the clock.
    fn apply_advance(&mut self, until: TimePoint) -> AdvanceOutcome<Self::Output>;
    /// Captures the full dispatcher state (with `wal_seq` zero; the
    /// wrapper stamps the log position).
    fn take_checkpoint(&self) -> Self::Checkpoint;
    /// Stamps the write-ahead-log position onto a checkpoint.
    fn stamp_wal_seq(checkpoint: &mut Self::Checkpoint, seq: u64);
    /// True once the dispatcher has finished.
    fn finished(&self) -> bool;
}

impl<P: DispatchPolicy> WalTarget for DispatchService<P> {
    type Output = DispatchOutput;
    type Checkpoint = ServiceCheckpoint;

    fn apply_submit(&mut self, order: Order) -> SubmitOutcome {
        self.submit_order(order)
    }
    fn apply_ingest(&mut self, event: DisruptionEvent) -> IngestOutcome {
        self.ingest_event(event)
    }
    fn apply_advance(&mut self, until: TimePoint) -> AdvanceOutcome<DispatchOutput> {
        self.advance_to(until)
    }
    fn take_checkpoint(&self) -> ServiceCheckpoint {
        self.checkpoint()
    }
    fn stamp_wal_seq(checkpoint: &mut ServiceCheckpoint, seq: u64) {
        checkpoint.wal_seq = seq;
    }
    fn finished(&self) -> bool {
        self.is_finished()
    }
}

impl<P: DispatchPolicy> WalTarget for DispatchRouter<P> {
    type Output = RoutedOutput;
    type Checkpoint = RouterCheckpoint;

    fn apply_submit(&mut self, order: Order) -> SubmitOutcome {
        self.submit_order(order)
    }
    fn apply_ingest(&mut self, event: DisruptionEvent) -> IngestOutcome {
        self.ingest_event(event)
    }
    fn apply_advance(&mut self, until: TimePoint) -> AdvanceOutcome<RoutedOutput> {
        self.advance_to(until)
    }
    fn take_checkpoint(&self) -> RouterCheckpoint {
        self.checkpoint()
    }
    fn stamp_wal_seq(checkpoint: &mut RouterCheckpoint, seq: u64) {
        checkpoint.wal_seq = seq;
    }
    fn finished(&self) -> bool {
        self.is_finished()
    }
}

/// Where, relative to the WAL append, a [`FailPoint`] kills the process.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailMode {
    /// Die before the record reaches the log: the input is neither durable
    /// nor applied — recovery never sees it (the caller would retry in a
    /// real deployment). Any unflushed group-commit buffer dies with the
    /// process.
    BeforeAppend,
    /// Die after the record is durable but before it is applied: the
    /// classic write-ahead gap. Recovery replays the record, so the input
    /// is *not* lost.
    AfterAppend,
    /// Die midway through writing the frame bytes: leaves a torn tail for
    /// [`WriteAheadLog::open`] to truncate. Like [`FailMode::BeforeAppend`],
    /// the input is not durable.
    TornAppend,
}

/// A fault-injection point: simulate a crash at WAL sequence `at_seq`, in
/// the phase named by `mode`. Install with
/// [`DurableDispatch::set_fail_point`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FailPoint {
    /// The sequence number (zero-based append index) at which to die.
    pub at_seq: u64,
    /// Where relative to the append to die.
    pub mode: FailMode,
}

/// A dispatcher bound to its write-ahead log. See the [module docs](self).
#[derive(Debug)]
pub struct DurableDispatch<T: WalTarget> {
    target: T,
    log: WriteAheadLog,
    fail_point: Option<FailPoint>,
    crashed: bool,
}

impl<T: WalTarget> DurableDispatch<T> {
    /// Binds `target` to `log`. The log's existing position becomes the
    /// next sequence number — pass a fresh log for a fresh run, or a log
    /// reopened with [`WriteAheadLog::open`] after recovery replay.
    pub fn new(target: T, log: WriteAheadLog) -> Self {
        DurableDispatch { target, log, fail_point: None, crashed: false }
    }

    /// Installs (or clears) a fault-injection point. Testing hook; never
    /// used in production paths.
    pub fn set_fail_point(&mut self, fail_point: Option<FailPoint>) {
        self.fail_point = fail_point;
    }

    /// True once a fail point has fired; all further input is refused with
    /// [`WalError::Crashed`].
    pub fn is_crashed(&self) -> bool {
        self.crashed
    }

    /// The next record's sequence number (= records accepted into the log,
    /// durable or buffered; alias of [`appended_seq`](Self::appended_seq)).
    pub fn wal_seq(&self) -> u64 {
        self.log.seq()
    }

    /// Records known durable on disk — the crash-survival guarantee.
    pub fn acked_seq(&self) -> u64 {
        self.log.acked_seq()
    }

    /// Records accepted into the log, durable or buffered.
    pub fn appended_seq(&self) -> u64 {
        self.log.appended_seq()
    }

    /// Records buffered but not yet durable (the acked lag).
    pub fn unflushed(&self) -> u64 {
        self.log.unflushed()
    }

    /// Forces the buffered group durable now, regardless of policy.
    /// Returns the new acked sequence.
    pub fn flush(&mut self) -> Result<u64, WalError> {
        self.log.flush()
    }

    /// Drops every WAL record below `below` — call with a *sealed*
    /// checkpoint's `wal_seq` once its file is safely on disk. See
    /// [`WriteAheadLog::compact_below`].
    pub fn compact_log(&mut self, below: u64) -> Result<(), WalError> {
        self.log.compact_below(below)
    }

    /// The wrapped dispatcher, read-only.
    pub fn target(&self) -> &T {
        &self.target
    }

    /// Consumes the wrapper, returning the dispatcher and its log.
    pub fn into_parts(self) -> (T, WriteAheadLog) {
        (self.target, self.log)
    }

    /// Captures a checkpoint of the dispatcher with the current log
    /// position stamped on: restoring it and replaying the log suffix past
    /// [`wal_seq`](Self::wal_seq) reproduces the run exactly.
    ///
    /// Checkpoints are **flush barriers**: the buffered group is flushed
    /// first, so the stamp never exceeds [`acked_seq`](Self::acked_seq) —
    /// otherwise a crash right after the checkpoint sealed could leave a
    /// state *ahead* of the durable log, and the lost records would be
    /// re-driven on top of state that already contains them.
    pub fn checkpoint(&mut self) -> Result<T::Checkpoint, WalError> {
        // `checkpoint.capture_ns` is the only stall the dispatch thread
        // pays under background checkpointing — the persist phase
        // (serialise + fsync + rename) runs on the worker.
        // lint: allow(telemetry-handle-discipline) — once per checkpoint
        // capture, not per window; `DurableDispatch` holds no metrics
        // struct and the handle must bind the recorder live at call time.
        let _capture = foodmatch_telemetry::histogram("checkpoint.capture_ns").timer();
        self.log.flush()?;
        let mut checkpoint = self.target.take_checkpoint();
        T::stamp_wal_seq(&mut checkpoint, self.log.acked_seq());
        Ok(checkpoint)
    }

    /// Logs, then applies, one submitted order.
    pub fn submit_order(&mut self, order: Order) -> Result<SubmitOutcome, WalError> {
        self.log_record(&WalRecord::SubmitOrder(order))?;
        Ok(self.target.apply_submit(order))
    }

    /// Logs, then applies, one disruption event.
    pub fn ingest_event(&mut self, event: DisruptionEvent) -> Result<IngestOutcome, WalError> {
        self.log_record(&WalRecord::IngestEvent(event))?;
        Ok(self.target.apply_ingest(event))
    }

    /// Logs, then applies, one clock advance.
    pub fn advance_to(&mut self, until: TimePoint) -> Result<AdvanceOutcome<T::Output>, WalError> {
        self.log_record(&WalRecord::AdvanceTo(until))?;
        Ok(self.target.apply_advance(until))
    }

    /// The write-ahead contract, shared by all three calls: refuse input
    /// after a crash, honour the fail point at its exact boundary, and
    /// append the record (the flush policy decides when it hits disk). On
    /// `Ok(())` the caller applies the payload it logged — the record types
    /// are `Copy`, so each entry point logs and applies the same value
    /// without a dispatch-by-variant round trip.
    fn log_record(&mut self, record: &WalRecord) -> Result<(), WalError> {
        if self.crashed {
            return Err(WalError::Crashed);
        }
        let seq = self.log.seq();
        if let Some(fp) = self.fail_point.filter(|fp| fp.at_seq == seq) {
            self.crashed = true;
            // A simulated power cut also loses whatever the group-commit
            // buffer held: only the acked prefix survives on disk.
            match fp.mode {
                FailMode::BeforeAppend => {
                    self.log.discard_unflushed();
                }
                FailMode::AfterAppend => {
                    // "Durable but not applied" means the group holding the
                    // record flushed before the process died.
                    self.log.append(record)?;
                    self.log.flush()?;
                }
                FailMode::TornAppend => {
                    // `append_torn` flushes the pending group, then dies
                    // midway through this record's frame bytes.
                    self.log.append_torn(record)?;
                }
            }
            return Err(WalError::CrashInjected { seq });
        }
        self.log.append(record)?;
        Ok(())
    }
}

/// A typed replay failure: the log and the dispatcher disagree in a way
/// deterministic replay cannot paper over.
#[derive(Clone, Debug, PartialEq)]
pub enum ReplayError {
    /// An `AdvanceTo` record targets a time before the dispatcher's clock
    /// — the log is misordered (or replayed against the wrong checkpoint).
    /// Detectable only because
    /// [`advance_to`](crate::DispatchService::advance_to) reports
    /// [`AdvanceStatus::OutOfOrder`](crate::service::AdvanceStatus) instead
    /// of silently no-opping.
    OutOfOrderAdvance {
        /// Index of the offending record within the replayed slice.
        index: usize,
        /// The stale target it requested.
        requested: TimePoint,
        /// The dispatcher clock it fell behind.
        clock: TimePoint,
    },
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplayError::OutOfOrderAdvance { index, requested, clock } => write!(
                f,
                "replay record {index} advances to {requested:?}, behind the dispatcher clock {clock:?} — \
                 the log is misordered or paired with the wrong checkpoint"
            ),
        }
    }
}

impl std::error::Error for ReplayError {}

/// Replays a slice of WAL records against a restored dispatcher, returning
/// the outputs the advances produce (identical to what the original run
/// emitted over the same span, determinism guaranteed). Submit/ingest
/// outcomes are discarded — their effects are in the state — but a
/// misordered `AdvanceTo` is a typed [`ReplayError`].
pub fn replay_wal<T: WalTarget>(
    target: &mut T,
    records: &[WalRecord],
) -> Result<Vec<T::Output>, ReplayError> {
    let mut outputs = Vec::new();
    for (index, record) in records.iter().enumerate() {
        match record {
            WalRecord::SubmitOrder(order) => {
                let _ = target.apply_submit(*order);
            }
            WalRecord::IngestEvent(event) => {
                let _ = target.apply_ingest(*event);
            }
            WalRecord::AdvanceTo(until) => {
                let outcome = target.apply_advance(*until);
                if let crate::service::AdvanceStatus::OutOfOrder { requested, clock } =
                    outcome.status
                {
                    return Err(ReplayError::OutOfOrderAdvance { index, requested, clock });
                }
                outputs.extend(outcome.into_outputs());
            }
        }
    }
    Ok(outputs)
}
