//! Metric collection and the simulation report.
//!
//! The report exposes exactly the quantities §V of the paper evaluates:
//!
//! * **XDT** — extra delivery time (the objective of Problem 1), reported in
//!   hours per simulated day and per hourly timeslot.
//! * **O/Km** — orders carried per kilometre driven, the operational
//!   efficiency metric of §V-B (`Σ k·D_k / Σ D_k` over distances `D_k`
//!   driven while carrying `k` picked-up orders).
//! * **WT** — vehicle waiting time at restaurants.
//! * **Rejections** — orders that stayed unassigned beyond the deadline.
//! * **Overflown windows** — accumulation windows whose assignment
//!   computation took longer than Δ (the scalability metric of Fig. 6(f–h)).
//!
//! On top of the paper's metrics, the report attributes outcomes to
//! *disruption windows* (periods with an active traffic perturbation from
//! the dynamic-events subsystem): deliveries and rejections carry a
//! during-disruption flag, windows record whether traffic was perturbed, and
//! customer **cancellations** are accounted separately from rejections.

use foodmatch_core::codec::{ByteReader, Codec, DecodeError};
use foodmatch_core::OrderId;
use foodmatch_roadnet::{Duration, HourSlot, TimePoint};

/// Maximum on-board load tracked separately by the O/Km histogram.
pub const MAX_TRACKED_LOAD: usize = 8;

/// One delivered order and its timing.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DeliveredOrder {
    /// The order.
    pub id: OrderId,
    /// When the customer placed it.
    pub placed_at: TimePoint,
    /// When it reached the customer.
    pub delivered_at: TimePoint,
    /// Its extra delivery time (Definition 7), clamped at zero.
    pub xdt: Duration,
    /// The hour slot in which the order was placed (used for per-slot plots).
    pub slot: HourSlot,
    /// True when the delivery completed while a traffic disruption was
    /// active, so XDT can be attributed to disruption windows.
    pub during_disruption: bool,
}

/// Statistics of one accumulation window.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WindowStats {
    /// When the window closed (assignment time).
    pub closed_at: TimePoint,
    /// The hour slot of the window.
    pub slot: HourSlot,
    /// Orders presented to the policy.
    pub orders: usize,
    /// Vehicles presented to the policy.
    pub vehicles: usize,
    /// Orders the policy assigned.
    pub assigned: usize,
    /// Wall-clock time the policy needed, in seconds.
    pub compute_secs: f64,
    /// Whether the computation exceeded the window length Δ.
    pub overflown: bool,
    /// Whether a traffic disruption was active when the window closed.
    pub disrupted: bool,
}

/// The complete outcome of one simulation run.
///
/// `PartialEq` compares every recorded quantity bit for bit; the golden
/// batch-vs-incremental equivalence test relies on it (wall-clock fields
/// inside [`WindowStats`] are normalised there before comparing).
#[derive(Clone, Debug, PartialEq)]
pub struct SimulationReport {
    /// Name of the policy that produced this run.
    pub policy: String,
    /// Total number of orders offered by the workload.
    pub total_orders: usize,
    /// Every delivered order with its timing.
    pub delivered: Vec<DeliveredOrder>,
    /// Orders rejected because they stayed unassigned past the deadline.
    pub rejected: Vec<OrderId>,
    /// How many of the rejections happened while a traffic disruption was
    /// active.
    pub rejected_during_disruption: usize,
    /// Orders cancelled by the customer before pickup (dynamic-events
    /// subsystem). Cancelled orders are neither delivered nor rejected.
    pub cancelled: Vec<OrderId>,
    /// Orders assigned but still undelivered when the simulation was cut off
    /// (normally empty; non-empty indicates the drain horizon was too short).
    pub undelivered: Vec<OrderId>,
    /// Per-window statistics, in chronological order.
    pub windows: Vec<WindowStats>,
    /// `distance_by_load_m[slot][k]`: meters driven during `slot` while
    /// carrying `k` picked-up orders.
    pub distance_by_load_m: Vec<[f64; MAX_TRACKED_LOAD + 1]>,
    /// `waiting_by_slot[slot]`: restaurant waiting time accumulated in the slot.
    pub waiting_by_slot: Vec<Duration>,
    /// The simulated horizon length (used to normalise to per-day figures).
    pub horizon: Duration,
}

impl SimulationReport {
    /// Total extra delivery time, in hours.
    pub fn total_xdt_hours(&self) -> f64 {
        self.delivered.iter().map(|d| d.xdt.as_hours_f64()).sum()
    }

    /// Total extra delivery time scaled to a 24-hour day, in hours/day.
    pub fn xdt_hours_per_day(&self) -> f64 {
        self.total_xdt_hours() / self.horizon_days()
    }

    /// The objective of Problem 1: total XDT plus Ω per rejection, in seconds.
    pub fn objective_secs(&self, omega_secs: f64) -> f64 {
        self.delivered.iter().map(|d| d.xdt.as_secs_f64()).sum::<f64>()
            + omega_secs * self.rejected.len() as f64
    }

    /// Mean XDT per delivered order, in minutes.
    pub fn mean_xdt_mins(&self) -> f64 {
        if self.delivered.is_empty() {
            0.0
        } else {
            self.total_xdt_hours() * 60.0 / self.delivered.len() as f64
        }
    }

    /// Average number of orders per kilometre driven.
    pub fn orders_per_km(&self) -> f64 {
        let mut weighted = 0.0;
        let mut total = 0.0;
        for per_slot in &self.distance_by_load_m {
            for (load, meters) in per_slot.iter().enumerate() {
                weighted += load as f64 * meters;
                total += meters;
            }
        }
        if total == 0.0 {
            0.0
        } else {
            weighted / total
        }
    }

    /// Total kilometres driven by the fleet.
    pub fn total_km(&self) -> f64 {
        self.distance_by_load_m.iter().flatten().sum::<f64>() / 1000.0
    }

    /// Total waiting time at restaurants, in hours.
    pub fn waiting_hours(&self) -> f64 {
        self.waiting_by_slot.iter().map(|d| d.as_hours_f64()).sum()
    }

    /// Waiting time scaled to a 24-hour day, in hours/day.
    pub fn waiting_hours_per_day(&self) -> f64 {
        self.waiting_hours() / self.horizon_days()
    }

    /// Fraction of offered orders that were rejected, in percent.
    pub fn rejection_rate_pct(&self) -> f64 {
        if self.total_orders == 0 {
            0.0
        } else {
            100.0 * self.rejected.len() as f64 / self.total_orders as f64
        }
    }

    /// Fraction of delivered orders among offered orders, in percent.
    pub fn delivery_rate_pct(&self) -> f64 {
        if self.total_orders == 0 {
            0.0
        } else {
            100.0 * self.delivered.len() as f64 / self.total_orders as f64
        }
    }

    /// Fraction of offered orders cancelled by the customer, in percent.
    pub fn cancellation_rate_pct(&self) -> f64 {
        if self.total_orders == 0 {
            0.0
        } else {
            100.0 * self.cancelled.len() as f64 / self.total_orders as f64
        }
    }

    /// XDT accumulated by deliveries that completed during disruption
    /// windows, in hours (the rest is [`Self::total_xdt_hours`] minus this).
    pub fn xdt_hours_disrupted(&self) -> f64 {
        self.delivered.iter().filter(|d| d.during_disruption).map(|d| d.xdt.as_hours_f64()).sum()
    }

    /// Number of deliveries completed during disruption windows.
    pub fn delivered_during_disruption(&self) -> usize {
        self.delivered.iter().filter(|d| d.during_disruption).count()
    }

    /// Percentage of accumulation windows closed while a traffic disruption
    /// was active.
    pub fn disrupted_window_pct(&self) -> f64 {
        if self.windows.is_empty() {
            0.0
        } else {
            100.0 * self.windows.iter().filter(|w| w.disrupted).count() as f64
                / self.windows.len() as f64
        }
    }

    /// Percentage of windows whose assignment took longer than Δ.
    ///
    /// With `peak_only` set, only windows in the lunch/dinner peak slots are
    /// considered (Fig. 6(g)).
    pub fn overflow_pct(&self, peak_only: bool) -> f64 {
        let relevant: Vec<&WindowStats> =
            self.windows.iter().filter(|w| !peak_only || w.slot.is_peak()).collect();
        if relevant.is_empty() {
            0.0
        } else {
            100.0 * relevant.iter().filter(|w| w.overflown).count() as f64 / relevant.len() as f64
        }
    }

    /// Mean wall-clock time per window spent inside the policy, in seconds.
    pub fn mean_window_compute_secs(&self) -> f64 {
        if self.windows.is_empty() {
            0.0
        } else {
            self.windows.iter().map(|w| w.compute_secs).sum::<f64>() / self.windows.len() as f64
        }
    }

    /// Total wall-clock time spent inside the policy, in seconds.
    pub fn total_compute_secs(&self) -> f64 {
        self.windows.iter().map(|w| w.compute_secs).sum()
    }

    /// XDT accumulated per hour slot, in hours.
    pub fn xdt_hours_by_slot(&self) -> [f64; HourSlot::COUNT] {
        let mut out = [0.0; HourSlot::COUNT];
        for d in &self.delivered {
            out[d.slot.index()] += d.xdt.as_hours_f64();
        }
        out
    }

    /// Orders per km, split by the hour slot in which the driving happened.
    pub fn orders_per_km_by_slot(&self) -> [f64; HourSlot::COUNT] {
        let mut out = [0.0; HourSlot::COUNT];
        for (slot, per_slot) in self.distance_by_load_m.iter().enumerate() {
            let mut weighted = 0.0;
            let mut total = 0.0;
            for (load, meters) in per_slot.iter().enumerate() {
                weighted += load as f64 * meters;
                total += meters;
            }
            out[slot] = if total == 0.0 { 0.0 } else { weighted / total };
        }
        out
    }

    /// Waiting time per hour slot, in hours.
    pub fn waiting_hours_by_slot(&self) -> [f64; HourSlot::COUNT] {
        let mut out = [0.0; HourSlot::COUNT];
        for (slot, d) in self.waiting_by_slot.iter().enumerate() {
            out[slot] = d.as_hours_f64();
        }
        out
    }

    fn horizon_days(&self) -> f64 {
        (self.horizon.as_hours_f64() / 24.0).max(1e-9)
    }
}

/// Incrementally accumulates metrics while a simulation runs.
///
/// The collector is `Clone` so a live [`DispatchService`](crate::service)
/// can hand out a point-in-time [`SimulationReport`] mid-run without
/// disturbing the accumulation.
#[derive(Clone, Debug)]
pub struct MetricsCollector {
    policy: String,
    total_orders: usize,
    horizon: Duration,
    delivered: Vec<DeliveredOrder>,
    rejected: Vec<OrderId>,
    rejected_during_disruption: usize,
    cancelled: Vec<OrderId>,
    undelivered: Vec<OrderId>,
    windows: Vec<WindowStats>,
    distance_by_load_m: Vec<[f64; MAX_TRACKED_LOAD + 1]>,
    waiting_by_slot: Vec<Duration>,
    /// Whether a traffic disruption is currently active; stamps deliveries
    /// and rejections recorded while set.
    disruption_active: bool,
}

impl MetricsCollector {
    /// Creates a collector for a run of the given policy and workload size.
    pub fn new(policy: impl Into<String>, total_orders: usize, horizon: Duration) -> Self {
        MetricsCollector {
            policy: policy.into(),
            total_orders,
            horizon,
            delivered: Vec::new(),
            rejected: Vec::new(),
            rejected_during_disruption: 0,
            cancelled: Vec::new(),
            undelivered: Vec::new(),
            windows: Vec::new(),
            distance_by_load_m: vec![[0.0; MAX_TRACKED_LOAD + 1]; HourSlot::COUNT],
            waiting_by_slot: vec![Duration::ZERO; HourSlot::COUNT],
            disruption_active: false,
        }
    }

    /// Counts one more offered order. Batch runs pass the workload size to
    /// [`MetricsCollector::new`] up front; the streaming service starts at
    /// zero and counts orders as they are submitted.
    pub fn record_offered(&mut self) {
        self.total_orders += 1;
    }

    /// Number of rejections recorded so far (cheap mid-run probe).
    pub fn rejected_count(&self) -> usize {
        self.rejected.len()
    }

    /// Updates the disruption flag stamped onto subsequent deliveries and
    /// rejections. The simulation toggles this at window boundaries as
    /// traffic perturbations start and clear.
    pub fn set_disruption_active(&mut self, active: bool) {
        self.disruption_active = active;
    }

    /// Records a delivered order and returns the record (so callers can
    /// surface the computed XDT, e.g. as a typed output event). `sdt` is the
    /// order's shortest delivery time (Definition 6); the XDT is clamped at
    /// zero to absorb the tiny negative values that time-varying edge
    /// weights can produce.
    pub fn record_delivery(
        &mut self,
        id: OrderId,
        placed_at: TimePoint,
        delivered_at: TimePoint,
        sdt: Duration,
    ) -> DeliveredOrder {
        let edt = delivered_at.saturating_since(placed_at);
        let xdt = edt.saturating_sub(sdt);
        let record = DeliveredOrder {
            id,
            placed_at,
            delivered_at,
            xdt,
            slot: placed_at.hour_slot(),
            during_disruption: self.disruption_active,
        };
        self.delivered.push(record);
        record
    }

    /// Records a rejected order.
    pub fn record_rejection(&mut self, id: OrderId) {
        self.rejected.push(id);
        if self.disruption_active {
            self.rejected_during_disruption += 1;
        }
    }

    /// Records a customer cancellation (before pickup).
    pub fn record_cancellation(&mut self, id: OrderId) {
        self.cancelled.push(id);
    }

    /// Records an order left undelivered at the end of the run.
    pub fn record_undelivered(&mut self, id: OrderId) {
        self.undelivered.push(id);
    }

    /// Records one driven edge.
    pub fn record_drive(&mut self, at: TimePoint, load: usize, length_m: f64) {
        let slot = at.hour_slot().index();
        let bucket = load.min(MAX_TRACKED_LOAD);
        self.distance_by_load_m[slot][bucket] += length_m;
    }

    /// Records restaurant waiting time.
    pub fn record_wait(&mut self, at: TimePoint, waited: Duration) {
        self.waiting_by_slot[at.hour_slot().index()] += waited;
    }

    /// Records a completed accumulation window.
    pub fn record_window(&mut self, stats: WindowStats) {
        self.windows.push(stats);
    }

    /// Finalises the report.
    pub fn finish(self) -> SimulationReport {
        SimulationReport {
            policy: self.policy,
            total_orders: self.total_orders,
            delivered: self.delivered,
            rejected: self.rejected,
            rejected_during_disruption: self.rejected_during_disruption,
            cancelled: self.cancelled,
            undelivered: self.undelivered,
            windows: self.windows,
            distance_by_load_m: self.distance_by_load_m,
            waiting_by_slot: self.waiting_by_slot,
            horizon: self.horizon,
        }
    }
}

impl Codec for DeliveredOrder {
    fn encode(&self, out: &mut Vec<u8>) {
        self.id.encode(out);
        self.placed_at.encode(out);
        self.delivered_at.encode(out);
        self.xdt.encode(out);
        self.slot.encode(out);
        self.during_disruption.encode(out);
    }
    fn decode(reader: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        Ok(DeliveredOrder {
            id: OrderId::decode(reader)?,
            placed_at: TimePoint::decode(reader)?,
            delivered_at: TimePoint::decode(reader)?,
            xdt: Duration::decode(reader)?,
            slot: HourSlot::decode(reader)?,
            during_disruption: bool::decode(reader)?,
        })
    }
}

impl Codec for WindowStats {
    fn encode(&self, out: &mut Vec<u8>) {
        self.closed_at.encode(out);
        self.slot.encode(out);
        self.orders.encode(out);
        self.vehicles.encode(out);
        self.assigned.encode(out);
        self.compute_secs.encode(out);
        self.overflown.encode(out);
        self.disrupted.encode(out);
    }
    fn decode(reader: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        let closed_at = TimePoint::decode(reader)?;
        let slot = HourSlot::decode(reader)?;
        let orders = usize::decode(reader)?;
        let vehicles = usize::decode(reader)?;
        let assigned = usize::decode(reader)?;
        let compute_secs = f64::decode(reader)?;
        if !(compute_secs.is_finite() && compute_secs >= 0.0) {
            return Err(DecodeError::Invalid(format!(
                "window compute time must be finite and non-negative, got {compute_secs}"
            )));
        }
        let overflown = bool::decode(reader)?;
        let disrupted = bool::decode(reader)?;
        Ok(WindowStats {
            closed_at,
            slot,
            orders,
            vehicles,
            assigned,
            compute_secs,
            overflown,
            disrupted,
        })
    }
}

/// Every private accumulator round-trips, so a restored collector finishes
/// into the same [`SimulationReport`] the uninterrupted run would produce.
impl Codec for MetricsCollector {
    fn encode(&self, out: &mut Vec<u8>) {
        self.policy.encode(out);
        self.total_orders.encode(out);
        self.horizon.encode(out);
        self.delivered.encode(out);
        self.rejected.encode(out);
        self.rejected_during_disruption.encode(out);
        self.cancelled.encode(out);
        self.undelivered.encode(out);
        self.windows.encode(out);
        self.distance_by_load_m.encode(out);
        self.waiting_by_slot.encode(out);
        self.disruption_active.encode(out);
    }
    fn decode(reader: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        let policy = String::decode(reader)?;
        let total_orders = usize::decode(reader)?;
        let horizon = Duration::decode(reader)?;
        let delivered = Vec::<DeliveredOrder>::decode(reader)?;
        let rejected = Vec::<OrderId>::decode(reader)?;
        let rejected_during_disruption = usize::decode(reader)?;
        let cancelled = Vec::<OrderId>::decode(reader)?;
        let undelivered = Vec::<OrderId>::decode(reader)?;
        let windows = Vec::<WindowStats>::decode(reader)?;
        let distance_by_load_m = Vec::<[f64; MAX_TRACKED_LOAD + 1]>::decode(reader)?;
        for per_slot in &distance_by_load_m {
            for &metres in per_slot {
                if !(metres.is_finite() && metres >= 0.0) {
                    return Err(DecodeError::Invalid(format!(
                        "distance histogram entries must be finite and non-negative, got {metres}"
                    )));
                }
            }
        }
        let waiting_by_slot = Vec::<Duration>::decode(reader)?;
        if distance_by_load_m.len() != HourSlot::COUNT || waiting_by_slot.len() != HourSlot::COUNT {
            return Err(DecodeError::Invalid(format!(
                "per-slot histograms must have {} rows, got {} and {}",
                HourSlot::COUNT,
                distance_by_load_m.len(),
                waiting_by_slot.len()
            )));
        }
        let disruption_active = bool::decode(reader)?;
        Ok(MetricsCollector {
            policy,
            total_orders,
            horizon,
            delivered,
            rejected,
            rejected_during_disruption,
            cancelled,
            undelivered,
            windows,
            distance_by_load_m,
            waiting_by_slot,
            disruption_active,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collector() -> MetricsCollector {
        MetricsCollector::new("Test", 10, Duration::from_hours(24.0))
    }

    #[test]
    fn delivery_xdt_is_clamped_and_sloted() {
        let mut c = collector();
        let placed = TimePoint::from_hms(13, 0, 0);
        c.record_delivery(
            OrderId(1),
            placed,
            TimePoint::from_hms(13, 40, 0),
            Duration::from_mins(25.0),
        );
        // Delivered "faster than physically possible" (bad SDT estimate):
        c.record_delivery(
            OrderId(2),
            placed,
            TimePoint::from_hms(13, 10, 0),
            Duration::from_mins(20.0),
        );
        let report = c.finish();
        assert_eq!(report.delivered.len(), 2);
        assert!((report.delivered[0].xdt.as_mins_f64() - 15.0).abs() < 1e-9);
        assert_eq!(report.delivered[1].xdt, Duration::ZERO);
        assert_eq!(report.delivered[0].slot, HourSlot::new(13));
        assert!((report.total_xdt_hours() - 0.25).abs() < 1e-9);
        assert!((report.mean_xdt_mins() - 7.5).abs() < 1e-9);
    }

    #[test]
    fn orders_per_km_weights_by_load() {
        let mut c = collector();
        let noon = TimePoint::from_hms(12, 0, 0);
        // 2 km empty, 4 km with one order, 4 km with two orders.
        c.record_drive(noon, 0, 2_000.0);
        c.record_drive(noon, 1, 4_000.0);
        c.record_drive(noon, 2, 4_000.0);
        let report = c.finish();
        // (0*2 + 1*4 + 2*4) / 10 km = 1.2 orders per km.
        assert!((report.orders_per_km() - 1.2).abs() < 1e-9);
        assert!((report.total_km() - 10.0).abs() < 1e-9);
        let by_slot = report.orders_per_km_by_slot();
        assert!((by_slot[12] - 1.2).abs() < 1e-9);
        assert_eq!(by_slot[3], 0.0);
    }

    #[test]
    fn objective_adds_rejection_penalty() {
        let mut c = collector();
        c.record_delivery(
            OrderId(1),
            TimePoint::from_hms(12, 0, 0),
            TimePoint::from_hms(12, 30, 0),
            Duration::from_mins(20.0),
        );
        c.record_rejection(OrderId(2));
        let report = c.finish();
        assert!((report.objective_secs(7200.0) - (600.0 + 7200.0)).abs() < 1e-9);
        assert!((report.rejection_rate_pct() - 10.0).abs() < 1e-9);
        assert!((report.delivery_rate_pct() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn overflow_statistics_split_peak_and_offpeak() {
        let mut c = collector();
        let mk = |hour: u32, overflown: bool| WindowStats {
            closed_at: TimePoint::from_hms(hour, 0, 0),
            slot: HourSlot::new(hour as u8),
            orders: 5,
            vehicles: 3,
            assigned: 3,
            compute_secs: if overflown { 200.0 } else { 0.5 },
            overflown,
            disrupted: false,
        };
        c.record_window(mk(3, false));
        c.record_window(mk(13, true));
        c.record_window(mk(20, false));
        c.record_window(mk(21, true));
        let report = c.finish();
        assert!((report.overflow_pct(false) - 50.0).abs() < 1e-9);
        // Peak windows: 13, 20, 21 → 2 of 3 overflown.
        assert!((report.overflow_pct(true) - 66.666_666).abs() < 1e-3);
        assert!(report.mean_window_compute_secs() > 0.0);
    }

    #[test]
    fn waiting_time_accumulates_per_slot() {
        let mut c = collector();
        c.record_wait(TimePoint::from_hms(19, 10, 0), Duration::from_mins(6.0));
        c.record_wait(TimePoint::from_hms(19, 50, 0), Duration::from_mins(12.0));
        c.record_wait(TimePoint::from_hms(9, 0, 0), Duration::from_mins(30.0));
        let report = c.finish();
        assert!((report.waiting_hours() - 0.8).abs() < 1e-9);
        let by_slot = report.waiting_hours_by_slot();
        assert!((by_slot[19] - 0.3).abs() < 1e-9);
        assert!((by_slot[9] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn per_day_scaling_uses_the_horizon() {
        let mut c = MetricsCollector::new("Test", 4, Duration::from_hours(6.0));
        c.record_delivery(
            OrderId(1),
            TimePoint::from_hms(12, 0, 0),
            TimePoint::from_hms(13, 0, 0),
            Duration::from_mins(30.0),
        );
        let report = c.finish();
        // 0.5 h of XDT over a 6 h horizon scales to 2 h/day.
        assert!((report.xdt_hours_per_day() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn empty_report_is_well_defined() {
        let report = collector().finish();
        assert_eq!(report.total_xdt_hours(), 0.0);
        assert_eq!(report.orders_per_km(), 0.0);
        assert_eq!(report.overflow_pct(false), 0.0);
        assert_eq!(report.mean_window_compute_secs(), 0.0);
        assert_eq!(report.mean_xdt_mins(), 0.0);
        assert_eq!(report.cancellation_rate_pct(), 0.0);
        assert_eq!(report.disrupted_window_pct(), 0.0);
        assert_eq!(report.xdt_hours_disrupted(), 0.0);
    }

    #[test]
    fn cancellations_are_accounted_separately_from_rejections() {
        let mut c = collector();
        c.record_cancellation(OrderId(4));
        c.record_rejection(OrderId(5));
        let report = c.finish();
        assert_eq!(report.cancelled, vec![OrderId(4)]);
        assert_eq!(report.rejected, vec![OrderId(5)]);
        assert!((report.cancellation_rate_pct() - 10.0).abs() < 1e-9);
        assert!((report.rejection_rate_pct() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn disruption_flag_stamps_deliveries_and_rejections() {
        let mut c = collector();
        let placed = TimePoint::from_hms(12, 0, 0);
        c.record_delivery(OrderId(1), placed, TimePoint::from_hms(12, 40, 0), Duration::ZERO);
        c.set_disruption_active(true);
        c.record_delivery(OrderId(2), placed, TimePoint::from_hms(12, 50, 0), Duration::ZERO);
        c.record_rejection(OrderId(3));
        c.set_disruption_active(false);
        c.record_rejection(OrderId(4));
        let report = c.finish();
        assert!(!report.delivered[0].during_disruption);
        assert!(report.delivered[1].during_disruption);
        assert_eq!(report.delivered_during_disruption(), 1);
        assert_eq!(report.rejected_during_disruption, 1);
        // XDT attribution: order 2 carries all the disrupted XDT.
        assert!((report.xdt_hours_disrupted() - 50.0 / 60.0).abs() < 1e-9);
        assert!((report.total_xdt_hours() - (40.0 + 50.0) / 60.0).abs() < 1e-9);
    }
}
