//! The sharded dispatch router: one metro, N per-zone [`DispatchService`]
//! shards behind the façade of a single service.
//!
//! The paper evaluates one dispatcher loop per city day; a metro deployment
//! is many City-B-sized shards fanned out behind one API. PR 5's
//! [`DispatchService`] owns all of its mutable state per instance, which
//! makes sharding a pure composition problem: [`DispatchRouter`] holds a
//! [`ZoneMap`] (a partition of the road network's nodes into dispatch
//! zones) plus one independent service per zone — each shard gets its *own*
//! [`ShortestPathEngine`] over the shared network, because engine clones
//! share the traffic overlay and zone-local incidents must not leak across
//! shards.
//!
//! The router exposes the same surface as a single service, so callers swap
//! one for the other without restructuring:
//!
//! * [`submit_order`](DispatchRouter::submit_order) — routed to the zone
//!   that owns the order's **restaurant** node (first-mile locality); the
//!   router keeps a global duplicate guard and an order→zone map so later
//!   order-targeted events find their shard.
//! * [`ingest_event`](DispatchRouter::ingest_event) — routed by
//!   [`EventScope`]: city-wide events broadcast to every shard; localized
//!   incidents go to the zones whose bounding region the incident circle
//!   touches; order/vehicle events go to the owning shard.
//! * [`advance_to`](DispatchRouter::advance_to) — all shards advance in
//!   lockstep, one accumulation window at a time, concurrently via
//!   [`parallel_map`]; per-shard outputs come back merged into one
//!   deterministic stream of [`RoutedOutput`]s tagged with their [`ZoneId`]
//!   (window by window, zones in index order — bit-identical for every
//!   thread count).
//! * [`snapshot`](DispatchRouter::snapshot) /
//!   [`report`](DispatchRouter::report) — aggregated across shards, with
//!   the per-zone breakdown retained.
//!
//! With a single zone covering the whole network the router *is* the bare
//! service: `tests/router_equivalence.rs` pins a 1-zone router bit-identical
//! to a [`DispatchService`] on a disruption-heavy day.

use crate::checkpoint::{RestoreError, RouterCheckpoint};
use crate::metrics::{SimulationReport, WindowStats, MAX_TRACKED_LOAD};
use crate::service::{
    AdvanceOutcome, AdvanceStatus, DispatchOutput, DispatchService, IngestOutcome, ServiceSnapshot,
    SubmitOutcome,
};
use foodmatch_core::{parallel_map, DispatchConfig, DispatchPolicy, Order, OrderId, VehicleId};
use foodmatch_events::{DisruptionEvent, EventScope};
use foodmatch_roadnet::{
    haversine_meters, Duration, GeoPoint, NodeId, RoadNetwork, ShortestPathEngine, TimePoint,
};
use std::collections::HashMap;
use std::sync::Mutex;
use std::time::Instant;

/// Identifier of a dispatch zone — the index of the zone in its
/// [`ZoneMap`], stable for the lifetime of the map.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ZoneId(pub u32);

impl ZoneId {
    /// The zone's position in its map's `zones()` slice.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for ZoneId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "zone-{}", self.0)
    }
}

/// One dispatch zone: its id, seed center, and the geographic bounding box
/// of the nodes assigned to it (used to decide which localized incidents
/// touch the zone).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Zone {
    /// The zone's identifier.
    pub id: ZoneId,
    /// The center the zone was seeded from (for Voronoi maps) or the
    /// centroid of its nodes (for the single-zone map).
    pub center: GeoPoint,
    /// Number of network nodes assigned to the zone.
    pub node_count: usize,
    min_lat: f64,
    max_lat: f64,
    min_lon: f64,
    max_lon: f64,
}

impl Zone {
    fn seeded(id: ZoneId, center: GeoPoint) -> Self {
        Zone {
            id,
            center,
            node_count: 0,
            min_lat: center.lat,
            max_lat: center.lat,
            min_lon: center.lon,
            max_lon: center.lon,
        }
    }

    fn absorb(&mut self, point: GeoPoint) {
        self.node_count += 1;
        self.min_lat = self.min_lat.min(point.lat);
        self.max_lat = self.max_lat.max(point.lat);
        self.min_lon = self.min_lon.min(point.lon);
        self.max_lon = self.max_lon.max(point.lon);
    }

    /// True when a circle of `radius_m` meters around `center` touches the
    /// zone's bounding box (conservative: the box over-approximates the
    /// zone's true footprint, so incidents are never missed, at worst
    /// delivered to one shard too many).
    pub fn touches_circle(&self, center: GeoPoint, radius_m: f64) -> bool {
        let nearest = GeoPoint::new(
            center.lat.clamp(self.min_lat, self.max_lat),
            center.lon.clamp(self.min_lon, self.max_lon),
        );
        haversine_meters(center, nearest) <= radius_m
    }
}

/// A partition of a road network's nodes into dispatch zones.
///
/// Built once per deployment and shared read-only by the router: every node
/// maps to at most one zone ([`ZoneMap::voronoi_within`] leaves far-flung
/// nodes unassigned, which the router surfaces as
/// [`SubmitOutcome::NoZoneForLocation`]).
#[derive(Clone, Debug)]
pub struct ZoneMap {
    /// Per node index: the owning zone, if any.
    assignment: Vec<Option<u32>>,
    zones: Vec<Zone>,
}

impl ZoneMap {
    /// The trivial map: one zone covering every node, centered on the
    /// network's centroid. A router over this map is an (exactly
    /// bit-identical) [`DispatchService`].
    pub fn single(network: &RoadNetwork) -> Self {
        let nodes = network.node_count().max(1) as f64;
        let (mut lat, mut lon) = (0.0, 0.0);
        for node in network.node_ids() {
            let p = network.position(node);
            lat += p.lat;
            lon += p.lon;
        }
        ZoneMap::voronoi(network, &[GeoPoint::new(lat / nodes, lon / nodes)])
    }

    /// Assigns every node to its nearest center (straight-line; ties go to
    /// the lowest center index). Every node gets a zone.
    ///
    /// # Panics
    /// Panics when `centers` is empty.
    pub fn voronoi(network: &RoadNetwork, centers: &[GeoPoint]) -> Self {
        ZoneMap::voronoi_within(network, centers, f64::INFINITY)
    }

    /// [`ZoneMap::voronoi`], but nodes further than `max_radius_m` meters
    /// from every center stay unassigned — orders and vehicles there are
    /// outside the deployment's service area.
    ///
    /// # Panics
    /// Panics when `centers` is empty.
    pub fn voronoi_within(network: &RoadNetwork, centers: &[GeoPoint], max_radius_m: f64) -> Self {
        assert!(!centers.is_empty(), "a zone map needs at least one center");
        let mut zones: Vec<Zone> = centers
            .iter()
            .enumerate()
            .map(|(i, &center)| Zone::seeded(ZoneId(i as u32), center))
            .collect();
        let mut assignment = vec![None; network.node_count()];
        for node in network.node_ids() {
            let position = network.position(node);
            let mut best: Option<(usize, f64)> = None;
            for (zi, &center) in centers.iter().enumerate() {
                let d = haversine_meters(position, center);
                if best.is_none_or(|(_, bd)| d < bd) {
                    best = Some((zi, d));
                }
            }
            let (zi, d) = best.expect("at least one center");
            if d <= max_radius_m {
                assignment[node.index()] = Some(zi as u32);
                zones[zi].absorb(position);
            }
        }
        ZoneMap { assignment, zones }
    }

    /// Number of zones in the map.
    pub fn zone_count(&self) -> usize {
        self.zones.len()
    }

    /// The zones, indexed by [`ZoneId::index`].
    pub fn zones(&self) -> &[Zone] {
        &self.zones
    }

    /// The zone owning `node`, if any.
    pub fn zone_of(&self, node: NodeId) -> Option<ZoneId> {
        self.assignment.get(node.index()).copied().flatten().map(ZoneId)
    }

    /// Every zone whose bounding region a circle of `radius_m` meters around
    /// `center` touches, in zone order.
    pub fn zones_touching(&self, center: GeoPoint, radius_m: f64) -> Vec<ZoneId> {
        self.zones
            .iter()
            .filter(|z| z.node_count > 0 && z.touches_circle(center, radius_m))
            .map(|z| z.id)
            .collect()
    }

    /// The non-empty zone whose center is closest to `point` (fallback
    /// placement for vehicles starting on unassigned nodes).
    pub fn nearest_zone(&self, point: GeoPoint) -> Option<ZoneId> {
        self.zones
            .iter()
            .filter(|z| z.node_count > 0)
            .min_by(|a, b| {
                haversine_meters(point, a.center)
                    .partial_cmp(&haversine_meters(point, b.center))
                    .expect("distances are never NaN")
            })
            .map(|z| z.id)
    }
}

/// One output event of a [`DispatchRouter`]: a [`DispatchOutput`] tagged
/// with the zone whose shard produced it.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RoutedOutput {
    /// The zone the event happened in.
    pub zone: ZoneId,
    /// What happened.
    pub output: DispatchOutput,
}

/// A point-in-time view of the whole router: the aggregate of every shard's
/// [`ServiceSnapshot`] plus the per-zone breakdown.
#[derive(Clone, Debug, PartialEq)]
pub struct RouterSnapshot {
    /// The router clock (close time of the last lockstep window).
    pub now: TimePoint,
    /// Whether every shard has terminated.
    pub finished: bool,
    /// Orders submitted across all shards.
    pub submitted: usize,
    /// Orders not yet arrived, summed over shards.
    pub queued: usize,
    /// Orders waiting in the unassigned pools, summed over shards.
    pub pending: usize,
    /// Orders riding on vehicles, summed over shards.
    pub in_flight: usize,
    /// Orders delivered so far, summed over shards.
    pub delivered: usize,
    /// Orders rejected so far, summed over shards.
    pub rejected: usize,
    /// Orders cancelled so far, summed over shards.
    pub cancelled: usize,
    /// Vehicles on shift, summed over shards.
    pub vehicles_on_shift: usize,
    /// True when any shard has an active traffic disruption.
    pub traffic_active: bool,
    /// Every shard's own snapshot, in zone order.
    pub zones: Vec<(ZoneId, ServiceSnapshot)>,
}

/// The final (or mid-run) metrics of a [`DispatchRouter`] run: one
/// aggregated [`SimulationReport`] plus the per-zone reports it was merged
/// from.
///
/// The aggregate sums every additive quantity (distance and waiting
/// histograms, counts) and merges the window statistics chronologically
/// (ties in zone order). Per-order lists (`delivered`, `rejected`, …)
/// concatenate in zone order, each zone's chronological order preserved —
/// with a single zone the aggregate is the shard's report verbatim.
#[derive(Clone, Debug, PartialEq)]
pub struct RouterReport {
    /// The metro-wide merged report.
    pub aggregate: SimulationReport,
    /// Each zone's own report, in zone order.
    pub zones: Vec<(ZoneId, SimulationReport)>,
}

/// The sharded dispatch router — see the [module docs](self).
#[derive(Debug)]
pub struct DispatchRouter<P: DispatchPolicy> {
    zones: ZoneMap,
    /// The network the zone map was built over (kept for event targeting:
    /// localized incidents are positioned by node).
    network: RoadNetwork,
    /// One independent service per zone. `Mutex` only so the lockstep
    /// fan-out can hand `&self.shards` to [`parallel_map`] (which takes the
    /// items immutably); there is no lock contention — each shard is locked
    /// by exactly one worker at a time.
    shards: Vec<Mutex<DispatchService<P>>>,
    order_zone: HashMap<OrderId, u32>,
    vehicle_zone: HashMap<VehicleId, u32>,
    config: DispatchConfig,
    threads: usize,
    delta: Duration,
    window_close: TimePoint,
    drain_end: TimePoint,
    finished: bool,
    metrics: RouterMetrics,
}

/// Telemetry handles for the lockstep fan-out. Acquired at construction
/// and at restore (run state, not checkpoint state); inert when no
/// recorder is installed, and strictly observational either way.
#[derive(Debug)]
struct RouterMetrics {
    /// `router.advance_ns` — one whole lockstep step across every shard.
    advance_ns: foodmatch_telemetry::Histogram,
    /// `router.shard_advance_ns` — each shard's own advance within a step.
    shard_advance_ns: foodmatch_telemetry::Histogram,
    /// `router.shard_imbalance_ns` — slowest minus fastest shard per step:
    /// the straggler gap the lockstep barrier waits out.
    imbalance_ns: foodmatch_telemetry::Histogram,
}

impl RouterMetrics {
    fn acquire() -> Self {
        RouterMetrics {
            advance_ns: foodmatch_telemetry::histogram("router.advance_ns"),
            shard_advance_ns: foodmatch_telemetry::histogram("router.shard_advance_ns"),
            imbalance_ns: foodmatch_telemetry::histogram("router.shard_imbalance_ns"),
        }
    }
}

impl<P: DispatchPolicy> DispatchRouter<P> {
    /// Creates an idle router at `start`.
    ///
    /// Each zone gets its own caching [`ShortestPathEngine`] over (a clone
    /// of) `network` — engines must not be shared across shards because
    /// clones share the traffic overlay, and zone-local incidents are the
    /// point of sharding. The fleet is partitioned by each vehicle's start
    /// node; vehicles starting on unassigned nodes join the zone with the
    /// nearest center. `make_policy` is called once per zone, in zone
    /// order, so every shard gets its own policy instance.
    ///
    /// # Panics
    /// Panics when the zone map is empty, no zone has any node, the
    /// configuration is invalid, or `end` precedes `start`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        network: &RoadNetwork,
        zones: ZoneMap,
        vehicle_starts: Vec<(VehicleId, NodeId)>,
        mut make_policy: impl FnMut(ZoneId) -> P,
        config: DispatchConfig,
        start: TimePoint,
        end: TimePoint,
        drain_limit: Duration,
    ) -> Self {
        assert!(zones.zone_count() > 0, "a router needs at least one zone");
        assert!(
            zones.zones().iter().any(|z| z.node_count > 0),
            "a router needs at least one non-empty zone"
        );
        let mut vehicle_zone = HashMap::new();
        let mut fleets: Vec<Vec<(VehicleId, NodeId)>> = vec![Vec::new(); zones.zone_count()];
        for (vehicle, node) in vehicle_starts {
            let zone = zones
                .zone_of(node)
                .or_else(|| zones.nearest_zone(network.position(node)))
                .expect("some zone is non-empty");
            vehicle_zone.insert(vehicle, zone.0);
            fleets[zone.index()].push((vehicle, node));
        }
        let shards: Vec<Mutex<DispatchService<P>>> = zones
            .zones()
            .iter()
            .zip(fleets)
            .map(|(zone, fleet)| {
                let engine = ShortestPathEngine::cached(network.clone());
                Mutex::new(DispatchService::new(
                    engine,
                    fleet,
                    make_policy(zone.id),
                    config.clone(),
                    start,
                    end,
                    drain_limit,
                ))
            })
            .collect();
        let threads = config.effective_threads();
        let delta = config.accumulation_window;
        DispatchRouter {
            zones,
            network: network.clone(),
            shards,
            order_zone: HashMap::new(),
            vehicle_zone: HashMap::new(),
            config,
            threads,
            delta,
            window_close: start,
            drain_end: end + drain_limit,
            finished: false,
            metrics: RouterMetrics::acquire(),
        }
        .with_vehicle_zone(vehicle_zone)
    }

    fn with_vehicle_zone(mut self, vehicle_zone: HashMap<VehicleId, u32>) -> Self {
        self.vehicle_zone = vehicle_zone;
        self
    }

    /// Submits one order, routed to the zone owning its restaurant node.
    /// Same contract as [`DispatchService::submit_order`], plus
    /// [`SubmitOutcome::NoZoneForLocation`] when the restaurant lies outside
    /// every zone. Duplicate detection is router-global: an id submitted to
    /// one zone is a duplicate in every other zone too.
    pub fn submit_order(&mut self, order: Order) -> SubmitOutcome {
        if self.finished {
            return SubmitOutcome::ServiceFinished;
        }
        let Some(zone) = self.zones.zone_of(order.restaurant) else {
            return SubmitOutcome::NoZoneForLocation;
        };
        if self.order_zone.contains_key(&order.id) {
            return SubmitOutcome::Duplicate;
        }
        let outcome = self.shard_mut(zone.index()).submit_order(order);
        if outcome.is_accepted() {
            self.order_zone.insert(order.id, zone.0);
        }
        outcome
    }

    /// Streams one disruption event into the router, delivered by its
    /// [`EventScope`]:
    ///
    /// * city-wide events broadcast to every shard;
    /// * localized incidents go to the zones whose bounding region the
    ///   incident circle touches ([`IngestOutcome::NoZoneForLocation`] when
    ///   it touches none);
    /// * order events go to the owning zone; events for orders the router
    ///   has never seen broadcast (every shard ignores unknown ids, exactly
    ///   like the bare service);
    /// * vehicle events go to the owning zone; an on-shift event for a
    ///   brand-new vehicle joins the zone of its start location.
    pub fn ingest_event(&mut self, event: DisruptionEvent) -> IngestOutcome {
        if self.finished {
            return IngestOutcome::ServiceFinished;
        }
        match event.scope() {
            EventScope::CityWide => self.ingest_into_all(event),
            EventScope::Localized { center, radius_m } => {
                let position = self.network.position(center);
                let touched = self.zones.zones_touching(position, radius_m);
                if touched.is_empty() {
                    return IngestOutcome::NoZoneForLocation;
                }
                let mut outcome = IngestOutcome::ServiceFinished;
                for zone in touched {
                    if self.shard_mut(zone.index()).ingest_event(event).is_accepted() {
                        outcome = IngestOutcome::Accepted;
                    }
                }
                outcome
            }
            EventScope::Order(order) => match self.order_zone.get(&order).copied() {
                Some(zone) => self.shard_mut(zone as usize).ingest_event(event),
                // Never submitted here: broadcast — every shard ignores
                // cancellations/delays for ids it does not know, preserving
                // the single-service semantics for out-of-order streams.
                None => self.ingest_into_all(event),
            },
            EventScope::Vehicle { vehicle, location } => {
                if let Some(zone) = self.vehicle_zone.get(&vehicle).copied() {
                    return self.shard_mut(zone as usize).ingest_event(event);
                }
                match location {
                    Some(node) => match self.zones.zone_of(node) {
                        Some(zone) => {
                            let outcome = self.shard_mut(zone.index()).ingest_event(event);
                            if outcome.is_accepted() {
                                self.vehicle_zone.insert(vehicle, zone.0);
                            }
                            outcome
                        }
                        None => IngestOutcome::NoZoneForLocation,
                    },
                    // Off-shift for a vehicle no shard knows: accepted and
                    // inert, as in the bare service.
                    None => self.ingest_into_all(event),
                }
            }
        }
    }

    fn ingest_into_all(&mut self, event: DisruptionEvent) -> IngestOutcome {
        let mut outcome = IngestOutcome::ServiceFinished;
        for shard in &mut self.shards {
            if shard.get_mut().expect("shard lock").ingest_event(event).is_accepted() {
                outcome = IngestOutcome::Accepted;
            }
        }
        outcome
    }

    /// Advances every shard in lockstep to `until`, one accumulation window
    /// at a time, and returns the merged output stream. Windows are
    /// processed whole, exactly as in [`DispatchService::advance_to`]; the
    /// shards of each window run concurrently (`config.num_threads` wide)
    /// and their outputs are appended in zone order, so the stream is
    /// bit-identical for every thread count.
    ///
    /// Returns the same typed [`AdvanceOutcome`] as the bare service (with
    /// zone-tagged outputs): a target behind the router clock reports
    /// [`AdvanceStatus::OutOfOrder`] instead of silently doing nothing.
    pub fn advance_to(&mut self, until: TimePoint) -> AdvanceOutcome<RoutedOutput> {
        if self.finished {
            return AdvanceOutcome::finished();
        }
        if until < self.window_close {
            return AdvanceOutcome::out_of_order(until, self.window_close);
        }
        let mut out = Vec::new();
        let mut advanced = false;
        while !self.finished {
            let next_close = self.window_close + self.delta;
            if next_close > self.drain_end {
                // Crossing the drain boundary finalizes every shard (the
                // same advance a bare service performs internally).
                self.fan_out(self.drain_end, &mut out);
                self.finished = true;
                advanced = true;
                break;
            }
            if next_close > until {
                break;
            }
            self.fan_out(next_close, &mut out);
            self.window_close = next_close;
            advanced = true;
            if self.shards.iter_mut().all(|s| s.get_mut().expect("shard lock").is_finished()) {
                self.finished = true;
            }
        }
        let status = if advanced { AdvanceStatus::Advanced } else { AdvanceStatus::Pending };
        AdvanceOutcome::new(out, status)
    }

    /// Advances one lockstep step: every shard to `until`, concurrently when
    /// the configuration allows, outputs tagged and appended in zone order.
    fn fan_out(&mut self, until: TimePoint, out: &mut Vec<RoutedOutput>) {
        let _step = self.metrics.advance_ns.timer();
        // Per-shard wall time is only read when a recorder is live; the
        // measurement is observational — outputs are identical either way.
        let timed = self.metrics.shard_advance_ns.is_live();
        let per_shard: Vec<(Vec<DispatchOutput>, u64)> = if self.threads > 1
            && self.shards.len() > 1
        {
            parallel_map(&self.shards, self.threads, |zi, shard| {
                let _span = foodmatch_telemetry::span_dyn("shard", || format!("zone{zi}"));
                let started = timed.then(Instant::now);
                let outputs = shard.lock().expect("shard lock").advance_to(until).into_outputs();
                let nanos = started.map_or(0, |s| s.elapsed().as_nanos() as u64);
                (outputs, nanos)
            })
        } else {
            self.shards
                .iter_mut()
                .enumerate()
                .map(|(zi, shard)| {
                    let _span = foodmatch_telemetry::span_dyn("shard", || format!("zone{zi}"));
                    let started = timed.then(Instant::now);
                    let outputs =
                        shard.get_mut().expect("shard lock").advance_to(until).into_outputs();
                    let nanos = started.map_or(0, |s| s.elapsed().as_nanos() as u64);
                    (outputs, nanos)
                })
                .collect()
        };
        if timed {
            let (mut fastest, mut slowest) = (u64::MAX, 0u64);
            for &(_, nanos) in &per_shard {
                self.metrics.shard_advance_ns.record(nanos);
                fastest = fastest.min(nanos);
                slowest = slowest.max(nanos);
            }
            if per_shard.len() > 1 {
                self.metrics.imbalance_ns.record(slowest - fastest);
            }
        }
        for (zi, (outputs, _)) in per_shard.into_iter().enumerate() {
            let zone = ZoneId(zi as u32);
            out.extend(outputs.into_iter().map(|output| RoutedOutput { zone, output }));
        }
    }

    /// Drives the router to completion (through the drain phase) and
    /// returns the final report.
    pub fn run_to_completion(&mut self) -> RouterReport {
        let _ = self.advance_to(self.drain_end);
        self.report()
    }

    /// The instant past which [`Self::advance_to`] finalizes every shard.
    pub fn drain_deadline(&self) -> TimePoint {
        self.drain_end
    }

    /// True once every shard has terminated and the report is final.
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// The router clock (close time of the last lockstep window).
    pub fn now(&self) -> TimePoint {
        self.window_close
    }

    /// The dispatcher configuration every shard runs under.
    pub fn config(&self) -> &DispatchConfig {
        &self.config
    }

    /// The zone partition the router routes by.
    pub fn zone_map(&self) -> &ZoneMap {
        &self.zones
    }

    /// A point-in-time view of the whole deployment: per-shard snapshots
    /// plus their aggregate.
    pub fn snapshot(&self) -> RouterSnapshot {
        let zones: Vec<(ZoneId, ServiceSnapshot)> = self
            .shards
            .iter()
            .enumerate()
            .map(|(zi, shard)| (ZoneId(zi as u32), shard.lock().expect("shard lock").snapshot()))
            .collect();
        let sum = |f: fn(&ServiceSnapshot) -> usize| zones.iter().map(|(_, s)| f(s)).sum();
        RouterSnapshot {
            now: self.window_close,
            finished: self.finished,
            submitted: sum(|s| s.submitted),
            queued: sum(|s| s.queued),
            pending: sum(|s| s.pending),
            in_flight: sum(|s| s.in_flight),
            delivered: sum(|s| s.delivered),
            rejected: sum(|s| s.rejected),
            cancelled: sum(|s| s.cancelled),
            vehicles_on_shift: sum(|s| s.vehicles_on_shift),
            traffic_active: zones.iter().any(|(_, s)| s.traffic_active),
            zones,
        }
    }

    /// The metrics accumulated so far: every shard's [`SimulationReport`]
    /// and their merge (see [`RouterReport`] for the merge semantics).
    /// Mid-run the reports are partial views, exactly as for the service.
    pub fn report(&self) -> RouterReport {
        let zones: Vec<(ZoneId, SimulationReport)> = self
            .shards
            .iter()
            .enumerate()
            .map(|(zi, shard)| (ZoneId(zi as u32), shard.lock().expect("shard lock").report()))
            .collect();
        let aggregate = merge_reports(&zones);
        RouterReport { aggregate, zones }
    }

    /// Captures the complete deployment state as a [`RouterCheckpoint`]:
    /// one [`ServiceCheckpoint`](crate::checkpoint::ServiceCheckpoint) per
    /// zone shard plus the router's own manifest (zone-membership maps,
    /// lockstep clock, termination state). Restore with
    /// [`DispatchRouter::restore`] — same network, same zone map, same
    /// policy factory — to resume the run bit-identically.
    ///
    /// As on the service, `wal_seq` is zero; a
    /// [`DurableDispatch`](crate::durable::DurableDispatch) stamps the log
    /// position on top.
    pub fn checkpoint(&self) -> RouterCheckpoint {
        let shards =
            self.shards.iter().map(|s| s.lock().expect("shard lock").checkpoint()).collect();
        let mut order_zone: Vec<(OrderId, u32)> =
            self.order_zone.iter().map(|(&k, &v)| (k, v)).collect();
        order_zone.sort_unstable_by_key(|&(k, _)| k);
        let mut vehicle_zone: Vec<(VehicleId, u32)> =
            self.vehicle_zone.iter().map(|(&k, &v)| (k, v)).collect();
        vehicle_zone.sort_unstable_by_key(|&(k, _)| k);
        RouterCheckpoint {
            wal_seq: 0,
            config: self.config.clone(),
            window_close: self.window_close,
            drain_end: self.drain_end,
            finished: self.finished,
            order_zone,
            vehicle_zone,
            shards,
        }
    }

    /// Rebuilds a router from a [`RouterCheckpoint`], resuming the
    /// deployment exactly where [`checkpoint`](Self::checkpoint) captured
    /// it. The caller supplies the deployment configuration the checkpoint
    /// deliberately omits: the road network, the zone map the run was
    /// created with (validated against the checkpoint's shard count), and
    /// the per-zone policy factory. Each shard gets a fresh caching engine,
    /// with its overlay re-installed when the shard was checkpointed under
    /// an active disruption.
    pub fn restore(
        network: &RoadNetwork,
        zones: ZoneMap,
        mut make_policy: impl FnMut(ZoneId) -> P,
        checkpoint: &RouterCheckpoint,
    ) -> Result<Self, RestoreError> {
        if zones.zone_count() != checkpoint.shards.len() {
            return Err(RestoreError::ZoneCountMismatch {
                checkpoint: checkpoint.shards.len(),
                zones: zones.zone_count(),
            });
        }
        let shards: Vec<Mutex<DispatchService<P>>> = zones
            .zones()
            .iter()
            .zip(&checkpoint.shards)
            .map(|(zone, shard)| {
                let engine = ShortestPathEngine::cached(network.clone());
                Mutex::new(DispatchService::restore(engine, make_policy(zone.id), shard))
            })
            .collect();
        let threads = checkpoint.config.effective_threads();
        let delta = checkpoint.config.accumulation_window;
        Ok(DispatchRouter {
            zones,
            network: network.clone(),
            shards,
            order_zone: checkpoint.order_zone.iter().copied().collect(),
            vehicle_zone: checkpoint.vehicle_zone.iter().copied().collect(),
            config: checkpoint.config.clone(),
            threads,
            delta,
            window_close: checkpoint.window_close,
            drain_end: checkpoint.drain_end,
            finished: checkpoint.finished,
            metrics: RouterMetrics::acquire(),
        })
    }

    fn shard_mut(&mut self, index: usize) -> &mut DispatchService<P> {
        self.shards[index].get_mut().expect("shard lock")
    }
}

/// Merges per-zone reports into one metro-wide report: additive quantities
/// sum, per-order lists concatenate in zone order, window statistics merge
/// chronologically (ties in zone order). With one zone this is the identity.
fn merge_reports(zones: &[(ZoneId, SimulationReport)]) -> SimulationReport {
    let first = &zones.first().expect("at least one zone").1;
    if zones.len() == 1 {
        return first.clone();
    }
    let mut distance_by_load_m =
        vec![[0.0f64; MAX_TRACKED_LOAD + 1]; first.distance_by_load_m.len()];
    let mut waiting_by_slot = vec![Duration::ZERO; first.waiting_by_slot.len()];
    let mut delivered = Vec::new();
    let mut rejected = Vec::new();
    let mut cancelled = Vec::new();
    let mut undelivered = Vec::new();
    let mut windows: Vec<(TimePoint, u32, WindowStats)> = Vec::new();
    let mut total_orders = 0;
    let mut rejected_during_disruption = 0;
    for (zone, report) in zones {
        total_orders += report.total_orders;
        rejected_during_disruption += report.rejected_during_disruption;
        delivered.extend(report.delivered.iter().copied());
        rejected.extend(report.rejected.iter().copied());
        cancelled.extend(report.cancelled.iter().copied());
        undelivered.extend(report.undelivered.iter().copied());
        windows.extend(report.windows.iter().map(|w| (w.closed_at, zone.0, *w)));
        for (slot, per_slot) in report.distance_by_load_m.iter().enumerate() {
            for (load, meters) in per_slot.iter().enumerate() {
                distance_by_load_m[slot][load] += meters;
            }
        }
        for (slot, waited) in report.waiting_by_slot.iter().enumerate() {
            waiting_by_slot[slot] += *waited;
        }
    }
    windows.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));
    SimulationReport {
        policy: first.policy.clone(),
        total_orders,
        delivered,
        rejected,
        rejected_during_disruption,
        cancelled,
        undelivered,
        windows: windows.into_iter().map(|(_, _, w)| w).collect(),
        distance_by_load_m,
        waiting_by_slot,
        horizon: first.horizon,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use foodmatch_core::policies::{FoodMatchPolicy, GreedyPolicy};
    use foodmatch_events::{DisruptionCause, EventKind, TrafficDisruption};
    use foodmatch_roadnet::generators::GridCityBuilder;
    use foodmatch_roadnet::CongestionProfile;

    /// A 12×12 free-flow grid with two well-separated corners to zone.
    fn grid() -> (RoadNetwork, GridCityBuilder) {
        let b =
            GridCityBuilder::new(12, 12).congestion(CongestionProfile::free_flow()).major_every(0);
        (b.build(), b)
    }

    /// Two centers on the same row → a vertical Voronoi split between
    /// columns 5 and 6, so the zones' bounding boxes are disjoint (a
    /// diagonal split would make the boxes overlap — still correct, but
    /// useless for asserting targeted delivery).
    fn two_centers(network: &RoadNetwork, b: &GridCityBuilder) -> Vec<GeoPoint> {
        vec![network.position(b.node_at(5, 2)), network.position(b.node_at(5, 9))]
    }

    fn order(id: u64, r: NodeId, c: NodeId, placed: TimePoint) -> Order {
        Order::new(OrderId(id), r, c, placed, 1, Duration::from_mins(6.0))
    }

    fn router(
        network: &RoadNetwork,
        zones: ZoneMap,
        fleet: Vec<(VehicleId, NodeId)>,
    ) -> DispatchRouter<GreedyPolicy> {
        let start = TimePoint::from_hms(12, 0, 0);
        DispatchRouter::new(
            network,
            zones,
            fleet,
            |_| GreedyPolicy::new(),
            DispatchConfig::default(),
            start,
            start + Duration::from_hours(1.0),
            Duration::from_hours(2.0),
        )
    }

    #[test]
    fn voronoi_assigns_every_node_to_the_nearest_center() {
        let (network, b) = grid();
        let centers = two_centers(&network, &b);
        let map = ZoneMap::voronoi(&network, &centers);
        assert_eq!(map.zone_count(), 2);
        assert_eq!(map.zone_of(b.node_at(0, 0)), Some(ZoneId(0)));
        assert_eq!(map.zone_of(b.node_at(11, 11)), Some(ZoneId(1)));
        let assigned: usize = map.zones().iter().map(|z| z.node_count).sum();
        assert_eq!(assigned, network.node_count(), "voronoi assigns every node");
    }

    #[test]
    fn voronoi_within_leaves_far_nodes_unassigned() {
        let (network, b) = grid();
        // Tight radius around one corner only.
        let center = network.position(b.node_at(1, 1));
        let map = ZoneMap::voronoi_within(&network, &[center], 900.0);
        assert!(map.zone_of(b.node_at(1, 1)).is_some());
        assert_eq!(map.zone_of(b.node_at(11, 11)), None, "the far corner is out of area");
        assert!(map.zones()[0].node_count < network.node_count());
    }

    #[test]
    fn single_zone_covers_the_network_and_touches_everything() {
        let (network, b) = grid();
        let map = ZoneMap::single(&network);
        assert_eq!(map.zone_count(), 1);
        for node in network.node_ids() {
            assert_eq!(map.zone_of(node), Some(ZoneId(0)));
        }
        // Any localized incident touches the only zone.
        let p = network.position(b.node_at(4, 7));
        assert_eq!(map.zones_touching(p, 10.0), vec![ZoneId(0)]);
    }

    #[test]
    fn zones_touching_respects_the_bounding_region() {
        let (network, b) = grid();
        let map = ZoneMap::voronoi(&network, &two_centers(&network, &b));
        // An incident in the heart of zone 0, small radius: zone 0 only.
        let p0 = network.position(b.node_at(1, 1));
        assert_eq!(map.zones_touching(p0, 100.0), vec![ZoneId(0)]);
        // A huge radius touches both zones.
        assert_eq!(map.zones_touching(p0, 1e9), vec![ZoneId(0), ZoneId(1)]);
    }

    #[test]
    fn orders_route_by_restaurant_and_duplicates_are_global() {
        let (network, b) = grid();
        let map = ZoneMap::voronoi(&network, &two_centers(&network, &b));
        let fleet = vec![(VehicleId(0), b.node_at(1, 1)), (VehicleId(1), b.node_at(10, 10))];
        let mut router = router(&network, map, fleet);
        let start = router.now();
        assert_eq!(
            router.submit_order(order(1, b.node_at(1, 1), b.node_at(3, 1), start)),
            SubmitOutcome::Accepted
        );
        // Same id, other zone's restaurant: still a duplicate.
        assert_eq!(
            router.submit_order(order(1, b.node_at(10, 10), b.node_at(8, 10), start)),
            SubmitOutcome::Duplicate
        );
        assert_eq!(
            router.submit_order(order(2, b.node_at(10, 10), b.node_at(8, 10), start)),
            SubmitOutcome::Accepted
        );
        let report = router.run_to_completion();
        assert_eq!(report.aggregate.total_orders, 2);
        assert_eq!(report.aggregate.delivered.len(), 2);
        // One delivery per zone.
        assert_eq!(report.zones[0].1.delivered.len(), 1);
        assert_eq!(report.zones[1].1.delivered.len(), 1);
        assert!(router.is_finished());
        assert_eq!(router.submit_order(order(3, b.node_at(1, 1), b.node_at(3, 1), start)), {
            SubmitOutcome::ServiceFinished
        });
    }

    #[test]
    fn out_of_area_orders_are_refused() {
        let (network, b) = grid();
        let center = network.position(b.node_at(1, 1));
        let map = ZoneMap::voronoi_within(&network, &[center], 900.0);
        let mut router = router(&network, map, vec![(VehicleId(0), b.node_at(1, 1))]);
        let start = router.now();
        assert_eq!(
            router.submit_order(order(1, b.node_at(11, 11), b.node_at(10, 11), start)),
            SubmitOutcome::NoZoneForLocation
        );
        assert_eq!(router.snapshot().submitted, 0);
    }

    #[test]
    fn localized_incidents_only_disrupt_touched_zones() {
        let (network, b) = grid();
        let map = ZoneMap::voronoi(&network, &two_centers(&network, &b));
        let fleet = vec![(VehicleId(0), b.node_at(0, 0)), (VehicleId(1), b.node_at(11, 11))];
        let mut router = router(&network, map, fleet);
        let start = router.now();
        let _ = router.submit_order(order(1, b.node_at(1, 1), b.node_at(4, 1), start));
        let _ = router.submit_order(order(2, b.node_at(10, 10), b.node_at(7, 10), start));
        // A tight incident around zone 0's heart.
        let outcome = router.ingest_event(DisruptionEvent::new(
            start,
            EventKind::Traffic(TrafficDisruption::localized(
                DisruptionCause::Incident,
                b.node_at(1, 1),
                300.0,
                4.0,
                start + Duration::from_hours(2.0),
            )),
        ));
        assert_eq!(outcome, IngestOutcome::Accepted);
        let report = router.run_to_completion();
        assert!(
            report.zones[0].1.windows.iter().any(|w| w.disrupted),
            "zone 0 must see its incident"
        );
        assert!(report.zones[1].1.windows.iter().all(|w| !w.disrupted), "zone 1 must stay calm");
    }

    #[test]
    fn city_wide_events_broadcast_to_every_zone() {
        let (network, b) = grid();
        let map = ZoneMap::voronoi(&network, &two_centers(&network, &b));
        let fleet = vec![(VehicleId(0), b.node_at(0, 0)), (VehicleId(1), b.node_at(11, 11))];
        let mut router = router(&network, map, fleet);
        let start = router.now();
        let _ = router.submit_order(order(1, b.node_at(1, 1), b.node_at(4, 1), start));
        let _ = router.submit_order(order(2, b.node_at(10, 10), b.node_at(7, 10), start));
        let outcome = router.ingest_event(DisruptionEvent::new(
            start,
            EventKind::Traffic(TrafficDisruption::city_wide(
                DisruptionCause::Rain,
                2.0,
                start + Duration::from_hours(2.0),
            )),
        ));
        assert_eq!(outcome, IngestOutcome::Accepted);
        let report = router.run_to_completion();
        for (zone, zone_report) in &report.zones {
            assert!(
                zone_report.windows.iter().any(|w| w.disrupted),
                "{zone} must see the rain surge"
            );
        }
    }

    #[test]
    fn order_and_vehicle_events_find_their_owning_zone() {
        let (network, b) = grid();
        let map = ZoneMap::voronoi(&network, &two_centers(&network, &b));
        let fleet = vec![(VehicleId(0), b.node_at(0, 0)), (VehicleId(1), b.node_at(11, 11))];
        let mut router = router(&network, map, fleet);
        let start = router.now();
        let _ = router.submit_order(order(1, b.node_at(1, 1), b.node_at(4, 1), start));
        // Cancel the zone-0 order; take zone 1's only vehicle off shift.
        let _ = router.ingest_event(DisruptionEvent::new(
            start + Duration::from_mins(1.0),
            EventKind::OrderCancelled { order: OrderId(1) },
        ));
        let _ = router.ingest_event(DisruptionEvent::new(
            start + Duration::from_mins(1.0),
            EventKind::VehicleOffShift { vehicle: VehicleId(1) },
        ));
        // A brand-new driver joins in zone 1 by location.
        let on = router.ingest_event(DisruptionEvent::new(
            start + Duration::from_mins(2.0),
            EventKind::VehicleOnShift { vehicle: VehicleId(7), location: b.node_at(9, 9) },
        ));
        assert_eq!(on, IngestOutcome::Accepted);
        let report = router.run_to_completion();
        assert_eq!(report.zones[0].1.cancelled, vec![OrderId(1)]);
        assert!(report.zones[1].1.cancelled.is_empty());
        let snapshot = router.snapshot();
        // Zone 1 lost vehicle 1 but gained vehicle 7; zone 0 kept vehicle 0.
        assert_eq!(snapshot.zones[1].1.vehicles_on_shift, 1);
        assert_eq!(snapshot.vehicles_on_shift, 2);
    }

    #[test]
    fn snapshot_and_report_aggregate_across_zones() {
        let (network, b) = grid();
        let map = ZoneMap::voronoi(&network, &two_centers(&network, &b));
        let fleet = vec![(VehicleId(0), b.node_at(0, 0)), (VehicleId(1), b.node_at(11, 11))];
        let mut router = router(&network, map, fleet);
        let start = router.now();
        let _ = router.submit_order(order(1, b.node_at(1, 1), b.node_at(4, 1), start));
        let _ = router.submit_order(order(2, b.node_at(10, 10), b.node_at(7, 10), start));
        let outputs = router.run_to_completion();
        let snapshot = router.snapshot();
        assert_eq!(snapshot.submitted, 2);
        assert_eq!(snapshot.delivered, 2);
        assert!(snapshot.finished);
        assert_eq!(outputs.aggregate.delivered.len(), 2);
        assert_eq!(
            outputs.aggregate.total_km(),
            outputs.zones.iter().map(|(_, r)| r.total_km()).sum::<f64>()
        );
        // The merged window stream is chronological.
        let closes: Vec<TimePoint> =
            outputs.aggregate.windows.iter().map(|w| w.closed_at).collect();
        let mut sorted = closes.clone();
        sorted.sort();
        assert_eq!(closes, sorted);
    }

    #[test]
    fn output_stream_is_tagged_and_matches_the_reports() {
        let (network, b) = grid();
        let map = ZoneMap::voronoi(&network, &two_centers(&network, &b));
        let fleet = vec![(VehicleId(0), b.node_at(0, 0)), (VehicleId(1), b.node_at(11, 11))];
        let mut router = DispatchRouter::new(
            &network,
            map,
            fleet,
            |_| FoodMatchPolicy::new(),
            DispatchConfig::default(),
            TimePoint::from_hms(12, 0, 0),
            TimePoint::from_hms(13, 0, 0),
            Duration::from_hours(2.0),
        );
        let start = router.now();
        let _ = router.submit_order(order(1, b.node_at(1, 1), b.node_at(4, 1), start));
        let _ = router.submit_order(order(2, b.node_at(10, 10), b.node_at(7, 10), start));
        let mut outputs = Vec::new();
        while !router.is_finished() {
            let tick = router.now() + router.config().accumulation_window;
            outputs.extend(router.advance_to(tick));
        }
        let report = router.report();
        for (zone, zone_report) in &report.zones {
            let delivered_out = outputs
                .iter()
                .filter(|o| o.zone == *zone && matches!(o.output, DispatchOutput::Delivered { .. }))
                .count();
            assert_eq!(delivered_out, zone_report.delivered.len());
        }
    }

    #[test]
    fn vehicles_on_unassigned_nodes_fall_back_to_the_nearest_zone() {
        let (network, b) = grid();
        let center = network.position(b.node_at(1, 1));
        let map = ZoneMap::voronoi_within(&network, &[center], 900.0);
        // The vehicle starts far outside the service area but still joins
        // the (only) zone.
        let mut router = router(&network, map, vec![(VehicleId(0), b.node_at(11, 11))]);
        assert_eq!(router.snapshot().vehicles_on_shift, 1);
        let start = router.now();
        let _ = router.submit_order(order(1, b.node_at(1, 1), b.node_at(2, 1), start));
        let report = router.run_to_completion();
        assert_eq!(report.aggregate.delivered.len(), 1);
    }
}
