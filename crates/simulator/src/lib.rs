//! # foodmatch-sim
//!
//! A window-stepped, discrete-event food-delivery simulator for the
//! FoodMatch reproduction.
//!
//! The simulator owns everything the dispatcher (in `foodmatch-core`) does
//! not: vehicles physically moving along road edges, waiting at restaurants
//! for food to be prepared, picking up and dropping off orders, the
//! accumulation-window loop that feeds [`foodmatch_core::WindowSnapshot`]s to
//! a [`foodmatch_core::DispatchPolicy`], rejection of orders that waited too
//! long, replay of [`foodmatch_events::DisruptionEvent`] streams (traffic
//! perturbations, cancellations, prep delays, fleet churn), and the
//! collection of every metric the paper's evaluation reports (XDT, orders
//! per km, waiting time, rejections, cancellations, overflown windows,
//! running time).
//!
//! ```
//! use foodmatch_core::FoodMatchPolicy;
//! use foodmatch_roadnet::Duration;
//! use foodmatch_sim::Simulation;
//! use foodmatch_workload::{CityId, Scenario, ScenarioOptions};
//!
//! // Half an hour of the GrubHub-sized lunch peak, deterministic per seed.
//! let mut options = ScenarioOptions::lunch_peak(1);
//! options.end = options.start + Duration::from_mins(30.0);
//! let sim: Simulation = Scenario::generate(CityId::GrubHub, options).into_simulation();
//! let report = sim.run(&mut FoodMatchPolicy::new());
//! println!("XDT = {:.1} h/day, O/Km = {:.2}", report.xdt_hours_per_day(), report.orders_per_km());
//! assert_eq!(
//!     report.delivered.len() + report.rejected.len() + report.undelivered.len(),
//!     report.total_orders,
//! );
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod engine;
pub mod fleet;
pub mod metrics;

pub use engine::Simulation;
pub use fleet::{CarriedOrder, FleetEvent, ItineraryStep, VehicleState};
pub use metrics::{DeliveredOrder, MetricsCollector, SimulationReport, WindowStats};
