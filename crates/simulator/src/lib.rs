//! # foodmatch-sim
//!
//! A window-stepped, discrete-event food-delivery simulator for the
//! FoodMatch reproduction.
//!
//! The simulator owns everything the dispatcher (in `foodmatch-core`) does
//! not: vehicles physically moving along road edges, waiting at restaurants
//! for food to be prepared, picking up and dropping off orders, the
//! accumulation-window loop that feeds [`foodmatch_core::WindowSnapshot`]s to
//! a [`foodmatch_core::DispatchPolicy`], rejection of orders that waited too
//! long, replay of [`foodmatch_events::DisruptionEvent`] streams (traffic
//! perturbations, cancellations, prep delays, fleet churn), and the
//! collection of every metric the paper's evaluation reports (XDT, orders
//! per km, waiting time, rejections, cancellations, overflown windows,
//! running time).
//!
//! ## The four entry points
//!
//! The dispatch loop has one implementation and four drivers, from batch
//! replay to a crash-safe deployment:
//!
//! * **Batch** — [`Simulation`] wraps a pre-materialized scenario and
//!   [`Simulation::run`] replays it through a fresh service, start to drain.
//!   Use this for the paper's experiments and any offline comparison; the
//!   batch and streaming drivers are pinned bit-identical by
//!   `tests/service_equivalence.rs`.
//! * **Streaming** — [`DispatchService`] is the loop itself, exposed as a
//!   streaming API: [`DispatchService::submit_order`] and
//!   [`DispatchService::ingest_event`] feed demand and disruptions in as
//!   they happen (returning typed [`SubmitOutcome`] / [`IngestOutcome`]
//!   verdicts), [`DispatchService::advance_to`] steps the clock and
//!   returns typed [`DispatchOutput`] events (assignments, pickups,
//!   deliveries, rejections, cancellations, window statistics), and
//!   [`DispatchService::snapshot`] / [`DispatchService::report`] expose the
//!   operational state and metrics at any point mid-run. Use this when
//!   demand is not known in advance: live sources, closed-loop experiments,
//!   services.
//! * **Sharded** — [`DispatchRouter`] scales the streaming surface to a
//!   multi-zone metro: a [`ZoneMap`] partitions the road network into
//!   dispatch zones, each zone runs its own independent [`DispatchService`]
//!   shard, and the router routes orders by restaurant location, targets or
//!   broadcasts disruption events by their
//!   [`EventScope`](foodmatch_events::EventScope), and advances all shards
//!   in lockstep (concurrently, with a deterministic merged output stream
//!   of [`RoutedOutput`]s). A single-zone router is bit-identical to a bare
//!   service; `tests/router_equivalence.rs` pins both that and
//!   thread-count independence.
//! * **Durable** — [`DurableDispatch`] wraps a service or router and makes
//!   it crash-safe: every mutating call is appended to a checksummed
//!   [`WriteAheadLog`] *before* it is applied, with a [`FlushPolicy`]
//!   amortising the fsync across group-committed batches (per record, per
//!   N records, per accumulation window, or per latency deadline — the
//!   acked/appended ledger makes the durability lag explicit). The full
//!   dispatcher state (order pools, fleet physics, event schedule, metrics)
//!   checkpoints via [`DispatchService::checkpoint`] /
//!   [`DispatchRouter::checkpoint`] into atomically-written files — off the
//!   dispatch thread with [`BackgroundCheckpointer`], whose sealed
//!   checkpoints anchor [log compaction](WriteAheadLog::compact_below) —
//!   and recovery — restore the latest checkpoint, [`replay_wal`] the log
//!   suffix — lands on the exact state and output stream of a valid prefix
//!   run ending at a flush boundary. Torn log tails from a crash mid-flush
//!   are truncated and tolerated; any other corruption is a typed
//!   [`WalError`] / [`CheckpointError`], never a panic.
//!   `tests/recovery_equivalence.rs` pins recovery bit-identical across
//!   policies, flush policies, crash points and both dispatcher shapes.
//!
//! ### Batch: replay a scenario
//!
//! ```
//! use foodmatch_core::FoodMatchPolicy;
//! use foodmatch_roadnet::Duration;
//! use foodmatch_sim::Simulation;
//! use foodmatch_workload::{CityId, Scenario, ScenarioOptions};
//!
//! // Half an hour of the GrubHub-sized lunch peak, deterministic per seed.
//! let mut options = ScenarioOptions::lunch_peak(1);
//! options.end = options.start + Duration::from_mins(30.0);
//! let sim: Simulation = Scenario::generate(CityId::GrubHub, options).into_simulation();
//! let report = sim.run(&mut FoodMatchPolicy::new());
//! println!("XDT = {:.1} h/day, O/Km = {:.2}", report.xdt_hours_per_day(), report.orders_per_km());
//! assert_eq!(
//!     report.delivered.len() + report.rejected.len() + report.undelivered.len(),
//!     report.total_orders,
//! );
//! ```
//!
//! ### Online: drive the service tick by tick
//!
//! ```
//! use foodmatch_core::{DispatchConfig, FoodMatchPolicy};
//! use foodmatch_roadnet::Duration;
//! use foodmatch_sim::{DispatchOutput, DispatchService, Simulation};
//! use foodmatch_workload::{CityId, Scenario, ScenarioOptions};
//!
//! let mut options = ScenarioOptions::lunch_peak(1);
//! options.end = options.start + Duration::from_mins(15.0);
//! let sim: Simulation = Scenario::generate(CityId::GrubHub, options).into_simulation();
//!
//! // `Simulation::service` wires the scenario's world (engine, fleet,
//! // horizon, config) into an idle service; `DispatchService::new` does
//! // the same from raw parts when there is no scenario.
//! let mut service = sim.service(FoodMatchPolicy::new());
//! // Stream the demand in and step one accumulation window at a time.
//! let mut orders = sim.orders.iter().copied().peekable();
//! let mut now = sim.start;
//! while !service.is_finished() {
//!     now += service.config().accumulation_window;
//!     while orders.peek().is_some_and(|o| o.placed_at <= now) {
//!         let outcome = service.submit_order(orders.next().unwrap());
//!         assert!(outcome.is_accepted());
//!     }
//!     for output in service.advance_to(now) {
//!         if let DispatchOutput::Delivered { order, .. } = output {
//!             println!("delivered {order:?} — {} pending", service.snapshot().pending);
//!         }
//!     }
//! }
//! let report = service.report();
//! assert_eq!(report.total_orders, sim.orders.len());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod checkpoint;
pub mod durable;
pub mod engine;
pub mod fleet;
pub mod metrics;
pub mod router;
pub mod service;
pub mod wal;

pub use checkpoint::{
    load_checkpoint, load_router_checkpoint, save_checkpoint, save_router_checkpoint,
    BackgroundCheckpointer, CheckpointError, RestoreError, RouterCheckpoint, ServiceCheckpoint,
};
pub use durable::{replay_wal, DurableDispatch, FailMode, FailPoint, ReplayError, WalTarget};
pub use engine::Simulation;
pub use fleet::{CarriedOrder, FleetEvent, ItineraryStep, VehicleState};
pub use metrics::{DeliveredOrder, MetricsCollector, SimulationReport, WindowStats};
pub use router::{
    DispatchRouter, RoutedOutput, RouterReport, RouterSnapshot, Zone, ZoneId, ZoneMap,
};
pub use service::{
    AdvanceOutcome, AdvanceStatus, DispatchOutput, DispatchService, IngestOutcome, ServiceSnapshot,
    SubmitOutcome,
};
pub use wal::{
    read_wal_bytes, read_wal_file, FlushPolicy, TornTail, WalError, WalReadOutcome, WalRecord,
    WriteAheadLog,
};
