//! # foodmatch-sim
//!
//! A window-stepped, discrete-event food-delivery simulator for the
//! FoodMatch reproduction.
//!
//! The simulator owns everything the dispatcher (in `foodmatch-core`) does
//! not: vehicles physically moving along road edges, waiting at restaurants
//! for food to be prepared, picking up and dropping off orders, the
//! accumulation-window loop that feeds [`foodmatch_core::WindowSnapshot`]s to
//! a [`foodmatch_core::DispatchPolicy`], rejection of orders that waited too
//! long, and the collection of every metric the paper's evaluation reports
//! (XDT, orders per km, waiting time, rejections, overflown windows, running
//! time).
//!
//! ```no_run
//! use foodmatch_core::{DispatchConfig, FoodMatchPolicy};
//! use foodmatch_sim::Simulation;
//! # fn scenario() -> Simulation { unimplemented!() }
//!
//! let sim: Simulation = scenario();
//! let report = sim.run(&mut FoodMatchPolicy::new());
//! println!("XDT = {:.1} h/day, O/Km = {:.2}", report.xdt_hours_per_day(), report.orders_per_km());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod engine;
pub mod fleet;
pub mod metrics;

pub use engine::Simulation;
pub use fleet::{CarriedOrder, FleetEvent, ItineraryStep, VehicleState};
pub use metrics::{DeliveredOrder, MetricsCollector, SimulationReport, WindowStats};
