//! The write-ahead log: a durable, replayable record of every input the
//! online dispatch layer receives — with group-commit batched fsync.
//!
//! Dispatch is deterministic: the same inputs in the same order produce the
//! same windows, the same assignments, the same report — bit for bit. That
//! makes crash-safety a logging problem. A [`WriteAheadLog`] records every
//! [`submit_order`](crate::DispatchService::submit_order),
//! [`ingest_event`](crate::DispatchService::ingest_event) and
//! [`advance_to`](crate::DispatchService::advance_to) call as a framed
//! [`WalRecord`] *before* it is applied; recovery restores the latest
//! [checkpoint](crate::checkpoint) and replays the log suffix past the
//! checkpoint's [`wal_seq`](crate::checkpoint::ServiceCheckpoint::wal_seq),
//! landing on exactly the state — and exactly the output stream — the
//! uninterrupted run would have produced.
//!
//! ## Group commit
//!
//! One `fdatasync` per record caps durable ingest around the disk's flush
//! rate — three orders of magnitude below what the dispatcher itself
//! sustains. A [`FlushPolicy`] amortises that cost: appended records are
//! framed into an in-memory group and written + fsynced *once per flush*.
//! The log therefore distinguishes two sequence numbers:
//!
//! * [`appended_seq`](WriteAheadLog::appended_seq) — records accepted into
//!   the log (buffered or durable);
//! * [`acked_seq`](WriteAheadLog::acked_seq) — records known durable on
//!   disk. Only acked records survive a crash.
//!
//! The durability contract is *prefix durability*: a crash loses at most
//! the unflushed suffix `[acked_seq, appended_seq)`, never a record below
//! an acked one, never a reordered or fabricated record. Recovery lands on
//! a valid prefix run ending at a flush boundary;
//! `tests/recovery_equivalence.rs` pins the property for every policy.
//!
//! ## On-disk format
//!
//! ```text
//! [8-byte magic "FMWAL002"] [u64 base_seq] [u32 CRC-32 of base_seq]
//! repeated: [u32 payload length] [u32 CRC-32 of payload] [payload]
//! ```
//!
//! All integers little-endian; payloads are [`Codec`]-encoded
//! [`WalRecord`]s. `base_seq` is the global sequence number of the first
//! record in the file — zero for a fresh log, the sealed checkpoint's
//! `wal_seq` after [compaction](WriteAheadLog::compact_below) dropped the
//! prefix a checkpoint already covers. The reader distinguishes two failure
//! shapes, mirroring what a real crash can and cannot produce:
//!
//! * a **torn tail** — the file ends mid-record, exactly what a crash
//!   during a group flush leaves behind. The partial record is dropped and
//!   reported as [`TornTail`]; every record before it is intact (flushes
//!   write the group in order). [`WriteAheadLog::open`] truncates the tear
//!   and resumes appending after the last whole record.
//! * **corruption** — a checksum mismatch, an oversized length, or a
//!   payload that fails structural validation *anywhere* in the log. No
//!   crash produces this (earlier records were fully flushed before later
//!   ones were written); it means the file was damaged after the fact, and
//!   reading stops with a hard, typed [`WalError`]. Never a panic, never a
//!   silently wrong prefix.

use foodmatch_core::codec::{crc32, u32_le_at, u64_le_at, ByteReader, Codec, DecodeError};
use foodmatch_core::Order;
use foodmatch_events::DisruptionEvent;
use foodmatch_roadnet::TimePoint;
use std::fmt;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Magic prefix of every WAL file (8 bytes, versioned). Version 002 added
/// the checksummed `base_seq` header field for compacted logs.
pub const WAL_MAGIC: &[u8; 8] = b"FMWAL002";

/// Total size of the file header: magic, base sequence, header CRC.
pub const WAL_HEADER_LEN: usize = 8 + 8 + 4;

/// Upper bound on one record's payload (16 MiB). A declared length above
/// this is corruption, not a plausibly torn append — even a maximal-fleet
/// disruption event is orders of magnitude smaller.
pub const MAX_RECORD_LEN: u32 = 16 << 20;

/// One logged dispatcher input. The three variants mirror the three
/// mutating calls of the online API.
#[derive(Clone, Debug, PartialEq)]
pub enum WalRecord {
    /// An order was submitted.
    SubmitOrder(Order),
    /// A disruption event was ingested.
    IngestEvent(DisruptionEvent),
    /// The clock was advanced to this target.
    AdvanceTo(TimePoint),
}

impl Codec for WalRecord {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            WalRecord::SubmitOrder(order) => {
                out.push(0);
                order.encode(out);
            }
            WalRecord::IngestEvent(event) => {
                out.push(1);
                event.encode(out);
            }
            WalRecord::AdvanceTo(until) => {
                out.push(2);
                until.encode(out);
            }
        }
    }
    fn decode(reader: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        match reader.take(1)?[0] {
            0 => Ok(WalRecord::SubmitOrder(Order::decode(reader)?)),
            1 => Ok(WalRecord::IngestEvent(DisruptionEvent::decode(reader)?)),
            2 => Ok(WalRecord::AdvanceTo(TimePoint::decode(reader)?)),
            tag => Err(DecodeError::Invalid(format!("unknown WalRecord tag {tag}"))),
        }
    }
}

/// When the write-ahead log flushes buffered records to disk.
///
/// Every policy preserves the append *order*; they differ only in how many
/// records share one `fdatasync`. The group-commit trade is explicit: a
/// crash loses at most the unflushed suffix (`appended_seq − acked_seq`
/// records), and recovery always lands on a clean flush boundary.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum FlushPolicy {
    /// Flush after every record — the strictest contract (nothing is ever
    /// lost once `append` returns) and the default. One fsync per record.
    #[default]
    EveryRecord,
    /// Flush once `n` records are buffered. Bounded loss window of `n − 1`
    /// records; amortises the fsync `n` ways.
    EveryN(u32),
    /// Flush when an [`AdvanceTo`](WalRecord::AdvanceTo) record is appended
    /// — one fsync per accumulation window, aligning durability with the
    /// dispatch cadence: a window's inputs become durable together, before
    /// any of its outputs are computed.
    Window,
    /// Flush when the oldest buffered record has waited at least this long
    /// (checked at append time), bounding the durability *latency* rather
    /// than the record count.
    Timed(Duration),
}

impl FlushPolicy {
    /// Short stable label used in benchmark JSON and tables.
    pub fn label(&self) -> String {
        match self {
            FlushPolicy::EveryRecord => "every-record".to_string(),
            FlushPolicy::EveryN(n) => format!("every-{n}"),
            FlushPolicy::Window => "window".to_string(),
            FlushPolicy::Timed(d) => format!("timed-{}ms", d.as_millis()),
        }
    }
}

/// A typed write-ahead-log failure. Reading or writing a WAL never panics;
/// every corruption and I/O mode surfaces as one of these.
#[derive(Debug)]
pub enum WalError {
    /// The underlying filesystem operation failed.
    Io(std::io::Error),
    /// The file does not start with [`WAL_MAGIC`] (wrong file, or a
    /// future/incompatible format version), or is shorter than the header.
    BadHeader {
        /// The bytes actually found (up to the header length).
        found: Vec<u8>,
    },
    /// The header's `base_seq` does not match its stored CRC-32 — the
    /// header was damaged after the fact.
    HeaderChecksumMismatch {
        /// Checksum stored in the header.
        expected: u32,
        /// Checksum of the `base_seq` bytes actually present.
        actual: u32,
    },
    /// A record frame declares a payload larger than [`MAX_RECORD_LEN`] —
    /// a corrupt length field, not a torn append.
    OversizedRecord {
        /// Byte offset of the offending frame.
        offset: u64,
        /// The declared payload length.
        declared: u32,
    },
    /// A record's payload does not match its stored CRC-32. The log was
    /// damaged after it was written (a torn append cannot produce this —
    /// earlier records are flushed before later ones exist).
    ChecksumMismatch {
        /// Global sequence number of the corrupt record.
        index: u64,
        /// Byte offset of its frame.
        offset: u64,
        /// Checksum stored in the frame.
        expected: u32,
        /// Checksum of the payload actually present.
        actual: u32,
    },
    /// A record passed its checksum but failed structural validation.
    Malformed {
        /// Global sequence number of the malformed record.
        index: u64,
        /// Byte offset of its frame.
        offset: u64,
        /// The underlying decode failure.
        source: DecodeError,
    },
    /// A replay asked for records below the log's `base_seq` — the prefix
    /// was [compacted](WriteAheadLog::compact_below) away after a
    /// checkpoint sealed, and that checkpoint (or a newer one) is required
    /// to recover. Raised instead of silently replaying a partial history.
    CompactedPast {
        /// First sequence number still present in the log.
        base_seq: u64,
        /// The (older) sequence number the caller asked to replay from.
        requested: u64,
    },
    /// A fault-injection point fired (see
    /// [`FailPoint`](crate::durable::FailPoint)): the simulated process
    /// died here. Only produced by the fault-injection harness.
    CrashInjected {
        /// The record sequence number at which the simulated crash fired.
        seq: u64,
    },
    /// The durable wrapper already crashed (via a fail point); further
    /// input is refused until recovery.
    Crashed,
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "WAL i/o failed: {e}"),
            WalError::BadHeader { found } => {
                write!(f, "not a WAL file (header {found:?})")
            }
            WalError::HeaderChecksumMismatch { expected, actual } => write!(
                f,
                "WAL header checksum mismatch: expected {expected:#010x}, got {actual:#010x}"
            ),
            WalError::OversizedRecord { offset, declared } => write!(
                f,
                "WAL record at offset {offset} declares {declared} payload bytes (limit {MAX_RECORD_LEN}) — corrupt length"
            ),
            WalError::ChecksumMismatch { index, offset, expected, actual } => write!(
                f,
                "WAL record {index} (offset {offset}) checksum mismatch: expected {expected:#010x}, got {actual:#010x}"
            ),
            WalError::Malformed { index, offset, source } => {
                write!(f, "WAL record {index} (offset {offset}) is malformed: {source}")
            }
            WalError::CompactedPast { base_seq, requested } => write!(
                f,
                "WAL was compacted up to sequence {base_seq}; records from {requested} are gone — \
                 recover from the checkpoint the compaction was anchored to"
            ),
            WalError::CrashInjected { seq } => {
                write!(f, "fault injection: simulated crash at WAL sequence {seq}")
            }
            WalError::Crashed => {
                write!(f, "dispatcher crashed (fault injection); recover before submitting input")
            }
        }
    }
}

impl std::error::Error for WalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WalError::Io(e) => Some(e),
            WalError::Malformed { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<std::io::Error> for WalError {
    fn from(e: std::io::Error) -> Self {
        WalError::Io(e)
    }
}

/// A partial final record left by a crash mid-flush: tolerated, dropped,
/// reported.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TornTail {
    /// Byte offset where the partial frame starts (the valid prefix ends
    /// here).
    pub offset: u64,
    /// Number of partial bytes dropped.
    pub bytes: u64,
}

/// The result of reading a WAL: the intact records plus, when the file
/// ends mid-record, the torn tail that was dropped.
#[derive(Clone, Debug, PartialEq)]
pub struct WalReadOutcome {
    /// Global sequence number of `records[0]` — zero for an uncompacted
    /// log, the compaction anchor otherwise.
    pub base_seq: u64,
    /// Every intact record, in append order.
    pub records: Vec<WalRecord>,
    /// Present when the file ended mid-record (crash during a flush).
    pub torn_tail: Option<TornTail>,
}

impl WalReadOutcome {
    /// Sequence number the next append would get (= records durably in the
    /// file, counted from the global origin).
    pub fn next_seq(&self) -> u64 {
        self.base_seq + self.records.len() as u64
    }

    /// The records from global sequence `from` on — the replay suffix past
    /// a checkpoint's `wal_seq`. Returns [`WalError::CompactedPast`] when
    /// `from` predates the log's `base_seq`: the history below the
    /// compaction anchor is gone, and replaying a partial middle would
    /// corrupt state. A `from` beyond the end yields an empty slice (the
    /// checkpoint is newer than every surviving record).
    pub fn suffix_from(&self, from: u64) -> Result<&[WalRecord], WalError> {
        if from < self.base_seq {
            return Err(WalError::CompactedPast { base_seq: self.base_seq, requested: from });
        }
        let skip = (from - self.base_seq) as usize;
        Ok(&self.records[skip.min(self.records.len())..])
    }
}

/// Frames one record: `[u32 len] [u32 crc] [payload]`.
fn frame_into(record: &WalRecord, framed: &mut Vec<u8>) {
    let payload = record.to_bytes();
    framed.reserve(payload.len() + 8);
    framed.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    framed.extend_from_slice(&crc32(&payload).to_le_bytes());
    framed.extend_from_slice(&payload);
}

/// The file header: magic, base sequence and a CRC binding the two.
fn header(base_seq: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(WAL_HEADER_LEN);
    out.extend_from_slice(WAL_MAGIC);
    let seq_bytes = base_seq.to_le_bytes();
    out.extend_from_slice(&seq_bytes);
    out.extend_from_slice(&crc32(&seq_bytes).to_le_bytes());
    out
}

/// Decodes a WAL from raw bytes. Torn tails are tolerated (see the
/// [module docs](self)); any other irregularity is a hard [`WalError`].
pub fn read_wal_bytes(bytes: &[u8]) -> Result<WalReadOutcome, WalError> {
    if bytes.len() < WAL_HEADER_LEN || &bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
        return Err(WalError::BadHeader {
            found: bytes[..bytes.len().min(WAL_HEADER_LEN)].to_vec(),
        });
    }
    let base_seq = u64_le_at(bytes, 8);
    let expected = u32_le_at(bytes, 16);
    let actual = crc32(&base_seq.to_le_bytes());
    if actual != expected {
        return Err(WalError::HeaderChecksumMismatch { expected, actual });
    }
    let mut records = Vec::new();
    let mut offset = WAL_HEADER_LEN;
    loop {
        let remaining = bytes.len() - offset;
        if remaining == 0 {
            return Ok(WalReadOutcome { base_seq, records, torn_tail: None });
        }
        if remaining < 8 {
            // The frame header itself is incomplete: torn flush.
            return Ok(WalReadOutcome {
                base_seq,
                records,
                torn_tail: Some(TornTail { offset: offset as u64, bytes: remaining as u64 }),
            });
        }
        let len = u32_le_at(bytes, offset);
        let expected = u32_le_at(bytes, offset + 4);
        if len > MAX_RECORD_LEN {
            return Err(WalError::OversizedRecord { offset: offset as u64, declared: len });
        }
        let body = offset + 8;
        if bytes.len() - body < len as usize {
            // Payload incomplete at end-of-file: torn flush.
            return Ok(WalReadOutcome {
                base_seq,
                records,
                torn_tail: Some(TornTail { offset: offset as u64, bytes: remaining as u64 }),
            });
        }
        let payload = &bytes[body..body + len as usize];
        let actual = crc32(payload);
        if actual != expected {
            return Err(WalError::ChecksumMismatch {
                index: base_seq + records.len() as u64,
                offset: offset as u64,
                expected,
                actual,
            });
        }
        let record = WalRecord::from_bytes(payload).map_err(|source| WalError::Malformed {
            index: base_seq + records.len() as u64,
            offset: offset as u64,
            source,
        })?;
        records.push(record);
        offset = body + len as usize;
    }
}

/// Reads and decodes a WAL file. See [`read_wal_bytes`].
pub fn read_wal_file(path: impl AsRef<Path>) -> Result<WalReadOutcome, WalError> {
    read_wal_bytes(&fs::read(path.as_ref())?)
}

/// An append-only write-ahead log file with group-commit flushing.
///
/// Appends are framed and checksummed into an in-memory group; the
/// [`FlushPolicy`] decides when the group is written and fsynced as one
/// unit. [`DurableDispatch`](crate::durable::DurableDispatch) enforces the
/// write-ahead ordering (buffer before apply, durable before ack), so the
/// *acked* log always holds at least as much history as any state the
/// process has acknowledged.
#[derive(Debug)]
pub struct WriteAheadLog {
    file: fs::File,
    path: PathBuf,
    policy: FlushPolicy,
    /// Global sequence number of the first record in this file.
    base_seq: u64,
    /// Records known durable on disk.
    acked_seq: u64,
    /// Records accepted into the log (acked + buffered).
    appended_seq: u64,
    /// Framed, unflushed records.
    buffer: Vec<u8>,
    /// Wall-clock arrival of the oldest buffered record (Timed policy).
    oldest_buffered: Option<Instant>,
    metrics: WalMetrics,
}

/// Telemetry handles for the durability hot path, acquired when the log
/// is created or opened. Inert without an installed recorder; appends are
/// identical bytes either way.
#[derive(Debug)]
struct WalMetrics {
    /// `wal.append_ns` — one buffered append (framing + policy check;
    /// includes the flush when the policy triggers one).
    append_ns: foodmatch_telemetry::Histogram,
    /// `wal.fsync_ns` — the `sync_data` portion of each flush.
    fsync_ns: foodmatch_telemetry::Histogram,
    /// `wal.flush_records` — records per group flush (batch size).
    flush_records: foodmatch_telemetry::Histogram,
    /// `wal.unflushed` — records currently buffered (acked lag).
    unflushed: foodmatch_telemetry::Gauge,
    /// `wal.bytes` / `wal.records` — durable append volume.
    bytes: foodmatch_telemetry::Counter,
    records: foodmatch_telemetry::Counter,
    /// `wal.compactions` — prefix compactions performed.
    compactions: foodmatch_telemetry::Counter,
}

impl WalMetrics {
    fn acquire() -> Self {
        WalMetrics {
            append_ns: foodmatch_telemetry::histogram("wal.append_ns"),
            fsync_ns: foodmatch_telemetry::histogram("wal.fsync_ns"),
            flush_records: foodmatch_telemetry::histogram("wal.flush_records"),
            unflushed: foodmatch_telemetry::gauge("wal.unflushed"),
            bytes: foodmatch_telemetry::counter("wal.bytes"),
            records: foodmatch_telemetry::counter("wal.records"),
            compactions: foodmatch_telemetry::counter("wal.compactions"),
        }
    }
}

impl WriteAheadLog {
    /// Creates a fresh WAL at `path` (truncating any existing file) with
    /// the default per-record flush policy.
    pub fn create(path: impl AsRef<Path>) -> Result<Self, WalError> {
        Self::create_with(path, FlushPolicy::EveryRecord)
    }

    /// Creates a fresh WAL at `path` (truncating any existing file) under
    /// the given [`FlushPolicy`] and writes the header.
    pub fn create_with(path: impl AsRef<Path>, policy: FlushPolicy) -> Result<Self, WalError> {
        let path = path.as_ref().to_path_buf();
        let mut file = fs::File::create(&path)?;
        file.write_all(&header(0))?;
        file.sync_all()?;
        Ok(WriteAheadLog {
            file,
            path,
            policy,
            base_seq: 0,
            acked_seq: 0,
            appended_seq: 0,
            buffer: Vec::new(),
            oldest_buffered: None,
            metrics: WalMetrics::acquire(),
        })
    }

    /// Opens an existing WAL for appending with the default per-record
    /// flush policy. See [`open_with`](Self::open_with).
    pub fn open(path: impl AsRef<Path>) -> Result<(Self, WalReadOutcome), WalError> {
        Self::open_with(path, FlushPolicy::EveryRecord)
    }

    /// Opens an existing WAL for appending: reads it back (propagating any
    /// corruption as a typed error), truncates a torn tail if one exists,
    /// and returns the log positioned after the last intact record together
    /// with everything read. This is the restart path — the returned
    /// records drive recovery replay, and
    /// [`WalReadOutcome::suffix_from`] guards compacted logs with a typed
    /// error instead of replaying a partial history.
    pub fn open_with(
        path: impl AsRef<Path>,
        policy: FlushPolicy,
    ) -> Result<(Self, WalReadOutcome), WalError> {
        let path = path.as_ref().to_path_buf();
        let bytes = fs::read(&path)?;
        let outcome = read_wal_bytes(&bytes)?;
        let file = fs::OpenOptions::new().append(true).open(&path)?;
        if let Some(tear) = outcome.torn_tail {
            file.set_len(tear.offset)?;
            file.sync_all()?;
        }
        let seq = outcome.next_seq();
        Ok((
            WriteAheadLog {
                file,
                path,
                policy,
                base_seq: outcome.base_seq,
                acked_seq: seq,
                appended_seq: seq,
                buffer: Vec::new(),
                oldest_buffered: None,
                metrics: WalMetrics::acquire(),
            },
            outcome,
        ))
    }

    /// Appends one record to the group buffer and flushes the group when
    /// the [`FlushPolicy`] calls for it. Returns the record's global
    /// sequence number (zero-based append index). The record is *durable*
    /// only once [`acked_seq`](Self::acked_seq) passes it.
    pub fn append(&mut self, record: &WalRecord) -> Result<u64, WalError> {
        let _span = foodmatch_telemetry::span("wal", "append");
        let _append = self.metrics.append_ns.timer();
        frame_into(record, &mut self.buffer);
        if self.oldest_buffered.is_none() {
            // lint: allow(wall-clock-hygiene) — `FlushPolicy::Timed` is a
            // wall-clock latency bound by definition; the deadline never
            // feeds the replayed output stream, only fsync scheduling.
            self.oldest_buffered = Some(Instant::now());
        }
        let seq = self.appended_seq;
        self.appended_seq += 1;
        let due = match self.policy {
            FlushPolicy::EveryRecord => true,
            FlushPolicy::EveryN(n) => self.appended_seq - self.acked_seq >= u64::from(n.max(1)),
            FlushPolicy::Window => matches!(record, WalRecord::AdvanceTo(_)),
            FlushPolicy::Timed(max_latency) => {
                self.oldest_buffered.is_some_and(|t| t.elapsed() >= max_latency)
            }
        };
        if due {
            self.flush()?;
        } else {
            self.metrics.unflushed.set((self.appended_seq - self.acked_seq) as i64);
        }
        Ok(seq)
    }

    /// Writes and fsyncs every buffered record as one group, advancing
    /// [`acked_seq`](Self::acked_seq) to [`appended_seq`](Self::appended_seq).
    /// A no-op on an empty buffer. Returns the new acked sequence.
    pub fn flush(&mut self) -> Result<u64, WalError> {
        if self.buffer.is_empty() {
            return Ok(self.acked_seq);
        }
        let batch = self.appended_seq - self.acked_seq;
        self.file.write_all(&self.buffer)?;
        {
            let _fsync = self.metrics.fsync_ns.timer();
            self.file.sync_data()?;
        }
        self.metrics.bytes.add(self.buffer.len() as u64);
        self.metrics.records.add(batch);
        self.metrics.flush_records.record(batch);
        self.metrics.unflushed.set(0);
        self.buffer.clear();
        self.oldest_buffered = None;
        self.acked_seq = self.appended_seq;
        Ok(self.acked_seq)
    }

    /// Drops every buffered (unacked) record without writing it — what a
    /// power cut does to the in-memory group. Rolls
    /// [`appended_seq`](Self::appended_seq) back to
    /// [`acked_seq`](Self::acked_seq). Crash-simulation hook; production
    /// code has no reason to call it.
    pub fn discard_unflushed(&mut self) -> u64 {
        let dropped = self.appended_seq - self.acked_seq;
        self.buffer.clear();
        self.oldest_buffered = None;
        self.appended_seq = self.acked_seq;
        self.metrics.unflushed.set(0);
        dropped
    }

    /// Flushes any buffered group, then appends only a *prefix* of the
    /// record's frame — a simulated torn flush, as a crash midway through
    /// a group write would leave. The record does not count as appended or
    /// durable. Used by the fault-injection harness to exercise the
    /// torn-tail recovery path.
    pub fn append_torn(&mut self, record: &WalRecord) -> Result<(), WalError> {
        self.flush()?;
        let mut framed = Vec::new();
        frame_into(record, &mut framed);
        let keep = (framed.len() / 2).max(1);
        self.file.write_all(&framed[..keep])?;
        self.file.sync_data()?;
        Ok(())
    }

    /// Drops every durable record below global sequence `below` — the
    /// prefix a sealed checkpoint at `wal_seq = below` fully covers —
    /// bounding replay work and disk growth on long runs. The surviving
    /// suffix is rewritten to a sibling file with `base_seq = below` and
    /// atomically renamed over the log, so a crash mid-compaction leaves
    /// either the old log or the new one, never a hybrid. Any buffered
    /// group is flushed first; `below` values at or under the current
    /// `base_seq` are no-ops, and values past the acked end are clamped.
    ///
    /// Only compact at a *sealed* checkpoint's `wal_seq`: after
    /// compaction, recovery from any older checkpoint reports
    /// [`WalError::CompactedPast`].
    pub fn compact_below(&mut self, below: u64) -> Result<(), WalError> {
        let _span = foodmatch_telemetry::span("wal", "compact");
        self.flush()?;
        let below = below.min(self.acked_seq);
        if below <= self.base_seq {
            return Ok(());
        }
        let outcome = read_wal_bytes(&fs::read(&self.path)?)?;
        debug_assert_eq!(outcome.base_seq, self.base_seq);
        let keep = outcome.suffix_from(below)?;
        let tmp = self.path.with_extension("wal-compact");
        {
            let mut file = fs::File::create(&tmp)?;
            let mut bytes = header(below);
            for record in keep {
                frame_into(record, &mut bytes);
            }
            file.write_all(&bytes)?;
            file.sync_all()?;
        }
        fs::rename(&tmp, &self.path)?;
        self.file = fs::OpenOptions::new().append(true).open(&self.path)?;
        self.file.sync_all()?;
        self.base_seq = below;
        self.metrics.compactions.inc();
        Ok(())
    }

    /// The flush policy this log runs under.
    pub fn policy(&self) -> FlushPolicy {
        self.policy
    }

    /// Global sequence number of the first record still in the file (zero
    /// until a compaction raises it).
    pub fn base_seq(&self) -> u64 {
        self.base_seq
    }

    /// Records known durable on disk (and the global sequence number the
    /// next *flush* will ack up to, exclusive).
    pub fn acked_seq(&self) -> u64 {
        self.acked_seq
    }

    /// Records accepted into the log — durable or buffered — and the
    /// sequence number the next append will get.
    pub fn appended_seq(&self) -> u64 {
        self.appended_seq
    }

    /// Records buffered but not yet durable (`appended_seq − acked_seq`).
    pub fn unflushed(&self) -> u64 {
        self.appended_seq - self.acked_seq
    }

    /// Number of records appended (alias of [`appended_seq`](Self::appended_seq),
    /// kept for the pre-group-commit callers).
    pub fn seq(&self) -> u64 {
        self.appended_seq
    }

    /// The file path this log writes to.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for WriteAheadLog {
    /// A graceful shutdown flushes the buffered group — losing records is
    /// what *crashes* do, not drops. (Crash simulation calls
    /// [`discard_unflushed`](Self::discard_unflushed) first, making this a
    /// no-op.) Errors are swallowed: there is no way to report them from a
    /// destructor, and the acked contract never claimed these records.
    fn drop(&mut self) {
        let _ = self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use foodmatch_core::OrderId;
    use foodmatch_roadnet::{Duration as SimDuration, NodeId};

    fn sample_records() -> Vec<WalRecord> {
        let t = TimePoint::from_hms(12, 0, 0);
        vec![
            WalRecord::SubmitOrder(Order::new(
                OrderId(1),
                NodeId(4),
                NodeId(9),
                t,
                2,
                SimDuration::from_mins(7.0),
            )),
            WalRecord::AdvanceTo(t + SimDuration::from_mins(3.0)),
            WalRecord::AdvanceTo(t + SimDuration::from_mins(6.0)),
        ]
    }

    fn temp_path(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("fm-wal-test-{}-{name}", std::process::id()))
    }

    #[test]
    fn append_read_round_trip_preserves_every_record() {
        let path = temp_path("roundtrip");
        let mut wal = WriteAheadLog::create(&path).expect("create");
        let records = sample_records();
        for (i, record) in records.iter().enumerate() {
            assert_eq!(wal.append(record).expect("append"), i as u64);
            assert_eq!(wal.acked_seq(), i as u64 + 1, "EveryRecord acks each append");
        }
        let outcome = read_wal_file(&path).expect("read");
        assert_eq!(outcome.records, records);
        assert_eq!(outcome.base_seq, 0);
        assert_eq!(outcome.torn_tail, None);
        fs::remove_file(&path).ok();
    }

    #[test]
    fn every_n_buffers_until_the_group_fills_and_drop_flushes_the_rest() {
        let path = temp_path("every-n");
        let records = sample_records();
        {
            let mut wal =
                WriteAheadLog::create_with(&path, FlushPolicy::EveryN(2)).expect("create");
            wal.append(&records[0]).expect("append");
            assert_eq!(wal.acked_seq(), 0, "first record buffers");
            assert_eq!(wal.unflushed(), 1);
            // Nothing on disk yet beyond the header.
            assert!(read_wal_file(&path).expect("read").records.is_empty());
            wal.append(&records[1]).expect("append");
            assert_eq!(wal.acked_seq(), 2, "the group of two flushes");
            wal.append(&records[2]).expect("append");
            assert_eq!(wal.acked_seq(), 2, "third record buffers again");
            // Graceful drop flushes the partial group.
        }
        assert_eq!(read_wal_file(&path).expect("read").records, records);
        fs::remove_file(&path).ok();
    }

    #[test]
    fn window_policy_flushes_on_advance_records() {
        let path = temp_path("window");
        let mut wal = WriteAheadLog::create_with(&path, FlushPolicy::Window).expect("create");
        let records = sample_records();
        wal.append(&records[0]).expect("append submit");
        assert_eq!(wal.acked_seq(), 0, "submissions buffer");
        wal.append(&records[1]).expect("append advance");
        assert_eq!(wal.acked_seq(), 2, "the advance flushes the window's group");
        fs::remove_file(&path).ok();
    }

    #[test]
    fn timed_policy_bounds_durability_latency() {
        let path = temp_path("timed");
        let records = sample_records();
        // A zero deadline degenerates to per-record flushing…
        let mut wal =
            WriteAheadLog::create_with(&path, FlushPolicy::Timed(Duration::ZERO)).expect("create");
        wal.append(&records[0]).expect("append");
        assert_eq!(wal.acked_seq(), 1);
        drop(wal);
        // …while a distant one buffers indefinitely (until drop/flush).
        let mut wal =
            WriteAheadLog::create_with(&path, FlushPolicy::Timed(Duration::from_secs(3600)))
                .expect("create");
        wal.append(&records[0]).expect("append");
        wal.append(&records[1]).expect("append");
        assert_eq!(wal.acked_seq(), 0);
        assert_eq!(wal.unflushed(), 2);
        wal.flush().expect("flush");
        assert_eq!(wal.acked_seq(), 2);
        fs::remove_file(&path).ok();
    }

    #[test]
    fn discard_unflushed_loses_exactly_the_unacked_suffix() {
        let path = temp_path("discard");
        let records = sample_records();
        let mut wal = WriteAheadLog::create_with(&path, FlushPolicy::EveryN(8)).expect("create");
        wal.append(&records[0]).expect("append");
        wal.flush().expect("flush");
        wal.append(&records[1]).expect("append");
        wal.append(&records[2]).expect("append");
        assert_eq!(wal.discard_unflushed(), 2);
        assert_eq!(wal.appended_seq(), 1);
        drop(wal); // the drop-flush has nothing left to write
        let outcome = read_wal_file(&path).expect("read");
        assert_eq!(outcome.records, records[..1], "only the acked prefix survives");
        fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_dropped_and_appending_resumes_after_it() {
        let path = temp_path("torn");
        let mut wal = WriteAheadLog::create(&path).expect("create");
        let records = sample_records();
        wal.append(&records[0]).expect("append");
        wal.append_torn(&records[1]).expect("torn append");
        drop(wal);

        let (mut reopened, outcome) = WriteAheadLog::open(&path).expect("open tolerates tear");
        assert_eq!(outcome.records, records[..1]);
        assert!(outcome.torn_tail.is_some(), "the tear is reported");
        assert_eq!(reopened.seq(), 1);

        // The tear was truncated: appending continues from a clean log.
        reopened.append(&records[2]).expect("append after recovery");
        drop(reopened);
        let outcome = read_wal_file(&path).expect("reread");
        assert_eq!(outcome.records, vec![records[0].clone(), records[2].clone()]);
        assert_eq!(outcome.torn_tail, None);
        fs::remove_file(&path).ok();
    }

    #[test]
    fn compaction_drops_the_prefix_and_stamps_the_base_seq() {
        let path = temp_path("compact");
        let mut wal = WriteAheadLog::create(&path).expect("create");
        let records = sample_records();
        for record in &records {
            wal.append(record).expect("append");
        }
        wal.compact_below(2).expect("compact");
        assert_eq!(wal.base_seq(), 2);
        assert_eq!(wal.appended_seq(), 3, "sequence numbers keep their global origin");

        let outcome = read_wal_file(&path).expect("read compacted");
        assert_eq!(outcome.base_seq, 2);
        assert_eq!(outcome.records, records[2..]);
        assert_eq!(outcome.suffix_from(2).expect("anchored suffix"), &records[2..]);
        assert_eq!(outcome.suffix_from(3).expect("empty suffix"), &[] as &[WalRecord]);
        assert!(
            matches!(
                outcome.suffix_from(0),
                Err(WalError::CompactedPast { base_seq: 2, requested: 0 })
            ),
            "replaying below the compaction anchor is a typed error"
        );

        // Appending continues after a compaction, and reopening a compacted
        // log restores the global sequence numbering.
        wal.append(&records[0]).expect("append after compaction");
        drop(wal);
        let (reopened, outcome) = WriteAheadLog::open(&path).expect("reopen compacted");
        assert_eq!(outcome.base_seq, 2);
        assert_eq!(outcome.records.len(), 2);
        assert_eq!(reopened.seq(), 4);
        fs::remove_file(&path).ok();
    }

    #[test]
    fn compaction_is_idempotent_and_clamped() {
        let path = temp_path("compact-clamp");
        let mut wal = WriteAheadLog::create(&path).expect("create");
        for record in &sample_records() {
            wal.append(record).expect("append");
        }
        wal.compact_below(2).expect("compact");
        wal.compact_below(2).expect("same anchor is a no-op");
        wal.compact_below(1).expect("older anchor is a no-op");
        assert_eq!(wal.base_seq(), 2);
        wal.compact_below(100).expect("past-the-end anchor clamps");
        assert_eq!(wal.base_seq(), 3);
        assert!(read_wal_file(&path).expect("read").records.is_empty());
        fs::remove_file(&path).ok();
    }

    #[test]
    fn mid_log_corruption_is_a_hard_typed_error() {
        let path = temp_path("corrupt");
        let mut wal = WriteAheadLog::create(&path).expect("create");
        for record in &sample_records() {
            wal.append(record).expect("append");
        }
        drop(wal);
        let mut bytes = fs::read(&path).expect("read file");
        // Flip one payload bit of the *first* record (well before the tail).
        bytes[WAL_HEADER_LEN + 8] ^= 0x10;
        match read_wal_bytes(&bytes) {
            Err(WalError::ChecksumMismatch { index: 0, .. }) => {}
            other => panic!("expected a checksum error on record 0, got {other:?}"),
        }
        fs::remove_file(&path).ok();
    }

    #[test]
    fn header_and_length_corruption_yield_typed_errors() {
        assert!(matches!(read_wal_bytes(b"nope"), Err(WalError::BadHeader { .. })));
        assert!(matches!(
            read_wal_bytes(b"XXXXXXXXrest-of-the-header"),
            Err(WalError::BadHeader { .. })
        ));

        // A damaged base_seq is caught by the header checksum.
        let mut bytes = header(7);
        bytes[9] ^= 0x01;
        assert!(matches!(read_wal_bytes(&bytes), Err(WalError::HeaderChecksumMismatch { .. })));

        let mut bytes = header(0);
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.extend_from_slice(&[0u8; 64]);
        assert!(matches!(read_wal_bytes(&bytes), Err(WalError::OversizedRecord { .. })));
    }
}
