//! The write-ahead log: a durable, replayable record of every input the
//! online dispatch layer receives.
//!
//! Dispatch is deterministic: the same inputs in the same order produce the
//! same windows, the same assignments, the same report — bit for bit. That
//! makes crash-safety a logging problem. A [`WriteAheadLog`] records every
//! [`submit_order`](crate::DispatchService::submit_order),
//! [`ingest_event`](crate::DispatchService::ingest_event) and
//! [`advance_to`](crate::DispatchService::advance_to) call as a framed
//! [`WalRecord`] *before* it is applied; recovery restores the latest
//! [checkpoint](crate::checkpoint) and replays the log suffix past the
//! checkpoint's [`wal_seq`](crate::checkpoint::ServiceCheckpoint::wal_seq),
//! landing on exactly the state — and exactly the output stream — the
//! uninterrupted run would have produced.
//!
//! ## On-disk format
//!
//! ```text
//! [8-byte magic "FMWAL001"]
//! repeated: [u32 payload length] [u32 CRC-32 of payload] [payload]
//! ```
//!
//! All integers little-endian; payloads are [`Codec`]-encoded
//! [`WalRecord`]s. The reader distinguishes two failure shapes, mirroring
//! what a real crash can and cannot produce:
//!
//! * a **torn tail** — the file ends mid-record, exactly what a crash
//!   during an append leaves behind. The partial record is dropped and
//!   reported as [`TornTail`]; every record before it is intact (appends
//!   are flushed in order). [`WriteAheadLog::open`] truncates the tear and
//!   resumes appending after the last whole record.
//! * **corruption** — a checksum mismatch, an oversized length, or a
//!   payload that fails structural validation *anywhere* in the log. No
//!   crash produces this (earlier records were fully flushed before later
//!   ones were written); it means the file was damaged after the fact, and
//!   reading stops with a hard, typed [`WalError`]. Never a panic, never a
//!   silently wrong prefix.

use foodmatch_core::codec::{crc32, ByteReader, Codec, DecodeError};
use foodmatch_core::Order;
use foodmatch_events::DisruptionEvent;
use foodmatch_roadnet::TimePoint;
use std::fmt;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Magic prefix of every WAL file (8 bytes, versioned).
pub const WAL_MAGIC: &[u8; 8] = b"FMWAL001";

/// Upper bound on one record's payload (16 MiB). A declared length above
/// this is corruption, not a plausibly torn append — even a maximal-fleet
/// disruption event is orders of magnitude smaller.
pub const MAX_RECORD_LEN: u32 = 16 << 20;

/// One logged dispatcher input. The three variants mirror the three
/// mutating calls of the online API.
#[derive(Clone, Debug, PartialEq)]
pub enum WalRecord {
    /// An order was submitted.
    SubmitOrder(Order),
    /// A disruption event was ingested.
    IngestEvent(DisruptionEvent),
    /// The clock was advanced to this target.
    AdvanceTo(TimePoint),
}

impl Codec for WalRecord {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            WalRecord::SubmitOrder(order) => {
                out.push(0);
                order.encode(out);
            }
            WalRecord::IngestEvent(event) => {
                out.push(1);
                event.encode(out);
            }
            WalRecord::AdvanceTo(until) => {
                out.push(2);
                until.encode(out);
            }
        }
    }
    fn decode(reader: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        match reader.take(1)?[0] {
            0 => Ok(WalRecord::SubmitOrder(Order::decode(reader)?)),
            1 => Ok(WalRecord::IngestEvent(DisruptionEvent::decode(reader)?)),
            2 => Ok(WalRecord::AdvanceTo(TimePoint::decode(reader)?)),
            tag => Err(DecodeError::Invalid(format!("unknown WalRecord tag {tag}"))),
        }
    }
}

/// A typed write-ahead-log failure. Reading or writing a WAL never panics;
/// every corruption and I/O mode surfaces as one of these.
#[derive(Debug)]
pub enum WalError {
    /// The underlying filesystem operation failed.
    Io(std::io::Error),
    /// The file does not start with [`WAL_MAGIC`] (wrong file, or a
    /// future/incompatible format version).
    BadHeader {
        /// The bytes actually found (up to 8).
        found: Vec<u8>,
    },
    /// A record frame declares a payload larger than [`MAX_RECORD_LEN`] —
    /// a corrupt length field, not a torn append.
    OversizedRecord {
        /// Byte offset of the offending frame.
        offset: u64,
        /// The declared payload length.
        declared: u32,
    },
    /// A record's payload does not match its stored CRC-32. The log was
    /// damaged after it was written (a torn append cannot produce this —
    /// earlier records are flushed before later ones exist).
    ChecksumMismatch {
        /// Index of the corrupt record.
        index: u64,
        /// Byte offset of its frame.
        offset: u64,
        /// Checksum stored in the frame.
        expected: u32,
        /// Checksum of the payload actually present.
        actual: u32,
    },
    /// A record passed its checksum but failed structural validation.
    Malformed {
        /// Index of the malformed record.
        index: u64,
        /// Byte offset of its frame.
        offset: u64,
        /// The underlying decode failure.
        source: DecodeError,
    },
    /// A fault-injection point fired (see
    /// [`FailPoint`](crate::durable::FailPoint)): the simulated process
    /// died here. Only produced by the fault-injection harness.
    CrashInjected {
        /// The record sequence number at which the simulated crash fired.
        seq: u64,
    },
    /// The durable wrapper already crashed (via a fail point); further
    /// input is refused until recovery.
    Crashed,
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "WAL i/o failed: {e}"),
            WalError::BadHeader { found } => {
                write!(f, "not a WAL file (header {found:?})")
            }
            WalError::OversizedRecord { offset, declared } => write!(
                f,
                "WAL record at offset {offset} declares {declared} payload bytes (limit {MAX_RECORD_LEN}) — corrupt length"
            ),
            WalError::ChecksumMismatch { index, offset, expected, actual } => write!(
                f,
                "WAL record {index} (offset {offset}) checksum mismatch: expected {expected:#010x}, got {actual:#010x}"
            ),
            WalError::Malformed { index, offset, source } => {
                write!(f, "WAL record {index} (offset {offset}) is malformed: {source}")
            }
            WalError::CrashInjected { seq } => {
                write!(f, "fault injection: simulated crash at WAL sequence {seq}")
            }
            WalError::Crashed => {
                write!(f, "dispatcher crashed (fault injection); recover before submitting input")
            }
        }
    }
}

impl std::error::Error for WalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WalError::Io(e) => Some(e),
            WalError::Malformed { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<std::io::Error> for WalError {
    fn from(e: std::io::Error) -> Self {
        WalError::Io(e)
    }
}

/// A partial final record left by a crash mid-append: tolerated, dropped,
/// reported.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TornTail {
    /// Byte offset where the partial frame starts (the valid prefix ends
    /// here).
    pub offset: u64,
    /// Number of partial bytes dropped.
    pub bytes: u64,
}

/// The result of reading a WAL: the intact records plus, when the file
/// ends mid-append, the torn tail that was dropped.
#[derive(Clone, Debug, PartialEq)]
pub struct WalReadOutcome {
    /// Every intact record, in append order.
    pub records: Vec<WalRecord>,
    /// Present when the file ended mid-record (crash during append).
    pub torn_tail: Option<TornTail>,
}

/// Frames one record: `[u32 len] [u32 crc] [payload]`.
fn frame(record: &WalRecord) -> Vec<u8> {
    let payload = record.to_bytes();
    let mut framed = Vec::with_capacity(payload.len() + 8);
    framed.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    framed.extend_from_slice(&crc32(&payload).to_le_bytes());
    framed.extend_from_slice(&payload);
    framed
}

/// Decodes a WAL from raw bytes. Torn tails are tolerated (see the
/// [module docs](self)); any other irregularity is a hard [`WalError`].
pub fn read_wal_bytes(bytes: &[u8]) -> Result<WalReadOutcome, WalError> {
    if bytes.len() < WAL_MAGIC.len() {
        return Err(WalError::BadHeader { found: bytes.to_vec() });
    }
    if &bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
        return Err(WalError::BadHeader { found: bytes[..WAL_MAGIC.len()].to_vec() });
    }
    let mut records = Vec::new();
    let mut offset = WAL_MAGIC.len();
    loop {
        let remaining = bytes.len() - offset;
        if remaining == 0 {
            return Ok(WalReadOutcome { records, torn_tail: None });
        }
        if remaining < 8 {
            // The frame header itself is incomplete: torn append.
            return Ok(WalReadOutcome {
                records,
                torn_tail: Some(TornTail { offset: offset as u64, bytes: remaining as u64 }),
            });
        }
        let len = u32::from_le_bytes(bytes[offset..offset + 4].try_into().expect("4 bytes"));
        let expected =
            u32::from_le_bytes(bytes[offset + 4..offset + 8].try_into().expect("4 bytes"));
        if len > MAX_RECORD_LEN {
            return Err(WalError::OversizedRecord { offset: offset as u64, declared: len });
        }
        let body = offset + 8;
        if bytes.len() - body < len as usize {
            // Payload incomplete at end-of-file: torn append.
            return Ok(WalReadOutcome {
                records,
                torn_tail: Some(TornTail { offset: offset as u64, bytes: remaining as u64 }),
            });
        }
        let payload = &bytes[body..body + len as usize];
        let actual = crc32(payload);
        if actual != expected {
            return Err(WalError::ChecksumMismatch {
                index: records.len() as u64,
                offset: offset as u64,
                expected,
                actual,
            });
        }
        let record = WalRecord::from_bytes(payload).map_err(|source| WalError::Malformed {
            index: records.len() as u64,
            offset: offset as u64,
            source,
        })?;
        records.push(record);
        offset = body + len as usize;
    }
}

/// Reads and decodes a WAL file. See [`read_wal_bytes`].
pub fn read_wal_file(path: impl AsRef<Path>) -> Result<WalReadOutcome, WalError> {
    read_wal_bytes(&fs::read(path.as_ref())?)
}

/// An append-only write-ahead log file.
///
/// Appends are framed, checksummed and flushed to the OS before the
/// corresponding state change is applied ([`DurableDispatch`]
/// (crate::durable::DurableDispatch) enforces the ordering), so the log
/// always holds at least as much history as any state the process has
/// exposed.
#[derive(Debug)]
pub struct WriteAheadLog {
    file: fs::File,
    path: PathBuf,
    seq: u64,
    metrics: WalMetrics,
}

/// Telemetry handles for the durability hot path, acquired when the log
/// is created or opened. Inert without an installed recorder; appends are
/// identical bytes either way.
#[derive(Debug)]
struct WalMetrics {
    /// `wal.append_ns` — full append (frame write + fsync).
    append_ns: foodmatch_telemetry::Histogram,
    /// `wal.fsync_ns` — the `sync_data` portion alone.
    fsync_ns: foodmatch_telemetry::Histogram,
    /// `wal.bytes` / `wal.records` — durable append volume.
    bytes: foodmatch_telemetry::Counter,
    records: foodmatch_telemetry::Counter,
}

impl WalMetrics {
    fn acquire() -> Self {
        WalMetrics {
            append_ns: foodmatch_telemetry::histogram("wal.append_ns"),
            fsync_ns: foodmatch_telemetry::histogram("wal.fsync_ns"),
            bytes: foodmatch_telemetry::counter("wal.bytes"),
            records: foodmatch_telemetry::counter("wal.records"),
        }
    }
}

impl WriteAheadLog {
    /// Creates a fresh WAL at `path` (truncating any existing file) and
    /// writes the header.
    pub fn create(path: impl AsRef<Path>) -> Result<Self, WalError> {
        let path = path.as_ref().to_path_buf();
        let mut file = fs::File::create(&path)?;
        file.write_all(WAL_MAGIC)?;
        file.sync_all()?;
        Ok(WriteAheadLog { file, path, seq: 0, metrics: WalMetrics::acquire() })
    }

    /// Opens an existing WAL for appending: reads it back (propagating any
    /// corruption as a typed error), truncates a torn tail if one exists,
    /// and returns the log positioned after the last intact record together
    /// with everything read. This is the restart path — the returned
    /// records drive recovery replay.
    pub fn open(path: impl AsRef<Path>) -> Result<(Self, WalReadOutcome), WalError> {
        let path = path.as_ref().to_path_buf();
        let bytes = fs::read(&path)?;
        let outcome = read_wal_bytes(&bytes)?;
        let file = fs::OpenOptions::new().append(true).open(&path)?;
        if let Some(tear) = outcome.torn_tail {
            file.set_len(tear.offset)?;
            file.sync_all()?;
        }
        let seq = outcome.records.len() as u64;
        Ok((WriteAheadLog { file, path, seq, metrics: WalMetrics::acquire() }, outcome))
    }

    /// Appends one record and flushes it to the OS. Returns the record's
    /// sequence number (zero-based append index).
    pub fn append(&mut self, record: &WalRecord) -> Result<u64, WalError> {
        let _span = foodmatch_telemetry::span("wal", "append");
        let _append = self.metrics.append_ns.timer();
        let framed = frame(record);
        self.file.write_all(&framed)?;
        {
            let _fsync = self.metrics.fsync_ns.timer();
            self.file.sync_data()?;
        }
        self.metrics.bytes.add(framed.len() as u64);
        self.metrics.records.inc();
        let seq = self.seq;
        self.seq += 1;
        Ok(seq)
    }

    /// Appends only a *prefix* of the record's frame — a simulated torn
    /// write, as a crash mid-append would leave. The record does not count
    /// as durable (the sequence number does not advance). Used by the
    /// fault-injection harness to exercise the torn-tail recovery path.
    pub fn append_torn(&mut self, record: &WalRecord) -> Result<(), WalError> {
        let framed = frame(record);
        let keep = (framed.len() / 2).max(1);
        self.file.write_all(&framed[..keep])?;
        self.file.sync_data()?;
        Ok(())
    }

    /// Number of records durably appended (and the sequence number the
    /// next append will get).
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// The file path this log writes to.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use foodmatch_core::OrderId;
    use foodmatch_roadnet::{Duration, NodeId};

    fn sample_records() -> Vec<WalRecord> {
        let t = TimePoint::from_hms(12, 0, 0);
        vec![
            WalRecord::SubmitOrder(Order::new(
                OrderId(1),
                NodeId(4),
                NodeId(9),
                t,
                2,
                Duration::from_mins(7.0),
            )),
            WalRecord::AdvanceTo(t + Duration::from_mins(3.0)),
            WalRecord::AdvanceTo(t + Duration::from_mins(6.0)),
        ]
    }

    fn temp_path(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("fm-wal-test-{}-{name}", std::process::id()))
    }

    #[test]
    fn append_read_round_trip_preserves_every_record() {
        let path = temp_path("roundtrip");
        let mut wal = WriteAheadLog::create(&path).expect("create");
        let records = sample_records();
        for (i, record) in records.iter().enumerate() {
            assert_eq!(wal.append(record).expect("append"), i as u64);
        }
        let outcome = read_wal_file(&path).expect("read");
        assert_eq!(outcome.records, records);
        assert_eq!(outcome.torn_tail, None);
        fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_dropped_and_appending_resumes_after_it() {
        let path = temp_path("torn");
        let mut wal = WriteAheadLog::create(&path).expect("create");
        let records = sample_records();
        wal.append(&records[0]).expect("append");
        wal.append_torn(&records[1]).expect("torn append");
        drop(wal);

        let (mut reopened, outcome) = WriteAheadLog::open(&path).expect("open tolerates tear");
        assert_eq!(outcome.records, records[..1]);
        assert!(outcome.torn_tail.is_some(), "the tear is reported");
        assert_eq!(reopened.seq(), 1);

        // The tear was truncated: appending continues from a clean log.
        reopened.append(&records[2]).expect("append after recovery");
        drop(reopened);
        let outcome = read_wal_file(&path).expect("reread");
        assert_eq!(outcome.records, vec![records[0].clone(), records[2].clone()]);
        assert_eq!(outcome.torn_tail, None);
        fs::remove_file(&path).ok();
    }

    #[test]
    fn mid_log_corruption_is_a_hard_typed_error() {
        let path = temp_path("corrupt");
        let mut wal = WriteAheadLog::create(&path).expect("create");
        for record in &sample_records() {
            wal.append(record).expect("append");
        }
        drop(wal);
        let mut bytes = fs::read(&path).expect("read file");
        // Flip one payload bit of the *first* record (well before the tail).
        bytes[WAL_MAGIC.len() + 8] ^= 0x10;
        match read_wal_bytes(&bytes) {
            Err(WalError::ChecksumMismatch { index: 0, .. }) => {}
            other => panic!("expected a checksum error on record 0, got {other:?}"),
        }
        fs::remove_file(&path).ok();
    }

    #[test]
    fn header_and_length_corruption_yield_typed_errors() {
        assert!(matches!(read_wal_bytes(b"nope"), Err(WalError::BadHeader { .. })));
        assert!(matches!(read_wal_bytes(b"XXXXXXXXrest"), Err(WalError::BadHeader { .. })));

        let mut bytes = WAL_MAGIC.to_vec();
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.extend_from_slice(&[0u8; 64]);
        assert!(matches!(read_wal_bytes(&bytes), Err(WalError::OversizedRecord { .. })));
    }
}
