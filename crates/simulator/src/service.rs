//! The online dispatch service: streaming ingest, tick-driven stepping,
//! typed output events.
//!
//! [`DispatchService`] is the incremental form of the accumulation-window
//! loop (Fig. 5 of the paper). Where [`Simulation::run`](crate::Simulation)
//! replays a pre-materialized scenario start to finish, the service is
//! driven from outside, one call at a time:
//!
//! * [`submit_order`](DispatchService::submit_order) — an order arrives
//!   (from a live demand stream, a replay, anything);
//! * [`ingest_event`](DispatchService::ingest_event) — a disruption arrives
//!   (traffic, cancellation, prep delay, shift churn);
//! * [`advance_to`](DispatchService::advance_to) — the clock moves forward;
//!   every accumulation window that closes in the meantime is processed
//!   (vehicles drive, orders arrive/expire, the policy assigns) and the
//!   observable outcomes come back as typed [`DispatchOutput`] events;
//! * [`snapshot`](DispatchService::snapshot) /
//!   [`report`](DispatchService::report) — point-in-time operational state
//!   and metrics, available mid-run without disturbing the service.
//!
//! Stepping is explicit (`&mut self`): the service owns the engine handle,
//! the fleet, the order pools and the metrics — there is no interior
//! mutability to reason about. The batch driver `Simulation::run` is a thin
//! wrapper that submits the scenario's streams up front and drains the
//! service to completion; a golden test
//! (`tests/service_equivalence.rs`) pins the two entry points bit-identical.
//!
//! ## Semantics worth knowing
//!
//! * The service replicates the batch loop exactly, window by window. An
//!   order must be submitted before the window containing its `placed_at`
//!   closes to behave as in a batch run; orders submitted later are pulled
//!   into the next window (where the rejection deadline still counts from
//!   `placed_at`).
//! * An order's SDT baseline (Definition 6) is evaluated when the order is
//!   *submitted*, under the network conditions active at that moment —
//!   submit orders before installing traffic overlays to reproduce batch
//!   SDTs bit for bit.
//! * Cancellations for orders the service has never seen are ignored, same
//!   as the batch loop ignores cancellations for ids outside the scenario.
//! * The service keeps every submitted order for final accounting, so a
//!   perpetual deployment should be restarted (or sharded) per service day,
//!   exactly like the paper's per-day evaluation.

use crate::checkpoint::ServiceCheckpoint;
use crate::fleet::{CarriedOrder, FleetEvent, VehicleState};
use crate::metrics::{MetricsCollector, SimulationReport, WindowStats};
use foodmatch_core::route::{plan_optimal_route, PlannedOrder};
use foodmatch_core::{DispatchConfig, DispatchPolicy, Order, OrderId, VehicleId, WindowSnapshot};
use foodmatch_events::{DisruptionEvent, EventKind, EventSchedule};
use foodmatch_roadnet::{Duration, NodeId, ShortestPathEngine, TimePoint};
use std::collections::{BTreeSet, HashMap, HashSet};
use std::time::Instant;

/// The typed outcome of submitting an order to a [`DispatchService`] or a
/// [`DispatchRouter`](crate::router::DispatchRouter).
///
/// Replaces the old `bool` return: callers can now distinguish *why* an
/// order was not admitted instead of guessing.
#[must_use = "submission can be refused — check (or explicitly discard) the outcome"]
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SubmitOutcome {
    /// The order was admitted and will enter a dispatch window.
    Accepted,
    /// An order with the same id was already submitted; this one is ignored.
    Duplicate,
    /// The service (or every router shard) has finished; input is refused.
    ServiceFinished,
    /// Router only: the order's restaurant node belongs to no zone of the
    /// router's zone map. A bare service never returns this.
    NoZoneForLocation,
}

impl SubmitOutcome {
    /// True when the order was admitted.
    pub fn is_accepted(self) -> bool {
        self == SubmitOutcome::Accepted
    }
}

/// The typed outcome of streaming a disruption event into a
/// [`DispatchService`] or a [`DispatchRouter`](crate::router::DispatchRouter).
#[must_use = "ingestion can be refused — check (or explicitly discard) the outcome"]
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IngestOutcome {
    /// The event was accepted and will fire at its window boundary.
    Accepted,
    /// The service (or every targeted router shard) has finished; the event
    /// is dropped.
    ServiceFinished,
    /// Router only: a localized event touches no zone (or targets a vehicle
    /// joining at a node outside every zone). A bare service never returns
    /// this.
    NoZoneForLocation,
}

impl IngestOutcome {
    /// True when the event was accepted.
    pub fn is_accepted(self) -> bool {
        self == IngestOutcome::Accepted
    }
}

/// What an [`advance_to`](DispatchService::advance_to) call did to the
/// clock. `OutOfOrder` is the variant that used to be a silent no-op: a
/// replay driver stepping a service from a write-ahead log can now detect a
/// log whose `AdvanceTo` records run backwards instead of quietly producing
/// a diverged run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum AdvanceStatus {
    /// At least one accumulation window was processed (possibly including
    /// the final drain).
    Advanced,
    /// The target lies inside the current window: legal, but no window
    /// closed yet. Call again with a later target.
    Pending,
    /// The target precedes the service clock. Nothing happened; the caller
    /// is stepping out of order.
    OutOfOrder {
        /// The (stale) target that was requested.
        requested: TimePoint,
        /// The service clock the target fell behind.
        clock: TimePoint,
    },
    /// The service had already finished before the call. Nothing happened.
    Finished,
}

/// The typed result of advancing a [`DispatchService`] (or, with
/// `T = RoutedOutput`, a [`DispatchRouter`](crate::router::DispatchRouter)).
///
/// Iterates like the `Vec` it replaces (`for output in svc.advance_to(..)`,
/// `outputs.extend(svc.advance_to(..))`), and additionally carries a typed
/// [`AdvanceStatus`] so callers — in particular WAL replay — can tell an
/// empty-but-fine step from an out-of-order one.
#[must_use = "advancing can be refused (out-of-order target) — check the status or iterate the outputs"]
#[derive(Clone, Debug, PartialEq)]
pub struct AdvanceOutcome<T = DispatchOutput> {
    /// The typed outcomes of every window processed by this call, in order.
    pub outputs: Vec<T>,
    /// What the call did to the clock.
    pub status: AdvanceStatus,
}

impl<T> AdvanceOutcome<T> {
    pub(crate) fn new(outputs: Vec<T>, status: AdvanceStatus) -> Self {
        AdvanceOutcome { outputs, status }
    }

    pub(crate) fn finished() -> Self {
        AdvanceOutcome { outputs: Vec::new(), status: AdvanceStatus::Finished }
    }

    pub(crate) fn out_of_order(requested: TimePoint, clock: TimePoint) -> Self {
        AdvanceOutcome {
            outputs: Vec::new(),
            status: AdvanceStatus::OutOfOrder { requested, clock },
        }
    }

    /// True when no outputs were produced.
    pub fn is_empty(&self) -> bool {
        self.outputs.is_empty()
    }

    /// Number of outputs produced.
    pub fn len(&self) -> usize {
        self.outputs.len()
    }

    /// Iterates over the outputs by reference.
    pub fn iter(&self) -> std::slice::Iter<'_, T> {
        self.outputs.iter()
    }

    /// True when the call was refused because the target precedes the clock.
    pub fn is_out_of_order(&self) -> bool {
        matches!(self.status, AdvanceStatus::OutOfOrder { .. })
    }

    /// Consumes the outcome, returning just the outputs.
    pub fn into_outputs(self) -> Vec<T> {
        self.outputs
    }
}

impl<T> IntoIterator for AdvanceOutcome<T> {
    type Item = T;
    type IntoIter = std::vec::IntoIter<T>;
    fn into_iter(self) -> Self::IntoIter {
        self.outputs.into_iter()
    }
}

impl<'a, T> IntoIterator for &'a AdvanceOutcome<T> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.outputs.iter()
    }
}

/// One observable outcome of advancing the service.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum DispatchOutput {
    /// The policy assigned an order to a vehicle at a window close.
    Assigned {
        /// The order.
        order: OrderId,
        /// The vehicle it now rides with.
        vehicle: VehicleId,
        /// The window-close time of the assignment.
        at: TimePoint,
    },
    /// A vehicle collected an order from its restaurant.
    PickedUp {
        /// The order.
        order: OrderId,
        /// The vehicle that collected it.
        vehicle: VehicleId,
        /// Pickup time.
        at: TimePoint,
        /// Time the vehicle waited at the restaurant for the food.
        waited: Duration,
    },
    /// An order reached its customer.
    Delivered {
        /// The order.
        order: OrderId,
        /// The vehicle that delivered it.
        vehicle: VehicleId,
        /// Delivery time.
        at: TimePoint,
        /// The order's extra delivery time (Definition 7, clamped at zero).
        xdt: Duration,
    },
    /// An order stayed unassigned past the rejection deadline — or, at the
    /// drain cutoff, never got a ride at all (still pending, or never even
    /// entered a window). Orders that are *on a vehicle* when the drain
    /// limit hits get no terminal event: they surface only as
    /// `report().undelivered` (normally empty; non-empty means the drain
    /// limit is too short for the workload).
    Rejected {
        /// The order.
        order: OrderId,
        /// When the rejection was decided (a window close).
        at: TimePoint,
    },
    /// A customer cancelled an order before pickup.
    Cancelled {
        /// The order.
        order: OrderId,
        /// The cancellation event's timestamp.
        at: TimePoint,
    },
    /// An accumulation window inside the workload horizon closed after a
    /// policy call; carries the same statistics the report records.
    WindowClosed {
        /// The window's statistics.
        stats: WindowStats,
    },
}

/// A point-in-time view of the service's operational state (cheap to take;
/// does not disturb the run).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ServiceSnapshot {
    /// The close time of the last processed window (the service clock).
    pub now: TimePoint,
    /// Orders submitted so far.
    pub submitted: usize,
    /// Submitted orders whose `placed_at` has not been reached yet.
    pub queued: usize,
    /// Orders waiting in the unassigned pool.
    pub pending: usize,
    /// Orders currently riding on a vehicle (assigned or picked up).
    pub in_flight: usize,
    /// Orders delivered so far.
    pub delivered: usize,
    /// Orders rejected so far.
    pub rejected: usize,
    /// Orders cancelled so far.
    pub cancelled: usize,
    /// Vehicles currently on shift.
    pub vehicles_on_shift: usize,
    /// Whether a traffic disruption is currently active.
    pub traffic_active: bool,
    /// Whether the service has terminated (drained or past the drain limit).
    pub finished: bool,
}

/// The online dispatcher: owns the fleet, the order pools, the event
/// schedule and the metrics, and advances in accumulation windows when told
/// to. See the [module docs](self) for the full contract.
#[derive(Debug)]
pub struct DispatchService<P: DispatchPolicy> {
    engine: ShortestPathEngine,
    policy: P,
    config: DispatchConfig,
    reshuffle: bool,
    start: TimePoint,
    end: TimePoint,
    drain_end: TimePoint,
    /// Close time of the last processed window; `start` before any stepping.
    window_close: TimePoint,
    /// Every submitted order, sorted by `(placed_at, id)`; `next_order` is
    /// the arrival cursor.
    orders: Vec<Order>,
    next_order: usize,
    /// `placed_at` lookup (and duplicate-submission guard) for all ids.
    known: HashMap<OrderId, TimePoint>,
    schedule: EventSchedule,
    vehicles: Vec<VehicleState>,
    vehicle_index: HashMap<VehicleId, usize>,
    pending: Vec<Order>,
    assigned_or_done: HashSet<OrderId>,
    delivered: HashSet<OrderId>,
    cancel_requested: HashSet<OrderId>,
    prep_delay_pending: HashMap<OrderId, Duration>,
    cancelled_ids: HashSet<OrderId>,
    /// SDT of every order, evaluated at submission time (Definition 6).
    sdt: HashMap<OrderId, Duration>,
    collector: MetricsCollector,
    finished: bool,
    metrics: ServiceMetrics,
}

/// Telemetry handles for the service's three entry points plus per-window
/// stepping. Acquired at construction *and* at restore (handles are run
/// state, not checkpoint state — a checkpoint restored in a different
/// process gets that process's recorder). Inert when no recorder is
/// installed; strictly observational either way.
#[derive(Debug)]
struct ServiceMetrics {
    submit_ns: foodmatch_telemetry::Histogram,
    ingest_ns: foodmatch_telemetry::Histogram,
    advance_ns: foodmatch_telemetry::Histogram,
    window_ns: foodmatch_telemetry::Histogram,
    submits: foodmatch_telemetry::Counter,
    ingests: foodmatch_telemetry::Counter,
    windows: foodmatch_telemetry::Counter,
}

impl ServiceMetrics {
    fn acquire() -> Self {
        ServiceMetrics {
            submit_ns: foodmatch_telemetry::histogram("service.submit_ns"),
            ingest_ns: foodmatch_telemetry::histogram("service.ingest_ns"),
            advance_ns: foodmatch_telemetry::histogram("service.advance_ns"),
            window_ns: foodmatch_telemetry::histogram("service.window_ns"),
            submits: foodmatch_telemetry::counter("service.submits"),
            ingests: foodmatch_telemetry::counter("service.ingests"),
            windows: foodmatch_telemetry::counter("service.windows"),
        }
    }
}

impl<P: DispatchPolicy> DispatchService<P> {
    /// Creates an idle service at `start`. The engine handle is shared
    /// (`ShortestPathEngine` clones share caches and the traffic overlay);
    /// any overlay left over from a previous run is cleared so SDT baselines
    /// start from the unperturbed network.
    ///
    /// # Panics
    /// Panics when the configuration is invalid or `end` precedes `start`.
    /// A zero-length horizon is allowed (a drain-only service): nothing is
    /// in horizon, but submitted orders are still dispatched through the
    /// drain phase, as the batch loop always did.
    pub fn new(
        engine: ShortestPathEngine,
        vehicle_starts: Vec<(VehicleId, NodeId)>,
        policy: P,
        config: DispatchConfig,
        start: TimePoint,
        end: TimePoint,
        drain_limit: Duration,
    ) -> Self {
        config.validate().expect("invalid dispatch configuration");
        assert!(end >= start, "service horizon must not end before it starts");
        if engine.has_overlay() {
            engine.clear_overlay();
        }
        let reshuffle = policy.uses_reshuffling(&config);
        let vehicles: Vec<VehicleState> =
            vehicle_starts.iter().map(|&(id, node)| VehicleState::new(id, node)).collect();
        let vehicle_index = vehicles.iter().enumerate().map(|(i, v)| (v.id, i)).collect();
        let collector = MetricsCollector::new(policy.name(), 0, end - start);
        DispatchService {
            engine,
            policy,
            config,
            reshuffle,
            start,
            end,
            drain_end: end + drain_limit,
            window_close: start,
            orders: Vec::new(),
            next_order: 0,
            known: HashMap::new(),
            schedule: EventSchedule::new(Vec::new()),
            vehicles,
            vehicle_index,
            pending: Vec::new(),
            assigned_or_done: HashSet::new(),
            delivered: HashSet::new(),
            cancel_requested: HashSet::new(),
            prep_delay_pending: HashMap::new(),
            cancelled_ids: HashSet::new(),
            sdt: HashMap::new(),
            collector,
            finished: false,
            metrics: ServiceMetrics::acquire(),
        }
    }

    /// Submits one order to the service. The order is ignored when the
    /// returned [`SubmitOutcome`] is not `Accepted` (duplicate id, or the
    /// service has finished).
    ///
    /// The order's SDT baseline is computed here, under the network
    /// conditions active right now; it enters a window once the clock
    /// reaches its `placed_at` (immediately next window if that is already
    /// in the past).
    pub fn submit_order(&mut self, order: Order) -> SubmitOutcome {
        let _timer = self.metrics.submit_ns.timer();
        self.metrics.submits.inc();
        if self.finished {
            return SubmitOutcome::ServiceFinished;
        }
        if self.known.contains_key(&order.id) {
            return SubmitOutcome::Duplicate;
        }
        self.known.insert(order.id, order.placed_at);
        let sdt = self
            .engine
            .travel_time(order.restaurant, order.customer, order.placed_at)
            .map(|sp| order.prep_time + sp)
            .unwrap_or(Duration::ZERO);
        self.sdt.insert(order.id, sdt);
        self.collector.record_offered();
        // Keep the unconsumed tail sorted by (placed_at, id) — the exact
        // arrival order of the batch loop.
        let tail = &self.orders[self.next_order..];
        let offset = tail.partition_point(|o| (o.placed_at, o.id) <= (order.placed_at, order.id));
        self.orders.insert(self.next_order + offset, order);
        SubmitOutcome::Accepted
    }

    /// Streams one disruption event into the service. Events timestamped in
    /// the past take effect at the next window open (the batch loop has the
    /// same one-window granularity). Returns
    /// [`IngestOutcome::ServiceFinished`] once the service has finished.
    pub fn ingest_event(&mut self, event: DisruptionEvent) -> IngestOutcome {
        let _timer = self.metrics.ingest_ns.timer();
        self.metrics.ingests.inc();
        if self.finished {
            return IngestOutcome::ServiceFinished;
        }
        self.schedule.push(event);
        IngestOutcome::Accepted
    }

    /// Advances the service clock to `until`, processing every accumulation
    /// window that closes on the way and returning the typed outcomes in
    /// order. Windows are only processed whole: a partial window stays
    /// unprocessed until a later call crosses its close.
    ///
    /// Advancing to [`drain_deadline`](Self::drain_deadline) (or beyond)
    /// drains the service: leftover orders are rejected, the engine overlay
    /// is cleared, and the service refuses further input.
    ///
    /// The returned [`AdvanceOutcome`] iterates like the `Vec` it replaced
    /// and carries a typed [`AdvanceStatus`]: a target earlier than
    /// [`now`](Self::now) — previously a silent no-op — reports
    /// [`AdvanceStatus::OutOfOrder`] so replay-driven stepping (e.g. from a
    /// write-ahead log) can detect a misordered input stream.
    pub fn advance_to(&mut self, until: TimePoint) -> AdvanceOutcome {
        let _timer = self.metrics.advance_ns.timer();
        if self.finished {
            return AdvanceOutcome::finished();
        }
        if until < self.window_close {
            return AdvanceOutcome::out_of_order(until, self.window_close);
        }
        let delta = self.config.accumulation_window;
        let mut out = Vec::new();
        let mut advanced = false;
        while !self.finished {
            let next_close = self.window_close + delta;
            if next_close > self.drain_end {
                self.finalize(&mut out);
                advanced = true;
                break;
            }
            if next_close > until {
                break;
            }
            self.step_window(next_close, &mut out);
            advanced = true;
        }
        let status = if advanced { AdvanceStatus::Advanced } else { AdvanceStatus::Pending };
        AdvanceOutcome::new(out, status)
    }

    /// Drives the service to completion (through the drain phase) and
    /// returns the final report. Equivalent to
    /// `advance_to(self.drain_deadline())` + [`report`](Self::report).
    pub fn run_to_completion(&mut self) -> SimulationReport {
        let _ = self.advance_to(self.drain_end);
        self.report()
    }

    /// The instant past which [`advance_to`] gives up on undelivered orders
    /// and finalizes the run.
    pub fn drain_deadline(&self) -> TimePoint {
        self.drain_end
    }

    /// True once the service has terminated (everything drained, or the
    /// drain limit was hit) and the report is final.
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// The close time of the last processed window (the service clock).
    pub fn now(&self) -> TimePoint {
        self.window_close
    }

    /// When the service's day starts (the clock before any stepping).
    pub fn start(&self) -> TimePoint {
        self.start
    }

    /// When the workload horizon ends; the drain phase runs after this until
    /// [`drain_deadline`](Self::drain_deadline).
    pub fn horizon_end(&self) -> TimePoint {
        self.end
    }

    /// The dispatcher configuration the service runs under.
    pub fn config(&self) -> &DispatchConfig {
        &self.config
    }

    /// A point-in-time view of the operational state.
    pub fn snapshot(&self) -> ServiceSnapshot {
        ServiceSnapshot {
            now: self.window_close,
            submitted: self.orders.len(),
            queued: self.orders.len() - self.next_order,
            pending: self.pending.len(),
            in_flight: self.vehicles.iter().map(|v| v.carried.len()).sum(),
            delivered: self.delivered.len(),
            rejected: self.collector.rejected_count(),
            cancelled: self.cancelled_ids.len(),
            vehicles_on_shift: self.vehicles.iter().filter(|v| v.on_shift).count(),
            traffic_active: self.schedule.traffic_active(),
            finished: self.finished,
        }
    }

    /// The metrics accumulated so far, as a [`SimulationReport`]. Mid-run
    /// the report is a partial view (orders still in flight appear in no
    /// bucket); once [`is_finished`](Self::is_finished) it is the final,
    /// fully accounted report of the run.
    pub fn report(&self) -> SimulationReport {
        self.collector.clone().finish()
    }

    /// Captures the complete run state as a [`ServiceCheckpoint`]: order
    /// pools and cursors, fleet (positions, edge-level itineraries, shift
    /// state), the event-schedule cursor and active overlay set, and the
    /// metrics accumulated so far. Restoring the checkpoint (into a fresh
    /// engine handle over the same network, with the same policy) resumes
    /// the run bit-identically — see
    /// [`DispatchService::restore`].
    ///
    /// The checkpoint's `wal_seq` is zero; a durable wrapper
    /// ([`DurableDispatch`](crate::durable::DurableDispatch)) stamps its
    /// write-ahead-log position on top.
    pub fn checkpoint(&self) -> ServiceCheckpoint {
        fn sorted_map<K: Ord + Copy, V: Copy>(map: &HashMap<K, V>) -> Vec<(K, V)> {
            let mut flat: Vec<(K, V)> = map.iter().map(|(&k, &v)| (k, v)).collect();
            flat.sort_unstable_by_key(|&(k, _)| k);
            flat
        }
        fn sorted_set<K: Ord + Copy>(set: &HashSet<K>) -> Vec<K> {
            let mut flat: Vec<K> = set.iter().copied().collect();
            flat.sort_unstable();
            flat
        }
        ServiceCheckpoint {
            wal_seq: 0,
            config: self.config.clone(),
            start: self.start,
            end: self.end,
            drain_end: self.drain_end,
            window_close: self.window_close,
            orders: self.orders.clone(),
            next_order: self.next_order,
            known: sorted_map(&self.known),
            schedule: self.schedule.clone(),
            vehicles: self.vehicles.clone(),
            pending: self.pending.clone(),
            assigned_or_done: sorted_set(&self.assigned_or_done),
            delivered: sorted_set(&self.delivered),
            cancel_requested: sorted_set(&self.cancel_requested),
            prep_delay_pending: sorted_map(&self.prep_delay_pending),
            cancelled_ids: sorted_set(&self.cancelled_ids),
            sdt: sorted_map(&self.sdt),
            collector: self.collector.clone(),
            finished: self.finished,
        }
    }

    /// Rebuilds a service from a [`ServiceCheckpoint`], resuming the run
    /// exactly where [`checkpoint`](Self::checkpoint) captured it.
    ///
    /// The caller supplies the parts that are deliberately *not* in the
    /// checkpoint: an engine handle over the same road network (checkpoints
    /// store run state, not the city), and the policy (stateless across
    /// windows by the [`DispatchPolicy`] contract). Everything derived is
    /// recomputed — the vehicle index from the fleet, the reshuffle flag
    /// from policy × config — and if the checkpoint was taken under an
    /// active traffic disruption the engine's overlay is re-rendered and
    /// re-installed, so the restored service sees the same perturbed travel
    /// times.
    ///
    /// # Panics
    /// Panics when the checkpoint's configuration is invalid — impossible
    /// for checkpoints produced by [`checkpoint`](Self::checkpoint) or
    /// decoded through [`Codec`](foodmatch_core::Codec) (both validate).
    pub fn restore(engine: ShortestPathEngine, policy: P, checkpoint: &ServiceCheckpoint) -> Self {
        checkpoint.config.validate().expect("invalid dispatch configuration in checkpoint");
        let reshuffle = policy.uses_reshuffling(&checkpoint.config);
        let vehicles = checkpoint.vehicles.clone();
        let vehicle_index = vehicles.iter().enumerate().map(|(i, v)| (v.id, i)).collect();
        let mut schedule = checkpoint.schedule.clone();
        // The engine handle arrives in an arbitrary overlay state; make it
        // match the checkpoint's (the schedule knows what was active).
        if engine.has_overlay() {
            engine.clear_overlay();
        }
        if schedule.traffic_active() {
            let overlay = schedule.render_overlay(engine.network());
            engine.set_overlay(overlay);
        }
        DispatchService {
            engine,
            policy,
            config: checkpoint.config.clone(),
            reshuffle,
            start: checkpoint.start,
            end: checkpoint.end,
            drain_end: checkpoint.drain_end,
            window_close: checkpoint.window_close,
            orders: checkpoint.orders.clone(),
            next_order: checkpoint.next_order,
            known: checkpoint.known.iter().copied().collect(),
            schedule,
            vehicles,
            vehicle_index,
            pending: checkpoint.pending.clone(),
            assigned_or_done: checkpoint.assigned_or_done.iter().copied().collect(),
            delivered: checkpoint.delivered.iter().copied().collect(),
            cancel_requested: checkpoint.cancel_requested.iter().copied().collect(),
            prep_delay_pending: checkpoint.prep_delay_pending.iter().copied().collect(),
            cancelled_ids: checkpoint.cancelled_ids.iter().copied().collect(),
            sdt: checkpoint.sdt.iter().copied().collect(),
            collector: checkpoint.collector.clone(),
            finished: checkpoint.finished,
            metrics: ServiceMetrics::acquire(),
        }
    }

    /// Processes exactly one accumulation window closing at `close`.
    /// This is the body of the batch loop, verbatim.
    fn step_window(&mut self, window_close: TimePoint, out: &mut Vec<DispatchOutput>) {
        let _span = foodmatch_telemetry::span("service", "window");
        let _timer = self.metrics.window_ns.timer();
        self.metrics.windows.inc();
        let delta = self.config.accumulation_window;
        self.window_close = window_close;
        let in_horizon = window_close <= self.end + delta;

        // 0. Drain disruption events that fall inside this window; they take
        //    effect at the window's open, before vehicles drive through it.
        if !self.schedule.is_empty() {
            self.apply_events(window_close, out);
        }

        // 1. Advance vehicles and harvest their events.
        for vehicle in &mut self.vehicles {
            let id = vehicle.id;
            for event in vehicle.advance(window_close) {
                match event {
                    FleetEvent::Drove { length_m, load } => {
                        self.collector.record_drive(window_close, load, length_m);
                    }
                    FleetEvent::PickedUp { order, at, waited } => {
                        self.collector.record_wait(at, waited);
                        out.push(DispatchOutput::PickedUp { order, vehicle: id, at, waited });
                    }
                    FleetEvent::Delivered { order, at } => {
                        self.delivered.insert(order);
                        let placed = self.known.get(&order).copied().unwrap_or(at);
                        let record = self.collector.record_delivery(
                            order,
                            placed,
                            at,
                            self.sdt.get(&order).copied().unwrap_or(Duration::ZERO),
                        );
                        out.push(DispatchOutput::Delivered {
                            order,
                            vehicle: id,
                            at,
                            xdt: record.xdt,
                        });
                    }
                }
            }
        }

        // 2. New arrivals and deadline rejections. Orders cancelled before
        //    they arrived are swallowed (already accounted as cancellations);
        //    pending prep delays are applied on arrival.
        while self.next_order < self.orders.len()
            && self.orders[self.next_order].placed_at <= window_close
        {
            let mut order = self.orders[self.next_order];
            self.next_order += 1;
            if self.cancel_requested.remove(&order.id) {
                continue;
            }
            if let Some(extra) = self.prep_delay_pending.remove(&order.id) {
                order.prep_time += extra;
            }
            self.pending.push(order);
        }
        let (collector, assigned_or_done) = (&mut self.collector, &mut self.assigned_or_done);
        let deadline = self.config.rejection_deadline;
        self.pending.retain(|o| {
            let expired = window_close.saturating_since(o.placed_at) > deadline;
            if expired {
                collector.record_rejection(o.id);
                assigned_or_done.insert(o.id);
                out.push(DispatchOutput::Rejected { order: o.id, at: window_close });
            }
            !expired
        });

        // Termination: past the horizon with nothing left to do.
        let all_arrived = self.next_order >= self.orders.len();
        let fleet_idle = self.vehicles.iter().all(VehicleState::is_idle);
        if window_close > self.end && all_arrived && self.pending.is_empty() && fleet_idle {
            self.finalize(out);
            return;
        }

        // 3–4. Snapshot and policy call.
        if self.pending.is_empty() && !self.reshuffle {
            // Nothing to assign; skip the policy call but keep advancing.
            return;
        }
        let mut snapshot_orders = self.pending.clone();
        if self.reshuffle {
            for vehicle in self.vehicles.iter().filter(|v| v.on_shift) {
                snapshot_orders.extend(vehicle.unpicked_orders());
            }
        }
        if snapshot_orders.is_empty() {
            return;
        }
        // Off-shift vehicles are invisible to the dispatcher.
        let snapshots = self
            .vehicles
            .iter()
            .filter(|v| v.on_shift)
            .map(|v| v.snapshot(self.reshuffle))
            .collect();
        let window = WindowSnapshot::new(window_close, snapshot_orders, snapshots);
        let order_count = window.order_count();
        let vehicle_count = window.vehicle_count();

        // lint: allow(wall-clock-hygiene) — `compute_secs` is a *reported*
        // wall-clock measurement (the paper's per-window compute budget);
        // it feeds `WindowStats`, which golden comparisons normalise.
        let started = Instant::now();
        let outcome = self.policy.assign(&window, &self.engine, &self.config);
        let compute_secs = started.elapsed().as_secs_f64();
        debug_assert!(outcome.validate(&window).is_ok(), "policy produced invalid outcome");

        if in_horizon {
            let stats = WindowStats {
                closed_at: window_close,
                slot: window_close.hour_slot(),
                orders: order_count,
                vehicles: vehicle_count,
                assigned: outcome.assigned_order_count(),
                compute_secs,
                overflown: compute_secs > delta.as_secs_f64(),
                disrupted: self.schedule.traffic_active(),
            };
            self.collector.record_window(stats);
            out.push(DispatchOutput::WindowClosed { stats });
        }

        // 5. Apply the assignment.
        let order_lookup: HashMap<OrderId, Order> =
            window.orders.iter().map(|o| (o.id, *o)).collect();
        // Both sets below drive loops whose side effects land in the output
        // stream, so they are BTreeSets: iteration order must come from the
        // keys, never from hasher state (`nondeterministic-iteration`).
        let mut touched: BTreeSet<usize> = BTreeSet::new();
        // Carried order-id sets before this window's changes; vehicles whose
        // set is unchanged keep their current itinerary, so partial progress
        // along an edge is never thrown away by a no-op replan.
        let carried_before: Vec<Vec<OrderId>> = self
            .vehicles
            .iter()
            .map(|v| {
                let mut ids: Vec<OrderId> = v.carried.iter().map(|c| c.order.id).collect();
                ids.sort_unstable();
                ids
            })
            .collect();
        let assigned_now: BTreeSet<OrderId> =
            outcome.assignments.iter().flat_map(|a| a.orders.iter().copied()).collect();

        // Detach every order that the matching moved somewhere (it may be
        // re-attached to the same vehicle below). Orders the matching did
        // NOT touch keep their incumbent vehicle — reshuffling re-examines
        // assignments, it never strands an order that already had a ride.
        for &order_id in &assigned_now {
            self.pending.retain(|o| o.id != order_id);
            for (vi, vehicle) in self.vehicles.iter_mut().enumerate() {
                if vehicle.remove_unpicked(order_id) {
                    touched.insert(vi);
                }
            }
        }
        // Attach the orders to their new vehicles. If a vehicle that
        // receives a new batch still holds unpicked orders the matching left
        // untouched and the combination would exceed its capacity, the
        // untouched ones are released back into the pending pool (they will
        // be re-offered next window).
        for assignment in &outcome.assignments {
            let Some(&vi) = self.vehicle_index.get(&assignment.vehicle) else { continue };
            touched.insert(vi);
            for &order_id in &assignment.orders {
                let Some(&order) = order_lookup.get(&order_id) else { continue };
                self.vehicles[vi].carried.push(CarriedOrder { order, picked_up: false });
                self.assigned_or_done.insert(order_id);
                out.push(DispatchOutput::Assigned {
                    order: order_id,
                    vehicle: assignment.vehicle,
                    at: window_close,
                });
            }
            let vehicle = &mut self.vehicles[vi];
            while vehicle.carried.len() > self.config.max_orders_per_vehicle
                || vehicle.carried.iter().map(|c| c.order.items).sum::<u32>()
                    > self.config.max_items_per_vehicle
            {
                // Release the oldest untouched, unpicked order that is not
                // part of this window's batch for the vehicle.
                let Some(pos) = vehicle
                    .carried
                    .iter()
                    .position(|c| !c.picked_up && !assigned_now.contains(&c.order.id))
                else {
                    break;
                };
                let released = vehicle.carried.remove(pos);
                self.pending.push(released.order);
            }
        }
        // Replan every vehicle whose carried set actually changed.
        for vi in touched {
            let vehicle = &mut self.vehicles[vi];
            let mut ids_now: Vec<OrderId> = vehicle.carried.iter().map(|c| c.order.id).collect();
            ids_now.sort_unstable();
            if ids_now == carried_before[vi] {
                continue;
            }
            replan_vehicle(vehicle, window_close, &self.engine);
        }
    }

    /// Drains the event schedule up to `window_close` and applies what
    /// fired: overlay swaps plus in-flight re-timing for traffic changes,
    /// route repair for cancellations / prep delays / shift churn.
    fn apply_events(&mut self, window_close: TimePoint, out: &mut Vec<DispatchOutput>) {
        let window_open = window_close - self.config.accumulation_window;
        let fired = self.schedule.advance_to(window_close);
        if fired.traffic_changed {
            // Diff-based render: only changed disruption footprints are
            // reapplied (debug-asserted against a full rebuild).
            let overlay = self.schedule.render_overlay(self.engine.network());
            if self.schedule.traffic_active() {
                self.engine.set_overlay(overlay);
            } else {
                self.engine.clear_overlay();
            }
            self.collector.set_disruption_active(self.schedule.traffic_active());
            // In-flight itineraries were expanded at the old speeds; re-time
            // (and, where the planner prefers, re-route) every en-route
            // vehicle so fleet physics track the perturbed oracle.
            for vehicle in self.vehicles.iter_mut().filter(|v| v.is_en_route()) {
                replan_vehicle(vehicle, window_open, &self.engine);
            }
        }
        for event in fired.fired {
            match event.kind {
                EventKind::OrderCancelled { order } => {
                    let picked_up = self
                        .vehicles
                        .iter()
                        .any(|v| v.carried.iter().any(|c| c.picked_up && c.order.id == order));
                    if picked_up
                        || self.delivered.contains(&order)
                        || self.cancelled_ids.contains(&order)
                    {
                        // Too late (food already on board or done) or a
                        // duplicate event: the platform delivers.
                        continue;
                    }
                    if let Some(pos) = self.pending.iter().position(|o| o.id == order) {
                        self.pending.remove(pos);
                    } else if let Some(vi) = self
                        .vehicles
                        .iter()
                        .position(|v| v.carried.iter().any(|c| !c.picked_up && c.order.id == order))
                    {
                        // Route repair: drop the stop pair and replan the
                        // rest of the vehicle's load.
                        self.vehicles[vi].remove_unpicked(order);
                        replan_vehicle(&mut self.vehicles[vi], window_open, &self.engine);
                    } else if !self.known.contains_key(&order)
                        || self.assigned_or_done.contains(&order)
                    {
                        // Unknown order, or already rejected.
                        continue;
                    } else {
                        // Placed later in the stream: remember to swallow it
                        // on arrival.
                        self.cancel_requested.insert(order);
                    }
                    self.cancelled_ids.insert(order);
                    self.assigned_or_done.insert(order);
                    self.collector.record_cancellation(order);
                    out.push(DispatchOutput::Cancelled { order, at: event.at });
                }
                EventKind::PrepDelay { order, extra } => {
                    if let Some(o) = self.pending.iter_mut().find(|o| o.id == order) {
                        o.prep_time += extra;
                    } else if let Some(vi) = self
                        .vehicles
                        .iter()
                        .position(|v| v.carried.iter().any(|c| !c.picked_up && c.order.id == order))
                    {
                        let vehicle = &mut self.vehicles[vi];
                        for carried in vehicle.carried.iter_mut().filter(|c| c.order.id == order) {
                            carried.order.prep_time += extra;
                        }
                        // The planned wait at the restaurant is stale.
                        replan_vehicle(vehicle, window_open, &self.engine);
                    } else if self.known.contains_key(&order)
                        && !self.assigned_or_done.contains(&order)
                        && !self.cancel_requested.contains(&order)
                    {
                        *self.prep_delay_pending.entry(order).or_insert(Duration::ZERO) += extra;
                    }
                    // Picked-up or finished orders are unaffected.
                }
                EventKind::VehicleOffShift { vehicle } => {
                    if let Some(&vi) = self.vehicle_index.get(&vehicle) {
                        let state = &mut self.vehicles[vi];
                        if state.on_shift {
                            state.on_shift = false;
                            // Unpicked orders re-enter the pool; the vehicle
                            // finishes what is on board.
                            let released = state.take_unpicked();
                            if !released.is_empty() {
                                self.pending.extend(released);
                                replan_vehicle(state, window_open, &self.engine);
                            }
                        }
                    }
                }
                EventKind::VehicleOnShift { vehicle, location } => {
                    match self.vehicle_index.get(&vehicle) {
                        Some(&vi) => self.vehicles[vi].on_shift = true,
                        None => {
                            self.vehicle_index.insert(vehicle, self.vehicles.len());
                            self.vehicles.push(VehicleState::new(vehicle, location));
                        }
                    }
                }
                EventKind::Traffic(_) => {
                    unreachable!("traffic events are absorbed by the schedule")
                }
            }
        }
    }

    /// Final accounting when the run ends: pending and never-arrived orders
    /// are rejected (with `Rejected` outputs); orders still on a vehicle
    /// are recorded as undelivered in the report only (see
    /// [`DispatchOutput::Rejected`]); the shared engine is handed back
    /// overlay-free for the next run.
    fn finalize(&mut self, out: &mut Vec<DispatchOutput>) {
        self.finished = true;
        if self.engine.has_overlay() {
            self.engine.clear_overlay();
        }
        for order in &self.pending {
            self.collector.record_rejection(order.id);
            out.push(DispatchOutput::Rejected { order: order.id, at: self.window_close });
        }
        for vehicle in &self.vehicles {
            for carried in &vehicle.carried {
                if !self.delivered.contains(&carried.order.id) {
                    self.collector.record_undelivered(carried.order.id);
                }
            }
        }
        for order in &self.orders {
            if !self.delivered.contains(&order.id)
                && !self.assigned_or_done.contains(&order.id)
                && !self.pending.iter().any(|p| p.id == order.id)
            {
                // Orders that never even entered a window (horizon cut short).
                self.collector.record_rejection(order.id);
                out.push(DispatchOutput::Rejected { order: order.id, at: self.window_close });
            }
        }
    }
}

/// Re-plans `vehicle`'s quickest route for its current carried set from its
/// current location at `now`, replacing the edge-level itinerary. Used both
/// by the assignment step and by event-driven route repair (cancellations,
/// prep delays, shift ends).
fn replan_vehicle(vehicle: &mut VehicleState, now: TimePoint, engine: &ShortestPathEngine) {
    let planned: Vec<PlannedOrder> = vehicle
        .carried
        .iter()
        .map(|c| PlannedOrder { order: c.order, picked_up: c.picked_up })
        .collect();
    let carried = vehicle.carried.clone();
    let route = plan_optimal_route(vehicle.location, now, &planned, engine).unwrap_or_else(|| {
        foodmatch_core::EvaluatedRoute {
            plan: foodmatch_core::RoutePlan::empty(),
            cost_secs: 0.0,
            driving_time: Duration::ZERO,
            waiting_time: Duration::ZERO,
            deliveries: Vec::new(),
            start_node: vehicle.location,
            finish_at: now,
        }
    });
    vehicle.install_plan(carried, &route, now, engine);
}

#[cfg(test)]
mod tests {
    use super::*;
    use foodmatch_core::codec::Codec;
    use foodmatch_core::policies::{FoodMatchPolicy, GreedyPolicy};
    use foodmatch_events::{DisruptionCause, TrafficDisruption};
    use foodmatch_roadnet::generators::GridCityBuilder;
    use foodmatch_roadnet::CongestionProfile;

    fn grid() -> (ShortestPathEngine, GridCityBuilder) {
        let b =
            GridCityBuilder::new(8, 8).congestion(CongestionProfile::free_flow()).major_every(0);
        (ShortestPathEngine::cached(b.build()), b)
    }

    fn order(id: u64, r: NodeId, c: NodeId, placed: TimePoint) -> Order {
        Order::new(OrderId(id), r, c, placed, 1, Duration::from_mins(8.0))
    }

    fn service(
        engine: &ShortestPathEngine,
        b: &GridCityBuilder,
        policy: impl DispatchPolicy,
    ) -> DispatchService<impl DispatchPolicy> {
        let start = TimePoint::from_hms(12, 0, 0);
        DispatchService::new(
            engine.clone(),
            vec![(VehicleId(0), b.node_at(0, 0)), (VehicleId(1), b.node_at(7, 7))],
            policy,
            DispatchConfig::default(),
            start,
            start + Duration::from_hours(1.0),
            Duration::from_hours(3.0),
        )
    }

    #[test]
    fn streaming_submission_delivers_and_emits_typed_events() {
        let (engine, b) = grid();
        let mut svc = service(&engine, &b, FoodMatchPolicy::new());
        let start = svc.now();
        assert!(svc.submit_order(order(1, b.node_at(1, 1), b.node_at(5, 1), start)).is_accepted());
        assert_eq!(
            svc.submit_order(order(1, b.node_at(1, 1), b.node_at(5, 1), start)),
            SubmitOutcome::Duplicate,
            "dup id"
        );

        // Step a few windows, submitting the second order mid-run.
        let mut outputs = svc.advance_to(start + Duration::from_mins(6.0)).into_outputs();
        assert!(svc
            .submit_order(order(
                2,
                b.node_at(6, 6),
                b.node_at(2, 6),
                start + Duration::from_mins(7.0)
            ))
            .is_accepted());
        outputs.extend(svc.advance_to(svc.drain_deadline()));
        let report = svc.report();
        assert!(svc.is_finished());
        assert_eq!(report.total_orders, 2);
        assert_eq!(report.delivered.len(), 2);
        for id in [1u64, 2] {
            assert!(outputs
                .iter()
                .any(|o| matches!(o, DispatchOutput::Delivered { order, .. } if order.0 == id)));
            assert!(outputs
                .iter()
                .any(|o| matches!(o, DispatchOutput::PickedUp { order, .. } if order.0 == id)));
        }
    }

    #[test]
    fn outputs_are_consistent_with_the_report() {
        let (engine, b) = grid();
        let mut svc = service(&engine, &b, FoodMatchPolicy::new());
        let start = svc.now();
        for i in 0..4 {
            let _ = svc.submit_order(order(
                i,
                b.node_at(1 + (i % 3) as usize, 1),
                b.node_at(5, 1 + (i % 4) as usize),
                start + Duration::from_mins(1.0 + i as f64),
            ));
        }
        let mut delivered = 0;
        let mut assigned = 0;
        let mut windows = 0;
        let mut clock = start;
        while !svc.is_finished() {
            clock += svc.config().accumulation_window;
            for output in svc.advance_to(clock) {
                match output {
                    DispatchOutput::Delivered { .. } => delivered += 1,
                    DispatchOutput::Assigned { .. } => assigned += 1,
                    DispatchOutput::WindowClosed { .. } => windows += 1,
                    _ => {}
                }
            }
        }
        let report = svc.report();
        assert_eq!(delivered, report.delivered.len());
        assert!(assigned >= report.delivered.len(), "every delivery was assigned first");
        assert_eq!(windows, report.windows.len());
    }

    #[test]
    fn snapshot_tracks_the_run_and_never_disturbs_it() {
        let (engine, b) = grid();
        let mut svc = service(&engine, &b, GreedyPolicy::new());
        let start = svc.now();
        let _ = svc.submit_order(order(1, b.node_at(1, 1), b.node_at(5, 1), start));
        let before = svc.snapshot();
        assert_eq!(before.submitted, 1);
        assert_eq!(before.queued, 1);
        assert!(!before.finished);
        svc.run_to_completion();
        let after = svc.snapshot();
        assert!(after.finished);
        assert_eq!(after.delivered, 1);
        assert_eq!(after.queued, 0);
        assert_eq!(svc.report().delivered.len(), 1);
    }

    #[test]
    fn live_traffic_ingest_slows_deliveries() {
        let (engine, b) = grid();
        let start = TimePoint::from_hms(12, 0, 0);
        let o = order(1, b.node_at(1, 1), b.node_at(6, 1), start + Duration::from_mins(1.0));

        let mut calm = service(&engine, &b, GreedyPolicy::new());
        let _ = calm.submit_order(o);
        let calm_report = calm.run_to_completion();

        let mut slow = service(&engine, &b, GreedyPolicy::new());
        let _ = slow.submit_order(o);
        // The surge is ingested live, mid-run, after the first window.
        let _ = slow.advance_to(start + Duration::from_mins(3.0));
        let _ = slow.ingest_event(DisruptionEvent::new(
            start + Duration::from_mins(4.0),
            EventKind::Traffic(TrafficDisruption::city_wide(
                DisruptionCause::Rain,
                6.0,
                start + Duration::from_hours(4.0),
            )),
        ));
        let slow_report = slow.run_to_completion();
        assert_eq!(slow_report.delivered.len(), 1);
        assert!(
            slow_report.delivered[0].delivered_at > calm_report.delivered[0].delivered_at,
            "a live-ingested 6x surge must delay the delivery"
        );
        assert!(!engine.has_overlay(), "the engine is handed back clean");
    }

    #[test]
    fn finished_service_refuses_input() {
        let (engine, b) = grid();
        let mut svc = service(&engine, &b, GreedyPolicy::new());
        svc.run_to_completion();
        assert!(svc.is_finished());
        assert_eq!(
            svc.submit_order(order(9, b.node_at(1, 1), b.node_at(5, 1), svc.now())),
            SubmitOutcome::ServiceFinished
        );
        assert_eq!(
            svc.ingest_event(DisruptionEvent::new(
                svc.now(),
                EventKind::OrderCancelled { order: OrderId(9) },
            )),
            IngestOutcome::ServiceFinished
        );
        assert!(svc.advance_to(svc.drain_deadline()).is_empty());
    }

    #[test]
    fn zero_length_horizon_is_a_drain_only_service() {
        let (engine, b) = grid();
        let start = TimePoint::from_hms(12, 0, 0);
        let mut svc = DispatchService::new(
            engine.clone(),
            vec![(VehicleId(0), b.node_at(0, 0))],
            GreedyPolicy::new(),
            DispatchConfig::default(),
            start,
            start,
            Duration::from_hours(1.0),
        );
        let _ = svc.submit_order(order(1, b.node_at(1, 1), b.node_at(5, 1), start));
        let report = svc.run_to_completion();
        assert_eq!(report.delivered.len(), 1, "the drain phase still dispatches");
    }

    #[test]
    fn late_submission_is_pulled_into_the_next_window() {
        let (engine, b) = grid();
        let mut svc = service(&engine, &b, GreedyPolicy::new());
        let start = svc.now();
        let _ = svc.advance_to(start + Duration::from_mins(9.0));
        // Placed in the (already processed) past: enters the next window.
        let _ = svc.submit_order(order(1, b.node_at(1, 1), b.node_at(5, 1), start));
        let report = svc.run_to_completion();
        assert_eq!(report.total_orders, 1);
        assert_eq!(report.delivered.len(), 1);
    }

    #[test]
    fn advancing_backwards_is_a_typed_out_of_order_status() {
        let (engine, b) = grid();
        let mut svc = service(&engine, &b, GreedyPolicy::new());
        let start = svc.now();
        let _ = svc.advance_to(start + Duration::from_mins(9.0));
        let clock = svc.now();

        // The stale target that used to no-op silently now names itself.
        let outcome = svc.advance_to(start + Duration::from_mins(3.0));
        assert!(outcome.is_out_of_order());
        assert!(outcome.is_empty());
        match outcome.status {
            AdvanceStatus::OutOfOrder { requested, clock: reported } => {
                assert_eq!(requested, start + Duration::from_mins(3.0));
                assert_eq!(reported, clock);
            }
            other => panic!("expected OutOfOrder, got {other:?}"),
        }
        // The rejection changed nothing: the clock and the run go on.
        assert_eq!(svc.now(), clock);
        let report = svc.run_to_completion();
        assert_eq!(report.total_orders, 0);
    }

    #[test]
    fn checkpoint_restore_mid_run_completes_identically() {
        let (engine, b) = grid();
        let start = TimePoint::from_hms(12, 0, 0);
        fn fresh(
            engine: &ShortestPathEngine,
            b: &GridCityBuilder,
            start: TimePoint,
        ) -> DispatchService<FoodMatchPolicy> {
            let mut svc = DispatchService::new(
                engine.clone(),
                vec![(VehicleId(0), b.node_at(0, 0)), (VehicleId(1), b.node_at(7, 7))],
                FoodMatchPolicy::new(),
                DispatchConfig::default(),
                start,
                start + Duration::from_hours(1.0),
                Duration::from_hours(3.0),
            );
            for i in 0..5u64 {
                let _ = svc.submit_order(Order::new(
                    OrderId(i),
                    b.node_at(1 + (i % 3) as usize, 1),
                    b.node_at(5, 1 + (i % 4) as usize),
                    start + Duration::from_mins(1.0 + 4.0 * i as f64),
                    1,
                    Duration::from_mins(8.0),
                ));
            }
            let _ = svc.ingest_event(DisruptionEvent::new(
                start + Duration::from_mins(5.0),
                EventKind::Traffic(TrafficDisruption::city_wide(
                    DisruptionCause::Rain,
                    1.5,
                    start + Duration::from_mins(30.0),
                )),
            ));
            svc
        }
        fn normalized(mut report: crate::SimulationReport) -> crate::SimulationReport {
            for window in &mut report.windows {
                window.compute_secs = 0.0;
                window.overflown = false;
            }
            report
        }

        let golden_report = fresh(&engine, &b, start).run_to_completion();

        // The same run, interrupted mid-disruption by a checkpoint + a
        // restore into a fresh service (round-tripped through bytes).
        let mut svc = fresh(&engine, &b, start);
        let _ = svc.advance_to(start + Duration::from_mins(12.0));
        let checkpoint = svc.checkpoint();
        assert!(!checkpoint.is_finished());
        assert_eq!(checkpoint.clock(), svc.now());
        drop(svc);

        let bytes = checkpoint.to_bytes();
        let revived = ServiceCheckpoint::from_bytes(&bytes).expect("round trip");
        let mut restored =
            DispatchService::restore(engine.clone(), FoodMatchPolicy::new(), &revived);
        assert_eq!(restored.now(), revived.clock());
        let report = restored.run_to_completion();
        assert_eq!(
            normalized(report),
            normalized(golden_report),
            "a restored service must finish the identical run"
        );
        assert!(!engine.has_overlay(), "the engine is handed back clean after restore");
    }
}
