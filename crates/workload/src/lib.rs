//! # foodmatch-workload
//!
//! Synthetic workload generation for the FoodMatch reproduction: city
//! presets shaped after Table II of the paper, a diurnal demand model with
//! the lunch/dinner peaks of Fig. 6(a), spatially clustered restaurants with
//! per-restaurant Gaussian preparation times, a scenario builder that turns
//! all of it into a runnable [`foodmatch_sim::Simulation`], disruption
//! profiles ([`EventScheduleBuilder`], presets `calm` / `rainy_evening` /
//! `incident_heavy`) that script the dynamic-events subsystem against a
//! generated scenario, and [`OrderSource`] streams ([`ReplayOrderSource`],
//! the closed-loop [`PoissonOrderSource`]) that drive the online
//! [`foodmatch_sim::DispatchService`] with demand that is not materialised
//! in advance.
//!
//! ```no_run
//! use foodmatch_workload::{CityId, Scenario, ScenarioOptions};
//! use foodmatch_core::FoodMatchPolicy;
//!
//! let scenario = Scenario::generate(CityId::A, ScenarioOptions::lunch_peak(1));
//! let report = scenario.into_simulation().run(&mut FoodMatchPolicy::new());
//! println!("delivered {} orders", report.delivered.len());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod city;
pub mod demand;
pub mod disruptions;
pub mod metro;
pub mod scenario;
pub mod source;

pub use city::{CityId, CityPreset};
pub use disruptions::{DisruptionPreset, EventScheduleBuilder};
pub use metro::{MetroOptions, MetroScenario};
pub use scenario::{CityStats, GeneratedCity, Restaurant, Scenario, ScenarioOptions};
pub use source::{OrderSource, PoissonOrderSource, ReplayOrderSource};
