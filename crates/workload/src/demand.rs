//! Diurnal demand model.
//!
//! Fig. 6(a) of the paper plots the order-to-vehicle ratio per hourly
//! timeslot: demand is negligible overnight, climbs through the morning, and
//! peaks sharply at lunch (12:00–15:00) and dinner (19:00–22:00), with City
//! B showing the highest peaks. [`HOURLY_WEIGHTS`] encodes that shape as a
//! probability distribution over the 24 hour slots; the order generator
//! multiplies it by a preset's daily order count and draws arrival times
//! within each hour.
//!
//! The module also provides the small random-variate helpers used elsewhere
//! in the workload generator (a Box–Muller Gaussian, so we do not need an
//! extra distribution crate).

use foodmatch_roadnet::HourSlot;
use rand::Rng;

/// Relative order volume per hour of day (sums to 1).
///
/// The shape follows Fig. 6(a): near-zero overnight, a small breakfast bump,
/// a lunch peak around 12:00–14:00 and the tallest dinner peak around
/// 19:00–21:00.
pub const HOURLY_WEIGHTS: [f64; 24] = [
    0.004, 0.002, 0.001, 0.001, 0.001, 0.002, 0.006, 0.014, 0.028, 0.040, 0.050, 0.072, 0.094,
    0.086, 0.058, 0.040, 0.038, 0.048, 0.070, 0.104, 0.096, 0.076, 0.046, 0.023,
];

/// Returns the fraction of the day's orders that arrive in `slot`.
pub fn hourly_weight(slot: HourSlot) -> f64 {
    HOURLY_WEIGHTS[slot.index()]
}

/// Expected number of orders in each hour slot for a daily total.
pub fn expected_orders_by_slot(orders_per_day: usize) -> [f64; 24] {
    let mut out = [0.0; 24];
    for (h, w) in HOURLY_WEIGHTS.iter().enumerate() {
        out[h] = w * orders_per_day as f64;
    }
    out
}

/// A sample from the standard normal distribution (Box–Muller transform).
pub fn standard_normal(rng: &mut impl Rng) -> f64 {
    loop {
        let u1: f64 = rng.random_range(f64::EPSILON..1.0);
        let u2: f64 = rng.random_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        if z.is_finite() {
            return z;
        }
    }
}

/// A sample from `N(mean, std_dev)` clamped to `[min, max]`.
pub fn clamped_normal(rng: &mut impl Rng, mean: f64, std_dev: f64, min: f64, max: f64) -> f64 {
    (mean + std_dev * standard_normal(rng)).clamp(min, max)
}

/// Samples the number of orders arriving in one hour as a Poisson variate
/// with the given mean (inversion by sequential search — means here are far
/// below the range where that becomes inaccurate or slow).
pub fn poisson(rng: &mut impl Rng, mean: f64) -> usize {
    if mean <= 0.0 {
        return 0;
    }
    if mean > 60.0 {
        // Normal approximation for large means keeps this O(1).
        return clamped_normal(rng, mean, mean.sqrt(), 0.0, mean * 3.0).round() as usize;
    }
    let threshold = (-mean).exp();
    let mut count = 0usize;
    let mut product: f64 = rng.random_range(0.0..1.0);
    while product > threshold {
        count += 1;
        product *= rng.random_range(0.0_f64..1.0);
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn weights_form_a_distribution() {
        let sum: f64 = HOURLY_WEIGHTS.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "weights sum to {sum}");
        assert!(HOURLY_WEIGHTS.iter().all(|&w| w >= 0.0));
    }

    #[test]
    fn peaks_are_at_lunch_and_dinner() {
        let lunch = hourly_weight(HourSlot::new(12));
        let dinner = hourly_weight(HourSlot::new(19));
        let night = hourly_weight(HourSlot::new(3));
        let morning = hourly_weight(HourSlot::new(9));
        assert!(lunch > morning);
        assert!(dinner > morning);
        assert!(dinner >= lunch);
        assert!(night < 0.01);
        // The dinner peak is the global maximum, as in Fig. 6(a).
        let max = HOURLY_WEIGHTS.iter().cloned().fold(0.0_f64, f64::max);
        assert_eq!(max, hourly_weight(HourSlot::new(19)));
    }

    #[test]
    fn expected_orders_scale_with_daily_total() {
        let by_slot = expected_orders_by_slot(1000);
        let total: f64 = by_slot.iter().sum();
        assert!((total - 1000.0).abs() < 1e-6);
        assert!(by_slot[19] > by_slot[9]);
    }

    #[test]
    fn standard_normal_has_reasonable_moments() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.08, "variance {var}");
    }

    #[test]
    fn clamped_normal_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let x = clamped_normal(&mut rng, 10.0, 5.0, 2.0, 25.0);
            assert!((2.0..=25.0).contains(&x));
        }
    }

    #[test]
    fn poisson_mean_is_roughly_right() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 5_000;
        let mean_param = 7.5;
        let total: usize = (0..n).map(|_| poisson(&mut rng, mean_param)).sum();
        let empirical = total as f64 / n as f64;
        assert!((empirical - mean_param).abs() < 0.25, "empirical mean {empirical}");
        assert_eq!(poisson(&mut rng, 0.0), 0);
        // Large-mean path stays close too.
        let total: usize = (0..2_000).map(|_| poisson(&mut rng, 120.0)).sum();
        let empirical = total as f64 / 2_000.0;
        assert!((empirical - 120.0).abs() < 3.0, "empirical mean {empirical}");
    }
}
