//! Order sources: demand as a *stream* instead of a pre-materialized list.
//!
//! The online [`DispatchService`](foodmatch_sim::DispatchService) is driven
//! by submitting orders as they are placed; [`OrderSource`] is the supply
//! side of that interface. A driver loop polls the source once per tick and
//! submits whatever arrived:
//!
//! ```
//! use foodmatch_core::FoodMatchPolicy;
//! use foodmatch_roadnet::Duration;
//! use foodmatch_workload::{CityId, OrderSource, PoissonOrderSource, Scenario, ScenarioOptions};
//!
//! let mut options = ScenarioOptions::lunch_peak(7);
//! options.end = options.start + Duration::from_mins(9.0);
//! let scenario = Scenario::generate(CityId::GrubHub, options);
//! let mut source = PoissonOrderSource::new(&scenario, 42);
//! let sim = scenario.into_simulation();
//! let mut service = sim.service(FoodMatchPolicy::new());
//! while !service.is_finished() {
//!     let tick = service.now() + service.config().accumulation_window;
//!     for order in source.poll(tick) {
//!         assert!(service.submit_order(order).is_accepted());
//!     }
//!     service.advance_to(tick);
//! }
//! let report = service.report();
//! assert_eq!(
//!     report.delivered.len() + report.rejected.len() + report.undelivered.len(),
//!     report.total_orders,
//! );
//! ```
//!
//! Two implementations ship here:
//!
//! * [`ReplayOrderSource`] — replays a pre-materialized stream (a
//!   [`Scenario`]'s order list, a recorded day) in placement order; the
//!   bridge between the batch world and the streaming API.
//! * [`PoissonOrderSource`] — *closed-loop live demand*: orders do not
//!   exist until the clock reaches them. Arrivals follow the diurnal
//!   non-homogeneous Poisson process of the scenario generator
//!   ([`HOURLY_WEIGHTS`](crate::demand::HOURLY_WEIGHTS) × the city's daily
//!   volume), restaurants are drawn by popularity and customers within the
//!   delivery radius — but the draw happens at poll time, so a driver can
//!   run the service against demand no scenario file ever materialised
//!   (and, because the process is seeded, still reproduce the day exactly).

use crate::demand::poisson;
use crate::scenario::{draw_order, Restaurant, Scenario};
use foodmatch_core::{Order, OrderId};
use foodmatch_roadnet::{Duration, NodeId, RoadNetwork, TimePoint};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A stream of orders, polled forward in time by a service driver.
///
/// Implementations must be deterministic for a given construction (same
/// polls → same orders) and must return each order exactly once, with
/// `placed_at` inside the polled interval and non-decreasing across calls.
pub trait OrderSource {
    /// Drains every order placed up to (and including) `until`, in
    /// `(placed_at, id)` order. Subsequent calls continue after `until`;
    /// polling backwards yields nothing.
    fn poll(&mut self, until: TimePoint) -> Vec<Order>;

    /// True once the source can never produce another order.
    fn is_exhausted(&self) -> bool;
}

/// Replays a pre-materialized order stream (sorted internally).
#[derive(Clone, Debug)]
pub struct ReplayOrderSource {
    orders: Vec<Order>,
    cursor: usize,
}

impl ReplayOrderSource {
    /// Wraps any order list; the stream is sorted by `(placed_at, id)`.
    pub fn new(mut orders: Vec<Order>) -> Self {
        orders.sort_by(|a, b| a.placed_at.cmp(&b.placed_at).then(a.id.cmp(&b.id)));
        ReplayOrderSource { orders, cursor: 0 }
    }

    /// Replays a generated scenario's order stream.
    pub fn from_scenario(scenario: &Scenario) -> Self {
        ReplayOrderSource::new(scenario.orders.clone())
    }

    /// Orders not yet polled.
    pub fn remaining(&self) -> usize {
        self.orders.len() - self.cursor
    }
}

impl OrderSource for ReplayOrderSource {
    fn poll(&mut self, until: TimePoint) -> Vec<Order> {
        let from = self.cursor;
        while self.cursor < self.orders.len() && self.orders[self.cursor].placed_at <= until {
            self.cursor += 1;
        }
        self.orders[from..self.cursor].to_vec()
    }

    fn is_exhausted(&self) -> bool {
        self.cursor >= self.orders.len()
    }
}

/// Closed-loop live demand: a seeded non-homogeneous Poisson arrival
/// process over a generated city's restaurant directory. See the
/// [module docs](self).
#[derive(Clone, Debug)]
pub struct PoissonOrderSource {
    rng: StdRng,
    network: RoadNetwork,
    nodes: Vec<NodeId>,
    restaurants: Vec<Restaurant>,
    total_popularity: f64,
    orders_per_day: usize,
    /// Demand generated so far covers `(start, cursor]`.
    cursor: TimePoint,
    end: TimePoint,
    next_id: u64,
}

impl PoissonOrderSource {
    /// A live source over `scenario`'s city, covering the scenario's
    /// horizon at the city preset's daily volume. The `seed` is independent
    /// of the scenario's: two sources with different seeds are two
    /// different demand days over the same city.
    pub fn new(scenario: &Scenario, seed: u64) -> Self {
        PoissonOrderSource {
            rng: StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9).wrapping_add(0xF00D)),
            network: scenario.city.network.clone(),
            nodes: scenario.city.network.node_ids().collect(),
            restaurants: scenario.city.restaurants.clone(),
            total_popularity: scenario.city.restaurants.iter().map(|r| r.popularity).sum(),
            orders_per_day: scenario.city.preset.orders_per_day,
            cursor: scenario.options.start,
            end: scenario.options.end,
            next_id: 0,
        }
    }

    /// Scales the expected daily order volume (builder style).
    pub fn with_orders_per_day(mut self, orders_per_day: usize) -> Self {
        self.orders_per_day = orders_per_day;
        self
    }

    /// Sets the first order id this source will hand out (builder style);
    /// useful when mixing a live source with replayed demand.
    pub fn with_first_id(mut self, first: u64) -> Self {
        self.next_id = first;
        self
    }

    /// The id the next generated order will get.
    pub fn next_id(&self) -> u64 {
        self.next_id
    }
}

impl OrderSource for PoissonOrderSource {
    fn poll(&mut self, until: TimePoint) -> Vec<Order> {
        let target = until.min(self.end);
        if target <= self.cursor {
            return Vec::new();
        }
        let mut orders = Vec::new();
        for hour in 0..24u32 {
            let slot_start = TimePoint::from_hms(hour, 0, 0);
            let slot_end = TimePoint::from_hms(hour, 59, 59) + Duration::from_secs_f64(1.0);
            // Overlap of this hour with the freshly uncovered interval.
            let lo = self.cursor.max(slot_start);
            let hi = target.min(slot_end);
            if hi <= lo {
                continue;
            }
            let overlap_fraction = (hi - lo).as_secs_f64() / 3_600.0;
            let expected = self.orders_per_day as f64
                * crate::demand::HOURLY_WEIGHTS[hour as usize]
                * overlap_fraction;
            let count = poisson(&mut self.rng, expected);
            for _ in 0..count {
                let placed_at = lo
                    + Duration::from_secs_f64(self.rng.random_range(0.0..(hi - lo).as_secs_f64()));
                // The exact same per-order draw as the batch generator.
                orders.push(draw_order(
                    &self.network,
                    &self.nodes,
                    &self.restaurants,
                    self.total_popularity,
                    OrderId(self.next_id),
                    placed_at,
                    hour,
                    &mut self.rng,
                ));
                self.next_id += 1;
            }
        }
        self.cursor = target;
        orders.sort_by(|a, b| a.placed_at.cmp(&b.placed_at).then(a.id.cmp(&b.id)));
        orders
    }

    fn is_exhausted(&self) -> bool {
        self.cursor >= self.end
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CityId, ScenarioOptions};

    fn scenario() -> Scenario {
        Scenario::generate(
            CityId::GrubHub,
            ScenarioOptions {
                seed: 3,
                start: TimePoint::from_hms(12, 0, 0),
                end: TimePoint::from_hms(13, 0, 0),
                vehicle_fraction: 1.0,
            },
        )
    }

    #[test]
    fn replay_source_streams_the_scenario_in_order() {
        let s = scenario();
        let mut source = ReplayOrderSource::from_scenario(&s);
        let total = s.orders.len();
        assert_eq!(source.remaining(), total);

        let mut seen = Vec::new();
        let mut tick = s.options.start;
        while !source.is_exhausted() {
            tick += Duration::from_mins(5.0);
            for order in source.poll(tick) {
                assert!(order.placed_at <= tick);
                seen.push(order);
            }
        }
        assert_eq!(seen.len(), total);
        assert!(seen
            .windows(2)
            .all(|w| { (w[0].placed_at, w[0].id) <= (w[1].placed_at, w[1].id) }));
        // The stream content matches the scenario's batch list.
        let mut expected = s.orders.clone();
        expected.sort_by(|a, b| a.placed_at.cmp(&b.placed_at).then(a.id.cmp(&b.id)));
        assert_eq!(seen, expected);
        assert!(source.poll(tick + Duration::from_hours(2.0)).is_empty());
    }

    #[test]
    fn poisson_source_is_deterministic_per_seed_and_tick_pattern() {
        let s = scenario();
        let drain = |mut source: PoissonOrderSource, step_mins: f64| -> Vec<Order> {
            let mut out = Vec::new();
            let mut tick = s.options.start;
            while !source.is_exhausted() {
                tick += Duration::from_mins(step_mins);
                out.extend(source.poll(tick));
            }
            out
        };
        let a = drain(PoissonOrderSource::new(&s, 42), 3.0);
        let b = drain(PoissonOrderSource::new(&s, 42), 3.0);
        assert_eq!(a, b, "same seed, same ticks, same demand");
        let c = drain(PoissonOrderSource::new(&s, 43), 3.0);
        assert_ne!(a, c, "a different seed is a different day");
    }

    #[test]
    fn poisson_orders_are_wellformed_and_inside_the_horizon() {
        let s = scenario();
        let mut source = PoissonOrderSource::new(&s, 11);
        let orders = source.poll(s.options.end + Duration::from_hours(1.0));
        assert!(source.is_exhausted());
        assert!(!orders.is_empty(), "a lunch hour of GrubHub demand is never empty");
        let restaurant_nodes: std::collections::HashSet<NodeId> =
            s.city.restaurants.iter().map(|r| r.node).collect();
        for o in &orders {
            assert!(o.placed_at >= s.options.start && o.placed_at <= s.options.end);
            assert!(restaurant_nodes.contains(&o.restaurant));
            assert!(o.customer.index() < s.city.network.node_count());
            assert!(o.items >= 1 && o.items <= 5);
            assert!(o.prep_time.as_mins_f64() >= 2.0 && o.prep_time.as_mins_f64() <= 35.0);
        }
        let mut ids: Vec<u64> = orders.iter().map(|o| o.id.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), orders.len(), "ids are unique");
    }

    #[test]
    fn poisson_volume_tracks_the_configured_rate() {
        let s = scenario();
        // One lunch hour at 10x the preset volume: expect roughly
        // 10 * orders_per_day * weight(12:00).
        let rate = 10 * s.city.preset.orders_per_day;
        let mut source = PoissonOrderSource::new(&s, 5).with_orders_per_day(rate);
        let got = source.poll(s.options.end).len() as f64;
        let expected = rate as f64 * crate::demand::HOURLY_WEIGHTS[12];
        assert!(
            (got - expected).abs() < expected * 0.35,
            "expected ≈{expected} orders in the hour, generated {got}"
        );
    }

    #[test]
    fn polling_backwards_or_past_the_end_is_a_no_op() {
        let s = scenario();
        let mut source = PoissonOrderSource::new(&s, 9).with_first_id(1000);
        assert_eq!(source.next_id(), 1000);
        let first = source.poll(s.options.start + Duration::from_mins(30.0));
        assert!(source.poll(s.options.start).is_empty(), "backwards poll yields nothing");
        let rest = source.poll(s.options.end + Duration::from_hours(5.0));
        assert!(source.is_exhausted());
        assert!(source.poll(s.options.end + Duration::from_hours(6.0)).is_empty());
        assert!(first.iter().chain(&rest).all(|o| o.id.0 >= 1000));
    }
}
