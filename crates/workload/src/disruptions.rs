//! Disruption profiles: scripted or randomly generated event schedules.
//!
//! The dynamic-events subsystem (`foodmatch-events`) defines *what* can
//! happen to a running simulation; this module decides *when and where* it
//! happens for a concrete [`Scenario`]. An [`EventScheduleBuilder`] draws a
//! seeded, deterministic stream of incidents, rain surges, order
//! cancellations, restaurant prep delays and fleet shift churn against the
//! scenario's network, order stream and fleet; the named presets
//! ([`DisruptionPreset`]) are the disruption-profile vocabulary the
//! experiments speak:
//!
//! | Preset | What it models |
//! |---|---|
//! | `calm` | the static world of the plain scenarios (no events) |
//! | `rainy_evening` | a city-wide rain surge over the back of the horizon, slow kitchens, a few incidents |
//! | `incident_heavy` | frequent localized incidents, cancellations and shift churn |

use crate::demand::poisson;
use crate::scenario::Scenario;
use foodmatch_core::VehicleId;
use foodmatch_events::{DisruptionCause, DisruptionEvent, EventKind, TrafficDisruption};
use foodmatch_roadnet::{Duration, NodeId};
use rand::rngs::StdRng;
use rand::seq::IndexedRandom;
use rand::{Rng, SeedableRng};

/// The named disruption profiles used by the experiments.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum DisruptionPreset {
    /// No disruptions at all — the baseline every disrupted day is compared
    /// against.
    Calm,
    /// A city-wide rain surge over the later part of the horizon: all roads
    /// ~40% slower, kitchens delayed, a couple of weather incidents, mild
    /// cancellation uptick.
    RainyEvening,
    /// A day of frequent localized incidents with noticeable cancellation
    /// rates and drivers churning on/off shift.
    IncidentHeavy,
}

impl DisruptionPreset {
    /// All presets, calm first (the comparison baseline).
    pub const ALL: [DisruptionPreset; 3] =
        [DisruptionPreset::Calm, DisruptionPreset::RainyEvening, DisruptionPreset::IncidentHeavy];

    /// The name used on tables, JSON keys and the command line.
    pub fn name(self) -> &'static str {
        match self {
            DisruptionPreset::Calm => "calm",
            DisruptionPreset::RainyEvening => "rainy_evening",
            DisruptionPreset::IncidentHeavy => "incident_heavy",
        }
    }

    /// The builder configured for this preset.
    pub fn builder(self, seed: u64) -> EventScheduleBuilder {
        match self {
            DisruptionPreset::Calm => EventScheduleBuilder::calm(seed),
            DisruptionPreset::RainyEvening => EventScheduleBuilder::rainy_evening(seed),
            DisruptionPreset::IncidentHeavy => EventScheduleBuilder::incident_heavy(seed),
        }
    }
}

/// Configuration of a random (but seeded, hence reproducible) disruption
/// schedule. Build one via a preset or [`EventScheduleBuilder::custom`] and
/// tweak the knobs; [`EventScheduleBuilder::build`] renders the event stream
/// for a concrete scenario.
#[derive(Clone, Debug, PartialEq)]
pub struct EventScheduleBuilder {
    /// Seed of the event stream (independent of the scenario's seed).
    pub seed: u64,
    /// Expected localized incidents per simulated hour.
    pub incidents_per_hour: f64,
    /// Radius of the node neighbourhood an incident slows down, in meters.
    pub incident_radius_m: f64,
    /// Incident slowdown factors are drawn uniformly from this range.
    pub incident_factor: (f64, f64),
    /// Incident lifetimes are drawn uniformly from this range, in minutes.
    pub incident_duration_mins: (f64, f64),
    /// A city-wide rain surge: slowdown factor and the fraction of the
    /// horizon it covers (`0.3..=1.0` = the last 70%). `None` = dry day.
    pub rain: Option<(f64, (f64, f64))>,
    /// Fraction of orders cancelled by their customers before pickup.
    pub cancellation_rate: f64,
    /// Fraction of orders whose restaurant runs late.
    pub prep_delay_rate: f64,
    /// Extra preparation time drawn uniformly from this range, in minutes.
    pub prep_delay_extra_mins: (f64, f64),
    /// Fraction of the initial fleet that ends its shift during the horizon.
    pub off_shift_fraction: f64,
    /// Fresh drivers joining mid-horizon, as a fraction of the initial fleet.
    pub on_shift_fraction: f64,
}

impl EventScheduleBuilder {
    /// No disruptions at all.
    pub fn calm(seed: u64) -> Self {
        EventScheduleBuilder {
            seed,
            incidents_per_hour: 0.0,
            incident_radius_m: 800.0,
            incident_factor: (1.5, 2.5),
            incident_duration_mins: (20.0, 50.0),
            rain: None,
            cancellation_rate: 0.0,
            prep_delay_rate: 0.0,
            prep_delay_extra_mins: (3.0, 10.0),
            off_shift_fraction: 0.0,
            on_shift_fraction: 0.0,
        }
    }

    /// A rainy evening: one city-wide surge over the back of the horizon,
    /// slow kitchens, the odd weather incident.
    pub fn rainy_evening(seed: u64) -> Self {
        EventScheduleBuilder {
            rain: Some((1.4, (0.3, 1.0))),
            incidents_per_hour: 0.5,
            incident_factor: (1.4, 2.0),
            cancellation_rate: 0.02,
            prep_delay_rate: 0.12,
            prep_delay_extra_mins: (3.0, 8.0),
            ..Self::calm(seed)
        }
    }

    /// Frequent localized incidents, cancellations and fleet churn.
    pub fn incident_heavy(seed: u64) -> Self {
        EventScheduleBuilder {
            incidents_per_hour: 3.0,
            incident_radius_m: 900.0,
            incident_factor: (1.8, 3.5),
            incident_duration_mins: (25.0, 60.0),
            cancellation_rate: 0.06,
            prep_delay_rate: 0.05,
            off_shift_fraction: 0.15,
            on_shift_fraction: 0.10,
            ..Self::calm(seed)
        }
    }

    /// A calm baseline to customise field by field.
    pub fn custom(seed: u64) -> Self {
        Self::calm(seed)
    }

    /// Renders the deterministic event stream for `scenario`. The same
    /// builder and scenario always produce the same events; different seeds
    /// produce different days.
    pub fn build(&self, scenario: &Scenario) -> Vec<DisruptionEvent> {
        let mut rng = StdRng::seed_from_u64(self.seed.wrapping_mul(0xD129_42F1).wrapping_add(17));
        let start = scenario.options.start;
        let end = scenario.options.end;
        let span = (end - start).as_secs_f64();
        let nodes: Vec<NodeId> = scenario.city.network.node_ids().collect();
        let mut events = Vec::new();

        // Localized incidents: a Poisson count over the horizon, each around
        // a random node.
        let expected = self.incidents_per_hour * span / 3_600.0;
        if expected > 0.0 {
            let count = poisson(&mut rng, expected);
            for _ in 0..count {
                let at = start + Duration::from_secs_f64(rng.random_range(0.0..span));
                let minutes =
                    rng.random_range(self.incident_duration_mins.0..=self.incident_duration_mins.1);
                let factor = rng.random_range(self.incident_factor.0..=self.incident_factor.1);
                let center = *nodes.choose(&mut rng).expect("network has nodes");
                events.push(DisruptionEvent::new(
                    at,
                    EventKind::Traffic(TrafficDisruption::localized(
                        DisruptionCause::Incident,
                        center,
                        self.incident_radius_m,
                        factor,
                        at + Duration::from_mins(minutes),
                    )),
                ));
            }
        }

        // The rain surge.
        if let Some((factor, (from_frac, to_frac))) = self.rain {
            let at = start + Duration::from_secs_f64(span * from_frac);
            let until = start + Duration::from_secs_f64(span * to_frac);
            if until > at {
                events.push(DisruptionEvent::new(
                    at,
                    EventKind::Traffic(TrafficDisruption::city_wide(
                        DisruptionCause::Rain,
                        factor,
                        until,
                    )),
                ));
            }
        }

        // Order churn: cancellations arrive a few minutes after placement
        // (sometimes too late — the simulator ignores post-pickup
        // cancellations, as the platform does); prep delays arrive while the
        // kitchen is already cooking.
        for order in &scenario.orders {
            if self.cancellation_rate > 0.0 && rng.random_bool(self.cancellation_rate) {
                let at = order.placed_at + Duration::from_mins(rng.random_range(0.5..8.0));
                events
                    .push(DisruptionEvent::new(at, EventKind::OrderCancelled { order: order.id }));
            }
            if self.prep_delay_rate > 0.0 && rng.random_bool(self.prep_delay_rate) {
                let at = order.placed_at + Duration::from_mins(rng.random_range(0.0..3.0));
                let extra = Duration::from_mins(
                    rng.random_range(self.prep_delay_extra_mins.0..=self.prep_delay_extra_mins.1),
                );
                events.push(DisruptionEvent::new(
                    at,
                    EventKind::PrepDelay { order: order.id, extra },
                ));
            }
        }

        // Fleet churn. Departures are drawn from the initial roster without
        // replacement; arrivals get fresh vehicle ids above the roster.
        let fleet = scenario.vehicle_starts.len();
        let leaving = (self.off_shift_fraction * fleet as f64).round() as usize;
        if leaving > 0 {
            let mut roster: Vec<VehicleId> =
                scenario.vehicle_starts.iter().map(|&(id, _)| id).collect();
            // Partial Fisher–Yates: the first `leaving` entries are a uniform
            // draw without replacement.
            for i in 0..leaving.min(fleet) {
                let j = rng.random_range(i..fleet);
                roster.swap(i, j);
            }
            for &vehicle in roster.iter().take(leaving) {
                // Departures happen in the middle stretch of the horizon so
                // the driver had a shift to end.
                let at = start + Duration::from_secs_f64(rng.random_range(0.25..0.9) * span);
                events.push(DisruptionEvent::new(at, EventKind::VehicleOffShift { vehicle }));
            }
        }
        let joining = (self.on_shift_fraction * fleet as f64).round() as usize;
        if joining > 0 {
            let next_id =
                scenario.vehicle_starts.iter().map(|&(id, _)| id.0).max().map_or(0, |m| m + 1);
            for i in 0..joining {
                let at = start + Duration::from_secs_f64(rng.random_range(0.1..0.75) * span);
                let location = *nodes.choose(&mut rng).expect("network has nodes");
                events.push(DisruptionEvent::new(
                    at,
                    EventKind::VehicleOnShift { vehicle: VehicleId(next_id + i as u32), location },
                ));
            }
        }

        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CityId, ScenarioOptions};

    fn scenario() -> Scenario {
        Scenario::generate(CityId::A, ScenarioOptions::lunch_peak(7))
    }

    #[test]
    fn calm_preset_is_empty() {
        let s = scenario();
        assert!(DisruptionPreset::Calm.builder(1).build(&s).is_empty());
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let s = scenario();
        let a = DisruptionPreset::IncidentHeavy.builder(3).build(&s);
        let b = DisruptionPreset::IncidentHeavy.builder(3).build(&s);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        let c = DisruptionPreset::IncidentHeavy.builder(4).build(&s);
        assert_ne!(a, c, "different seeds must disrupt differently");
    }

    #[test]
    fn events_land_inside_the_horizon_and_reference_the_scenario() {
        let s = scenario();
        let order_ids: std::collections::HashSet<_> = s.orders.iter().map(|o| o.id).collect();
        let fleet_ids: std::collections::HashSet<_> =
            s.vehicle_starts.iter().map(|&(id, _)| id).collect();
        for preset in [DisruptionPreset::RainyEvening, DisruptionPreset::IncidentHeavy] {
            for event in preset.builder(11).build(&s) {
                assert!(event.at >= s.options.start, "{preset:?}: {event:?}");
                match event.kind {
                    EventKind::Traffic(d) => {
                        assert!(d.factor >= 1.0);
                        assert!(d.until > event.at);
                        if let Some(center) = d.center {
                            assert!(center.index() < s.city.network.node_count());
                        }
                    }
                    EventKind::OrderCancelled { order } => assert!(order_ids.contains(&order)),
                    EventKind::PrepDelay { order, extra } => {
                        assert!(order_ids.contains(&order));
                        assert!(extra > Duration::ZERO);
                    }
                    EventKind::VehicleOffShift { vehicle } => {
                        assert!(fleet_ids.contains(&vehicle), "departures come from the roster");
                        assert!(event.at < s.options.end);
                    }
                    EventKind::VehicleOnShift { vehicle, location } => {
                        assert!(!fleet_ids.contains(&vehicle), "arrivals get fresh ids");
                        assert!(location.index() < s.city.network.node_count());
                    }
                }
            }
        }
    }

    #[test]
    fn rainy_evening_has_a_city_wide_surge() {
        let s = scenario();
        let events = DisruptionPreset::RainyEvening.builder(5).build(&s);
        let surge = events
            .iter()
            .find_map(|e| match e.kind {
                EventKind::Traffic(d) if d.center.is_none() => Some(d),
                _ => None,
            })
            .expect("rainy_evening must carry a rain surge");
        assert_eq!(surge.cause, DisruptionCause::Rain);
        assert!(surge.factor > 1.0);
    }

    #[test]
    fn incident_heavy_churns_orders_and_fleet() {
        let s = scenario();
        let events = DisruptionPreset::IncidentHeavy.builder(9).build(&s);
        let incidents = events.iter().filter(|e| matches!(e.kind, EventKind::Traffic(_))).count();
        let cancels =
            events.iter().filter(|e| matches!(e.kind, EventKind::OrderCancelled { .. })).count();
        let off =
            events.iter().filter(|e| matches!(e.kind, EventKind::VehicleOffShift { .. })).count();
        let on =
            events.iter().filter(|e| matches!(e.kind, EventKind::VehicleOnShift { .. })).count();
        assert!(incidents > 0, "expected incidents");
        assert!(cancels > 0, "expected cancellations");
        assert!(off > 0 && on > 0, "expected shift churn, got {off} off / {on} on");
    }
}
