//! City presets shaped like Table II of the paper.
//!
//! The paper's datasets are proprietary (Swiggy order history for three
//! anonymous Indian cities) plus the public GrubHub instances of Reyes et
//! al. The presets below are *synthetic stand-ins*: they preserve the
//! relative proportions reported in Table II — City B is the busiest with
//! the highest order-to-vehicle ratio, City C has the most restaurants but
//! fewer orders, City A is an order of magnitude smaller, GrubHub is tiny —
//! while scaling absolute volumes down (≈1/50) so a full day simulates in
//! minutes on a laptop. Mean food-preparation times match the paper exactly.

use foodmatch_roadnet::Duration;
use serde::{Deserialize, Serialize};

/// Identifier of a synthetic city preset.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum CityId {
    /// The smaller Indian city of Table II.
    A,
    /// The busiest metropolitan city (highest order volume and
    /// order-to-vehicle ratio).
    B,
    /// The largest city by restaurants and road network, with somewhat fewer
    /// orders than City B.
    C,
    /// A GrubHub-like instance: tiny volume, no learned parameters.
    GrubHub,
}

impl CityId {
    /// The three Swiggy-like cities (most experiments exclude GrubHub, as
    /// does the paper outside Fig. 6(b)).
    pub const SWIGGY: [CityId; 3] = [CityId::B, CityId::C, CityId::A];

    /// All four presets.
    pub const ALL: [CityId; 4] = [CityId::B, CityId::C, CityId::A, CityId::GrubHub];

    /// Human-readable name used in experiment output.
    pub fn name(self) -> &'static str {
        match self {
            CityId::A => "City A",
            CityId::B => "City B",
            CityId::C => "City C",
            CityId::GrubHub => "GrubHub",
        }
    }
}

/// Parameters of a synthetic city, shaped after one row of Table II.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CityPreset {
    /// Which city this is.
    pub id: CityId,
    /// Number of road-network intersections to generate.
    pub network_nodes: usize,
    /// Radius of the city in meters.
    pub radius_m: f64,
    /// Number of restaurants.
    pub restaurants: usize,
    /// Number of delivery vehicles on duty.
    pub vehicles: usize,
    /// Orders placed over a full 24-hour day.
    pub orders_per_day: usize,
    /// Mean food-preparation time (minutes) — matches Table II.
    pub mean_prep_mins: f64,
    /// Default accumulation-window length Δ for this city (§V-B: 3 min for
    /// the big cities, 1 min for City A).
    pub delta: Duration,
    /// Base RNG seed for the preset (combined with the caller's seed).
    pub base_seed: u64,
}

impl CityPreset {
    /// The preset for `city`.
    pub fn of(city: CityId) -> Self {
        match city {
            CityId::B => CityPreset {
                id: CityId::B,
                network_nodes: 1200,
                radius_m: 7_000.0,
                restaurants: 140,
                vehicles: 110,
                orders_per_day: 1500,
                mean_prep_mins: 9.34,
                delta: Duration::from_mins(3.0),
                base_seed: 0xB,
            },
            CityId::C => CityPreset {
                id: CityId::C,
                network_nodes: 1500,
                radius_m: 8_000.0,
                restaurants: 170,
                vehicles: 90,
                orders_per_day: 1050,
                mean_prep_mins: 10.22,
                delta: Duration::from_mins(3.0),
                base_seed: 0xC,
            },
            CityId::A => CityPreset {
                id: CityId::A,
                network_nodes: 550,
                radius_m: 4_000.0,
                restaurants: 45,
                vehicles: 23,
                orders_per_day: 230,
                mean_prep_mins: 8.45,
                delta: Duration::from_mins(1.0),
                base_seed: 0xA,
            },
            CityId::GrubHub => CityPreset {
                id: CityId::GrubHub,
                network_nodes: 144,
                radius_m: 2_500.0,
                restaurants: 10,
                vehicles: 16,
                orders_per_day: 100,
                mean_prep_mins: 19.55,
                delta: Duration::from_mins(3.0),
                base_seed: 0x6,
            },
        }
    }

    /// The presets of all four cities.
    pub fn all() -> Vec<CityPreset> {
        CityId::ALL.iter().map(|&c| CityPreset::of(c)).collect()
    }

    /// Mean daily orders per vehicle — the "pressure" that distinguishes the
    /// cities in the paper (highest in City B).
    pub fn orders_per_vehicle(&self) -> f64 {
        self.orders_per_day as f64 / self.vehicles as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_preserve_table2_ordering() {
        let a = CityPreset::of(CityId::A);
        let b = CityPreset::of(CityId::B);
        let c = CityPreset::of(CityId::C);
        let g = CityPreset::of(CityId::GrubHub);

        // City B fulfils the most orders and has the highest pressure.
        assert!(b.orders_per_day > c.orders_per_day);
        assert!(c.orders_per_day > a.orders_per_day);
        assert!(a.orders_per_day > g.orders_per_day);
        assert!(b.orders_per_vehicle() > c.orders_per_vehicle());
        assert!(b.orders_per_vehicle() > a.orders_per_vehicle());

        // City C has the most restaurants and the largest road network.
        assert!(c.restaurants > b.restaurants);
        assert!(c.network_nodes > b.network_nodes);

        // Prep times follow Table II: GrubHub ≫ C > B > A.
        assert!(g.mean_prep_mins > c.mean_prep_mins);
        assert!(c.mean_prep_mins > b.mean_prep_mins);
        assert!(b.mean_prep_mins > a.mean_prep_mins);

        // Δ follows §V-B: 1 minute for City A, 3 minutes elsewhere.
        assert_eq!(a.delta, Duration::from_mins(1.0));
        assert_eq!(b.delta, Duration::from_mins(3.0));
    }

    #[test]
    fn all_returns_four_presets() {
        let all = CityPreset::all();
        assert_eq!(all.len(), 4);
        assert_eq!(CityId::ALL.len(), 4);
        assert_eq!(CityId::SWIGGY.len(), 3);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(CityId::B.name(), "City B");
        assert_eq!(CityId::GrubHub.name(), "GrubHub");
    }
}
