//! End-to-end scenario generation: synthetic city → restaurants → order
//! stream → fleet → a ready-to-run [`Simulation`].
//!
//! All randomness is seeded, so a `(CityId, seed)` pair always yields the
//! same network, restaurants, orders and vehicle positions; experiments vary
//! the seed to emulate the paper's 6-fold cross-validation over days.

use crate::city::{CityId, CityPreset};
use crate::demand::{clamped_normal, poisson, HOURLY_WEIGHTS};
use foodmatch_core::{DispatchConfig, Order, OrderId, VehicleId};
use foodmatch_roadnet::generators::{GridCityBuilder, RandomCityBuilder};
use foodmatch_roadnet::{Duration, HourSlot, NodeId, RoadNetwork, ShortestPathEngine, TimePoint};
use foodmatch_sim::Simulation;
use rand::rngs::StdRng;
use rand::seq::IndexedRandom;
use rand::{Rng, SeedableRng};

/// A restaurant in a generated city.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Restaurant {
    /// The road-network node the restaurant sits on.
    pub node: NodeId,
    /// Popularity weight (how often customers order from it).
    pub popularity: f64,
    /// Mean preparation time of this restaurant, in minutes.
    pub mean_prep_mins: f64,
}

/// A generated city: road network plus restaurant directory.
#[derive(Clone, Debug)]
pub struct GeneratedCity {
    /// The preset the city was generated from.
    pub preset: CityPreset,
    /// The synthetic road network.
    pub network: RoadNetwork,
    /// The restaurants.
    pub restaurants: Vec<Restaurant>,
}

/// Options controlling scenario generation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScenarioOptions {
    /// Seed mixed into every random choice (think "which day of the 6-day
    /// dataset").
    pub seed: u64,
    /// Start of the simulated horizon.
    pub start: TimePoint,
    /// End of the simulated horizon (orders are only placed inside it).
    pub end: TimePoint,
    /// Fraction of the preset's fleet that is on duty (Fig. 7 subsamples
    /// vehicles; 1.0 = the full fleet).
    pub vehicle_fraction: f64,
}

impl Default for ScenarioOptions {
    fn default() -> Self {
        ScenarioOptions {
            seed: 1,
            start: TimePoint::MIDNIGHT,
            end: TimePoint::from_hms(23, 59, 59),
            vehicle_fraction: 1.0,
        }
    }
}

impl ScenarioOptions {
    /// A full-day scenario with the given seed.
    pub fn full_day(seed: u64) -> Self {
        ScenarioOptions { seed, ..Default::default() }
    }

    /// A scenario restricted to the lunch peak (11:00–15:00), the slice used
    /// by the parameter sweeps so they run in reasonable time.
    pub fn lunch_peak(seed: u64) -> Self {
        ScenarioOptions {
            seed,
            start: TimePoint::from_hms(11, 0, 0),
            end: TimePoint::from_hms(15, 0, 0),
            vehicle_fraction: 1.0,
        }
    }

    /// Scales the number of on-duty vehicles.
    pub fn with_vehicle_fraction(mut self, fraction: f64) -> Self {
        assert!(fraction > 0.0 && fraction <= 1.0, "vehicle fraction must be in (0, 1]");
        self.vehicle_fraction = fraction;
        self
    }
}

/// A fully generated scenario, ready to run.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// The generated city (network + restaurants).
    pub city: GeneratedCity,
    /// The order stream for the requested horizon.
    pub orders: Vec<Order>,
    /// Vehicle starting positions.
    pub vehicle_starts: Vec<(VehicleId, NodeId)>,
    /// The options the scenario was generated with.
    pub options: ScenarioOptions,
}

impl Scenario {
    /// Generates the scenario for a city preset.
    pub fn generate(city: CityId, options: ScenarioOptions) -> Self {
        let preset = CityPreset::of(city);
        let mut rng = StdRng::seed_from_u64(
            preset.base_seed.wrapping_mul(0x9E37_79B9).wrapping_add(options.seed),
        );

        let network = build_network(&preset, &mut rng);
        let restaurants = place_restaurants(&preset, &network, &mut rng);
        let orders = generate_orders(&preset, &network, &restaurants, &options, &mut rng);
        let vehicle_count =
            ((preset.vehicles as f64 * options.vehicle_fraction).round() as usize).max(1);
        let all_nodes: Vec<NodeId> = network.node_ids().collect();
        let vehicle_starts: Vec<(VehicleId, NodeId)> = (0..vehicle_count)
            .map(|i| (VehicleId(i as u32), *all_nodes.choose(&mut rng).expect("network has nodes")))
            .collect();

        Scenario {
            city: GeneratedCity { preset, network, restaurants },
            orders,
            vehicle_starts,
            options,
        }
    }

    /// The dispatcher configuration matching this city (its Δ) and the
    /// paper's defaults for everything else.
    pub fn default_config(&self) -> DispatchConfig {
        DispatchConfig { accumulation_window: self.city.preset.delta, ..Default::default() }
    }

    /// Wraps the scenario into a runnable [`Simulation`] with a caching
    /// shortest-path engine and the default configuration.
    pub fn into_simulation(self) -> Simulation {
        let config = self.default_config();
        self.into_simulation_with(config)
    }

    /// Wraps the scenario into a runnable [`Simulation`] with an explicit
    /// dispatcher configuration.
    pub fn into_simulation_with(self, config: DispatchConfig) -> Simulation {
        let engine = ShortestPathEngine::cached(self.city.network.clone());
        Simulation::new(
            engine,
            self.orders,
            self.vehicle_starts,
            config,
            self.options.start,
            self.options.end,
        )
    }

    /// Number of orders per hour slot — the numerator of Fig. 6(a).
    pub fn orders_by_slot(&self) -> [usize; HourSlot::COUNT] {
        let mut out = [0usize; HourSlot::COUNT];
        for order in &self.orders {
            out[order.placed_at.hour_slot().index()] += 1;
        }
        out
    }

    /// Order-to-vehicle ratio per hour slot (Fig. 6(a)).
    pub fn order_vehicle_ratio_by_slot(&self) -> [f64; HourSlot::COUNT] {
        let vehicles = self.vehicle_starts.len().max(1) as f64;
        let mut out = [0.0; HourSlot::COUNT];
        for (slot, &count) in self.orders_by_slot().iter().enumerate() {
            out[slot] = count as f64 / vehicles;
        }
        out
    }

    /// The Table II row of this scenario.
    pub fn table2_row(&self) -> CityStats {
        let avg_prep_mins = if self.orders.is_empty() {
            0.0
        } else {
            self.orders.iter().map(|o| o.prep_time.as_mins_f64()).sum::<f64>()
                / self.orders.len() as f64
        };
        CityStats {
            city: self.city.preset.id,
            restaurants: self.city.restaurants.len(),
            vehicles: self.vehicle_starts.len(),
            orders: self.orders.len(),
            avg_prep_mins,
            nodes: self.city.network.node_count(),
            edges: self.city.network.edge_count(),
        }
    }
}

/// One row of the dataset-summary table (Table II).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CityStats {
    /// The city.
    pub city: CityId,
    /// Number of restaurants.
    pub restaurants: usize,
    /// Number of vehicles on duty.
    pub vehicles: usize,
    /// Number of orders in the generated horizon.
    pub orders: usize,
    /// Average food-preparation time in minutes.
    pub avg_prep_mins: f64,
    /// Road-network nodes.
    pub nodes: usize,
    /// Road-network edges.
    pub edges: usize,
}

fn build_network(preset: &CityPreset, rng: &mut StdRng) -> RoadNetwork {
    if preset.id == CityId::GrubHub {
        // A small regular grid: the GrubHub instances have no road network in
        // the paper either, so structure hardly matters.
        let side = (preset.network_nodes as f64).sqrt().round() as usize;
        GridCityBuilder::new(side.max(3), side.max(3)).spacing_m(400.0).build()
    } else {
        RandomCityBuilder::new(preset.network_nodes)
            .radius_m(preset.radius_m)
            .seed(rng.random())
            .build()
    }
}

fn place_restaurants(
    preset: &CityPreset,
    network: &RoadNetwork,
    rng: &mut StdRng,
) -> Vec<Restaurant> {
    let nodes: Vec<NodeId> = network.node_ids().collect();
    // Restaurants cluster around a handful of "food street" hotspots.
    let hotspot_count = (preset.restaurants / 12).clamp(3, 10);
    let hotspots: Vec<NodeId> =
        (0..hotspot_count).map(|_| *nodes.choose(rng).expect("nodes")).collect();

    let mut restaurants = Vec::with_capacity(preset.restaurants);
    for rank in 0..preset.restaurants {
        let node = if rng.random_range(0.0..1.0) < 0.7 {
            // Near a hotspot: pick the node closest to a jittered hotspot
            // position (cheap approximation: pick among the hotspot's
            // geographic neighbours).
            let hotspot = *hotspots.choose(rng).expect("hotspots");
            let base = network.position(hotspot);
            let jitter = 0.004; // ≈ 400 m
            let target = foodmatch_roadnet::GeoPoint::new(
                base.lat + rng.random_range(-jitter..jitter),
                base.lon + rng.random_range(-jitter..jitter),
            );
            network.nearest_node(target)
        } else {
            *nodes.choose(rng).expect("nodes")
        };
        // Zipf-like popularity: a few restaurants dominate order volume.
        let popularity = 1.0 / (rank as f64 + 1.5);
        let mean_prep_mins = clamped_normal(rng, preset.mean_prep_mins, 2.5, 3.0, 30.0);
        restaurants.push(Restaurant { node, popularity, mean_prep_mins });
    }
    restaurants
}

fn generate_orders(
    preset: &CityPreset,
    network: &RoadNetwork,
    restaurants: &[Restaurant],
    options: &ScenarioOptions,
    rng: &mut StdRng,
) -> Vec<Order> {
    let nodes: Vec<NodeId> = network.node_ids().collect();
    let total_popularity: f64 = restaurants.iter().map(|r| r.popularity).sum();

    let mut orders = Vec::new();
    let mut next_id = 0u64;
    for hour in 0..24u32 {
        let slot_start = TimePoint::from_hms(hour, 0, 0);
        let slot_end = TimePoint::from_hms(hour, 59, 59) + Duration::from_secs_f64(1.0);
        // Overlap of this hour with the requested horizon.
        let lo = options.start.max(slot_start);
        let hi = options.end.min(slot_end);
        if hi <= lo {
            continue;
        }
        let overlap_fraction = (hi - lo).as_secs_f64() / 3_600.0;
        let expected =
            preset.orders_per_day as f64 * HOURLY_WEIGHTS[hour as usize] * overlap_fraction;
        let count = poisson(rng, expected);
        for _ in 0..count {
            let placed_at =
                lo + Duration::from_secs_f64(rng.random_range(0.0..(hi - lo).as_secs_f64()));
            orders.push(draw_order(
                network,
                &nodes,
                restaurants,
                total_popularity,
                OrderId(next_id),
                placed_at,
                hour,
                rng,
            ));
            next_id += 1;
        }
    }
    orders.sort_by(|a, b| a.placed_at.cmp(&b.placed_at).then(a.id.cmp(&b.id)));
    orders
}

/// Draws one order: restaurant by popularity, customer within the delivery
/// radius, peak-adjusted preparation time, item count. This is THE demand
/// model — shared by the batch generator above and the live
/// [`PoissonOrderSource`](crate::source::PoissonOrderSource) so the two
/// cannot drift apart statistically. The RNG consumption order (restaurant,
/// customer, prep, items) is part of the determinism contract.
#[allow(clippy::too_many_arguments)]
pub(crate) fn draw_order(
    network: &RoadNetwork,
    nodes: &[NodeId],
    restaurants: &[Restaurant],
    total_popularity: f64,
    id: OrderId,
    placed_at: TimePoint,
    hour: u32,
    rng: &mut StdRng,
) -> Order {
    let restaurant = pick_restaurant(restaurants, total_popularity, rng);
    let customer = pick_customer(network, nodes, restaurant.node, rng);
    // Peak-hour kitchens run a little slower.
    let peak_factor = if HourSlot::new(hour as u8).is_peak() { 1.15 } else { 1.0 };
    let prep_mins = clamped_normal(rng, restaurant.mean_prep_mins * peak_factor, 3.0, 2.0, 35.0);
    let items = 1 + (rng.random_range(0.0_f64..1.0).powi(2) * 4.0).floor() as u32;
    Order::new(id, restaurant.node, customer, placed_at, items, Duration::from_mins(prep_mins))
}

fn pick_restaurant<'a>(
    restaurants: &'a [Restaurant],
    total_popularity: f64,
    rng: &mut StdRng,
) -> &'a Restaurant {
    let mut target = rng.random_range(0.0..total_popularity);
    for restaurant in restaurants {
        if target < restaurant.popularity {
            return restaurant;
        }
        target -= restaurant.popularity;
    }
    restaurants.last().expect("at least one restaurant")
}

fn pick_customer(
    network: &RoadNetwork,
    nodes: &[NodeId],
    restaurant: NodeId,
    rng: &mut StdRng,
) -> NodeId {
    // Customers live within the delivery radius of the restaurant (the paper
    // notes platforms only show nearby restaurants). Rejection-sample a few
    // times, then settle for whatever came closest.
    const DELIVERY_RADIUS_M: f64 = 3_000.0;
    let mut best = restaurant;
    let mut best_distance = f64::INFINITY;
    for _ in 0..12 {
        let candidate = *nodes.choose(rng).expect("nodes");
        if candidate == restaurant {
            continue;
        }
        let d = network.haversine_between(restaurant, candidate);
        if d <= DELIVERY_RADIUS_M {
            return candidate;
        }
        if d < best_distance {
            best_distance = d;
            best = candidate;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_options() -> ScenarioOptions {
        ScenarioOptions::lunch_peak(7)
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = Scenario::generate(CityId::A, small_options());
        let b = Scenario::generate(CityId::A, small_options());
        assert_eq!(a.orders.len(), b.orders.len());
        assert_eq!(a.vehicle_starts, b.vehicle_starts);
        assert_eq!(a.city.restaurants.len(), b.city.restaurants.len());
        let c = Scenario::generate(CityId::A, ScenarioOptions::lunch_peak(8));
        assert_ne!(
            a.orders.iter().map(|o| o.placed_at.as_secs_f64()).sum::<f64>(),
            c.orders.iter().map(|o| o.placed_at.as_secs_f64()).sum::<f64>()
        );
    }

    #[test]
    fn orders_fall_inside_the_horizon_and_reference_real_nodes() {
        let s = Scenario::generate(CityId::A, small_options());
        assert!(!s.orders.is_empty());
        for o in &s.orders {
            assert!(o.placed_at >= s.options.start && o.placed_at < s.options.end);
            assert!(o.restaurant.index() < s.city.network.node_count());
            assert!(o.customer.index() < s.city.network.node_count());
            assert_ne!(o.restaurant, o.customer);
            assert!(o.items >= 1 && o.items <= 5);
            assert!(o.prep_time.as_mins_f64() >= 2.0 && o.prep_time.as_mins_f64() <= 35.0);
        }
    }

    #[test]
    fn orders_come_from_the_restaurant_directory() {
        let s = Scenario::generate(CityId::A, small_options());
        let restaurant_nodes: std::collections::HashSet<NodeId> =
            s.city.restaurants.iter().map(|r| r.node).collect();
        for o in &s.orders {
            assert!(restaurant_nodes.contains(&o.restaurant));
        }
    }

    #[test]
    fn full_day_volume_tracks_the_preset() {
        let s = Scenario::generate(CityId::A, ScenarioOptions::full_day(3));
        let expected = CityPreset::of(CityId::A).orders_per_day as f64;
        let got = s.orders.len() as f64;
        assert!(
            (got - expected).abs() < expected * 0.25,
            "expected ≈{expected} orders, generated {got}"
        );
        // Demand peaks at lunch and dinner.
        let by_slot = s.orders_by_slot();
        assert!(by_slot[19] + by_slot[20] > by_slot[9] + by_slot[10]);
        assert!(by_slot[12] + by_slot[13] > by_slot[3] + by_slot[4]);
    }

    #[test]
    fn vehicle_fraction_scales_the_fleet() {
        let full = Scenario::generate(CityId::A, ScenarioOptions::full_day(3));
        let half =
            Scenario::generate(CityId::A, ScenarioOptions::full_day(3).with_vehicle_fraction(0.5));
        assert_eq!(full.vehicle_starts.len(), CityPreset::of(CityId::A).vehicles);
        assert!(
            (half.vehicle_starts.len() as f64 - full.vehicle_starts.len() as f64 * 0.5).abs()
                <= 1.0
        );
    }

    #[test]
    fn ratio_by_slot_peaks_at_meal_times() {
        let s = Scenario::generate(CityId::B, ScenarioOptions::full_day(11));
        let ratio = s.order_vehicle_ratio_by_slot();
        assert!(ratio[19] > ratio[4]);
        assert!(ratio[12] > ratio[9]);
    }

    #[test]
    fn table2_row_is_consistent() {
        let s = Scenario::generate(CityId::GrubHub, ScenarioOptions::full_day(5));
        let row = s.table2_row();
        assert_eq!(row.city, CityId::GrubHub);
        assert_eq!(row.nodes, s.city.network.node_count());
        assert_eq!(row.orders, s.orders.len());
        assert!(row.avg_prep_mins > 10.0, "GrubHub prep should be long, got {}", row.avg_prep_mins);
    }

    #[test]
    fn scenario_converts_into_a_runnable_simulation() {
        let s = Scenario::generate(
            CityId::GrubHub,
            ScenarioOptions {
                seed: 2,
                start: TimePoint::from_hms(12, 0, 0),
                end: TimePoint::from_hms(12, 30, 0),
                vehicle_fraction: 1.0,
            },
        );
        let config = s.default_config();
        assert_eq!(config.accumulation_window, CityPreset::of(CityId::GrubHub).delta);
        let sim = s.into_simulation();
        let report = sim.run(&mut foodmatch_core::GreedyPolicy::new());
        assert_eq!(
            report.delivered.len() + report.rejected.len() + report.undelivered.len(),
            report.total_orders
        );
    }
}
