//! Metro-scale workloads for the sharded dispatch router.
//!
//! The preset cities (Table II) are compact: every vehicle reaches every
//! restaurant inside the first-mile bound, so a single
//! [`DispatchService`](foodmatch_sim::DispatchService) sees one dense
//! component. A metro is different — restaurant hotspots sit farther apart
//! than a courier is ever dispatched, demand decomposes geographically, and
//! that is exactly the regime [`DispatchRouter`] shards over.
//!
//! [`MetroScenario::generate`] builds such a city deterministically: a
//! large, sparse grid (1.3 km blocks by default) with `zones` restaurant
//! hotspots spread to the city edges, orders clustered around the hotspots
//! (restaurants tightly, customers a short hop away), a fleet seeded around
//! the same hotspots so every zone has couriers, and a 15-minute first-mile
//! bound in [`MetroScenario::config`]. The geometry matches the metro tier
//! of the matching benchmark, so results compose across experiments.
//!
//! The scenario does not fix the sharding: [`MetroScenario::zone_map`]
//! partitions one zone per hotspot, and
//! [`MetroScenario::grouped_zone_map`] coarsens the same city into any
//! smaller shard count — the way the router benchmark scales 1 → 2 → 4
//! shards over an *identical* workload.

use crate::source::ReplayOrderSource;
use foodmatch_core::{DispatchConfig, DispatchPolicy, Order, OrderId, VehicleId};
use foodmatch_roadnet::generators::GridCityBuilder;
use foodmatch_roadnet::{Duration, GeoPoint, NodeId, RoadNetwork, TimePoint};
use foodmatch_sim::{DispatchRouter, ZoneId, ZoneMap};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Shape and horizon of a generated metro. Every field participates in the
/// deterministic generation: same options, same metro.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MetroOptions {
    /// Seed for the order/fleet draws.
    pub seed: u64,
    /// Number of restaurant hotspots (and zones in [`MetroScenario::zone_map`]).
    pub zones: usize,
    /// Grid side length, in intersections.
    pub grid: usize,
    /// Block length, in meters (sparse by design: a metro, not a downtown).
    pub spacing_m: f64,
    /// Orders placed across the horizon.
    pub orders: usize,
    /// Fleet size.
    pub vehicles: usize,
    /// When demand starts.
    pub start: TimePoint,
    /// When demand ends (deliveries drain past this).
    pub end: TimePoint,
}

impl MetroOptions {
    /// A four-zone lunch-hour metro (the router benchmark's quick shape).
    pub fn lunch_peak(seed: u64) -> Self {
        MetroOptions {
            seed,
            zones: 4,
            grid: 50,
            spacing_m: 1_300.0,
            orders: 300,
            vehicles: 250,
            start: TimePoint::from_hms(12, 0, 0),
            end: TimePoint::from_hms(13, 0, 0),
        }
    }
}

/// A generated metro-scale workload: the road network, the hotspot
/// geography, and a materialized demand/fleet day. See the
/// [module docs](self).
#[derive(Clone, Debug)]
pub struct MetroScenario {
    /// The metro road network.
    pub network: RoadNetwork,
    /// One center per restaurant hotspot, in hotspot order.
    pub zone_centers: Vec<GeoPoint>,
    /// The order stream, sorted by `(placed_at, id)`.
    pub orders: Vec<Order>,
    /// Vehicle start positions, round-robin across hotspots.
    pub vehicle_starts: Vec<(VehicleId, NodeId)>,
    /// The options the metro was generated from.
    pub options: MetroOptions,
}

impl MetroScenario {
    /// Generates the metro deterministically from `options`.
    ///
    /// # Panics
    /// Panics when `options.zones` is zero or the grid is degenerate.
    pub fn generate(options: MetroOptions) -> Self {
        assert!(options.zones > 0, "a metro needs at least one hotspot");
        assert!(options.grid >= 10, "a metro grid under 10x10 is not a metro");
        let builder = GridCityBuilder::new(options.grid, options.grid).spacing_m(options.spacing_m);
        let network = builder.build();

        // Hotspots on a 2×⌈zones/2⌉ grid spread to the city edges — the
        // same geometry as the matching benchmark's metro tier, far enough
        // apart that the first-mile bound keeps zones separate.
        let per_row = options.zones.div_ceil(2);
        let col_step = if per_row > 1 { (options.grid * 3 / 5) / (per_row - 1) } else { 0 };
        let hotspots: Vec<(usize, usize)> = (0..options.zones)
            .map(|z| {
                let row = if z < per_row { options.grid / 5 } else { options.grid * 4 / 5 };
                let col = options.grid / 5 + (z % per_row) * col_step;
                (row, col)
            })
            .collect();
        let zone_centers: Vec<GeoPoint> =
            hotspots.iter().map(|&(r, c)| network.position(builder.node_at(r, c))).collect();

        let mut rng =
            StdRng::seed_from_u64(options.seed.wrapping_mul(0x9E37_79B9).wrapping_add(97));
        let horizon_secs = (options.end - options.start).as_secs_f64().max(1.0);
        let mut orders: Vec<Order> = (0..options.orders)
            .map(|i| {
                let (hr, hc) = hotspots[rng.random_range(0..hotspots.len())];
                let mut jitter = |v: usize, span: i64| {
                    (v as i64 + rng.random_range(-span..=span)).clamp(0, options.grid as i64 - 1)
                        as usize
                };
                // Restaurants cluster tight around the hotspot, customers a
                // short hop away — first and last mile both stay zone-local.
                let (rr, rc) = (jitter(hr, 2), jitter(hc, 2));
                let (cr, cc) = (jitter(hr, 6), jitter(hc, 6));
                let placed_at =
                    options.start + Duration::from_secs_f64(rng.random_range(0.0..horizon_secs));
                Order::new(
                    OrderId(i as u64),
                    builder.node_at(rr, rc),
                    builder.node_at(cr, cc),
                    placed_at,
                    1 + (i % 2) as u32,
                    Duration::from_mins(6.0),
                )
            })
            .collect();
        orders.sort_by(|a, b| a.placed_at.cmp(&b.placed_at).then(a.id.cmp(&b.id)));

        // Fleet: round-robin across hotspots so every zone has couriers
        // regardless of how the map is later grouped.
        let vehicle_starts: Vec<(VehicleId, NodeId)> = (0..options.vehicles)
            .map(|i| {
                let (hr, hc) = hotspots[i % hotspots.len()];
                let mut jitter = |v: usize, span: i64| {
                    (v as i64 + rng.random_range(-span..=span)).clamp(0, options.grid as i64 - 1)
                        as usize
                };
                let node = builder.node_at(jitter(hr, 6), jitter(hc, 6));
                (VehicleId(i as u32), node)
            })
            .collect();

        MetroScenario { network, zone_centers, orders, vehicle_starts, options }
    }

    /// The natural sharding: one zone per hotspot.
    pub fn zone_map(&self) -> ZoneMap {
        ZoneMap::voronoi(&self.network, &self.zone_centers)
    }

    /// The same metro coarsened to `groups` shards: hotspots are chunked in
    /// order and each chunk's mean position seeds one zone. `groups == 1`
    /// is the single-shard map; `groups == zones` is [`Self::zone_map`].
    ///
    /// # Panics
    /// Panics when `groups` is zero or exceeds the hotspot count.
    pub fn grouped_zone_map(&self, groups: usize) -> ZoneMap {
        assert!(groups > 0 && groups <= self.zone_centers.len(), "groups must be in 1..=zones");
        let chunk = self.zone_centers.len().div_ceil(groups);
        let centers: Vec<GeoPoint> = self
            .zone_centers
            .chunks(chunk)
            .map(|c| {
                let n = c.len() as f64;
                GeoPoint::new(
                    c.iter().map(|p| p.lat).sum::<f64>() / n,
                    c.iter().map(|p| p.lon).sum::<f64>() / n,
                )
            })
            .collect();
        ZoneMap::voronoi(&self.network, &centers)
    }

    /// The dispatcher configuration a metro runs under: the default loop
    /// with a 15-minute first-mile bound (a metro dispatcher never sends a
    /// courier across town).
    pub fn config(&self) -> DispatchConfig {
        DispatchConfig { max_first_mile: Duration::from_mins(15.0), ..DispatchConfig::default() }
    }

    /// Wires the metro into a [`DispatchRouter`] over `zones`, one policy
    /// instance per zone, with a two-hour drain.
    pub fn router<P: DispatchPolicy>(
        &self,
        zones: ZoneMap,
        make_policy: impl FnMut(ZoneId) -> P,
    ) -> DispatchRouter<P> {
        DispatchRouter::new(
            &self.network,
            zones,
            self.vehicle_starts.clone(),
            make_policy,
            self.config(),
            self.options.start,
            self.options.end,
            Duration::from_hours(2.0),
        )
    }

    /// The order stream as a replayable source for tick-driven drivers.
    pub fn order_source(&self) -> ReplayOrderSource {
        ReplayOrderSource::new(self.orders.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use foodmatch_core::GreedyPolicy;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = MetroScenario::generate(MetroOptions::lunch_peak(7));
        let b = MetroScenario::generate(MetroOptions::lunch_peak(7));
        assert_eq!(a.orders, b.orders);
        assert_eq!(a.vehicle_starts, b.vehicle_starts);
        assert_eq!(a.zone_centers, b.zone_centers);
        let c = MetroScenario::generate(MetroOptions::lunch_peak(8));
        assert_ne!(a.orders, c.orders, "a different seed is a different day");
    }

    #[test]
    fn orders_are_sorted_and_inside_the_horizon() {
        let m = MetroScenario::generate(MetroOptions::lunch_peak(3));
        assert_eq!(m.orders.len(), m.options.orders);
        assert!(m
            .orders
            .windows(2)
            .all(|w| (w[0].placed_at, w[0].id) <= (w[1].placed_at, w[1].id)));
        for o in &m.orders {
            assert!(o.placed_at >= m.options.start && o.placed_at <= m.options.end);
        }
    }

    #[test]
    fn every_zone_gets_restaurants_and_fleet() {
        let m = MetroScenario::generate(MetroOptions::lunch_peak(5));
        let map = m.zone_map();
        assert_eq!(map.zone_count(), m.options.zones);
        let mut orders_per_zone = vec![0usize; map.zone_count()];
        for o in &m.orders {
            orders_per_zone[map.zone_of(o.restaurant).expect("in area").index()] += 1;
        }
        let mut fleet_per_zone = vec![0usize; map.zone_count()];
        for (_, node) in &m.vehicle_starts {
            fleet_per_zone[map.zone_of(*node).expect("in area").index()] += 1;
        }
        for z in 0..map.zone_count() {
            assert!(orders_per_zone[z] > 0, "zone {z} got no demand");
            assert!(fleet_per_zone[z] > 0, "zone {z} got no fleet");
        }
    }

    #[test]
    fn grouped_maps_coarsen_the_same_city() {
        let m = MetroScenario::generate(MetroOptions::lunch_peak(5));
        assert_eq!(m.grouped_zone_map(1).zone_count(), 1);
        assert_eq!(m.grouped_zone_map(2).zone_count(), 2);
        assert_eq!(m.grouped_zone_map(4).zone_count(), 4);
        // Every node stays assigned in every grouping.
        for groups in [1, 2, 4] {
            let map = m.grouped_zone_map(groups);
            for node in m.network.node_ids() {
                assert!(map.zone_of(node).is_some());
            }
        }
    }

    #[test]
    fn the_metro_runs_end_to_end_through_a_router() {
        let mut options = MetroOptions::lunch_peak(2);
        options.orders = 40;
        options.vehicles = 32;
        let m = MetroScenario::generate(options);
        let mut router = m.router(m.zone_map(), |_| GreedyPolicy::new());
        for order in &m.orders {
            assert!(router.submit_order(*order).is_accepted());
        }
        let report = router.run_to_completion();
        assert_eq!(report.aggregate.total_orders, options.orders);
        assert_eq!(
            report.aggregate.delivered.len()
                + report.aggregate.rejected.len()
                + report.aggregate.undelivered.len(),
            options.orders,
        );
    }
}
