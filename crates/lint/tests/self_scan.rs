//! The self-hosting guarantee: the committed workspace passes its own lint
//! pass. Any new hash-iteration on the output path, panic in the durability
//! layer, stray wall-clock read, or per-window telemetry lookup fails this
//! test (and CI) with a `file:line` and rule id — and so does a waiver that
//! has rotted into suppressing nothing.

use foodmatch_lint::scan_workspace;
use std::path::Path;

fn workspace_root() -> &'static Path {
    // crates/lint -> crates -> workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crate lives two levels below the workspace root")
}

#[test]
fn committed_workspace_is_lint_clean() {
    let report = scan_workspace(workspace_root()).expect("scan workspace");
    assert!(
        report.files_scanned > 50,
        "suspiciously few files scanned ({}) — walker broke?",
        report.files_scanned
    );
    assert!(
        report.is_clean(),
        "committed workspace has unwaived lint diagnostics:\n{:#?}",
        report.diagnostics
    );
}

#[test]
fn every_committed_waiver_still_suppresses_something() {
    let report = scan_workspace(workspace_root()).expect("scan workspace");
    assert!(!report.waivers.is_empty(), "the workspace is known to carry waivers");
    for (path, waiver) in &report.waivers {
        assert!(
            waiver.suppressed >= 1,
            "stale waiver for `{}` at {path}:{} suppresses nothing",
            waiver.rule,
            waiver.declared_line
        );
        assert!(
            waiver.reason.len() >= 10,
            "waiver at {path}:{} has a throwaway reason: {:?}",
            waiver.declared_line,
            waiver.reason
        );
    }
}

#[test]
fn json_report_is_stable_and_parseable_shape() {
    let report = scan_workspace(workspace_root()).expect("scan workspace");
    let json = report.to_json();
    // Key order is part of the report contract (diffable in CI artifacts).
    let tool = json.find("\"tool\"").expect("tool key");
    let files = json.find("\"files_scanned\"").expect("files_scanned key");
    let rules = json.find("\"rules\"").expect("rules key");
    let diags = json.find("\"diagnostic_count\"").expect("diagnostic_count key");
    let waivers = json.find("\"waiver_count\"").expect("waiver_count key");
    assert!(tool < files && files < rules && rules < diags && diags < waivers);
    assert!(json.contains("\"diagnostic_count\": 0"), "committed tree must be clean");
    // Same tree, same report — byte for byte.
    let again = scan_workspace(workspace_root()).expect("rescan workspace");
    assert_eq!(json, again.to_json(), "report must be deterministic");
}
