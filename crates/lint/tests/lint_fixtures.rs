//! Fixture-driven tests for the rule engine: each fixture under
//! `tests/fixtures/` seeds known violations, and the assertions pin the
//! exact `(rule, line)` pairs the scan must produce. Fixtures are read from
//! disk (never inlined here) so this test file itself stays clean under the
//! self-scan — `fixtures` directories are excluded from `workspace_files`.

use foodmatch_lint::rules::{
    NONDETERMINISTIC_ITERATION, PANIC_FREE_DURABILITY, TELEMETRY_HANDLE_DISCIPLINE, UNUSED_WAIVER,
    WAIVER_SYNTAX, WALL_CLOCK_HYGIENE,
};
use foodmatch_lint::{scan_source, Diagnostic};
use std::path::Path;

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read fixture {}: {e}", path.display()))
}

fn rule_lines(diagnostics: &[Diagnostic]) -> Vec<(&'static str, usize)> {
    diagnostics.iter().map(|d| (d.rule, d.line)).collect()
}

#[test]
fn hash_iteration_is_flagged_on_the_output_path() {
    let source = fixture("nondet_iter.rs");
    let (diagnostics, _) = scan_source("crates/core/src/policies/fixture.rs", &source);
    assert_eq!(
        rule_lines(&diagnostics),
        vec![(NONDETERMINISTIC_ITERATION, 5), (NONDETERMINISTIC_ITERATION, 20)],
        "line 5 iterates a HashMap param, line 20 for-loops over one; the \
         collect-then-sort at lines 13–14 must escape: {diagnostics:#?}"
    );
}

#[test]
fn hash_iteration_is_scoped_to_output_path_files() {
    let source = fixture("nondet_iter.rs");
    let (diagnostics, _) = scan_source("crates/telemetry/src/fixture.rs", &source);
    assert!(diagnostics.is_empty(), "rule must not fire outside its path set: {diagnostics:#?}");
}

#[test]
fn panics_are_flagged_in_durability_code_but_not_tests() {
    let source = fixture("panics.rs");
    let (diagnostics, _) = scan_source("crates/simulator/src/wal.rs", &source);
    assert_eq!(
        rule_lines(&diagnostics),
        vec![(PANIC_FREE_DURABILITY, 2), (PANIC_FREE_DURABILITY, 8), (PANIC_FREE_DURABILITY, 13),],
        "unwrap/panic!/expect in production code; the #[cfg(test)] unwrap \
         at line 22 is exempt: {diagnostics:#?}"
    );
}

#[test]
fn wall_clock_reads_are_flagged_unless_recorder_gated() {
    let source = fixture("wall_clock.rs");
    let (diagnostics, _) = scan_source("crates/simulator/src/clock_fixture.rs", &source);
    assert_eq!(
        rule_lines(&diagnostics),
        vec![(WALL_CLOCK_HYGIENE, 4), (WALL_CLOCK_HYGIENE, 13)],
        "Instant::now and SystemTime::now flagged; the `.then(Instant::now)` \
         gate at line 9 must escape: {diagnostics:#?}"
    );
}

#[test]
fn wall_clock_rule_skips_telemetry_and_bench_crates() {
    let source = fixture("wall_clock.rs");
    for path in ["crates/telemetry/src/lib.rs", "crates/bench/src/main.rs"] {
        let (diagnostics, _) = scan_source(path, &source);
        assert!(diagnostics.is_empty(), "{path} must be clock-exempt: {diagnostics:#?}");
    }
}

#[test]
fn telemetry_lookups_are_flagged_outside_constructors() {
    let source = fixture("telemetry.rs");
    let (diagnostics, _) = scan_source("crates/simulator/src/metrics_fixture.rs", &source);
    assert_eq!(
        rule_lines(&diagnostics),
        vec![(TELEMETRY_HANDLE_DISCIPLINE, 11)],
        "the lookup in `on_window` is per-window; the ones in `new` and \
         `with_gauge` are constructor-shaped: {diagnostics:#?}"
    );
}

#[test]
fn waivers_suppress_exactly_one_diagnostic_each() {
    let source = fixture("waivers.rs");
    let (diagnostics, waivers) = scan_source("crates/simulator/src/wal.rs", &source);
    assert_eq!(
        rule_lines(&diagnostics),
        vec![
            (WAIVER_SYNTAX, 8),
            (PANIC_FREE_DURABILITY, 9),
            (WAIVER_SYNTAX, 13),
            (UNUSED_WAIVER, 15),
        ],
        "reason-less waiver, the unwrap it failed to cover, unknown rule id, \
         and the stale waiver must all surface: {diagnostics:#?}"
    );
    // The one well-formed, targeted waiver (line 2) suppressed exactly the
    // unwrap on line 3 and nothing else.
    let recorded: Vec<(usize, usize, usize)> =
        waivers.iter().map(|w| (w.declared_line, w.covers_line, w.suppressed)).collect();
    assert_eq!(recorded, vec![(2, 3, 1), (15, 16, 0)], "{waivers:#?}");
    assert!(waivers[0].reason.contains("length-check"), "{waivers:#?}");
}
