use std::time::Instant;

pub fn measure() -> u64 {
    let started = Instant::now();
    started.elapsed().as_nanos() as u64
}

pub fn gated(timed: bool) -> Option<Instant> {
    timed.then(Instant::now)
}

pub fn stamp() -> std::time::SystemTime {
    std::time::SystemTime::now()
}
