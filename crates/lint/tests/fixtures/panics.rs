pub fn parse_header(bytes: &[u8]) -> u64 {
    let word: [u8; 8] = bytes[..8].try_into().unwrap();
    u64::from_le_bytes(word)
}

pub fn must_flush(ok: bool) {
    if !ok {
        panic!("flush failed");
    }
}

pub fn frame_len(bytes: &[u8]) -> u32 {
    let word: [u8; 4] = bytes[..4].try_into().expect("length-checked");
    u32::from_le_bytes(word)
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        let v: Result<u8, ()> = Ok(1);
        v.unwrap();
    }
}
