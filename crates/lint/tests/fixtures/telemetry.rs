pub struct Stage {
    windows: foodmatch_telemetry::Counter,
}

impl Stage {
    pub fn new() -> Self {
        Stage { windows: foodmatch_telemetry::counter("stage.windows") }
    }

    pub fn on_window(&self) {
        foodmatch_telemetry::counter("stage.windows").add(1);
        self.windows.add(1);
    }

    pub fn with_gauge(&self) -> foodmatch_telemetry::Gauge {
        foodmatch_telemetry::gauge("stage.depth")
    }
}
