pub fn read_len(bytes: &[u8]) -> u32 {
    // lint: allow(panic-free-durability) — fixture: callers length-check first.
    let word: [u8; 4] = bytes[..4].try_into().unwrap();
    u32::from_le_bytes(word)
}

pub fn read_more(bytes: &[u8]) -> u32 {
    // lint: allow(panic-free-durability)
    let word: [u8; 4] = bytes[..4].try_into().unwrap();
    u32::from_le_bytes(word)
}

// lint: allow(no-such-rule) — fixture: unknown rule id.

// lint: allow(panic-free-durability) — fixture: suppresses nothing here.
pub fn clean() {}
