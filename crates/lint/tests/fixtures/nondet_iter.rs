use std::collections::{HashMap, HashSet};

pub fn flush(per_vehicle: &HashMap<usize, Vec<usize>>) -> Vec<usize> {
    let mut out = Vec::new();
    for (vehicle, orders) in per_vehicle.iter() {
        let _ = vehicle;
        out.extend(orders.iter().copied());
    }
    out
}

pub fn sorted_ids(touched: &HashSet<usize>) -> Vec<usize> {
    let mut ids: Vec<usize> = touched.iter().copied().collect();
    ids.sort_unstable();
    ids
}

pub fn order_sum(weights: HashMap<u64, f64>) -> f64 {
    let mut total = 0.0;
    for (_, w) in &weights {
        total += w;
    }
    total
}
