//! CLI for the foodmatch lint pass.
//!
//! ```text
//! cargo run -p foodmatch-lint [--release] -- [--root <dir>] [--json <file>] [--quiet]
//! ```
//!
//! Exit codes: `0` clean (waived violations are clean by definition), `1`
//! unwaived diagnostics found, `2` usage or I/O failure.

use foodmatch_lint::{find_workspace_root, scan_workspace};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut json_out: Option<PathBuf> = None;
    let mut quiet = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => return usage("--root needs a directory"),
            },
            "--json" => match args.next() {
                Some(file) => json_out = Some(PathBuf::from(file)),
                None => return usage("--json needs a file path"),
            },
            "--quiet" | "-q" => quiet = true,
            "--help" | "-h" => {
                eprintln!("usage: foodmatch-lint [--root <dir>] [--json <file>] [--quiet]");
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    let root = match root {
        Some(dir) => dir,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(cwd) => cwd,
                Err(e) => {
                    eprintln!("foodmatch-lint: cannot read current dir: {e}");
                    return ExitCode::from(2);
                }
            };
            match find_workspace_root(&cwd) {
                Some(dir) => dir,
                None => {
                    eprintln!("foodmatch-lint: no workspace Cargo.toml above {}", cwd.display());
                    return ExitCode::from(2);
                }
            }
        }
    };

    let report = match scan_workspace(&root) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("foodmatch-lint: scan failed: {e}");
            return ExitCode::from(2);
        }
    };
    if report.files_scanned == 0 {
        // A wrong --root must not read as a clean pass.
        eprintln!("foodmatch-lint: no .rs files under {} — wrong --root?", root.display());
        return ExitCode::from(2);
    }

    if let Some(path) = json_out {
        if let Err(e) = std::fs::write(&path, report.to_json()) {
            eprintln!("foodmatch-lint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    for d in &report.diagnostics {
        println!("{}:{}: [{}] {}", d.path, d.line, d.rule, d.message);
    }
    if !quiet {
        println!(
            "foodmatch-lint: {} files, {} diagnostic(s), {} waiver(s)",
            report.files_scanned,
            report.diagnostics.len(),
            report.waivers.len()
        );
        for (path, w) in &report.waivers {
            println!(
                "  waived [{}] {}:{} ({} suppressed) — {}",
                w.rule, path, w.covers_line, w.suppressed, w.reason
            );
        }
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn usage(problem: &str) -> ExitCode {
    eprintln!("foodmatch-lint: {problem}");
    eprintln!("usage: foodmatch-lint [--root <dir>] [--json <file>] [--quiet]");
    ExitCode::from(2)
}
