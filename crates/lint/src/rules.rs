//! The rule engine: path-scoped checks over the token stream plus the two
//! pieces of structure the rules need — `#[cfg(test)]` regions (rule
//! exemptions) and the enclosing-function name per token (constructor
//! allow-lists). Everything is heuristic but *sound for this codebase*:
//! the self-scan test keeps the committed workspace clean, so any new
//! false positive shows up as a broken build, not silent noise.

use crate::lexer::{tokenize, Token, TokenKind};

/// Rule identifier for `HashMap`/`HashSet` iteration on the output path.
pub const NONDETERMINISTIC_ITERATION: &str = "nondeterministic-iteration";
/// Rule identifier for panics in the durability layer.
pub const PANIC_FREE_DURABILITY: &str = "panic-free-durability";
/// Rule identifier for wall-clock reads outside telemetry/bench.
pub const WALL_CLOCK_HYGIENE: &str = "wall-clock-hygiene";
/// Rule identifier for telemetry registry lookups outside constructors.
pub const TELEMETRY_HANDLE_DISCIPLINE: &str = "telemetry-handle-discipline";
/// Pseudo-rule for malformed waiver comments (never waivable itself).
pub const WAIVER_SYNTAX: &str = "waiver-syntax";
/// Pseudo-rule for waivers that suppressed nothing (stale waivers rot).
pub const UNUSED_WAIVER: &str = "unused-waiver";

/// Every real (waivable) rule with its one-line description, in report
/// order.
pub const RULES: [(&str, &str); 4] = [
    (
        NONDETERMINISTIC_ITERATION,
        "no HashMap/HashSet iteration in output-path code unless sorted before use",
    ),
    (
        PANIC_FREE_DURABILITY,
        "no unwrap/expect/panic! in non-test WAL/checkpoint/durable code; typed errors required",
    ),
    (
        WALL_CLOCK_HYGIENE,
        "Instant::now/SystemTime::now only in telemetry, bench, or recorder-gated spans",
    ),
    (
        TELEMETRY_HANDLE_DISCIPLINE,
        "telemetry registry lookups only in constructors/restore, never per-window",
    ),
];

/// One lint finding, pinned to `path:line`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    pub rule: &'static str,
    pub path: String,
    pub line: usize,
    pub message: String,
}

/// One parsed allow-comment: the waiver marker followed by a rule id in
/// parens, an em-dash, and a mandatory reason.
#[derive(Clone, Debug)]
pub struct Waiver {
    pub rule: String,
    /// Line the waiver was written on (1-based).
    pub declared_line: usize,
    /// Line the waiver covers: its own for a trailing comment, the next
    /// code line for a standalone comment block.
    pub covers_line: usize,
    pub reason: String,
    /// Diagnostics this waiver suppressed (filled during scanning).
    pub suppressed: usize,
}

/// Tokenised file plus the derived structure the rules consume.
pub struct FileContext<'a> {
    pub rel_path: &'a str,
    pub lines: Vec<&'a str>,
    pub tokens: Vec<Token>,
    /// Inclusive 1-based line ranges covered by `#[cfg(test)]` items.
    pub test_regions: Vec<(usize, usize)>,
    /// Per token: name of the innermost named `fn` enclosing it.
    pub enclosing_fn: Vec<Option<String>>,
}

impl<'a> FileContext<'a> {
    pub fn new(rel_path: &'a str, source: &'a str) -> Self {
        let tokens = tokenize(source);
        let test_regions = find_cfg_test_regions(&tokens);
        let enclosing_fn = find_enclosing_fns(&tokens);
        FileContext {
            rel_path,
            lines: source.lines().collect(),
            tokens,
            test_regions,
            enclosing_fn,
        }
    }

    fn in_test_region(&self, line: usize) -> bool {
        self.test_regions.iter().any(|&(start, end)| line >= start && line <= end)
    }

    /// True when any of `line ..= line + 2` contains a `.sort` call — the
    /// iterate-then-sort idiom rule 1 permits (collect into a Vec, sort,
    /// emit).
    fn sorts_nearby(&self, line: usize) -> bool {
        (line..=line + 2).filter_map(|l| self.lines.get(l - 1)).any(|text| text.contains(".sort"))
    }
}

/// Finds `#[cfg(test)]` attributes and brace-matches the item that follows
/// each into an inclusive line range.
fn find_cfg_test_regions(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let mut i = 0;
    while i + 7 < tokens.len() {
        let is_attr = tokens[i].is_punct('#')
            && tokens[i + 1].is_punct('[')
            && tokens[i + 2].is_ident("cfg")
            && tokens[i + 3].is_punct('(')
            && tokens[i + 4].is_ident("test")
            && tokens[i + 5].is_punct(')')
            && tokens[i + 6].is_punct(']');
        if !is_attr {
            i += 1;
            continue;
        }
        let start_line = tokens[i].line;
        let mut j = i + 7;
        // Find the item body's opening brace; a brace-less item (e.g.
        // `mod tests;`) ends at the semicolon instead.
        while j < tokens.len() && !tokens[j].is_punct('{') && !tokens[j].is_punct(';') {
            j += 1;
        }
        if j >= tokens.len() || tokens[j].is_punct(';') {
            regions.push((start_line, tokens.get(j).map_or(start_line, |t| t.line)));
            i = j + 1;
            continue;
        }
        let mut depth = 0usize;
        while j < tokens.len() {
            if tokens[j].is_punct('{') {
                depth += 1;
            } else if tokens[j].is_punct('}') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            j += 1;
        }
        let end_line = tokens.get(j).map_or(start_line, |t| t.line);
        regions.push((start_line, end_line));
        i = j + 1;
    }
    regions
}

/// For each token, the name of the innermost *named* `fn` whose body holds
/// it (closures and plain blocks inherit their parent's name). Used by the
/// constructor allow-list of `telemetry-handle-discipline`.
fn find_enclosing_fns(tokens: &[Token]) -> Vec<Option<String>> {
    let mut result = Vec::with_capacity(tokens.len());
    // Scope stack: the fn name in force once a `{` opens.
    let mut scopes: Vec<Option<String>> = Vec::new();
    let mut pending_fn: Option<String> = None;
    let mut paren_depth = 0usize;
    let mut bracket_depth = 0usize;
    for (i, token) in tokens.iter().enumerate() {
        result.push(scopes.last().cloned().flatten());
        match token.kind {
            TokenKind::Ident if token.text == "fn" => {
                // `fn name` declares; a bare `fn(…)` type does not.
                if let Some(next) = tokens.get(i + 1) {
                    if next.kind == TokenKind::Ident {
                        pending_fn = Some(next.text.clone());
                    }
                }
            }
            TokenKind::Punct => match token.text.as_str() {
                "(" => paren_depth += 1,
                ")" => paren_depth = paren_depth.saturating_sub(1),
                "[" => bracket_depth += 1,
                "]" => bracket_depth = bracket_depth.saturating_sub(1),
                "{" => {
                    let inherited = scopes.last().cloned().flatten();
                    scopes.push(pending_fn.take().or(inherited));
                }
                "}" => {
                    scopes.pop();
                }
                // A top-level `;` ends a body-less fn signature (trait
                // method declarations) before any `{` claims the name.
                ";" if paren_depth == 0 && bracket_depth == 0 => pending_fn = None,
                _ => {}
            },
            _ => {}
        }
    }
    result
}

/// Parses every waiver comment in the file. Malformed waivers (missing
/// reason, unknown rule) surface as `waiver-syntax` diagnostics.
pub fn parse_waivers(rel_path: &str, lines: &[&str]) -> (Vec<Waiver>, Vec<Diagnostic>) {
    // Split so the linter's own source does not contain a parseable waiver
    // marker (the self-scan reads raw lines, not tokens).
    const MARKER: &str = concat!("// lint", ": allow(");
    let mut waivers = Vec::new();
    let mut diagnostics = Vec::new();
    for (idx, raw) in lines.iter().enumerate() {
        let declared_line = idx + 1;
        let Some(marker_at) = raw.find(MARKER) else { continue };
        let after = &raw[marker_at + MARKER.len()..];
        let Some(close) = after.find(')') else {
            diagnostics.push(Diagnostic {
                rule: WAIVER_SYNTAX,
                path: rel_path.to_string(),
                line: declared_line,
                message: "unterminated `lint: allow(` waiver".to_string(),
            });
            continue;
        };
        let rule = after[..close].trim().to_string();
        if !RULES.iter().any(|&(id, _)| id == rule) {
            diagnostics.push(Diagnostic {
                rule: WAIVER_SYNTAX,
                path: rel_path.to_string(),
                line: declared_line,
                message: format!("waiver names unknown rule `{rule}`"),
            });
            continue;
        }
        // Reason: everything after the `—` (or `-`) separator.
        let rest = after[close + 1..].trim_start();
        let reason = rest
            .strip_prefix('—')
            .or_else(|| rest.strip_prefix('-'))
            .map(|r| r.trim())
            .unwrap_or("");
        if reason.is_empty() {
            diagnostics.push(Diagnostic {
                rule: WAIVER_SYNTAX,
                path: rel_path.to_string(),
                line: declared_line,
                message: format!(
                    "waiver for `{rule}` carries no reason — append `— <why>` \
                     after the closing parenthesis"
                ),
            });
            continue;
        }
        // A trailing waiver covers its own line; a standalone comment
        // covers the next non-comment, non-blank line. Continuation
        // comment lines in between extend the reason.
        let standalone = raw[..marker_at].trim().is_empty();
        let mut reason = reason.to_string();
        let covers_line = if standalone {
            let mut j = idx + 1;
            while j < lines.len() {
                let t = lines[j].trim();
                if !t.is_empty() && !t.starts_with("//") {
                    break;
                }
                if !t.contains(MARKER) {
                    let cont = t.trim_start_matches('/').trim();
                    if !cont.is_empty() {
                        reason.push(' ');
                        reason.push_str(cont);
                    }
                }
                j += 1;
            }
            j + 1
        } else {
            declared_line
        };
        waivers.push(Waiver { rule, declared_line, covers_line, reason, suppressed: 0 });
    }
    (waivers, diagnostics)
}

// ---------------------------------------------------------------------------
// Path sets
// ---------------------------------------------------------------------------

/// Output-path code: where iteration order becomes stream order.
fn rule1_applies(path: &str) -> bool {
    path.starts_with("crates/core/src/policies/")
        || matches!(
            path,
            "crates/core/src/window.rs"
                | "crates/core/src/foodgraph.rs"
                | "crates/core/src/route.rs"
                | "crates/simulator/src/service.rs"
                | "crates/simulator/src/router.rs"
        )
}

/// The durability layer: code that runs during crash recovery.
fn rule2_applies(path: &str) -> bool {
    matches!(
        path,
        "crates/simulator/src/wal.rs"
            | "crates/simulator/src/checkpoint.rs"
            | "crates/simulator/src/durable.rs"
    )
}

/// Library crates, minus the two whose whole job is measuring time and the
/// linter itself.
fn clock_sensitive(path: &str) -> bool {
    path.starts_with("crates/")
        && !path.starts_with("crates/telemetry/")
        && !path.starts_with("crates/bench/")
}

// ---------------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------------

const ITERATION_METHODS: [&str; 7] =
    ["iter", "iter_mut", "into_iter", "keys", "values", "values_mut", "drain"];

/// Rule 1: `HashMap`/`HashSet` iteration in output-path files. Tracks which
/// local names are declared as hash containers (let bindings, fn params,
/// struct fields), then flags `name.iter()`-style calls and
/// `for … in [&]name` loops on them — unless the surrounding statement
/// sorts within two lines, the iterate-then-sort idiom.
pub fn check_nondeterministic_iteration(ctx: &FileContext<'_>, out: &mut Vec<Diagnostic>) {
    if !rule1_applies(ctx.rel_path) {
        return;
    }
    let tokens = &ctx.tokens;
    // Pass 1: names declared with a HashMap/HashSet type or initialiser.
    let mut hash_names: Vec<String> = Vec::new();
    for (i, token) in tokens.iter().enumerate() {
        if !(token.is_ident("HashMap") || token.is_ident("HashSet")) {
            continue;
        }
        // `name = HashMap::new()` (the annotation-free binding).
        if i >= 2 && tokens[i - 1].is_punct('=') && tokens[i - 2].kind == TokenKind::Ident {
            hash_names.push(tokens[i - 2].text.clone());
            continue;
        }
        // `name: [&][mut] [std::collections::] HashMap<…>` — let bindings
        // with annotations, fn params, struct fields.
        let mut j = i;
        let mut saw_colon = false;
        while j > 0 {
            let prev = &tokens[j - 1];
            let filler = prev.is_punct('&')
                || prev.is_punct(':')
                || prev.is_ident("mut")
                || prev.is_ident("std")
                || prev.is_ident("collections")
                || prev.is_ident("dyn");
            if !filler {
                break;
            }
            saw_colon |= prev.is_punct(':');
            j -= 1;
        }
        if saw_colon && j > 0 && tokens[j - 1].kind == TokenKind::Ident {
            let name = &tokens[j - 1].text;
            // A `use std::collections::HashMap` path walks back to the
            // `use` keyword — that is not a binding.
            if !matches!(name.as_str(), "use" | "pub" | "crate" | "super" | "in" | "as") {
                hash_names.push(name.clone());
            }
        }
    }
    let is_hash = |name: &str| hash_names.iter().any(|n| n == name);
    // The receiver must be the bare name or `self.name`; `other.name` is
    // a different struct's field that merely shares the identifier.
    let receiver_matches = |i: usize| -> bool {
        if i == 0 {
            return true;
        }
        if tokens[i - 1].is_punct('.') {
            return i >= 2 && tokens[i - 2].is_ident("self");
        }
        true
    };

    // Pass 2: flag iteration.
    for (i, token) in tokens.iter().enumerate() {
        // `name.iter()` and friends.
        if token.kind == TokenKind::Ident && is_hash(&token.text) {
            let method_call = i + 3 < tokens.len()
                && tokens[i + 1].is_punct('.')
                && tokens[i + 2].kind == TokenKind::Ident
                && ITERATION_METHODS.contains(&tokens[i + 2].text.as_str())
                && tokens[i + 3].is_punct('(');
            if method_call && receiver_matches(i) && !ctx.sorts_nearby(token.line) {
                out.push(Diagnostic {
                    rule: NONDETERMINISTIC_ITERATION,
                    path: ctx.rel_path.to_string(),
                    line: token.line,
                    message: format!(
                        "`{}.{}()` iterates a hash container on the output path; \
                         use a BTree collection or sort before emitting",
                        token.text,
                        tokens[i + 2].text
                    ),
                });
            }
        }
        // `for … in [&][mut] name {` / `for … in [&]self.name {`.
        if token.is_ident("for") {
            let Some(in_at) = (i + 1..tokens.len().min(i + 24)).find(|&k| tokens[k].is_ident("in"))
            else {
                continue;
            };
            let Some(brace_at) =
                (in_at + 1..tokens.len().min(in_at + 10)).find(|&k| tokens[k].is_punct('{'))
            else {
                continue;
            };
            let mut expr: Vec<&Token> = tokens[in_at + 1..brace_at].iter().collect();
            while expr.first().is_some_and(|t| t.is_punct('&') || t.is_ident("mut")) {
                expr.remove(0);
            }
            let name = match expr.as_slice() {
                [only] if only.kind == TokenKind::Ident => Some(&only.text),
                [s, dot, field]
                    if s.is_ident("self")
                        && dot.is_punct('.')
                        && field.kind == TokenKind::Ident =>
                {
                    Some(&field.text)
                }
                _ => None,
            };
            if let Some(name) = name {
                if is_hash(name) && !ctx.sorts_nearby(token.line) {
                    out.push(Diagnostic {
                        rule: NONDETERMINISTIC_ITERATION,
                        path: ctx.rel_path.to_string(),
                        line: token.line,
                        message: format!(
                            "`for … in {name}` iterates a hash container on the output \
                             path; use a BTree collection or sort before emitting"
                        ),
                    });
                }
            }
        }
    }
}

const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

/// Rule 2: `.unwrap()` / `.expect(…)` / `panic!`-family macros in the
/// durability layer, outside `#[cfg(test)]` items.
pub fn check_panic_free_durability(ctx: &FileContext<'_>, out: &mut Vec<Diagnostic>) {
    if !rule2_applies(ctx.rel_path) {
        return;
    }
    let tokens = &ctx.tokens;
    for (i, token) in tokens.iter().enumerate() {
        if ctx.in_test_region(token.line) {
            continue;
        }
        let method_panic = (token.is_ident("unwrap") || token.is_ident("expect"))
            && i > 0
            && tokens[i - 1].is_punct('.')
            && tokens.get(i + 1).is_some_and(|t| t.is_punct('('));
        if method_panic {
            out.push(Diagnostic {
                rule: PANIC_FREE_DURABILITY,
                path: ctx.rel_path.to_string(),
                line: token.line,
                message: format!(
                    "`.{}()` can panic mid-recovery; return a typed WalError/CheckpointError",
                    token.text
                ),
            });
            continue;
        }
        let macro_panic = token.kind == TokenKind::Ident
            && PANIC_MACROS.contains(&token.text.as_str())
            && tokens.get(i + 1).is_some_and(|t| t.is_punct('!'));
        if macro_panic {
            out.push(Diagnostic {
                rule: PANIC_FREE_DURABILITY,
                path: ctx.rel_path.to_string(),
                line: token.line,
                message: format!(
                    "`{}!` can panic mid-recovery; return a typed WalError/CheckpointError",
                    token.text
                ),
            });
        }
    }
}

/// Rule 3: `Instant::now` / `SystemTime::now` in clock-sensitive crates.
/// The one sanctioned idiom outside telemetry/bench is the lazily
/// evaluated recorder gate `flag.then(Instant::now)`.
pub fn check_wall_clock_hygiene(ctx: &FileContext<'_>, out: &mut Vec<Diagnostic>) {
    if !clock_sensitive(ctx.rel_path) {
        return;
    }
    let tokens = &ctx.tokens;
    for (i, token) in tokens.iter().enumerate() {
        let clock_type = token.is_ident("Instant") || token.is_ident("SystemTime");
        let now_call = clock_type
            && i + 3 < tokens.len()
            && tokens[i + 1].is_punct(':')
            && tokens[i + 2].is_punct(':')
            && tokens[i + 3].is_ident("now");
        if !now_call || ctx.in_test_region(token.line) {
            continue;
        }
        // `timed.then(Instant::now)`: only evaluated when the recorder-
        // liveness flag is set — the sanctioned gated-span idiom.
        let recorder_gated = i >= 3
            && tokens[i - 1].is_punct('(')
            && tokens[i - 2].is_ident("then")
            && tokens[i - 3].is_punct('.');
        if recorder_gated {
            continue;
        }
        out.push(Diagnostic {
            rule: WALL_CLOCK_HYGIENE,
            path: ctx.rel_path.to_string(),
            line: token.line,
            message: format!(
                "`{}::now` outside telemetry/bench; gate it behind a recorder-liveness \
                 flag (`flag.then(Instant::now)`) or move the measurement into telemetry",
                token.text
            ),
        });
    }
}

const LOOKUP_FNS: [&str; 3] = ["counter", "gauge", "histogram"];
const CONSTRUCTOR_NAMES: [&str; 8] =
    ["new", "acquire", "restore", "build", "default", "install", "open", "create"];
const CONSTRUCTOR_PREFIXES: [&str; 4] = ["with_", "open_", "create_", "from_"];

/// Rule 4: `foodmatch_telemetry::{counter,gauge,histogram}` calls outside
/// constructor-shaped functions. Handles are cheap to *use* per window but
/// a lookup walks the registry under a lock — cache it at construction.
pub fn check_telemetry_handle_discipline(ctx: &FileContext<'_>, out: &mut Vec<Diagnostic>) {
    if !clock_sensitive(ctx.rel_path) {
        return;
    }
    let tokens = &ctx.tokens;
    for (i, token) in tokens.iter().enumerate() {
        let lookup = token.kind == TokenKind::Ident
            && LOOKUP_FNS.contains(&token.text.as_str())
            && tokens.get(i + 1).is_some_and(|t| t.is_punct('('))
            && i >= 3
            && tokens[i - 1].is_punct(':')
            && tokens[i - 2].is_punct(':')
            && (tokens[i - 3].is_ident("foodmatch_telemetry")
                || tokens[i - 3].is_ident("telemetry"));
        if !lookup || ctx.in_test_region(token.line) {
            continue;
        }
        let allowed = ctx.enclosing_fn[i].as_deref().is_some_and(|name| {
            CONSTRUCTOR_NAMES.contains(&name)
                || CONSTRUCTOR_PREFIXES.iter().any(|p| name.starts_with(p))
        });
        if allowed {
            continue;
        }
        out.push(Diagnostic {
            rule: TELEMETRY_HANDLE_DISCIPLINE,
            path: ctx.rel_path.to_string(),
            line: token.line,
            message: format!(
                "telemetry registry lookup `{}(..)` outside a constructor/restore; \
                 acquire the handle once at construction and reuse it",
                token.text
            ),
        });
    }
}

/// Runs every rule over one file, applies waivers, and reports stale ones.
pub fn scan_source(rel_path: &str, source: &str) -> (Vec<Diagnostic>, Vec<Waiver>) {
    let ctx = FileContext::new(rel_path, source);
    let (mut waivers, mut diagnostics) = parse_waivers(rel_path, &ctx.lines);
    let mut found = Vec::new();
    check_nondeterministic_iteration(&ctx, &mut found);
    check_panic_free_durability(&ctx, &mut found);
    check_wall_clock_hygiene(&ctx, &mut found);
    check_telemetry_handle_discipline(&ctx, &mut found);
    for diag in found {
        match waivers.iter_mut().find(|w| w.rule == diag.rule && w.covers_line == diag.line) {
            Some(waiver) => waiver.suppressed += 1,
            None => diagnostics.push(diag),
        }
    }
    for waiver in &waivers {
        if waiver.suppressed == 0 {
            diagnostics.push(Diagnostic {
                rule: UNUSED_WAIVER,
                path: rel_path.to_string(),
                line: waiver.declared_line,
                message: format!(
                    "waiver for `{}` suppresses nothing — the violation moved or was \
                     fixed; delete the comment",
                    waiver.rule
                ),
            });
        }
    }
    diagnostics.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    (diagnostics, waivers)
}
