//! A hand-rolled token-level scanner for Rust source — deliberately *not* a
//! parser. The lint rules only need identifier and punctuation tokens with
//! line numbers; everything that could confuse a naive substring match is
//! handled here instead: line and (nested) block comments, string literals
//! (plain, raw with any `#` depth, byte, C), char literals, lifetimes, raw
//! identifiers, and numeric literals. `expect` inside a doc comment or a
//! `"expect"` string never becomes a token, and `unwrap_or_else` is one
//! identifier, not a match for `unwrap`.

/// What a token is. The rules only distinguish words from symbols.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`for`, `fn`, `HashMap`, `unwrap`, …).
    Ident,
    /// A single punctuation character (`.`, `:`, `(`, `{`, `!`, …).
    Punct,
}

/// One lexed token with its 1-based source line.
#[derive(Clone, Debug)]
pub struct Token {
    pub kind: TokenKind,
    pub text: String,
    pub line: usize,
}

impl Token {
    /// True for an identifier token with exactly this text.
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == text
    }

    /// True for a punctuation token with exactly this character.
    pub fn is_punct(&self, ch: char) -> bool {
        self.kind == TokenKind::Punct
            && self.text.len() == ch.len_utf8()
            && self.text.starts_with(ch)
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Lexes `source` into ident/punct tokens, skipping comments, strings,
/// chars, lifetimes and numbers. Never fails: unterminated literals simply
/// consume to end of input (the real compiler reports those).
pub fn tokenize(source: &str) -> Vec<Token> {
    Lexer { bytes: source.as_bytes(), pos: 0, line: 1, tokens: Vec::new() }.run()
}

struct Lexer<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: usize,
    tokens: Vec<Token>,
}

impl Lexer<'_> {
    fn run(mut self) -> Vec<Token> {
        while self.pos < self.bytes.len() {
            let b = self.bytes[self.pos];
            match b {
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                b'/' if self.peek(1) == Some(b'/') => self.skip_line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.skip_block_comment(),
                b'"' => self.skip_string(),
                b'\'' => self.skip_char_or_lifetime(),
                _ if is_ident_start(b) => self.lex_ident(),
                _ if b.is_ascii_digit() => self.skip_number(),
                _ => {
                    if !b.is_ascii_whitespace() {
                        self.push_punct(b as char);
                    }
                    self.pos += 1;
                }
            }
        }
        self.tokens
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    fn push_punct(&mut self, ch: char) {
        self.tokens.push(Token { kind: TokenKind::Punct, text: ch.to_string(), line: self.line });
    }

    fn skip_line_comment(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\n' {
            self.pos += 1;
        }
    }

    fn skip_block_comment(&mut self) {
        self.pos += 2;
        let mut depth = 1usize;
        while self.pos < self.bytes.len() && depth > 0 {
            match (self.bytes[self.pos], self.peek(1)) {
                (b'/', Some(b'*')) => {
                    depth += 1;
                    self.pos += 2;
                }
                (b'*', Some(b'/')) => {
                    depth -= 1;
                    self.pos += 2;
                }
                (b'\n', _) => {
                    self.line += 1;
                    self.pos += 1;
                }
                _ => self.pos += 1,
            }
        }
    }

    /// Skips a `"…"` literal starting at the opening quote, honouring
    /// `\"` and `\\` escapes and counting embedded newlines.
    fn skip_string(&mut self) {
        self.pos += 1;
        while self.pos < self.bytes.len() {
            match self.bytes[self.pos] {
                b'\\' => {
                    // An escaped newline is a line-continuation: the line
                    // count must still advance past it.
                    if self.peek(1) == Some(b'\n') {
                        self.line += 1;
                    }
                    self.pos += 2;
                }
                b'"' => {
                    self.pos += 1;
                    return;
                }
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                _ => self.pos += 1,
            }
        }
    }

    /// Skips a raw string `r"…"` / `r#"…"#…` starting at the first `#` or
    /// quote (the `r`/`br` prefix has already been consumed).
    fn skip_raw_string(&mut self) {
        let mut hashes = 0usize;
        while self.peek(0) == Some(b'#') {
            hashes += 1;
            self.pos += 1;
        }
        if self.peek(0) != Some(b'"') {
            return; // not actually a raw string; let the main loop resume
        }
        self.pos += 1;
        while self.pos < self.bytes.len() {
            if self.bytes[self.pos] == b'\n' {
                self.line += 1;
                self.pos += 1;
                continue;
            }
            if self.bytes[self.pos] == b'"' {
                let mut matched = 0usize;
                while matched < hashes && self.peek(1 + matched) == Some(b'#') {
                    matched += 1;
                }
                if matched == hashes {
                    self.pos += 1 + hashes;
                    return;
                }
            }
            self.pos += 1;
        }
    }

    /// Disambiguates `'a` (lifetime) from `'a'` / `'\n'` (char literal) at
    /// an opening quote.
    fn skip_char_or_lifetime(&mut self) {
        if self.peek(1) == Some(b'\\') {
            // Escaped char literal: quote, backslash, payload, closing quote.
            self.pos += 2;
            while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\'' {
                self.pos += 1;
            }
            self.pos += 1;
            return;
        }
        if self.peek(1).is_some_and(is_ident_start) {
            // `'x…`: a char literal iff the ident run is one char long and
            // immediately closed by a quote; a lifetime otherwise.
            let mut end = self.pos + 2;
            while end < self.bytes.len() && is_ident_continue(self.bytes[end]) {
                end += 1;
            }
            if self.bytes.get(end) == Some(&b'\'') {
                self.pos = end + 1; // char literal like 'a'
            } else {
                self.pos = end; // lifetime like 'a — no trailing quote
            }
            return;
        }
        // `'('`-style literal (or stray quote): consume to the close.
        self.pos += 1;
        while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\'' {
            if self.bytes[self.pos] == b'\n' {
                self.line += 1;
            }
            self.pos += 1;
        }
        self.pos += 1;
    }

    fn skip_number(&mut self) {
        // Good enough for token boundaries: digits, `_`, type suffixes,
        // hex/bin/oct bodies, and a fractional part when a digit follows
        // the dot (`1..5` keeps its range dots).
        while self.pos < self.bytes.len() {
            let b = self.bytes[self.pos];
            let fraction_dot = b == b'.' && self.peek(1).is_some_and(|n| n.is_ascii_digit());
            if b.is_ascii_alphanumeric() || b == b'_' || fraction_dot {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn lex_ident(&mut self) {
        let start = self.pos;
        while self.pos < self.bytes.len() && is_ident_continue(self.bytes[self.pos]) {
            self.pos += 1;
        }
        let text = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
        // String-literal prefixes: `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`,
        // `c"…"`, and the raw-identifier prefix `r#ident`.
        let next = self.peek(0);
        match text.as_str() {
            "r" | "br" | "cr" if next == Some(b'"') || next == Some(b'#') => {
                if next == Some(b'#') && text == "r" {
                    // Could be a raw identifier `r#move` rather than `r#"…"`.
                    if self.peek(1).is_some_and(is_ident_start) {
                        self.pos += 1; // consume '#', then lex the ident
                        self.lex_ident();
                        return;
                    }
                }
                self.skip_raw_string();
                return;
            }
            "b" | "c" if next == Some(b'"') => {
                self.skip_string();
                return;
            }
            "b" if next == Some(b'\'') => {
                self.skip_char_or_lifetime();
                return;
            }
            _ => {}
        }
        self.tokens.push(Token { kind: TokenKind::Ident, text, line: self.line });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(source: &str) -> Vec<String> {
        tokenize(source)
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn comments_and_strings_produce_no_tokens() {
        let src = r##"
            // unwrap in a comment
            /* expect in /* a nested */ block */
            let a = "unwrap inside a string";
            let b = r#"raw expect"#;
            let c = 'x';
        "##;
        let words = idents(src);
        assert!(!words.contains(&"unwrap".to_string()), "{words:?}");
        assert!(!words.contains(&"expect".to_string()), "{words:?}");
        assert!(words.contains(&"let".to_string()));
    }

    #[test]
    fn exact_identifiers_do_not_split() {
        let words = idents("x.unwrap_or_else(); y.expect_end(); z.unwrap();");
        assert_eq!(
            words,
            vec!["x", "unwrap_or_else", "y", "expect_end", "z", "unwrap"],
            "identifier boundaries must be exact"
        );
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        // A naive quote-matcher would treat `'a` as an unterminated char
        // literal and swallow the rest of the line.
        let words = idents("fn f<'a>(x: &'a str) { x.unwrap() }");
        assert!(words.contains(&"unwrap".to_string()), "{words:?}");
    }

    #[test]
    fn line_numbers_survive_multiline_constructs() {
        let src = "let a = \"two\nlines\";\n/* block\ncomment */\nfoo();";
        let tokens = tokenize(src);
        let foo = tokens.iter().find(|t| t.is_ident("foo")).expect("foo lexed");
        assert_eq!(foo.line, 5);
    }
}
