//! `foodmatch-lint` — a repo-specific determinism & panic-safety lint pass.
//!
//! Every guarantee this reproduction makes — golden service/router
//! equivalence, recovery landing bit-identical on the acked flush boundary,
//! telemetry neutrality — rests on invariants the compiler does not check:
//! no hasher-ordered iteration on the output path, no panics in the code
//! that runs mid-crash-recovery, no wall-clock reads outside telemetry, no
//! telemetry registry lookups in per-window loops. This crate enforces them
//! as typed diagnostics with `file:line`, a rule id, and a stable JSON
//! report, over a hand-rolled token-level scanner ([`lexer`]) — std-only,
//! no `syn`.
//!
//! A violation that is *correct by design* is waived in-source:
//!
//! ```text
//! // lint, colon, space, then: allow(<rule-id>) — <reason>
//! ```
//!
//! (written as one contiguous comment marker; spelled out here so the
//! self-scan does not read this paragraph as a waiver). A waiver with no
//! reason, naming an unknown rule, or suppressing nothing is itself a
//! diagnostic — waivers are recorded and counted in the JSON report so
//! creep is visible in CI.

pub mod lexer;
pub mod rules;

pub use rules::{scan_source, Diagnostic, Waiver, RULES};

use std::fs;
use std::path::{Path, PathBuf};

/// Everything one run of the pass produced, ready for printing or JSON.
#[derive(Debug, Default)]
pub struct Report {
    pub files_scanned: usize,
    pub diagnostics: Vec<Diagnostic>,
    pub waivers: Vec<(String, Waiver)>,
}

impl Report {
    /// True when the workspace is clean (waived violations are fine by
    /// definition — that is what a reason-carrying waiver means).
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Serialises the report as stable JSON: fixed key order, diagnostics
    /// sorted by `(path, line, rule)`, waivers by `(path, line)`.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\n  \"tool\": \"foodmatch-lint\",\n");
        out.push_str(&format!("  \"version\": {},\n", json_str(env!("CARGO_PKG_VERSION"))));
        out.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        out.push_str("  \"rules\": [\n");
        for (i, (id, description)) in RULES.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"id\": {}, \"description\": {}}}{}\n",
                json_str(id),
                json_str(description),
                if i + 1 < RULES.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n");
        out.push_str(&format!("  \"diagnostic_count\": {},\n", self.diagnostics.len()));
        out.push_str("  \"diagnostics\": [\n");
        for (i, d) in self.diagnostics.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"rule\": {}, \"path\": {}, \"line\": {}, \"message\": {}}}{}\n",
                json_str(d.rule),
                json_str(&d.path),
                d.line,
                json_str(&d.message),
                if i + 1 < self.diagnostics.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n");
        out.push_str(&format!("  \"waiver_count\": {},\n", self.waivers.len()));
        out.push_str("  \"waivers\": [\n");
        for (i, (path, w)) in self.waivers.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"rule\": {}, \"path\": {}, \"line\": {}, \"suppressed\": {}, \
                 \"reason\": {}}}{}\n",
                json_str(&w.rule),
                json_str(path),
                w.declared_line,
                w.suppressed,
                json_str(&w.reason),
                if i + 1 < self.waivers.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Collects every `.rs` file under `crates/`, `tests/`, and `examples/` of
/// `root`, sorted for deterministic reports. Directories named `target` or
/// `fixtures` are skipped — fixtures *are* seeded violations.
pub fn workspace_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    for top in ["crates", "tests", "examples"] {
        let dir = root.join(top);
        if dir.is_dir() {
            collect_rs(&dir, &mut files)?;
        }
    }
    files.sort();
    Ok(files)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if name == "target" || name == "fixtures" || name.starts_with('.') {
                continue;
            }
            collect_rs(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Runs the full pass over a workspace root.
pub fn scan_workspace(root: &Path) -> std::io::Result<Report> {
    let mut report = Report::default();
    for path in workspace_files(root)? {
        let rel = path.strip_prefix(root).unwrap_or(&path).to_string_lossy().replace('\\', "/");
        let source = fs::read_to_string(&path)?;
        let (diagnostics, waivers) = scan_source(&rel, &source);
        report.files_scanned += 1;
        report.diagnostics.extend(diagnostics);
        report.waivers.extend(waivers.into_iter().map(|w| (rel.clone(), w)));
    }
    report
        .diagnostics
        .sort_by(|a, b| (a.path.as_str(), a.line, a.rule).cmp(&(b.path.as_str(), b.line, b.rule)));
    report
        .waivers
        .sort_by(|a, b| (a.0.as_str(), a.1.declared_line).cmp(&(b.0.as_str(), b.1.declared_line)));
    Ok(report)
}

/// Walks upward from `start` to the directory holding the workspace
/// `Cargo.toml` (the one declaring `[workspace]`).
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(dir);
                }
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}
