//! A unified façade over the shortest-path backends.
//!
//! Higher layers (route planning, batching, FoodGraph construction, the
//! simulator) issue a very large number of `SP(u, v, t)` queries. The paper
//! accelerates these with hub labels; we expose three interchangeable
//! engines behind [`ShortestPathEngine`]:
//!
//! * [`EngineKind::Dijkstra`] — no index, every query runs Dijkstra. Baseline
//!   and reference implementation.
//! * [`EngineKind::Cached`] — Dijkstra plus a per-slot memo of `(source,
//!   target) → travel time`, which pays off because dispatch repeatedly asks
//!   about the same restaurant/customer nodes within a window.
//! * [`EngineKind::HubLabels`] — exact hub labels built lazily per hour slot
//!   (see [`crate::hub_labels`]).
//!
//! The engine is `Send + Sync` (interior mutability uses [`parking_lot`]
//! locks) so FoodGraph construction can fan out per-vehicle work across
//! threads while sharing one engine.

use crate::dijkstra;
use crate::graph::RoadNetwork;
use crate::hub_labels::HubLabelIndex;
use crate::ids::NodeId;
use crate::timeofday::{Duration, HourSlot, TimePoint};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Which backend a [`ShortestPathEngine`] uses.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EngineKind {
    /// Plain Dijkstra per query.
    Dijkstra,
    /// Dijkstra with a per-hour-slot memoisation cache.
    Cached,
    /// Lazily built exact hub labels per hour slot.
    HubLabels,
}

/// Shared, thread-safe shortest-path oracle over a [`RoadNetwork`].
#[derive(Clone)]
pub struct ShortestPathEngine {
    inner: Arc<EngineInner>,
}

struct EngineInner {
    network: RoadNetwork,
    kind: EngineKind,
    /// Memo for [`EngineKind::Cached`]: slot → (source, target) → seconds
    /// (`f64::INFINITY` encodes "unreachable").
    cache: [Mutex<HashMap<(NodeId, NodeId), f64>>; HourSlot::COUNT],
    /// Lazily built hub-label indexes for [`EngineKind::HubLabels`].
    labels: [RwLock<Option<Arc<HubLabelIndex>>>; HourSlot::COUNT],
    queries: AtomicU64,
}

impl ShortestPathEngine {
    /// Creates an engine of the given kind over `network`.
    pub fn new(network: RoadNetwork, kind: EngineKind) -> Self {
        ShortestPathEngine {
            inner: Arc::new(EngineInner {
                network,
                kind,
                cache: std::array::from_fn(|_| Mutex::new(HashMap::new())),
                labels: std::array::from_fn(|_| RwLock::new(None)),
                queries: AtomicU64::new(0),
            }),
        }
    }

    /// Convenience constructor for a plain-Dijkstra engine.
    pub fn dijkstra(network: RoadNetwork) -> Self {
        Self::new(network, EngineKind::Dijkstra)
    }

    /// Convenience constructor for a caching engine (the default used by the
    /// experiments).
    pub fn cached(network: RoadNetwork) -> Self {
        Self::new(network, EngineKind::Cached)
    }

    /// Convenience constructor for a hub-label engine.
    pub fn hub_labels(network: RoadNetwork) -> Self {
        Self::new(network, EngineKind::HubLabels)
    }

    /// The underlying road network.
    pub fn network(&self) -> &RoadNetwork {
        &self.inner.network
    }

    /// Which backend this engine uses.
    pub fn kind(&self) -> EngineKind {
        self.inner.kind
    }

    /// Number of point-to-point queries answered so far (for benchmarks).
    pub fn query_count(&self) -> u64 {
        self.inner.queries.load(Ordering::Relaxed)
    }

    /// `SP(source, target, t)`: shortest travel time at time `t`, or `None`
    /// if the target is unreachable.
    pub fn travel_time(&self, source: NodeId, target: NodeId, t: TimePoint) -> Option<Duration> {
        self.inner.queries.fetch_add(1, Ordering::Relaxed);
        if source == target {
            return Some(Duration::ZERO);
        }
        match self.inner.kind {
            EngineKind::Dijkstra => {
                dijkstra::shortest_travel_time(&self.inner.network, source, target, t)
            }
            EngineKind::Cached => self.cached_travel_time(source, target, t),
            EngineKind::HubLabels => self.labels_for(t.hour_slot()).travel_time(source, target),
        }
    }

    /// Travel times from `source` to several `targets` in a single backend
    /// pass where the backend supports it.
    pub fn travel_times_to_many(
        &self,
        source: NodeId,
        targets: &[NodeId],
        t: TimePoint,
    ) -> Vec<Option<Duration>> {
        self.inner.queries.fetch_add(targets.len() as u64, Ordering::Relaxed);
        match self.inner.kind {
            EngineKind::Dijkstra => dijkstra::one_to_many(&self.inner.network, source, targets, t),
            EngineKind::Cached => {
                // Answer what the cache already knows, then fill the gaps with
                // a single one-to-many run.
                let slot = t.hour_slot();
                let mut out: Vec<Option<Option<Duration>>> = vec![None; targets.len()];
                {
                    let cache = self.inner.cache[slot.index()].lock();
                    for (i, &target) in targets.iter().enumerate() {
                        if source == target {
                            out[i] = Some(Some(Duration::ZERO));
                        } else if let Some(&secs) = cache.get(&(source, target)) {
                            out[i] = Some(decode(secs));
                        }
                    }
                }
                let missing: Vec<NodeId> = targets
                    .iter()
                    .zip(&out)
                    .filter(|(_, o)| o.is_none())
                    .map(|(&n, _)| n)
                    .collect();
                if !missing.is_empty() {
                    let answers = dijkstra::one_to_many(&self.inner.network, source, &missing, t);
                    let mut cache = self.inner.cache[slot.index()].lock();
                    let mut it = answers.into_iter();
                    for (i, &target) in targets.iter().enumerate() {
                        if out[i].is_none() {
                            let answer = it.next().expect("one answer per missing target");
                            cache.insert((source, target), encode(answer));
                            out[i] = Some(answer);
                        }
                    }
                }
                out.into_iter().map(|o| o.expect("all targets answered")).collect()
            }
            EngineKind::HubLabels => {
                let index = self.labels_for(t.hour_slot());
                targets.iter().map(|&target| index.travel_time(source, target)).collect()
            }
        }
    }

    /// Shortest path with node sequence and length; always computed with
    /// Dijkstra (only the simulator needs full paths, and only once per
    /// accepted route plan leg).
    pub fn shortest_path(
        &self,
        source: NodeId,
        target: NodeId,
        t: TimePoint,
    ) -> Option<dijkstra::PathResult> {
        dijkstra::shortest_path(&self.inner.network, source, target, t)
    }

    /// Forces construction of the hub-label index for `slot` (no-op for other
    /// engine kinds). Useful to move index construction out of measured
    /// sections in benchmarks.
    pub fn warm_up(&self, slot: HourSlot) {
        if self.inner.kind == EngineKind::HubLabels {
            let _ = self.labels_for_slot(slot);
        }
    }

    fn cached_travel_time(&self, source: NodeId, target: NodeId, t: TimePoint) -> Option<Duration> {
        let slot = t.hour_slot();
        if let Some(&secs) = self.inner.cache[slot.index()].lock().get(&(source, target)) {
            return decode(secs);
        }
        let answer = dijkstra::shortest_travel_time(&self.inner.network, source, target, t);
        self.inner.cache[slot.index()].lock().insert((source, target), encode(answer));
        answer
    }

    fn labels_for(&self, slot: HourSlot) -> Arc<HubLabelIndex> {
        self.labels_for_slot(slot)
    }

    fn labels_for_slot(&self, slot: HourSlot) -> Arc<HubLabelIndex> {
        if let Some(index) = self.inner.labels[slot.index()].read().as_ref() {
            return Arc::clone(index);
        }
        let mut guard = self.inner.labels[slot.index()].write();
        if let Some(index) = guard.as_ref() {
            return Arc::clone(index);
        }
        let index = Arc::new(HubLabelIndex::build(&self.inner.network, slot));
        *guard = Some(Arc::clone(&index));
        index
    }
}

fn encode(d: Option<Duration>) -> f64 {
    d.map_or(f64::INFINITY, Duration::as_secs_f64)
}

fn decode(secs: f64) -> Option<Duration> {
    if secs.is_finite() {
        Some(Duration::from_secs_f64(secs))
    } else {
        None
    }
}

impl std::fmt::Debug for ShortestPathEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShortestPathEngine")
            .field("kind", &self.inner.kind)
            .field("nodes", &self.inner.network.node_count())
            .field("queries", &self.query_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::GridCityBuilder;

    fn sample_pairs(net: &RoadNetwork) -> Vec<(NodeId, NodeId)> {
        let nodes: Vec<NodeId> = net.node_ids().collect();
        let mut pairs = Vec::new();
        for (i, &a) in nodes.iter().enumerate().step_by(5) {
            for &b in nodes.iter().skip(i % 3).step_by(7) {
                pairs.push((a, b));
            }
        }
        pairs
    }

    #[test]
    fn all_engines_agree() {
        let net = GridCityBuilder::new(6, 6).build();
        let t = TimePoint::from_hms(13, 15, 0);
        let reference = ShortestPathEngine::dijkstra(net.clone());
        let cached = ShortestPathEngine::cached(net.clone());
        let labels = ShortestPathEngine::hub_labels(net.clone());
        for (a, b) in sample_pairs(&net) {
            let expected = reference.travel_time(a, b, t);
            for engine in [&cached, &labels] {
                let got = engine.travel_time(a, b, t);
                match (expected, got) {
                    (None, None) => {}
                    (Some(x), Some(y)) => assert!(
                        (x.as_secs_f64() - y.as_secs_f64()).abs() < 1e-6,
                        "{a}->{b}: {x:?} vs {y:?} with {:?}",
                        engine.kind()
                    ),
                    other => panic!("{a}->{b}: {other:?} with {:?}", engine.kind()),
                }
            }
        }
    }

    #[test]
    fn cached_engine_answers_repeat_queries_identically() {
        let net = GridCityBuilder::new(5, 5).build();
        let engine = ShortestPathEngine::cached(net.clone());
        let t = TimePoint::from_hms(19, 0, 0);
        let first = engine.travel_time(NodeId(0), NodeId(24), t);
        let second = engine.travel_time(NodeId(0), NodeId(24), t);
        assert_eq!(first, second);
        assert!(engine.query_count() >= 2);
    }

    #[test]
    fn to_many_matches_pointwise_queries() {
        let net = GridCityBuilder::new(5, 4).build();
        let t = TimePoint::from_hms(12, 0, 0);
        let targets: Vec<NodeId> = net.node_ids().step_by(3).collect();
        for kind in [EngineKind::Dijkstra, EngineKind::Cached, EngineKind::HubLabels] {
            let engine = ShortestPathEngine::new(net.clone(), kind);
            let batch = engine.travel_times_to_many(NodeId(1), &targets, t);
            for (i, &target) in targets.iter().enumerate() {
                assert_eq!(batch[i], engine.travel_time(NodeId(1), target, t), "kind {kind:?}");
            }
        }
    }

    #[test]
    fn cached_to_many_mixes_cache_hits_and_misses() {
        let net = GridCityBuilder::new(5, 4).build();
        let engine = ShortestPathEngine::cached(net.clone());
        let t = TimePoint::from_hms(9, 0, 0);
        // Prime part of the cache.
        let _ = engine.travel_time(NodeId(0), NodeId(3), t);
        let targets: Vec<NodeId> = vec![NodeId(3), NodeId(7), NodeId(0), NodeId(11)];
        let batch = engine.travel_times_to_many(NodeId(0), &targets, t);
        let reference = ShortestPathEngine::dijkstra(net);
        for (i, &target) in targets.iter().enumerate() {
            assert_eq!(batch[i], reference.travel_time(NodeId(0), target, t));
        }
    }

    #[test]
    fn engine_is_shareable_across_threads() {
        let net = GridCityBuilder::new(6, 6).build();
        let engine = ShortestPathEngine::hub_labels(net.clone());
        let t = TimePoint::from_hms(12, 0, 0);
        let expected = engine.travel_time(NodeId(0), NodeId(35), t);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let engine = engine.clone();
                scope.spawn(move || {
                    assert_eq!(engine.travel_time(NodeId(0), NodeId(35), t), expected);
                });
            }
        });
    }

    #[test]
    fn warm_up_builds_labels_once() {
        let net = GridCityBuilder::new(4, 4).build();
        let engine = ShortestPathEngine::hub_labels(net);
        engine.warm_up(HourSlot::new(12));
        // Second warm-up must not panic or rebuild into inconsistency.
        engine.warm_up(HourSlot::new(12));
        assert!(engine.travel_time(NodeId(0), NodeId(15), TimePoint::from_hms(12, 5, 0)).is_some());
    }
}
