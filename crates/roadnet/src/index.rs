//! A unified façade over the shortest-path backends.
//!
//! Higher layers (route planning, batching, FoodGraph construction, the
//! simulator) issue a very large number of `SP(u, v, t)` queries. The paper
//! accelerates these with hub labels; we expose four interchangeable
//! engines behind [`ShortestPathEngine`]:
//!
//! * [`EngineKind::Dijkstra`] — no index, every query runs Dijkstra. Baseline
//!   and reference implementation.
//! * [`EngineKind::Cached`] — Dijkstra plus a per-slot memo of `(source,
//!   target) → travel time`, which pays off because dispatch repeatedly asks
//!   about the same restaurant/customer nodes within a window. The memo is
//!   sharded 16 ways by source node so parallel dispatch workers don't
//!   serialise on one lock, and the lock is never held across the fallback
//!   Dijkstra run.
//! * [`EngineKind::HubLabels`] — exact hub labels built lazily per hour slot
//!   (see [`crate::hub_labels`]).
//! * [`EngineKind::ContractionHierarchies`] — a contraction-hierarchies
//!   index built lazily per hour slot (see [`crate::ch`]); the only indexed
//!   backend that also answers full *path* queries (via shortcut unpacking).
//!
//! The engine is `Send + Sync` (interior mutability uses [`parking_lot`]
//! locks) so FoodGraph construction can fan out per-vehicle work across
//! threads while sharing one engine. Dijkstra fallbacks run in pooled
//! [`SearchSpace`]s (checked out per query, returned on drop), so steady-state
//! queries perform no allocation; [`ShortestPathEngine::search_space`] hands
//! the same pooled spaces to callers that drive their own
//! [`Expansion`](crate::dijkstra::Expansion)s.

use crate::ch::ContractionHierarchy;
use crate::dijkstra::{self, SearchSpace};
use crate::graph::RoadNetwork;
use crate::hub_labels::HubLabelIndex;
use crate::ids::{EdgeId, NodeId};
use crate::overlay::{self, TrafficOverlay};
use crate::parallel::parallel_map;
use crate::timeofday::{Duration, HourSlot, TimePoint};
use foodmatch_telemetry as telemetry;
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Number of shards of the per-slot memo cache. Shard choice hashes only the
/// source node, so a one-to-many fill for one source stays within one shard.
const CACHE_SHARDS: usize = 16;

/// Upper bound on pooled search spaces (≈ the largest plausible worker
/// fan-out; beyond it, spaces are simply dropped).
const MAX_POOLED_SPACES: usize = 64;

/// Which backend a [`ShortestPathEngine`] uses.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EngineKind {
    /// Plain Dijkstra per query.
    Dijkstra,
    /// Dijkstra with a per-hour-slot memoisation cache.
    Cached,
    /// Lazily built exact hub labels per hour slot.
    HubLabels,
    /// Lazily built contraction hierarchies per hour slot.
    ContractionHierarchies,
}

impl EngineKind {
    /// All engine kinds, in documentation order (useful for equivalence
    /// tests and per-backend benchmarks).
    pub const ALL: [EngineKind; 4] = [
        EngineKind::Dijkstra,
        EngineKind::Cached,
        EngineKind::HubLabels,
        EngineKind::ContractionHierarchies,
    ];
}

/// One shard group of the memo cache for a single hour slot.
type CacheSlot = [Mutex<HashMap<(NodeId, NodeId), f64>>; CACHE_SHARDS];

/// The engine's current traffic overlay, stamped with a generation counter.
/// Swapping the overlay bumps the generation, which invalidates every
/// memoised overlay answer without touching the per-slot indexes.
#[derive(Debug)]
struct OverlayVersion {
    generation: u64,
    overlay: TrafficOverlay,
}

/// One shard of the overlay memo. Entries are only valid while the stamp
/// matches the active overlay generation and hour slot; a mismatch clears
/// the shard lazily on first touch (generation-stamped invalidation).
#[derive(Debug, Default)]
struct OverlayShard {
    generation: u64,
    slot: usize,
    map: HashMap<(NodeId, NodeId), f64>,
}

impl OverlayShard {
    /// Makes the shard valid for `(generation, slot)`, clearing stale entries.
    fn ensure(&mut self, generation: u64, slot: usize) {
        if self.generation != generation || self.slot != slot {
            self.map.clear();
            self.generation = generation;
            self.slot = slot;
        }
    }
}

/// Shared, thread-safe shortest-path oracle over a [`RoadNetwork`].
#[derive(Clone)]
pub struct ShortestPathEngine {
    inner: Arc<EngineInner>,
}

/// Telemetry handles, acquired once at engine construction. Inert (every
/// update a no-op) when no recorder is installed at that point; strictly
/// observational either way — recording never changes an answer.
struct EngineMetrics {
    /// `engine.queries` — every point/one-to-many/path query.
    queries: telemetry::Counter,
    /// `engine.memo.hits.shardNN` / `.misses.shardNN` — per-shard memo
    /// traffic of the [`EngineKind::Cached`] backend.
    memo_hits: [telemetry::Counter; CACHE_SHARDS],
    memo_misses: [telemetry::Counter; CACHE_SHARDS],
    /// `engine.overlay_memo.hits` / `.misses` — generation-stamped
    /// overlay memo traffic of the indexed backends.
    overlay_hits: telemetry::Counter,
    overlay_misses: telemetry::Counter,
    /// `engine.backend.{dijkstra,hub,ch}.queries` — which index answered
    /// (the Dijkstra counter includes the cached backend's fill runs).
    backend_dijkstra: telemetry::Counter,
    backend_hub: telemetry::Counter,
    backend_ch: telemetry::Counter,
    /// `engine.index.build_ns` — lazy per-slot hub-label / CH builds.
    index_build_ns: telemetry::Histogram,
}

impl EngineMetrics {
    fn acquire() -> Self {
        EngineMetrics {
            queries: telemetry::counter("engine.queries"),
            memo_hits: std::array::from_fn(|i| {
                telemetry::counter(&format!("engine.memo.hits.shard{i:02}"))
            }),
            memo_misses: std::array::from_fn(|i| {
                telemetry::counter(&format!("engine.memo.misses.shard{i:02}"))
            }),
            overlay_hits: telemetry::counter("engine.overlay_memo.hits"),
            overlay_misses: telemetry::counter("engine.overlay_memo.misses"),
            backend_dijkstra: telemetry::counter("engine.backend.dijkstra.queries"),
            backend_hub: telemetry::counter("engine.backend.hub.queries"),
            backend_ch: telemetry::counter("engine.backend.ch.queries"),
            index_build_ns: telemetry::histogram("engine.index.build_ns"),
        }
    }
}

struct EngineInner {
    network: RoadNetwork,
    kind: EngineKind,
    /// Memo for [`EngineKind::Cached`]: slot → shard → (source, target) →
    /// seconds (`f64::INFINITY` encodes "unreachable").
    cache: [CacheSlot; HourSlot::COUNT],
    /// Lazily built hub-label indexes for [`EngineKind::HubLabels`].
    labels: [RwLock<Option<Arc<HubLabelIndex>>>; HourSlot::COUNT],
    /// Lazily built contraction hierarchies for
    /// [`EngineKind::ContractionHierarchies`].
    hierarchies: [RwLock<Option<Arc<ContractionHierarchy>>>; HourSlot::COUNT],
    /// Pool of reusable Dijkstra search spaces.
    spaces: Mutex<Vec<SearchSpace>>,
    /// The active traffic overlay (empty at generation 0). Swapped whole so
    /// in-flight queries keep a consistent snapshot.
    overlay: RwLock<Arc<OverlayVersion>>,
    /// Fast-path flag mirroring `overlay`'s emptiness, so unperturbed queries
    /// skip the read lock entirely.
    overlay_active: AtomicBool,
    /// Memo of overlay answers for the indexed backends, sharded like the
    /// main cache and invalidated by generation stamp.
    overlay_cache: [Mutex<OverlayShard>; CACHE_SHARDS],
    queries: AtomicU64,
    metrics: EngineMetrics,
}

impl ShortestPathEngine {
    /// Creates an engine of the given kind over `network`.
    pub fn new(network: RoadNetwork, kind: EngineKind) -> Self {
        ShortestPathEngine {
            inner: Arc::new(EngineInner {
                network,
                kind,
                cache: std::array::from_fn(|_| std::array::from_fn(|_| Mutex::new(HashMap::new()))),
                labels: std::array::from_fn(|_| RwLock::new(None)),
                hierarchies: std::array::from_fn(|_| RwLock::new(None)),
                spaces: Mutex::new(Vec::new()),
                overlay: RwLock::new(Arc::new(OverlayVersion {
                    generation: 0,
                    overlay: TrafficOverlay::new(),
                })),
                overlay_active: AtomicBool::new(false),
                overlay_cache: std::array::from_fn(|_| Mutex::new(OverlayShard::default())),
                queries: AtomicU64::new(0),
                metrics: EngineMetrics::acquire(),
            }),
        }
    }

    /// Convenience constructor for a plain-Dijkstra engine.
    pub fn dijkstra(network: RoadNetwork) -> Self {
        Self::new(network, EngineKind::Dijkstra)
    }

    /// Convenience constructor for a caching engine (the default used by the
    /// experiments).
    pub fn cached(network: RoadNetwork) -> Self {
        Self::new(network, EngineKind::Cached)
    }

    /// Convenience constructor for a hub-label engine.
    pub fn hub_labels(network: RoadNetwork) -> Self {
        Self::new(network, EngineKind::HubLabels)
    }

    /// Convenience constructor for a contraction-hierarchies engine.
    pub fn contraction_hierarchies(network: RoadNetwork) -> Self {
        Self::new(network, EngineKind::ContractionHierarchies)
    }

    /// The underlying road network.
    pub fn network(&self) -> &RoadNetwork {
        &self.inner.network
    }

    /// Which backend this engine uses.
    pub fn kind(&self) -> EngineKind {
        self.inner.kind
    }

    /// Number of point-to-point queries answered so far (for benchmarks).
    pub fn query_count(&self) -> u64 {
        self.inner.queries.load(Ordering::Relaxed)
    }

    /// Checks a reusable [`SearchSpace`] out of the engine's pool; it returns
    /// to the pool when the guard drops. Callers that run their own
    /// [`Expansion`](crate::dijkstra::Expansion)s (the FoodGraph's per-vehicle
    /// best-first searches) use this so repeated searches stay
    /// allocation-free.
    pub fn search_space(&self) -> PooledSpace {
        let space = self.inner.spaces.lock().pop().unwrap_or_default();
        PooledSpace { space: Some(space), engine: Arc::clone(&self.inner) }
    }

    /// `SP(source, target, t)`: shortest travel time at time `t`, or `None`
    /// if the target is unreachable. When a [`TrafficOverlay`] is active the
    /// answer is exact on the perturbed weights (see [`Self::set_overlay`]).
    pub fn travel_time(&self, source: NodeId, target: NodeId, t: TimePoint) -> Option<Duration> {
        self.inner.queries.fetch_add(1, Ordering::Relaxed);
        self.inner.metrics.queries.inc();
        if source == target {
            return Some(Duration::ZERO);
        }
        if self.inner.overlay_active.load(Ordering::Acquire) {
            let version = self.overlay_version();
            if !version.overlay.is_empty() {
                return self.overlaid_travel_time(&version, source, target, t);
            }
        }
        self.baseline_travel_time(source, target, t)
    }

    /// The unperturbed answer from the configured backend.
    fn baseline_travel_time(
        &self,
        source: NodeId,
        target: NodeId,
        t: TimePoint,
    ) -> Option<Duration> {
        match self.inner.kind {
            EngineKind::Dijkstra => {
                self.inner.metrics.backend_dijkstra.inc();
                let mut space = self.search_space();
                dijkstra::shortest_travel_time_in(
                    &self.inner.network,
                    source,
                    target,
                    t,
                    &mut space,
                )
            }
            EngineKind::Cached => self.cached_travel_time(source, target, t),
            EngineKind::HubLabels => {
                self.inner.metrics.backend_hub.inc();
                self.labels_for(t.hour_slot()).travel_time(source, target)
            }
            EngineKind::ContractionHierarchies => {
                self.inner.metrics.backend_ch.inc();
                self.hierarchy_for(t.hour_slot()).travel_time(source, target)
            }
        }
    }

    /// Overlay-aware point query: the index (or cache) supplies the
    /// unperturbed lower bound `d₀`, a Dijkstra on the overlaid weights
    /// pruned at `d₀ × max_multiplier` supplies the exact answer, and the
    /// result is memoised under the overlay's generation stamp.
    fn overlaid_travel_time(
        &self,
        version: &OverlayVersion,
        source: NodeId,
        target: NodeId,
        t: TimePoint,
    ) -> Option<Duration> {
        let slot = t.hour_slot().index();
        if self.inner.kind == EngineKind::Dijkstra {
            // The reference backend stays memo-free: one exact search.
            let mut space = self.search_space();
            return overlay::shortest_travel_time_overlaid_in(
                &self.inner.network,
                &version.overlay,
                source,
                target,
                t,
                None,
                &mut space,
            );
        }
        let shard = &self.inner.overlay_cache[Self::shard(source)];
        {
            let mut cache = shard.lock();
            cache.ensure(version.generation, slot);
            if let Some(&secs) = cache.map.get(&(source, target)) {
                self.inner.metrics.overlay_hits.inc();
                return decode(secs);
            }
        }
        self.inner.metrics.overlay_misses.inc();
        // Overlays never disconnect the graph, so an unreachable baseline is
        // an unreachable perturbed pair too.
        let answer = self.baseline_travel_time(source, target, t).and_then(|d0| {
            let mut space = self.search_space();
            overlay::shortest_travel_time_overlaid_in(
                &self.inner.network,
                &version.overlay,
                source,
                target,
                t,
                Some(version.overlay.search_bound(d0.as_secs_f64())),
                &mut space,
            )
        });
        let mut cache = shard.lock();
        // Only memoise if the overlay has not been swapped mid-computation.
        if cache.generation == version.generation && cache.slot == slot {
            cache.map.insert((source, target), encode(answer));
        }
        answer
    }

    /// Travel times from `source` to several `targets` in a single backend
    /// pass where the backend supports it.
    pub fn travel_times_to_many(
        &self,
        source: NodeId,
        targets: &[NodeId],
        t: TimePoint,
    ) -> Vec<Option<Duration>> {
        self.inner.queries.fetch_add(targets.len() as u64, Ordering::Relaxed);
        self.inner.metrics.queries.add(targets.len() as u64);
        if self.inner.overlay_active.load(Ordering::Acquire) {
            let version = self.overlay_version();
            if !version.overlay.is_empty() {
                return self.overlaid_to_many(&version, source, targets, t);
            }
        }
        self.baseline_to_many(source, targets, t)
    }

    fn baseline_to_many(
        &self,
        source: NodeId,
        targets: &[NodeId],
        t: TimePoint,
    ) -> Vec<Option<Duration>> {
        match self.inner.kind {
            EngineKind::Dijkstra => {
                self.inner.metrics.backend_dijkstra.add(targets.len() as u64);
                let mut space = self.search_space();
                dijkstra::one_to_many_in(&self.inner.network, source, targets, t, &mut space)
            }
            EngineKind::Cached => self.cached_to_many(source, targets, t),
            EngineKind::HubLabels => {
                self.inner.metrics.backend_hub.add(targets.len() as u64);
                let index = self.labels_for(t.hour_slot());
                targets.iter().map(|&target| index.travel_time(source, target)).collect()
            }
            EngineKind::ContractionHierarchies => {
                self.inner.metrics.backend_ch.add(targets.len() as u64);
                self.hierarchy_for(t.hour_slot()).travel_times_to_many(source, targets)
            }
        }
    }

    /// Overlay-aware one-to-many: one baseline pass for the bounds, one
    /// bounded overlay Dijkstra for all targets, memoised per pair.
    fn overlaid_to_many(
        &self,
        version: &OverlayVersion,
        source: NodeId,
        targets: &[NodeId],
        t: TimePoint,
    ) -> Vec<Option<Duration>> {
        if self.inner.kind == EngineKind::Dijkstra {
            let mut space = self.search_space();
            return overlay::one_to_many_overlaid_in(
                &self.inner.network,
                &version.overlay,
                source,
                targets,
                t,
                None,
                &mut space,
            );
        }
        let slot = t.hour_slot().index();
        let shard = &self.inner.overlay_cache[Self::shard(source)];
        let mut out: Vec<Option<Option<Duration>>> = vec![None; targets.len()];
        {
            let mut cache = shard.lock();
            cache.ensure(version.generation, slot);
            for (i, &target) in targets.iter().enumerate() {
                if source == target {
                    out[i] = Some(Some(Duration::ZERO));
                } else if let Some(&secs) = cache.map.get(&(source, target)) {
                    out[i] = Some(decode(secs));
                }
            }
        }
        let missing: Vec<NodeId> =
            targets.iter().zip(&out).filter(|(_, o)| o.is_none()).map(|(&n, _)| n).collect();
        self.inner.metrics.overlay_hits.add((targets.len() - missing.len()) as u64);
        self.inner.metrics.overlay_misses.add(missing.len() as u64);
        if !missing.is_empty() {
            let baselines = self.baseline_to_many(source, &missing, t);
            // The search bound must cover the slowest reachable target.
            let bound = baselines
                .iter()
                .flatten()
                .map(|d| version.overlay.search_bound(d.as_secs_f64()))
                .fold(0.0_f64, f64::max);
            let answers = {
                let mut space = self.search_space();
                overlay::one_to_many_overlaid_in(
                    &self.inner.network,
                    &version.overlay,
                    source,
                    &missing,
                    t,
                    Some(bound),
                    &mut space,
                )
            };
            let mut cache = shard.lock();
            let memoise = cache.generation == version.generation && cache.slot == slot;
            let mut it = answers.into_iter();
            for (i, &target) in targets.iter().enumerate() {
                if out[i].is_none() {
                    let answer = it.next().expect("one answer per missing target");
                    if memoise {
                        cache.map.insert((source, target), encode(answer));
                    }
                    out[i] = Some(answer);
                }
            }
        }
        out.into_iter().map(|o| o.expect("all targets answered")).collect()
    }

    /// Shortest path with node sequence and length.
    ///
    /// Routed through the contraction-hierarchies index (with shortcut
    /// unpacking) when that backend is selected; every other backend answers
    /// with a pooled-space Dijkstra. Counted in [`Self::query_count`] like
    /// the other entry points.
    pub fn shortest_path(
        &self,
        source: NodeId,
        target: NodeId,
        t: TimePoint,
    ) -> Option<dijkstra::PathResult> {
        self.inner.queries.fetch_add(1, Ordering::Relaxed);
        self.inner.metrics.queries.inc();
        if self.inner.overlay_active.load(Ordering::Acquire) {
            let version = self.overlay_version();
            if !version.overlay.is_empty() {
                let mut space = self.search_space();
                return overlay::shortest_path_overlaid_in(
                    &self.inner.network,
                    &version.overlay,
                    source,
                    target,
                    t,
                    &mut space,
                );
            }
        }
        match self.inner.kind {
            EngineKind::ContractionHierarchies => {
                self.hierarchy_for(t.hour_slot()).shortest_path(&self.inner.network, source, target)
            }
            _ => {
                let mut space = self.search_space();
                dijkstra::shortest_path_in(&self.inner.network, source, target, t, &mut space)
            }
        }
    }

    /// Forces construction of the per-slot index for `slot` (no-op for the
    /// index-free engine kinds). Useful to move index construction out of
    /// measured sections in benchmarks.
    pub fn warm_up(&self, slot: HourSlot) {
        match self.inner.kind {
            EngineKind::HubLabels => {
                let _ = self.labels_for_slot(slot);
            }
            EngineKind::ContractionHierarchies => {
                let _ = self.hierarchy_for_slot(slot);
            }
            EngineKind::Dijkstra | EngineKind::Cached => {}
        }
    }

    /// Builds all 24 per-hour-slot indexes concurrently with up to
    /// `num_threads` workers (`0` = the machine's available parallelism), so
    /// the first window of each slot stops paying the lazy build. No-op for
    /// the index-free engine kinds.
    pub fn warm_all(&self, num_threads: usize) {
        if !matches!(self.inner.kind, EngineKind::HubLabels | EngineKind::ContractionHierarchies) {
            return;
        }
        let threads = match num_threads {
            0 => std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1),
            n => n,
        };
        let slots: Vec<HourSlot> = HourSlot::all().collect();
        parallel_map(&slots, threads, |_, &slot| self.warm_up(slot));
    }

    /// Installs `overlay` as the active traffic perturbation, bumping the
    /// overlay generation. Subsequent queries are answered exactly on the
    /// perturbed weights via a bounded overlay search on top of the
    /// configured backend — the per-slot indexes are *not* rebuilt; memoised
    /// overlay answers from earlier generations are invalidated by their
    /// generation stamp.
    ///
    /// Swapping the overlay while other threads query is safe (each query
    /// works on a consistent snapshot), but the caller is responsible for the
    /// semantics of mid-flight swaps; the simulator only swaps at
    /// accumulation-window boundaries.
    pub fn set_overlay(&self, overlay: TrafficOverlay) {
        let mut slot = self.inner.overlay.write();
        let generation = slot.generation + 1;
        let active = !overlay.is_empty();
        *slot = Arc::new(OverlayVersion { generation, overlay });
        self.inner.overlay_active.store(active, Ordering::Release);
    }

    /// Removes any active traffic overlay (bumps the generation).
    pub fn clear_overlay(&self) {
        self.set_overlay(TrafficOverlay::new());
    }

    /// True when a non-empty traffic overlay is active.
    pub fn has_overlay(&self) -> bool {
        self.inner.overlay_active.load(Ordering::Acquire)
    }

    /// The current overlay generation (starts at 0, bumped by every
    /// [`Self::set_overlay`] / [`Self::clear_overlay`]).
    pub fn overlay_generation(&self) -> u64 {
        self.inner.overlay.read().generation
    }

    /// The traversal time of a single edge at time `t` under the active
    /// overlay: `β(e, t) × multiplier(e)`. This is what the simulator uses to
    /// move vehicles, so fleet physics and the distance oracle always agree.
    /// Not counted as an oracle query.
    pub fn edge_travel_time(&self, edge: EdgeId, t: TimePoint) -> Duration {
        let base = self.inner.network.travel_time(edge, t);
        if !self.inner.overlay_active.load(Ordering::Acquire) {
            return base;
        }
        let version = self.overlay_version();
        let multiplier = version.overlay.multiplier(edge);
        if multiplier == 1.0 {
            base
        } else {
            Duration::from_secs_f64(base.as_secs_f64() * multiplier)
        }
    }

    /// A consistent snapshot of the active overlay version.
    fn overlay_version(&self) -> Arc<OverlayVersion> {
        Arc::clone(&self.inner.overlay.read())
    }

    #[inline]
    fn shard(source: NodeId) -> usize {
        // Fibonacci-style multiplicative hash of the source node; targets are
        // deliberately ignored so one-to-many fills stay within one shard.
        (source.0.wrapping_mul(0x9E37_79B1) >> 28) as usize % CACHE_SHARDS
    }

    fn cached_travel_time(&self, source: NodeId, target: NodeId, t: TimePoint) -> Option<Duration> {
        let slot = t.hour_slot();
        let shard_index = Self::shard(source);
        let shard = &self.inner.cache[slot.index()][shard_index];
        if let Some(&secs) = shard.lock().get(&(source, target)) {
            self.inner.metrics.memo_hits[shard_index].inc();
            return decode(secs);
        }
        self.inner.metrics.memo_misses[shard_index].inc();
        self.inner.metrics.backend_dijkstra.inc();
        // The fallback Dijkstra runs with no lock held; concurrent fills of
        // the same pair are idempotent (both insert the same exact answer).
        let answer = {
            let mut space = self.search_space();
            dijkstra::shortest_travel_time_in(&self.inner.network, source, target, t, &mut space)
        };
        shard.lock().insert((source, target), encode(answer));
        answer
    }

    fn cached_to_many(
        &self,
        source: NodeId,
        targets: &[NodeId],
        t: TimePoint,
    ) -> Vec<Option<Duration>> {
        // Answer what the cache already knows, then fill the gaps with a
        // single one-to-many run performed with no lock held.
        let slot = t.hour_slot();
        let shard_index = Self::shard(source);
        let shard = &self.inner.cache[slot.index()][shard_index];
        let mut out: Vec<Option<Option<Duration>>> = vec![None; targets.len()];
        {
            let cache = shard.lock();
            for (i, &target) in targets.iter().enumerate() {
                if source == target {
                    out[i] = Some(Some(Duration::ZERO));
                } else if let Some(&secs) = cache.get(&(source, target)) {
                    out[i] = Some(decode(secs));
                }
            }
        }
        let missing: Vec<NodeId> =
            targets.iter().zip(&out).filter(|(_, o)| o.is_none()).map(|(&n, _)| n).collect();
        self.inner.metrics.memo_hits[shard_index].add((targets.len() - missing.len()) as u64);
        self.inner.metrics.memo_misses[shard_index].add(missing.len() as u64);
        self.inner.metrics.backend_dijkstra.add(missing.len() as u64);
        if !missing.is_empty() {
            let answers = {
                let mut space = self.search_space();
                dijkstra::one_to_many_in(&self.inner.network, source, &missing, t, &mut space)
            };
            let mut cache = shard.lock();
            let mut it = answers.into_iter();
            for (i, &target) in targets.iter().enumerate() {
                if out[i].is_none() {
                    let answer = it.next().expect("one answer per missing target");
                    cache.insert((source, target), encode(answer));
                    out[i] = Some(answer);
                }
            }
        }
        out.into_iter().map(|o| o.expect("all targets answered")).collect()
    }

    fn labels_for(&self, slot: HourSlot) -> Arc<HubLabelIndex> {
        self.labels_for_slot(slot)
    }

    fn labels_for_slot(&self, slot: HourSlot) -> Arc<HubLabelIndex> {
        if let Some(index) = self.inner.labels[slot.index()].read().as_ref() {
            return Arc::clone(index);
        }
        let mut guard = self.inner.labels[slot.index()].write();
        if let Some(index) = guard.as_ref() {
            return Arc::clone(index);
        }
        let _span = telemetry::span("engine", "hub_labels.build");
        let _build = self.inner.metrics.index_build_ns.timer();
        let index = Arc::new(HubLabelIndex::build(&self.inner.network, slot));
        *guard = Some(Arc::clone(&index));
        index
    }

    fn hierarchy_for(&self, slot: HourSlot) -> Arc<ContractionHierarchy> {
        self.hierarchy_for_slot(slot)
    }

    fn hierarchy_for_slot(&self, slot: HourSlot) -> Arc<ContractionHierarchy> {
        if let Some(index) = self.inner.hierarchies[slot.index()].read().as_ref() {
            return Arc::clone(index);
        }
        let mut guard = self.inner.hierarchies[slot.index()].write();
        if let Some(index) = guard.as_ref() {
            return Arc::clone(index);
        }
        let _span = telemetry::span("engine", "ch.build");
        let _build = self.inner.metrics.index_build_ns.timer();
        let index = Arc::new(ContractionHierarchy::build(&self.inner.network, slot));
        *guard = Some(Arc::clone(&index));
        index
    }
}

/// A [`SearchSpace`] checked out of a [`ShortestPathEngine`]'s pool; derefs
/// to the space and returns it to the pool on drop.
pub struct PooledSpace {
    space: Option<SearchSpace>,
    engine: Arc<EngineInner>,
}

impl Deref for PooledSpace {
    type Target = SearchSpace;
    fn deref(&self) -> &SearchSpace {
        self.space.as_ref().expect("space present until drop")
    }
}

impl DerefMut for PooledSpace {
    fn deref_mut(&mut self) -> &mut SearchSpace {
        self.space.as_mut().expect("space present until drop")
    }
}

impl Drop for PooledSpace {
    fn drop(&mut self) {
        if let Some(space) = self.space.take() {
            let mut pool = self.engine.spaces.lock();
            if pool.len() < MAX_POOLED_SPACES {
                pool.push(space);
            }
        }
    }
}

fn encode(d: Option<Duration>) -> f64 {
    d.map_or(f64::INFINITY, Duration::as_secs_f64)
}

fn decode(secs: f64) -> Option<Duration> {
    if secs.is_finite() {
        Some(Duration::from_secs_f64(secs))
    } else {
        None
    }
}

impl std::fmt::Debug for ShortestPathEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShortestPathEngine")
            .field("kind", &self.inner.kind)
            .field("nodes", &self.inner.network.node_count())
            .field("queries", &self.query_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::GridCityBuilder;

    fn sample_pairs(net: &RoadNetwork) -> Vec<(NodeId, NodeId)> {
        let nodes: Vec<NodeId> = net.node_ids().collect();
        let mut pairs = Vec::new();
        for (i, &a) in nodes.iter().enumerate().step_by(5) {
            for &b in nodes.iter().skip(i % 3).step_by(7) {
                pairs.push((a, b));
            }
        }
        pairs
    }

    #[test]
    fn all_engines_agree() {
        let net = GridCityBuilder::new(6, 6).build();
        let t = TimePoint::from_hms(13, 15, 0);
        let reference = ShortestPathEngine::dijkstra(net.clone());
        let cached = ShortestPathEngine::cached(net.clone());
        let labels = ShortestPathEngine::hub_labels(net.clone());
        let hierarchies = ShortestPathEngine::contraction_hierarchies(net.clone());
        for (a, b) in sample_pairs(&net) {
            let expected = reference.travel_time(a, b, t);
            for engine in [&cached, &labels, &hierarchies] {
                let got = engine.travel_time(a, b, t);
                match (expected, got) {
                    (None, None) => {}
                    (Some(x), Some(y)) => assert!(
                        (x.as_secs_f64() - y.as_secs_f64()).abs() < 1e-6,
                        "{a}->{b}: {x:?} vs {y:?} with {:?}",
                        engine.kind()
                    ),
                    other => panic!("{a}->{b}: {other:?} with {:?}", engine.kind()),
                }
            }
        }
    }

    #[test]
    fn cached_engine_answers_repeat_queries_identically() {
        let net = GridCityBuilder::new(5, 5).build();
        let engine = ShortestPathEngine::cached(net.clone());
        let t = TimePoint::from_hms(19, 0, 0);
        let first = engine.travel_time(NodeId(0), NodeId(24), t);
        let second = engine.travel_time(NodeId(0), NodeId(24), t);
        assert_eq!(first, second);
        assert!(engine.query_count() >= 2);
    }

    #[test]
    fn to_many_matches_pointwise_queries() {
        let net = GridCityBuilder::new(5, 4).build();
        let t = TimePoint::from_hms(12, 0, 0);
        let targets: Vec<NodeId> = net.node_ids().step_by(3).collect();
        for kind in EngineKind::ALL {
            let engine = ShortestPathEngine::new(net.clone(), kind);
            let batch = engine.travel_times_to_many(NodeId(1), &targets, t);
            for (i, &target) in targets.iter().enumerate() {
                assert_eq!(batch[i], engine.travel_time(NodeId(1), target, t), "kind {kind:?}");
            }
        }
    }

    #[test]
    fn cached_to_many_mixes_cache_hits_and_misses() {
        let net = GridCityBuilder::new(5, 4).build();
        let engine = ShortestPathEngine::cached(net.clone());
        let t = TimePoint::from_hms(9, 0, 0);
        // Prime part of the cache.
        let _ = engine.travel_time(NodeId(0), NodeId(3), t);
        let targets: Vec<NodeId> = vec![NodeId(3), NodeId(7), NodeId(0), NodeId(11)];
        let batch = engine.travel_times_to_many(NodeId(0), &targets, t);
        let reference = ShortestPathEngine::dijkstra(net);
        for (i, &target) in targets.iter().enumerate() {
            assert_eq!(batch[i], reference.travel_time(NodeId(0), target, t));
        }
    }

    #[test]
    fn cached_engine_is_consistent_across_sources_in_different_shards() {
        let net = GridCityBuilder::new(6, 6).build();
        let engine = ShortestPathEngine::cached(net.clone());
        let reference = ShortestPathEngine::dijkstra(net.clone());
        let t = TimePoint::from_hms(13, 0, 0);
        // Sweep every node as a source so every shard gets traffic; repeat to
        // exercise the hit path too.
        for _ in 0..2 {
            for source in net.node_ids() {
                let target = NodeId((source.0 + 7) % net.node_count() as u32);
                assert_eq!(
                    engine.travel_time(source, target, t),
                    reference.travel_time(source, target, t)
                );
            }
        }
    }

    #[test]
    fn shortest_path_follows_the_backend_and_counts_queries() {
        let net = GridCityBuilder::new(5, 5).build();
        let t = TimePoint::from_hms(12, 0, 0);
        let reference = ShortestPathEngine::dijkstra(net.clone());
        let expected = reference.shortest_path(NodeId(0), NodeId(24), t).unwrap();
        assert!(reference.query_count() >= 1, "shortest_path must count as a query");
        for kind in EngineKind::ALL {
            let engine = ShortestPathEngine::new(net.clone(), kind);
            let before = engine.query_count();
            let got = engine.shortest_path(NodeId(0), NodeId(24), t).unwrap();
            assert!(engine.query_count() > before, "kind {kind:?} must count path queries");
            assert_eq!(got.nodes.first(), Some(&NodeId(0)));
            assert_eq!(got.nodes.last(), Some(&NodeId(24)));
            assert!(
                (got.travel_time.as_secs_f64() - expected.travel_time.as_secs_f64()).abs() < 1e-6,
                "kind {kind:?}: {got:?} vs {expected:?}"
            );
            assert!((got.length_m - expected.length_m).abs() < 1e-6);
        }
    }

    #[test]
    fn engine_is_shareable_across_threads() {
        let net = GridCityBuilder::new(6, 6).build();
        for kind in [EngineKind::HubLabels, EngineKind::ContractionHierarchies, EngineKind::Cached]
        {
            let engine = ShortestPathEngine::new(net.clone(), kind);
            let t = TimePoint::from_hms(12, 0, 0);
            let expected = engine.travel_time(NodeId(0), NodeId(35), t);
            std::thread::scope(|scope| {
                for _ in 0..4 {
                    let engine = engine.clone();
                    scope.spawn(move || {
                        assert_eq!(engine.travel_time(NodeId(0), NodeId(35), t), expected);
                    });
                }
            });
        }
    }

    #[test]
    fn warm_up_builds_indexes_once() {
        let net = GridCityBuilder::new(4, 4).build();
        for kind in [EngineKind::HubLabels, EngineKind::ContractionHierarchies] {
            let engine = ShortestPathEngine::new(net.clone(), kind);
            engine.warm_up(HourSlot::new(12));
            // Second warm-up must not panic or rebuild into inconsistency.
            engine.warm_up(HourSlot::new(12));
            assert!(engine
                .travel_time(NodeId(0), NodeId(15), TimePoint::from_hms(12, 5, 0))
                .is_some());
        }
    }

    #[test]
    fn warm_all_builds_every_slot_concurrently() {
        let net = GridCityBuilder::new(4, 4).build();
        for kind in [EngineKind::HubLabels, EngineKind::ContractionHierarchies] {
            let engine = ShortestPathEngine::new(net.clone(), kind);
            engine.warm_all(4);
            match kind {
                EngineKind::HubLabels => {
                    for slot in HourSlot::all() {
                        assert!(
                            engine.inner.labels[slot.index()].read().is_some(),
                            "slot {slot:?} not built"
                        );
                    }
                }
                EngineKind::ContractionHierarchies => {
                    for slot in HourSlot::all() {
                        assert!(
                            engine.inner.hierarchies[slot.index()].read().is_some(),
                            "slot {slot:?} not built"
                        );
                    }
                }
                _ => unreachable!(),
            }
            // Idempotent, and queries still answer.
            engine.warm_all(0);
            assert!(engine
                .travel_time(NodeId(0), NodeId(15), TimePoint::from_hms(7, 30, 0))
                .is_some());
        }
        // No-op kinds must not panic.
        ShortestPathEngine::cached(net).warm_all(4);
    }

    fn slowdown_overlay(net: &RoadNetwork, factor: f64) -> crate::TrafficOverlay {
        let mut overlay = crate::TrafficOverlay::new();
        for eid in net.edge_ids().step_by(3) {
            overlay.slow_edge(eid, factor);
        }
        overlay
    }

    #[test]
    fn every_backend_answers_overlaid_queries_exactly() {
        let net = GridCityBuilder::new(6, 6).build();
        let t = TimePoint::from_hms(13, 15, 0);
        let overlay = slowdown_overlay(&net, 2.5);
        // Reference: plain-Dijkstra engine with the same overlay (pinned
        // against a rebuilt network in the overlay module's own tests).
        let reference = ShortestPathEngine::dijkstra(net.clone());
        reference.set_overlay(overlay.clone());
        for kind in [EngineKind::Cached, EngineKind::HubLabels, EngineKind::ContractionHierarchies]
        {
            let engine = ShortestPathEngine::new(net.clone(), kind);
            engine.set_overlay(overlay.clone());
            for (a, b) in sample_pairs(&net) {
                let expected = reference.travel_time(a, b, t);
                let got = engine.travel_time(a, b, t);
                match (expected, got) {
                    (None, None) => {}
                    (Some(x), Some(y)) => assert!(
                        (x.as_secs_f64() - y.as_secs_f64()).abs() < 1e-6,
                        "{a}->{b}: {x:?} vs {y:?} with {kind:?}"
                    ),
                    other => panic!("{a}->{b}: {other:?} with {kind:?}"),
                }
            }
            // Repeat queries hit the overlay memo and stay identical.
            let (a, b) = (NodeId(0), NodeId(35));
            assert_eq!(engine.travel_time(a, b, t), reference.travel_time(a, b, t));
        }
    }

    #[test]
    fn overlaid_to_many_matches_pointwise_queries() {
        let net = GridCityBuilder::new(5, 4).build();
        let t = TimePoint::from_hms(12, 0, 0);
        let overlay = slowdown_overlay(&net, 1.7);
        let targets: Vec<NodeId> = net.node_ids().step_by(3).collect();
        for kind in EngineKind::ALL {
            let engine = ShortestPathEngine::new(net.clone(), kind);
            engine.set_overlay(overlay.clone());
            let batch = engine.travel_times_to_many(NodeId(1), &targets, t);
            for (i, &target) in targets.iter().enumerate() {
                assert_eq!(batch[i], engine.travel_time(NodeId(1), target, t), "kind {kind:?}");
            }
        }
    }

    #[test]
    fn clearing_the_overlay_restores_baseline_answers() {
        let net = GridCityBuilder::new(5, 5).build();
        let t = TimePoint::from_hms(12, 0, 0);
        let engine = ShortestPathEngine::cached(net.clone());
        let baseline = engine.travel_time(NodeId(0), NodeId(24), t).unwrap();
        assert_eq!(engine.overlay_generation(), 0);
        assert!(!engine.has_overlay());

        let mut overlay = crate::TrafficOverlay::new();
        for eid in net.edge_ids() {
            overlay.slow_edge(eid, 2.0);
        }
        engine.set_overlay(overlay);
        assert!(engine.has_overlay());
        assert_eq!(engine.overlay_generation(), 1);
        let perturbed = engine.travel_time(NodeId(0), NodeId(24), t).unwrap();
        assert!(
            (perturbed.as_secs_f64() - 2.0 * baseline.as_secs_f64()).abs() < 1e-6,
            "uniform 2x slowdown must double the travel time"
        );

        engine.clear_overlay();
        assert!(!engine.has_overlay());
        assert_eq!(engine.overlay_generation(), 2);
        assert_eq!(engine.travel_time(NodeId(0), NodeId(24), t), Some(baseline));
    }

    #[test]
    fn overlay_memo_is_invalidated_by_generation() {
        let net = GridCityBuilder::new(5, 5).build();
        let t = TimePoint::from_hms(12, 0, 0);
        let engine = ShortestPathEngine::contraction_hierarchies(net.clone());
        let mut mild = crate::TrafficOverlay::new();
        let mut severe = crate::TrafficOverlay::new();
        for eid in net.edge_ids() {
            mild.slow_edge(eid, 1.5);
            severe.slow_edge(eid, 3.0);
        }
        engine.set_overlay(mild);
        let first = engine.travel_time(NodeId(0), NodeId(24), t).unwrap();
        engine.set_overlay(severe);
        let second = engine.travel_time(NodeId(0), NodeId(24), t).unwrap();
        assert!(
            (second.as_secs_f64() - first.as_secs_f64() * 2.0).abs() < 1e-6,
            "stale memo entries must not survive an overlay swap"
        );
    }

    #[test]
    fn edge_travel_time_applies_the_overlay_multiplier() {
        let net = GridCityBuilder::new(3, 3).build();
        let t = TimePoint::from_hms(8, 0, 0);
        let engine = ShortestPathEngine::dijkstra(net.clone());
        let edge = net.edge_ids().next().unwrap();
        let base = engine.edge_travel_time(edge, t);
        assert_eq!(base, net.travel_time(edge, t));
        let mut overlay = crate::TrafficOverlay::new();
        overlay.slow_edge(edge, 2.5);
        engine.set_overlay(overlay);
        let slowed = engine.edge_travel_time(edge, t);
        assert!((slowed.as_secs_f64() - 2.5 * base.as_secs_f64()).abs() < 1e-9);
        // Unperturbed edges are untouched.
        let other = net.edge_ids().nth(1).unwrap();
        assert_eq!(engine.edge_travel_time(other, t), net.travel_time(other, t));
    }

    #[test]
    fn overlaid_shortest_path_reroutes_around_slowdowns() {
        let net = GridCityBuilder::new(5, 5).build();
        let t = TimePoint::from_hms(12, 0, 0);
        let engine = ShortestPathEngine::cached(net.clone());
        let reference = engine.shortest_path(NodeId(0), NodeId(24), t).unwrap();
        // Slow every edge of the reference path hard; the overlaid path must
        // not be slower than driving the perturbed reference path.
        let mut overlay = crate::TrafficOverlay::new();
        let mut perturbed_reference_secs = 0.0;
        for pair in reference.nodes.windows(2) {
            let (eid, _) = net.out_edges(pair[0]).find(|(_, e)| e.to == pair[1]).unwrap();
            overlay.slow_edge(eid, 10.0);
            perturbed_reference_secs += net.travel_time(eid, t).as_secs_f64() * 10.0;
        }
        engine.set_overlay(overlay);
        let rerouted = engine.shortest_path(NodeId(0), NodeId(24), t).unwrap();
        assert!(rerouted.travel_time.as_secs_f64() <= perturbed_reference_secs + 1e-9);
        assert!(
            rerouted.travel_time.as_secs_f64() + 1e-9 >= reference.travel_time.as_secs_f64(),
            "slowdowns can never make a path faster"
        );
    }

    #[test]
    fn pooled_spaces_are_recycled() {
        let net = GridCityBuilder::new(4, 4).build();
        let engine = ShortestPathEngine::dijkstra(net);
        let t = TimePoint::from_hms(10, 0, 0);
        for _ in 0..8 {
            let _ = engine.travel_time(NodeId(0), NodeId(15), t);
        }
        // After serial queries the pool must hold exactly one grown space.
        let pool = engine.inner.spaces.lock();
        assert_eq!(pool.len(), 1);
        assert_eq!(pool[0].node_capacity(), 16);
    }
}
