//! # foodmatch-roadnet
//!
//! Road-network substrate for the FoodMatch reproduction ("Batching and
//! Matching for Food Delivery in Dynamic Road Networks", ICDE 2021).
//!
//! The paper models a city as a weighted directed graph `G = (V, E, β)`
//! (Definition 1) where `β(e, t)` is the time needed to traverse road segment
//! `e` at time-of-day `t`. Every higher layer of the system — route planning,
//! batching, the FoodGraph, and the simulator — consumes the network solely
//! through the interfaces exposed here:
//!
//! * [`RoadNetwork`] — the graph itself with per-edge lengths, free-flow
//!   travel times and road classes, plus node geometry (latitude/longitude).
//! * [`CongestionProfile`] — hour-of-day travel-time multipliers per road
//!   class, giving the time dependence of `β(e, t)`.
//! * [`dijkstra`] — exact time-sliced shortest paths, one-to-one, one-to-many
//!   and a lazy best-first [`dijkstra::Expansion`] iterator used by the
//!   sparsified FoodGraph construction (Algorithm 2 in the paper).
//! * [`HubLabelIndex`] — a pruned hub-labelling distance oracle standing in
//!   for the hierarchical hub labels the paper uses for fast distance queries.
//! * [`ContractionHierarchy`] — a contraction-hierarchies oracle that answers
//!   both distance and full-path queries through shortcut unpacking.
//! * [`ShortestPathEngine`] — a façade that picks between plain Dijkstra, a
//!   memoising cache, hub labels and contraction hierarchies, so callers do
//!   not care which index backs a query.
//! * [`TrafficOverlay`] — live edge-speed perturbations (incidents, rain,
//!   localized slowdowns) layered over the static weights; the engine answers
//!   perturbed queries with a bounded overlay search on top of its index
//!   instead of rebuilding it (see [`overlay`]).
//! * [`generators`] — synthetic city generators (grid and random-geometric)
//!   that replace the proprietary OpenStreetMap/Swiggy extracts used in the
//!   paper's evaluation.
//! * [`geo`] — haversine distances, bearings (Definition 10) and the angular
//!   distance used by the vehicle-sensitive edge weight (Eq. 8).
//!
//! ## Quick example
//!
//! ```
//! use foodmatch_roadnet::{generators::GridCityBuilder, ShortestPathEngine, TimePoint};
//!
//! let network = GridCityBuilder::new(6, 6).build();
//! let engine = ShortestPathEngine::dijkstra(network.clone());
//! let a = network.node_ids().next().unwrap();
//! let b = network.node_ids().last().unwrap();
//! let t = TimePoint::from_hms(12, 30, 0);
//! let travel = engine.travel_time(a, b, t).expect("grid is connected");
//! assert!(travel.as_secs_f64() > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod ch;
pub mod congestion;
pub mod dijkstra;
pub mod generators;
pub mod geo;
pub mod graph;
pub mod hub_labels;
pub mod ids;
pub mod index;
pub mod io;
pub mod overlay;
pub mod parallel;
pub mod timeofday;

pub use ch::ContractionHierarchy;
pub use congestion::{CongestionProfile, RoadClass};
pub use dijkstra::{Expansion, PathResult, SearchSpace};
pub use geo::{angular_distance, bearing, haversine_meters, GeoPoint};
pub use graph::{EdgeRecord, NodeRecord, RoadNetwork, RoadNetworkBuilder};
pub use hub_labels::HubLabelIndex;
pub use ids::{EdgeId, NodeId};
pub use index::{EngineKind, ShortestPathEngine};
pub use overlay::TrafficOverlay;
pub use parallel::parallel_map;
pub use timeofday::{Duration, HourSlot, TimePoint};
