//! Strongly typed identifiers for road-network entities.
//!
//! Using newtypes instead of bare integers prevents the classic bug of mixing
//! a node index with an edge index (or, higher up the stack, with an order or
//! vehicle id). The ids are plain `u32`s internally: the paper's largest city
//! has 183k nodes and 460k edges, far below `u32::MAX`, and the smaller width
//! keeps adjacency lists compact.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a node (road intersection) in a [`crate::RoadNetwork`].
///
/// Node ids are dense: a network with `n` nodes uses ids `0..n`, which allows
/// all per-node state (distance arrays, visited flags, labels) to live in flat
/// vectors.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub u32);

/// Identifier of a directed edge (road segment) in a [`crate::RoadNetwork`].
///
/// Edge ids are dense in insertion order, mirroring the CSR layout of the
/// adjacency structure.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct EdgeId(pub u32);

impl NodeId {
    /// Returns the id as a `usize` suitable for indexing flat per-node arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `NodeId` from a dense index.
    ///
    /// # Panics
    /// Panics if `index` does not fit in a `u32`.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        NodeId(u32::try_from(index).expect("node index exceeds u32 range"))
    }
}

impl EdgeId {
    /// Returns the id as a `usize` suitable for indexing flat per-edge arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds an `EdgeId` from a dense index.
    ///
    /// # Panics
    /// Panics if `index` does not fit in a `u32`.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        EdgeId(u32::try_from(index).expect("edge index exceeds u32 range"))
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Debug for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(value: u32) -> Self {
        NodeId(value)
    }
}

impl From<u32> for EdgeId {
    fn from(value: u32) -> Self {
        EdgeId(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrips_through_index() {
        let id = NodeId::from_index(42);
        assert_eq!(id.index(), 42);
        assert_eq!(id, NodeId(42));
    }

    #[test]
    fn edge_id_roundtrips_through_index() {
        let id = EdgeId::from_index(7);
        assert_eq!(id.index(), 7);
        assert_eq!(id, EdgeId(7));
    }

    #[test]
    fn ids_format_compactly() {
        assert_eq!(format!("{}", NodeId(3)), "n3");
        assert_eq!(format!("{:?}", EdgeId(9)), "e9");
    }

    #[test]
    fn ids_order_by_value() {
        assert!(NodeId(1) < NodeId(2));
        assert!(EdgeId(10) > EdgeId(2));
    }

    #[test]
    #[should_panic(expected = "node index exceeds u32 range")]
    fn node_id_from_huge_index_panics() {
        let _ = NodeId::from_index(usize::MAX);
    }
}
