//! Time-of-day congestion model.
//!
//! In the paper, `β(e, t)` — the traversal time of edge `e` at time `t` — is
//! learned from GPS pings of the delivery fleet, aggregated into 24 hourly
//! slots (§V-A, "Road Network"). We do not have that data, so the synthetic
//! substitute works as follows: every edge carries a *free-flow* traversal
//! time (length / free-flow speed of its [`RoadClass`]) and a
//! [`CongestionProfile`] supplies a per-class multiplier for each hour slot.
//! The effective weight is `β(e, t) = free_flow(e) × multiplier(class(e),
//! slot(t))`.
//!
//! Because the multipliers differ across road classes, the *relative* cost of
//! alternative routes genuinely changes over the day (arterials get congested
//! at the peaks while local streets stay flat), so time dependence is not a
//! trivial global rescaling and the shortest-path layer is exercised exactly
//! as it would be with measured weights.

use crate::timeofday::HourSlot;
use serde::{Deserialize, Serialize};

/// Functional class of a road segment, controlling free-flow speed and how
/// strongly the segment reacts to peak-hour congestion.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum RoadClass {
    /// High-capacity roads: fast when free-flowing, heavily congested at peaks.
    Arterial,
    /// Medium distributor roads.
    Collector,
    /// Neighbourhood streets: slow but almost unaffected by congestion.
    Local,
}

impl RoadClass {
    /// All road classes, in decreasing order of capacity.
    pub const ALL: [RoadClass; 3] = [RoadClass::Arterial, RoadClass::Collector, RoadClass::Local];

    /// Free-flow speed in meters per second used when deriving edge travel
    /// times from lengths.
    pub fn free_flow_speed_mps(self) -> f64 {
        match self {
            RoadClass::Arterial => 13.9, // ~50 km/h
            RoadClass::Collector => 9.7, // ~35 km/h
            RoadClass::Local => 6.9,     // ~25 km/h
        }
    }

    /// Dense index used to look up per-class congestion rows.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            RoadClass::Arterial => 0,
            RoadClass::Collector => 1,
            RoadClass::Local => 2,
        }
    }
}

/// Per-hour, per-road-class travel-time multipliers.
///
/// A multiplier of `1.0` means free flow; `1.8` means the segment takes 80%
/// longer than free flow during that hour.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CongestionProfile {
    /// `multipliers[class][hour]`.
    multipliers: [[f64; HourSlot::COUNT]; 3],
}

impl CongestionProfile {
    /// A profile with no congestion at any hour (all multipliers `1.0`).
    pub fn free_flow() -> Self {
        CongestionProfile { multipliers: [[1.0; HourSlot::COUNT]; 3] }
    }

    /// The default metropolitan profile: morning (8–10), lunch (12–14) and
    /// evening (18–21) build-ups, strongest on arterials, mild on local
    /// streets. Shapes are chosen so that lunch and dinner — the paper's peak
    /// delivery slots — are also the most congested travel slots.
    pub fn metropolitan() -> Self {
        let mut multipliers = [[1.0; HourSlot::COUNT]; 3];
        // Baseline hourly shape, before per-class scaling.
        let shape: [f64; 24] = [
            0.00, 0.00, 0.00, 0.00, 0.00, 0.05, 0.15, 0.35, 0.55, 0.50, 0.35, 0.40, 0.60, 0.65,
            0.45, 0.30, 0.35, 0.50, 0.70, 0.80, 0.75, 0.55, 0.25, 0.10,
        ];
        // How strongly each class responds to the shape.
        let sensitivity = [1.0, 0.65, 0.25];
        for class in RoadClass::ALL {
            for (hour, s) in shape.iter().enumerate() {
                multipliers[class.index()][hour] = 1.0 + s * sensitivity[class.index()];
            }
        }
        CongestionProfile { multipliers }
    }

    /// Builds a profile from an explicit table `multipliers[class][hour]`.
    ///
    /// # Panics
    /// Panics if any multiplier is not finite or is below `1e-3`.
    pub fn from_table(multipliers: [[f64; HourSlot::COUNT]; 3]) -> Self {
        for row in &multipliers {
            for &m in row {
                assert!(m.is_finite() && m >= 1e-3, "invalid congestion multiplier {m}");
            }
        }
        CongestionProfile { multipliers }
    }

    /// The travel-time multiplier for `class` during `slot`.
    #[inline]
    pub fn multiplier(&self, class: RoadClass, slot: HourSlot) -> f64 {
        self.multipliers[class.index()][slot.index()]
    }

    /// The largest multiplier across all classes and hours. Used to bound
    /// `max β(e', t)` in the normalisation of Eq. 8.
    pub fn max_multiplier(&self) -> f64 {
        self.multipliers.iter().flat_map(|row| row.iter().copied()).fold(1.0_f64, f64::max)
    }
}

impl Default for CongestionProfile {
    fn default() -> Self {
        CongestionProfile::metropolitan()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_flow_profile_is_identity() {
        let p = CongestionProfile::free_flow();
        for class in RoadClass::ALL {
            for slot in HourSlot::all() {
                assert_eq!(p.multiplier(class, slot), 1.0);
            }
        }
        assert_eq!(p.max_multiplier(), 1.0);
    }

    #[test]
    fn metropolitan_peaks_exceed_offpeak() {
        let p = CongestionProfile::metropolitan();
        let night = p.multiplier(RoadClass::Arterial, HourSlot::new(3));
        let dinner = p.multiplier(RoadClass::Arterial, HourSlot::new(19));
        assert!(dinner > night + 0.3, "dinner {dinner} vs night {night}");
    }

    #[test]
    fn local_roads_are_less_sensitive_than_arterials() {
        let p = CongestionProfile::metropolitan();
        for slot in HourSlot::all() {
            let a = p.multiplier(RoadClass::Arterial, slot);
            let l = p.multiplier(RoadClass::Local, slot);
            assert!(l <= a + 1e-12, "local {l} > arterial {a} at {slot:?}");
        }
    }

    #[test]
    fn max_multiplier_is_attained() {
        let p = CongestionProfile::metropolitan();
        let max = p.max_multiplier();
        let p_ref = &p;
        let attained = RoadClass::ALL
            .iter()
            .flat_map(|&c| HourSlot::all().map(move |s| p_ref.multiplier(c, s)))
            .fold(0.0_f64, f64::max);
        assert!((max - attained).abs() < 1e-12);
    }

    #[test]
    fn class_speeds_are_ordered() {
        assert!(
            RoadClass::Arterial.free_flow_speed_mps() > RoadClass::Collector.free_flow_speed_mps()
        );
        assert!(
            RoadClass::Collector.free_flow_speed_mps() > RoadClass::Local.free_flow_speed_mps()
        );
    }

    #[test]
    #[should_panic(expected = "invalid congestion multiplier")]
    fn from_table_rejects_zero() {
        let mut table = [[1.0; HourSlot::COUNT]; 3];
        table[1][5] = 0.0;
        let _ = CongestionProfile::from_table(table);
    }
}
